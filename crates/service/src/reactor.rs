//! The event loop: one reactor thread per `--io-threads`, each owning an
//! epoll [`Poller`](lazymc_netio::Poller), its share of the connections,
//! and (for reactor 0) the nonblocking listener.
//!
//! The reactor never computes and never blocks: it accepts, reads bytes
//! into connection buffers, routes complete requests (cheap introspection
//! endpoints answer inline; anything heavier is handed to the request
//! worker pool), and drains response bytes back out. Responses produced
//! off-thread — by request workers or, transitively, solver workers —
//! come back through a [`Responder`], which pushes a completion into the
//! owning reactor's queue and rings its eventfd doorbell. That doorbell
//! is the *only* way other threads interact with the loop, so no socket
//! is ever touched by two threads.

use crate::conn::{Conn, ConnState, ReadOutcome, ReqObs, Response};
use crate::plock;
use crate::server::{dispatch, Dispatched, ReqWork, ServiceConfig, ServiceState};
use lazymc_netio::{Events, Interest, Poller, Wakeup};
use std::net::{TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

const WAKEUP_TOKEN: u64 = 0;
const LISTENER_TOKEN: u64 = 1;
/// Reactor 0's signalfd (SIGTERM/SIGINT → graceful drain).
const SIGNAL_TOKEN: u64 = 2;
/// First token handed to a connection (0–2 are reserved above).
pub(crate) const FIRST_CONN_TOKEN: u64 = 3;

/// How long an idle keep-alive connection survives once a drain begins:
/// long enough for a final probe (`/readyz`) or an in-flight response,
/// short enough that drains are not held open by parked clients.
const DRAIN_IDLE_GRACE: Duration = Duration::from_millis(500);

/// A response produced off the reactor thread, addressed to one
/// connection's one in-flight request.
pub(crate) struct Completion {
    pub conn: u64,
    pub serial: u64,
    pub response: Response,
}

/// The reactor's cross-thread mailbox.
pub(crate) struct ReactorShared {
    completions: Mutex<Vec<Completion>>,
    /// Connections accepted by reactor 0 and assigned to this reactor.
    injected: Mutex<Vec<TcpStream>>,
    wakeup: Wakeup,
}

impl ReactorShared {
    pub(crate) fn new() -> std::io::Result<ReactorShared> {
        Ok(ReactorShared {
            completions: Mutex::new(Vec::new()),
            injected: Mutex::new(Vec::new()),
            wakeup: Wakeup::new()?,
        })
    }

    pub(crate) fn notify(&self) {
        self.wakeup.notify();
    }

    fn inject(&self, stream: TcpStream) {
        plock(&self.injected).push(stream);
        self.wakeup.notify();
    }
}

/// Write-half of a pending request: whoever holds it (or any of its
/// clones — they share one debt) owes the connection exactly one
/// response. The first `respond` wins; later ones are ignored. If every
/// clone is dropped without responding — a panicking handler, a job
/// record that vanished — the drop of the last clone sends a `500`
/// instead, so no connection can be orphaned in its awaiting state.
#[derive(Clone)]
pub struct Responder {
    inner: Arc<ResponderInner>,
}

struct ResponderInner {
    shared: Arc<ReactorShared>,
    conn: u64,
    serial: u64,
    answered: std::sync::atomic::AtomicBool,
}

impl ResponderInner {
    fn send(&self, response: Response) {
        plock(&self.shared.completions).push(Completion {
            conn: self.conn,
            serial: self.serial,
            response,
        });
        self.shared.wakeup.notify();
    }
}

impl Responder {
    pub(crate) fn new(shared: Arc<ReactorShared>, conn: u64, serial: u64) -> Responder {
        Responder {
            inner: Arc::new(ResponderInner {
                shared,
                conn,
                serial,
                answered: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// Delivers the response to the reactor that owns the connection. If
    /// the connection died in the meantime, the completion is dropped
    /// there — never an error here. Only the first respond across all
    /// clones is delivered.
    pub(crate) fn respond(&self, response: Response) {
        if self.inner.answered.swap(true, Ordering::AcqRel) {
            return;
        }
        self.inner.send(response);
    }

    /// Marks the debt settled without sending — for requests the reactor
    /// answers directly on its own thread (the completion queue never
    /// sees them, and the drop backstop must not fire a stray 500).
    pub(crate) fn dismiss(&self) {
        self.inner
            .answered
            .store(true, std::sync::atomic::Ordering::Release);
    }
}

impl Drop for ResponderInner {
    fn drop(&mut self) {
        // Last clone gone without an answer: the handler panicked or a
        // job sink was lost. The old thread-per-connection server's
        // equivalent was a dead reply channel turning into a 500 — keep
        // that contract rather than leaving the connection awaiting
        // (awaiting connections are exempt from the idle sweep).
        if !self.answered.load(Ordering::Acquire) {
            self.send(Response::error(
                500,
                "request handler failed before responding",
            ));
        }
    }
}

pub(crate) struct ReactorArgs {
    pub idx: usize,
    pub state: Arc<ServiceState>,
    pub cfg: ServiceConfig,
    /// `Some` only for reactor 0, which owns accepting.
    pub listener: Option<TcpListener>,
    /// `Some` only for reactor 0 when the daemon handles signals:
    /// SIGTERM/SIGINT arrive as readability here and start a drain.
    pub signal: Option<lazymc_netio::SignalFd>,
    pub shared: Arc<ReactorShared>,
    /// Every reactor's mailbox (self included), for accept handoff.
    pub peers: Vec<Arc<ReactorShared>>,
    pub shutdown: Arc<AtomicBool>,
    pub work_tx: mpsc::Sender<ReqWork>,
}

pub(crate) fn run_reactor(args: ReactorArgs) {
    let mut r = Reactor {
        poller: match Poller::new() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("lazymc-service: reactor {} failed to start: {e}", args.idx);
                return;
            }
        },
        conns: std::collections::HashMap::new(),
        next_rr: args.idx,
        last_sweep: Instant::now(),
        args,
    };
    if r.poller
        .register(r.args.shared.wakeup.fd(), WAKEUP_TOKEN, Interest::READ)
        .is_err()
    {
        return;
    }
    if let Some(listener) = &r.args.listener {
        let _ = listener.set_nonblocking(true);
        if r.poller
            .register(listener.as_raw_fd(), LISTENER_TOKEN, Interest::READ)
            .is_err()
        {
            return;
        }
    }
    if let Some(signal) = &r.args.signal {
        if r.poller
            .register(signal.fd(), SIGNAL_TOKEN, Interest::READ)
            .is_err()
        {
            eprintln!("lazymc-service: failed to watch signalfd; SIGTERM will kill, not drain");
        }
    }
    r.run();
}

struct Reactor {
    poller: Poller,
    conns: std::collections::HashMap<u64, Conn>,
    /// Round-robin cursor for accept handoff.
    next_rr: usize,
    last_sweep: Instant,
    args: ReactorArgs,
}

impl Reactor {
    fn run(&mut self) {
        let sweep_every = (self.args.cfg.read_timeout / 4)
            .min(Duration::from_millis(100))
            .max(Duration::from_millis(5));
        let mut events = Events::with_capacity(256);
        loop {
            let _ = self.poller.wait(&mut events, Some(sweep_every));
            if self.args.shutdown.load(Ordering::SeqCst) {
                // Sever everything; in-flight completions die with us.
                for (_, conn) in self.conns.drain() {
                    let _ = conn.stream.shutdown(std::net::Shutdown::Both);
                    self.args
                        .state
                        .metrics
                        .open_connections
                        .fetch_sub(1, Ordering::Relaxed);
                }
                return;
            }
            let ready: Vec<(u64, bool, bool, bool)> = events
                .iter()
                .map(|e| (e.token, e.readable, e.writable, e.error || e.closed))
                .collect();
            for (token, readable, writable, fatal) in ready {
                match token {
                    WAKEUP_TOKEN => {
                        self.args.shared.wakeup.drain();
                    }
                    LISTENER_TOKEN => self.accept_ready(),
                    SIGNAL_TOKEN => {
                        if self.args.signal.as_ref().is_some_and(|s| s.drain()) {
                            // SIGTERM/SIGINT: start the graceful drain and
                            // wake the peers so they act on it too.
                            self.args.state.begin_drain();
                            for peer in &self.args.peers {
                                peer.notify();
                            }
                        }
                    }
                    token => self.conn_ready(token, readable, writable, fatal),
                }
            }
            // Drain mode (SIGTERM, or begin_drain from any thread): stop
            // accepting — readiness probes already see 503 — and let
            // everything in flight settle.
            if self.args.state.is_draining() {
                self.enter_drain();
            }
            // Mailbox work can arrive with or without a doorbell event
            // (the notify may land while we are already awake).
            self.drain_injected();
            self.drain_completions();
            if self.last_sweep.elapsed() >= sweep_every {
                self.sweep_timeouts();
                self.last_sweep = Instant::now();
            }
        }
    }

    /// Acts on drain mode; idempotent, called every loop iteration while
    /// draining. Reactor 0 closes the listener (new TCP connections are
    /// refused by the OS from that moment; `/readyz` flipped to 503 the
    /// instant the flag was set, strictly before this). Open connections
    /// are left to finish: their next response carries
    /// `Connection: close` (see [`Reactor::deliver`]) and idle ones are
    /// reaped by the sweep after a short grace.
    fn enter_drain(&mut self) {
        if let Some(listener) = self.args.listener.take() {
            let _ = self.poller.deregister(listener.as_raw_fd());
            eprintln!("lazymc-service: drain: listener closed");
        }
    }

    // -- accept path --------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            // Scoped borrow of the listener so `adopt` below can take
            // `&mut self`.
            let accepted = match &self.args.listener {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok((stream, _)) => {
                    let m = &self.args.state.metrics;
                    m.conns_accepted_total.fetch_add(1, Ordering::Relaxed);
                    if m.open_connections.load(Ordering::Relaxed)
                        >= self.args.cfg.effective_conn_limit() as u64
                    {
                        m.conns_rejected_total.fetch_add(1, Ordering::Relaxed);
                        // Best-effort 503 so the client knows it was load,
                        // not a crash; then the stream drops.
                        let _ = stream.set_nonblocking(true);
                        let mut buf = Vec::new();
                        let mut busy =
                            Response::error(503, "connection limit reached; retry shortly");
                        busy.retry_after = Some(
                            self.args
                                .state
                                .drain_rate
                                .retry_after(self.args.state.queue.depth()),
                        );
                        busy.serialize_into(&mut buf);
                        use std::io::Write as _;
                        let mut s = stream;
                        let _ = s.write(&buf);
                        continue;
                    }
                    let n = self.args.peers.len();
                    let target = self.next_rr % n;
                    self.next_rr = self.next_rr.wrapping_add(1);
                    if target == self.args.idx {
                        self.adopt(stream);
                    } else {
                        self.args.peers[target].inject(stream);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn adopt(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        if let Some(bytes) = self.args.cfg.so_sndbuf {
            let _ = lazymc_netio::sockopt::set_send_buf(stream.as_raw_fd(), bytes);
        }
        let token = self
            .args
            .state
            .next_conn_token
            .fetch_add(1, Ordering::Relaxed);
        if self
            .poller
            .register(stream.as_raw_fd(), token, Interest::READ)
            .is_err()
        {
            return;
        }
        self.conns.insert(token, Conn::new(stream));
        self.args
            .state
            .metrics
            .open_connections
            .fetch_add(1, Ordering::Relaxed);
        // The socket may already hold a full request (accept and data can
        // race); pump once rather than waiting for the next edge.
        self.conn_ready(token, true, false, false);
    }

    fn drain_injected(&mut self) {
        let injected: Vec<TcpStream> = std::mem::take(&mut *plock(&self.args.shared.injected));
        for stream in injected {
            self.adopt(stream);
        }
    }

    // -- connection events --------------------------------------------

    fn conn_ready(&mut self, token: u64, readable: bool, writable: bool, fatal: bool) {
        if fatal {
            // EPOLLERR, or EPOLLHUP proper (fully closed/reset — which
            // the kernel keeps reporting regardless of interest, so the
            // fd must go now). Half-close is NOT in this bucket: it
            // arrives as readable + EOF and drains normally.
            self.close(token);
            return;
        }
        if writable {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            match conn.on_writable() {
                Ok(true) => {
                    if conn.close_after_write {
                        self.close(token);
                        return;
                    }
                    self.pump_buffered(token);
                }
                Ok(false) => {
                    self.args
                        .state
                        .metrics
                        .write_stalls_total
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(_) => {
                    self.close(token);
                    return;
                }
            }
        }
        if readable {
            self.pump_read(token);
        }
        self.sync_interest(token);
    }

    /// Whether connections may still grow their input buffers: the
    /// aggregate userspace buffering budget has headroom.
    fn allow_grow(&self) -> bool {
        (self
            .args
            .state
            .metrics
            .buffered_bytes
            .load(Ordering::Relaxed) as usize)
            < self.args.cfg.max_buffered_bytes
    }

    /// Reconciles one connection's buffered bytes with the global gauge
    /// (and lets over-grown buffers shrink back).
    fn sync_buffered(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        conn.maybe_shrink();
        let now = conn.buffered();
        let before = conn.accounted;
        conn.accounted = now;
        let gauge = &self.args.state.metrics.buffered_bytes;
        if now > before {
            gauge.fetch_add((now - before) as u64, Ordering::Relaxed);
        } else if before > now {
            gauge.fetch_sub((before - now) as u64, Ordering::Relaxed);
        }
    }

    /// Reads and routes until the connection has nothing actionable.
    fn pump_read(&mut self, token: u64) {
        loop {
            let allow_grow = self.allow_grow();
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            let outcome = conn.on_readable(self.args.cfg.max_body_bytes, allow_grow);
            self.sync_buffered(token);
            match self.apply_outcome(token, outcome) {
                Pump::Continue => continue,
                Pump::Done => return,
            }
        }
    }

    /// After a response drained: serve pipelined requests already
    /// buffered.
    fn pump_buffered(&mut self, token: u64) {
        loop {
            let Some(conn) = self.conns.get_mut(&token) else {
                return;
            };
            if conn.state != ConnState::Reading || conn.wants_write() {
                return;
            }
            let outcome = conn.next_buffered_request(self.args.cfg.max_body_bytes);
            self.sync_buffered(token);
            match self.apply_outcome(token, outcome) {
                Pump::Continue => continue,
                Pump::Done => return,
            }
        }
    }

    fn apply_outcome(&mut self, token: u64, outcome: ReadOutcome) -> Pump {
        let m = &self.args.state.metrics;
        match outcome {
            ReadOutcome::Request(mut req) => {
                m.requests_total.fetch_add(1, Ordering::Relaxed);
                let Some(conn) = self.conns.get_mut(&token) else {
                    return Pump::Done;
                };
                conn.serial += 1;
                conn.keep_alive = req.keep_alive;
                let serial = conn.serial;
                conn.state = ConnState::Awaiting { serial };
                // Resolve the request's trace id (validated inbound
                // `X-Request-Id`, or freshly minted) and stamp the
                // observation facts consumed when the response delivers.
                let trace = lazymc_obs::trace::adopt_or_generate(req.trace.as_deref());
                conn.req_obs = Some(ReqObs {
                    trace: trace.clone(),
                    route: crate::obs::route_class(&req.path),
                    method: req.method.clone(),
                    path: req.route_path().to_string(),
                    received: Instant::now(),
                });
                req.trace = Some(trace);
                let responder = Responder::new(self.args.shared.clone(), token, serial);
                match dispatch(
                    &self.args.state,
                    &self.args.cfg,
                    req,
                    responder,
                    &self.args.work_tx,
                ) {
                    Dispatched::Ready(response) => {
                        self.deliver(token, serial, response);
                        Pump::Continue
                    }
                    Dispatched::Pending => Pump::Done,
                }
            }
            ReadOutcome::BadRequest(status) => {
                m.bad_requests_total.fetch_add(1, Ordering::Relaxed);
                let message = match status {
                    501 => "Transfer-Encoding is not supported; send a Content-Length body",
                    413 => "request body too large",
                    _ => "malformed request",
                };
                let Some(conn) = self.conns.get_mut(&token) else {
                    return Pump::Done;
                };
                conn.close_after_write = true;
                conn.queue_response(&Response::error(status, message), false);
                self.flush(token);
                Pump::Done
            }
            ReadOutcome::Eof => {
                // Finish writing whatever is queued, then close.
                let Some(conn) = self.conns.get_mut(&token) else {
                    return Pump::Done;
                };
                if conn.wants_write() || matches!(conn.state, ConnState::Awaiting { .. }) {
                    conn.close_after_write = true;
                } else {
                    self.close(token);
                }
                Pump::Done
            }
            ReadOutcome::Stalled => {
                m.read_stalls_total.fetch_add(1, Ordering::Relaxed);
                Pump::Done
            }
            ReadOutcome::Progress => Pump::Done,
        }
    }

    /// Queues a response on a connection and flushes what the socket
    /// accepts now.
    fn deliver(&mut self, token: u64, serial: u64, mut response: Response) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // A stale completion (connection already moved on) is dropped —
        // strictly: only the request currently awaited may be answered,
        // or a late/spurious completion could corrupt the keep-alive
        // response stream.
        if !conn.is_awaiting(serial) {
            return;
        }
        // Settle the request's observation debt: latency histogram,
        // structured log line, and the `X-Request-Id` echo.
        if let Some(ro) = conn.req_obs.take() {
            response.request_id = Some(ro.trace.clone());
            self.args.state.obs.observe_http(
                ro.route,
                &ro.trace,
                &ro.method,
                &ro.path,
                response.status,
                ro.received.elapsed(),
            );
        }
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if response.status >= 400 {
            self.args
                .state
                .metrics
                .bad_requests_total
                .fetch_add(1, Ordering::Relaxed);
        }
        // Draining: every response announces `Connection: close` and the
        // connection closes once it drains — clients are steered to
        // another instance while this one finishes.
        let keep_alive = conn.keep_alive && !self.args.state.is_draining();
        conn.queue_response(&response, keep_alive);
        self.flush(token);
    }

    /// Drives a write burst; closes on fatal errors or completed
    /// close-after-write. Deliberately does NOT serve pipelined
    /// follow-ups (callers do, iteratively — keeps recursion depth flat
    /// however deep a client pipelines).
    fn flush(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        match conn.on_writable() {
            Ok(true) => {
                if conn.close_after_write {
                    self.close(token);
                }
            }
            Ok(false) => {
                self.args
                    .state
                    .metrics
                    .write_stalls_total
                    .fetch_add(1, Ordering::Relaxed);
            }
            Err(_) => self.close(token),
        }
        self.sync_interest(token);
    }

    fn drain_completions(&mut self) {
        let completions: Vec<Completion> =
            std::mem::take(&mut *plock(&self.args.shared.completions));
        for c in completions {
            let Some(conn) = self.conns.get(&c.conn) else {
                continue;
            };
            if !conn.is_awaiting(c.serial) {
                continue;
            }
            self.deliver(c.conn, c.serial, c.response);
            // The response may have fully drained already; serve any
            // pipelined requests that were buffered behind it.
            self.pump_buffered(c.conn);
            self.sync_interest(c.conn);
        }
    }

    // -- housekeeping -------------------------------------------------

    fn sync_interest(&mut self, token: u64) {
        let allow_grow = self.allow_grow();
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        let want = (conn.wants_read(allow_grow), conn.wants_write());
        if want == conn.registered {
            return;
        }
        let interest = Interest {
            readable: want.0,
            writable: want.1,
            edge: false,
        };
        if self
            .poller
            .modify(conn.stream.as_raw_fd(), token, interest)
            .is_ok()
        {
            conn.registered = want;
        }
    }

    fn sweep_timeouts(&mut self) {
        let timeout = self.args.cfg.read_timeout;
        let draining = self.args.state.is_draining();
        let now = Instant::now();
        let stale: Vec<(u64, bool)> = self
            .conns
            .iter()
            .filter(|(_, c)| {
                let idle_for = now.duration_since(c.last_activity);
                // During a drain, idle keep-alive connections get a short
                // grace instead of the full read timeout — a drain must
                // not be held open by parked clients. Mid-request
                // connections keep the normal clock.
                idle_for > timeout || (draining && !c.mid_request() && idle_for > DRAIN_IDLE_GRACE)
            })
            // Requests awaiting a solver response are exempt: their clock
            // is the job budget, not the socket timeout.
            .filter(|(_, c)| !matches!(c.state, ConnState::Awaiting { .. }))
            .map(|(&t, c)| (t, c.mid_request()))
            .collect();
        for (token, mid_request) in stale {
            if mid_request {
                // Slow-loris: a request started arriving and then stalled.
                let m = &self.args.state.metrics;
                m.request_timeouts_total.fetch_add(1, Ordering::Relaxed);
                m.bad_requests_total.fetch_add(1, Ordering::Relaxed);
                if let Some(conn) = self.conns.get_mut(&token) {
                    conn.close_after_write = true;
                    conn.queue_response(
                        &Response::error(408, "request incomplete after read timeout"),
                        false,
                    );
                }
                self.flush(token);
            } else {
                // Idle keep-alive connection: close silently, like the old
                // per-socket read timeout did.
                self.close(token);
            }
        }
        // Re-arm read interest on connections parked by the buffering
        // budget: freeing bytes generates no epoll event of its own, so
        // the periodic sweep is what lets them resume.
        if self.allow_grow() {
            let parked: Vec<u64> = self
                .conns
                .iter()
                .filter(|(_, c)| !c.registered.0)
                .map(|(&t, _)| t)
                .collect();
            for token in parked {
                self.sync_interest(token);
            }
        }
    }

    fn close(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.deregister(conn.stream.as_raw_fd());
            if conn.accounted > 0 {
                self.args
                    .state
                    .metrics
                    .buffered_bytes
                    .fetch_sub(conn.accounted as u64, Ordering::Relaxed);
            }
            self.args
                .state
                .metrics
                .open_connections
                .fetch_sub(1, Ordering::Relaxed);
        }
    }
}

enum Pump {
    Continue,
    Done,
}
