//! Instrumentation: phase timers, filter-retention counters, and
//! work accounting.
//!
//! These counters regenerate the paper's analysis artifacts:
//!
//! * **Fig. 2** — relative wall time per phase ([`PhaseTimes`]);
//! * **Fig. 3 / Fig. 6** — systematic-search *work* split into filtering,
//!   MC-solver and k-VC-solver time, accumulated across threads;
//! * **Table III** — right-neighbourhoods surviving each filter stage;
//! * **Fig. 7** — speedup vs. total work under varying thread counts.
//!
//! Counters are relaxed atomics padded to cache lines (crossbeam's
//! `CachePadded`) so the instrumentation does not serialize the search.

use crossbeam_utils::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Wall-clock duration of each top-level phase (paper Alg. 1).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Degree-based heuristic search (Alg. 1 line 3).
    pub degree_heuristic: Duration,
    /// k-core / coreness computation (line 4).
    pub kcore: Duration,
    /// Sort-order determination (line 5).
    pub reorder: Duration,
    /// Lazy-graph construction + pre-population (line 6).
    pub prepopulate: Duration,
    /// Coreness-based heuristic search (line 7).
    pub coreness_heuristic: Duration,
    /// Systematic search (line 8).
    pub systematic: Duration,
}

impl PhaseTimes {
    /// End-to-end solve time (sum of phases).
    pub fn total(&self) -> Duration {
        self.degree_heuristic
            + self.kcore
            + self.reorder
            + self.prepopulate
            + self.coreness_heuristic
            + self.systematic
    }
}

/// Live counters updated during the search.
#[derive(Default)]
pub struct Counters {
    /// Vertices whose right-neighbourhood passed the coreness precondition
    /// (a `NeighborSearch` call was made).
    pub retained_coreness: CachePadded<AtomicU64>,
    /// Neighbourhoods still viable after filter 1 (|N| ≥ |C*| with
    /// low-coreness members dropped).
    pub retained_f1: CachePadded<AtomicU64>,
    /// Neighbourhoods still viable after the first induced-degree filter.
    pub retained_f2: CachePadded<AtomicU64>,
    /// Neighbourhoods still viable after the second induced-degree filter —
    /// these reach a detailed search.
    pub retained_f3: CachePadded<AtomicU64>,
    /// Detailed searches dispatched to the MC solver.
    pub searched_mc: CachePadded<AtomicU64>,
    /// Detailed searches dispatched to the k-VC solver.
    pub searched_kvc: CachePadded<AtomicU64>,
    /// Nanoseconds spent filtering (across all threads).
    pub filter_ns: CachePadded<AtomicU64>,
    /// Nanoseconds in the MC subgraph solver (across all threads).
    pub mc_ns: CachePadded<AtomicU64>,
    /// Nanoseconds in the k-VC subgraph solver (across all threads).
    pub kvc_ns: CachePadded<AtomicU64>,
    /// Branch-and-bound nodes expanded by the MC solver.
    pub mc_nodes: CachePadded<AtomicU64>,
    /// Branch-and-bound nodes expanded by the k-VC solver.
    pub vc_nodes: CachePadded<AtomicU64>,
    /// Vertices removed by the MC-BRB-style subgraph reduction
    /// (`Config::subgraph_reduction`) before detailed searches.
    pub reduced_vertices: CachePadded<AtomicU64>,
    /// Vertices removed or forced by the k-VC kernelization rules (Buss,
    /// degree-0/1/2).
    pub vc_reductions: CachePadded<AtomicU64>,
}

impl Counters {
    #[inline]
    pub(crate) fn add(&self, field: &CachePadded<AtomicU64>, v: u64) {
        field.fetch_add(v, Ordering::Relaxed);
        let _ = self;
    }
}

/// Immutable snapshot of everything measured during one solve.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Wall time per phase.
    pub phases: PhaseTimes,
    /// Incumbent size after the degree-based heuristic (ω̂_d of Table I).
    pub omega_degree_heuristic: usize,
    /// Incumbent size after the coreness-based heuristic (ω̂_h of Table I).
    pub omega_coreness_heuristic: usize,
    /// Graph degeneracy.
    pub degeneracy: u32,
    /// Number of vertices.
    pub n: usize,
    /// Number of edges.
    pub m: usize,
    /// Table III columns (counts, not yet normalized).
    pub retained_coreness: u64,
    /// Survivors of filter 1.
    pub retained_f1: u64,
    /// Survivors of filter 2.
    pub retained_f2: u64,
    /// Survivors of filter 3.
    pub retained_f3: u64,
    /// Detailed searches dispatched to the MC solver.
    pub searched_mc: u64,
    /// Detailed searches dispatched to the k-VC solver.
    pub searched_kvc: u64,
    /// Filtering work (summed across threads).
    pub filter_time: Duration,
    /// MC-solver work (summed across threads).
    pub mc_time: Duration,
    /// k-VC-solver work (summed across threads).
    pub kvc_time: Duration,
    /// MC solver tree nodes.
    pub mc_nodes: u64,
    /// k-VC solver tree nodes.
    pub vc_nodes: u64,
    /// Vertices removed by the subgraph reduction pass.
    pub reduced_vertices: u64,
    /// Vertices removed or forced by the k-VC kernelization rules.
    pub vc_reductions: u64,
    /// Lazy-graph materialization counts (hashed, sorted).
    pub lazy_built: (usize, usize),
}

impl MetricsSnapshot {
    /// Total systematic-search *work* (thread-seconds): filter + MC + k-VC.
    pub fn systematic_work(&self) -> Duration {
        self.filter_time + self.mc_time + self.kvc_time
    }

    /// Accumulates another solve's measurements into `self` (element-wise
    /// sums). Long-running callers — the query daemon's `/metrics`
    /// endpoint — fold every completed solve into one running total.
    /// Scalar graph properties (`n`, `m`, `degeneracy`, heuristic sizes,
    /// `lazy_built`) are summed too: totals, not last-seen values.
    pub fn accumulate(&mut self, other: &MetricsSnapshot) {
        let p = &mut self.phases;
        let q = &other.phases;
        p.degree_heuristic += q.degree_heuristic;
        p.kcore += q.kcore;
        p.reorder += q.reorder;
        p.prepopulate += q.prepopulate;
        p.coreness_heuristic += q.coreness_heuristic;
        p.systematic += q.systematic;
        self.omega_degree_heuristic += other.omega_degree_heuristic;
        self.omega_coreness_heuristic += other.omega_coreness_heuristic;
        self.degeneracy += other.degeneracy;
        self.n += other.n;
        self.m += other.m;
        self.retained_coreness += other.retained_coreness;
        self.retained_f1 += other.retained_f1;
        self.retained_f2 += other.retained_f2;
        self.retained_f3 += other.retained_f3;
        self.searched_mc += other.searched_mc;
        self.searched_kvc += other.searched_kvc;
        self.filter_time += other.filter_time;
        self.mc_time += other.mc_time;
        self.kvc_time += other.kvc_time;
        self.mc_nodes += other.mc_nodes;
        self.vc_nodes += other.vc_nodes;
        self.reduced_vertices += other.reduced_vertices;
        self.vc_reductions += other.vc_reductions;
        self.lazy_built.0 += other.lazy_built.0;
        self.lazy_built.1 += other.lazy_built.1;
    }

    /// Table III row, normalized per thousand vertices.
    pub fn retention_per_mille(&self) -> [f64; 4] {
        let n = self.n.max(1) as f64;
        [
            self.retained_coreness as f64 / n * 1000.0,
            self.retained_f1 as f64 / n * 1000.0,
            self.retained_f2 as f64 / n * 1000.0,
            self.retained_f3 as f64 / n * 1000.0,
        ]
    }
}

pub(crate) fn snapshot_counters(c: &Counters) -> MetricsSnapshot {
    MetricsSnapshot {
        retained_coreness: c.retained_coreness.load(Ordering::Relaxed),
        retained_f1: c.retained_f1.load(Ordering::Relaxed),
        retained_f2: c.retained_f2.load(Ordering::Relaxed),
        retained_f3: c.retained_f3.load(Ordering::Relaxed),
        searched_mc: c.searched_mc.load(Ordering::Relaxed),
        searched_kvc: c.searched_kvc.load(Ordering::Relaxed),
        filter_time: Duration::from_nanos(c.filter_ns.load(Ordering::Relaxed)),
        mc_time: Duration::from_nanos(c.mc_ns.load(Ordering::Relaxed)),
        kvc_time: Duration::from_nanos(c.kvc_ns.load(Ordering::Relaxed)),
        mc_nodes: c.mc_nodes.load(Ordering::Relaxed),
        vc_nodes: c.vc_nodes.load(Ordering::Relaxed),
        reduced_vertices: c.reduced_vertices.load(Ordering::Relaxed),
        vc_reductions: c.vc_reductions.load(Ordering::Relaxed),
        ..MetricsSnapshot::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_total_sums() {
        let p = PhaseTimes {
            degree_heuristic: Duration::from_millis(1),
            kcore: Duration::from_millis(2),
            reorder: Duration::from_millis(3),
            prepopulate: Duration::from_millis(4),
            coreness_heuristic: Duration::from_millis(5),
            systematic: Duration::from_millis(6),
        };
        assert_eq!(p.total(), Duration::from_millis(21));
    }

    #[test]
    fn retention_normalization() {
        let snap = MetricsSnapshot {
            n: 2000,
            retained_coreness: 100,
            retained_f1: 50,
            retained_f2: 10,
            retained_f3: 2,
            ..Default::default()
        };
        let r = snap.retention_per_mille();
        assert_eq!(r, [50.0, 25.0, 5.0, 1.0]);
    }

    #[test]
    fn accumulate_sums_everything() {
        let mut total = MetricsSnapshot::default();
        let one = MetricsSnapshot {
            n: 10,
            m: 20,
            retained_f1: 3,
            searched_mc: 2,
            mc_nodes: 100,
            filter_time: Duration::from_millis(4),
            phases: PhaseTimes {
                systematic: Duration::from_millis(6),
                ..PhaseTimes::default()
            },
            lazy_built: (5, 7),
            ..Default::default()
        };
        total.accumulate(&one);
        total.accumulate(&one);
        assert_eq!(total.n, 20);
        assert_eq!(total.retained_f1, 6);
        assert_eq!(total.searched_mc, 4);
        assert_eq!(total.mc_nodes, 200);
        assert_eq!(total.filter_time, Duration::from_millis(8));
        assert_eq!(total.phases.systematic, Duration::from_millis(12));
        assert_eq!(total.lazy_built, (10, 14));
    }

    #[test]
    fn counters_snapshot_roundtrip() {
        let c = Counters::default();
        c.add(&c.retained_f2, 7);
        c.add(&c.mc_ns, 1_000_000);
        let s = snapshot_counters(&c);
        assert_eq!(s.retained_f2, 7);
        assert_eq!(s.mc_time, Duration::from_millis(1));
    }
}
