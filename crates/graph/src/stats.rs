//! Cheap structural statistics used by the experiment harness
//! (Table I columns and the density-based algorithmic choice).

use crate::CsrGraph;

/// Summary statistics of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub n: usize,
    /// Number of undirected edges.
    pub m: usize,
    /// Maximum degree Δ.
    pub max_degree: usize,
    /// Average degree 2m/n.
    pub avg_degree: f64,
    /// Edge density 2m / (n(n-1)).
    pub density: f64,
    /// Number of isolated (degree-0) vertices.
    pub isolated: usize,
}

impl GraphStats {
    /// Computes statistics in a single pass.
    pub fn of(g: &CsrGraph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let mut max_degree = 0usize;
        let mut isolated = 0usize;
        for v in g.vertices() {
            let d = g.degree(v);
            max_degree = max_degree.max(d);
            if d == 0 {
                isolated += 1;
            }
        }
        GraphStats {
            n,
            m,
            max_degree,
            avg_degree: if n == 0 {
                0.0
            } else {
                2.0 * m as f64 / n as f64
            },
            density: g.density(),
            isolated,
        }
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn stats_of_star() {
        let g = gen::star(10);
        let s = GraphStats::of(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 9);
        assert_eq!(s.max_degree, 9);
        assert_eq!(s.isolated, 0);
        assert!((s.avg_degree - 1.8).abs() < 1e-12);
    }

    #[test]
    fn stats_of_empty() {
        let g = CsrGraph::empty(4);
        let s = GraphStats::of(&g);
        assert_eq!(s.isolated, 4);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.density, 0.0);
    }

    #[test]
    fn histogram_sums_to_n() {
        let g = gen::gnp(100, 0.1, 3);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 100);
    }

    #[test]
    fn histogram_of_complete_graph() {
        let g = gen::complete(5);
        let h = degree_histogram(&g);
        assert_eq!(h, vec![0, 0, 0, 0, 5]);
    }
}
