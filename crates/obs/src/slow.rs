//! The slow-query log: a bounded keep-the-worst record of completed
//! operations.
//!
//! Admission is two-staged: an operation must clear the configured
//! threshold, and once the log is full it must also beat the current
//! minimum. The lock is taken only for operations that already cleared
//! the threshold, so a fast-path solve (the overwhelming majority)
//! costs one branch.

use parking_lot::Mutex;

/// Bounded top-N-by-key log. Keys are microseconds in the daemon's use,
/// but any `u64` ordering works.
pub struct SlowLog<T> {
    /// Minimum key admitted; `record` is a no-op below it.
    threshold: u64,
    cap: usize,
    /// Sorted descending by key.
    entries: Mutex<Vec<(u64, T)>>,
}

impl<T: Clone> SlowLog<T> {
    /// A log keeping the `cap` largest entries at or above `threshold`.
    /// `cap == 0` disables the log entirely.
    pub fn new(threshold: u64, cap: usize) -> SlowLog<T> {
        SlowLog {
            threshold,
            cap,
            entries: Mutex::new(Vec::new()),
        }
    }

    /// The admission threshold.
    pub fn threshold(&self) -> u64 {
        self.threshold
    }

    /// Offers an entry; keeps it only if it is among the worst seen.
    pub fn record(&self, key: u64, item: T) {
        if self.cap == 0 || key < self.threshold {
            return;
        }
        let mut entries = self.entries.lock();
        if entries.len() == self.cap {
            // Full: must beat the mildest entry (the tail of the
            // descending sort) to displace it.
            if key <= entries.last().map_or(0, |(k, _)| *k) {
                return;
            }
            entries.pop();
        }
        let at = entries.partition_point(|(k, _)| *k >= key);
        entries.insert(at, (key, item));
    }

    /// Current entries, worst first.
    pub fn snapshot(&self) -> Vec<(u64, T)> {
        self.entries.lock().clone()
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// Whether nothing has been retained yet.
    pub fn is_empty(&self) -> bool {
        self.entries.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_gates_admission() {
        let log = SlowLog::new(100, 4);
        log.record(99, "fast");
        log.record(100, "at-threshold");
        log.record(500, "slow");
        let snap = log.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0], (500, "slow"));
        assert_eq!(snap[1], (100, "at-threshold"));
    }

    #[test]
    fn full_log_keeps_the_worst() {
        let log = SlowLog::new(0, 3);
        for (k, v) in [(10, "a"), (30, "b"), (20, "c")] {
            log.record(k, v);
        }
        // 5 loses to everything; 40 displaces the mildest (10).
        log.record(5, "loser");
        log.record(40, "winner");
        let keys: Vec<u64> = log.snapshot().iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![40, 30, 20]);
    }

    #[test]
    fn zero_capacity_disables() {
        let log = SlowLog::new(0, 0);
        log.record(1_000_000, "anything");
        assert!(log.is_empty());
        assert_eq!(log.len(), 0);
    }

    #[test]
    fn ties_do_not_displace() {
        let log = SlowLog::new(0, 2);
        log.record(10, "first");
        log.record(10, "second");
        log.record(10, "third"); // full, ties with the minimum: dropped
        assert_eq!(log.len(), 2);
        let snap = log.snapshot();
        assert_eq!(snap[0].1, "first");
        assert_eq!(snap[1].1, "second");
    }
}
