//! The scheduler-driver counterpart of `par_agreement.rs`: MC and k-VC
//! solves whose subtree tasks run on the machine-wide work-stealing pool
//! must agree with the sequential kernels on ω (and produce genuine
//! witnesses) under random steal interleavings — the pool's workers race
//! the calling thread for every arena slot, so each proptest case is a
//! fresh interleaving.
//!
//! Set `LAZYMC_TEST_THREADS=<n>` to pin the solve width (CI runs the
//! suite once with 4); unset, every test sweeps widths 2, 4 and 8. The
//! pool itself is one shared 4-worker instance for the whole binary —
//! exactly the deployment shape (many solves, one pool).

use lazymc_sched::{Pool, SchedHandle, TaskMeta};
use lazymc_solver::{
    max_clique_dense_sched, max_clique_dense_scratch, max_clique_exact,
    max_clique_via_vc_sched_live, max_clique_via_vc_scratch, min_vertex_cover, vc::is_vertex_cover,
    vertex_cover_decision_sched, Bitset, LiveNodes, McScratch, McStats, VcSolveScratch,
};
use proptest::prelude::*;
use std::sync::OnceLock;

mod common;
use common::pseudo_graph;

/// The binary-wide scheduler pool. Never shut down: it lives in a static,
/// and the workers park when idle.
fn sched() -> SchedHandle {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool::new(4)).handle()
}

/// Solve widths to exercise: the `LAZYMC_TEST_THREADS` override, or the
/// standard {2, 4, 8} sweep.
fn test_widths() -> Vec<usize> {
    match std::env::var("LAZYMC_TEST_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("LAZYMC_TEST_THREADS must be a positive integer")],
        Err(_) => vec![2, 4, 8],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sched_mc_agrees_with_sequential(
        n in 4usize..80,
        p in 0u64..1000,
        seed in 0u64..10_000,
    ) {
        let m = pseudo_graph(n, p, seed);
        let omega = max_clique_exact(&m).len();
        let handle = sched();
        for width in test_widths() {
            let mut out = Vec::new();
            let found = max_clique_dense_sched(
                &m, &Bitset::full(n), 0, &handle, TaskMeta::adhoc(), width, None, None, &mut out,
            );
            prop_assert!(found, "n={n} p={p} width={width}");
            prop_assert_eq!(out.len(), omega, "n={} p={} seed={}", n, p, seed);
            prop_assert!(m.is_clique(&out), "witness must be a clique");
            // The lower bound suppresses exactly at ω.
            prop_assert!(!max_clique_dense_sched(
                &m, &Bitset::full(n), omega, &handle, TaskMeta::adhoc(), width, None, None,
                &mut out,
            ));
            prop_assert!(out.is_empty());
        }
    }

    #[test]
    fn sched_clique_via_vc_agrees_with_sequential(
        n in 4usize..60,
        p in 400u64..1000,
        seed in 0u64..10_000,
    ) {
        let m = pseudo_graph(n, p, seed);
        let omega = max_clique_exact(&m).len();
        let handle = sched();
        for width in test_widths() {
            let mut scratch = VcSolveScratch::new();
            let mut out = Vec::new();
            prop_assert!(
                max_clique_via_vc_sched_live(
                    &m, 0, &handle, TaskMeta::adhoc(), width, None, None, &mut scratch,
                    &mut out, LiveNodes::NONE,
                ),
                "n={n} p={p} width={width}"
            );
            prop_assert_eq!(out.len(), omega, "n={} p={} seed={}", n, p, seed);
            prop_assert!(m.is_clique(&out));
            prop_assert!(!max_clique_via_vc_sched_live(
                &m, omega, &handle, TaskMeta::adhoc(), width, None, None, &mut scratch,
                &mut out, LiveNodes::NONE,
            ));
        }
    }

    #[test]
    fn sched_vc_decision_agrees_with_sequential(
        n in 4usize..60,
        p in 0u64..500,
        seed in 0u64..10_000,
    ) {
        let m = pseudo_graph(n, p, seed);
        let alive = Bitset::full(n);
        let mvc = min_vertex_cover(&m, None).len();
        let handle = sched();
        for width in test_widths() {
            let mut out = Vec::new();
            // At the optimum: success with a genuine cover.
            let d = vertex_cover_decision_sched(
                &m, &alive, mvc, &handle, TaskMeta::adhoc(), width, None, None, &mut out,
            );
            prop_assert!(d.found, "n={n} p={p} width={width} k={mvc}");
            prop_assert!(!d.stopped);
            prop_assert!(out.len() <= mvc);
            prop_assert!(is_vertex_cover(&m, &alive, &out));
            // One below: a unanimous, authoritative no.
            if mvc > 0 {
                let d = vertex_cover_decision_sched(
                    &m, &alive, mvc - 1, &handle, TaskMeta::adhoc(), width, None, None, &mut out,
                );
                prop_assert!(!d.found && !d.stopped);
                prop_assert!(out.is_empty());
            }
        }
    }
}

/// Width 1 must never touch the scheduler: the driver falls through to
/// the thread-local sequential kernel, bit-identical to a direct scratch
/// call — same node count, same witness, zero split tasks.
#[test]
fn width_one_is_bit_identical_to_the_sequential_kernel() {
    let m = pseudo_graph(90, 550, 13);
    let within = Bitset::full(m.len());
    let handle = sched();

    let mut seq_stats = McStats::default();
    let mut seq_out = Vec::new();
    let mut scratch = McScratch::new();
    assert!(max_clique_dense_scratch(
        &m,
        &within,
        0,
        Some(&mut seq_stats),
        &mut scratch,
        &mut seq_out
    ));

    let mut one_stats = McStats::default();
    let mut one_out = Vec::new();
    assert!(max_clique_dense_sched(
        &m,
        &within,
        0,
        &handle,
        TaskMeta::adhoc(),
        1,
        None,
        Some(&mut one_stats),
        &mut one_out,
    ));
    assert_eq!(one_out, seq_out, "width-1 witness must match exactly");
    assert_eq!(one_stats.nodes, seq_stats.nodes, "node-for-node identical");
    assert_eq!(one_stats.split_tasks, 0);
    assert_eq!(one_stats.steals, 0);

    // Same for the via-VC engine.
    let mut vc_scratch = VcSolveScratch::new();
    let mut vc_seq = Vec::new();
    assert!(max_clique_via_vc_scratch(
        &m,
        0,
        None,
        &mut vc_scratch,
        &mut vc_seq
    ));
    let mut vc_one = Vec::new();
    assert!(max_clique_via_vc_sched_live(
        &m,
        0,
        &handle,
        TaskMeta::adhoc(),
        1,
        None,
        None,
        &mut vc_scratch,
        &mut vc_one,
        LiveNodes::NONE,
    ));
    assert_eq!(vc_one.len(), vc_seq.len());
    assert!(m.is_clique(&vc_one));
}
