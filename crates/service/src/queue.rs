//! Bounded priority job queue feeding the machine-wide scheduler.
//!
//! * **Bounded** — `push` never blocks; a full queue is reported to the
//!   caller, which the HTTP layer turns into `429 Too Many Requests`
//!   (backpressure instead of unbounded memory growth).
//! * **Priority** — higher `priority` pops first; within a priority,
//!   deadline-earliest (a job with a deadline beats one without), and only
//!   then FIFO by admission sequence. The tie-break matters on a shared
//!   pool: two jobs of equal priority should drain in the order they must
//!   *finish*, not the order they happened to arrive.
//! * **Cancellation** — [`JobTicket::cancel`] (or [`JobQueue::cancel`] by
//!   id) marks a job; cancelled jobs still in the queue are discarded at
//!   pop time, and jobs already running can poll their ticket.
//! * Per-job time budgets are *not* this module's concern beyond ordering:
//!   the server creates a [`lazymc_core::Deadline`] at push time, carries
//!   it in the payload, and hands its expiry instant here so queue wait
//!   counts against the budget *and* steers the drain order.

use crate::plock;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::Instant;

/// Push rejected: the queue is at capacity.
#[derive(Debug, PartialEq, Eq)]
pub struct QueueFull {
    pub capacity: usize,
}

impl std::fmt::Display for QueueFull {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job queue full (capacity {})", self.capacity)
    }
}

impl std::error::Error for QueueFull {}

/// Handle to a submitted job.
#[derive(Debug, Clone)]
pub struct JobTicket {
    pub id: u64,
    cancelled: Arc<AtomicBool>,
}

impl JobTicket {
    /// Marks the job cancelled. Queued jobs are dropped before running;
    /// running jobs observe [`JobTicket::is_cancelled`] if they poll.
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Relaxed);
    }

    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Relaxed)
    }
}

struct Queued<T> {
    priority: u8,
    deadline: Option<Instant>,
    seq: u64,
    id: u64,
    cancelled: Arc<AtomicBool>,
    payload: T,
}

/// Max-heap urgency of a deadline slot: an earlier deadline outranks a
/// later one, and any deadline outranks "no deadline" — an unbudgeted job
/// can always wait a little longer.
fn deadline_urgency(a: Option<Instant>, b: Option<Instant>) -> std::cmp::Ordering {
    use std::cmp::Ordering::*;
    match (a, b) {
        (Some(x), Some(y)) => y.cmp(&x), // earlier instant = greater urgency
        (Some(_), None) => Greater,
        (None, Some(_)) => Less,
        (None, None) => Equal,
    }
}

impl<T> PartialEq for Queued<T> {
    fn eq(&self, other: &Self) -> bool {
        self.priority == other.priority && self.seq == other.seq
    }
}
impl<T> Eq for Queued<T> {}
impl<T> PartialOrd for Queued<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Queued<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Max-heap: higher priority first, then deadline-earliest, then
        // *lower* sequence (FIFO). The same urgency order the scheduler
        // uses for in-flight tasks — one definition of "more urgent" from
        // admission to subtree drain.
        self.priority
            .cmp(&other.priority)
            .then(deadline_urgency(self.deadline, other.deadline))
            .then(other.seq.cmp(&self.seq))
    }
}

/// A job handed out by [`JobQueue::try_pop`], with the ordering key it
/// held in the queue so the caller can reuse it as a scheduler task key.
pub struct Popped<T> {
    pub ticket: JobTicket,
    pub priority: u8,
    pub deadline: Option<Instant>,
    pub seq: u64,
    pub payload: T,
}

struct State<T> {
    heap: BinaryHeap<Queued<T>>,
    closed: bool,
}

/// The queue. `T` is the job payload.
pub struct JobQueue<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    capacity: usize,
    next_id: AtomicU64,
    next_seq: AtomicU64,
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub cancelled: AtomicU64,
}

impl<T> JobQueue<T> {
    /// A queue admitting at most `capacity` pending jobs (≥ 1).
    pub fn new(capacity: usize) -> JobQueue<T> {
        JobQueue {
            state: Mutex::new(State {
                heap: BinaryHeap::new(),
                closed: false,
            }),
            available: Condvar::new(),
            capacity: capacity.max(1),
            next_id: AtomicU64::new(1),
            next_seq: AtomicU64::new(0),
            submitted: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            cancelled: AtomicU64::new(0),
        }
    }

    /// Pre-reserves a ticket for a job that will be pushed with
    /// [`JobQueue::push_ticketed`]. Reserving first lets the caller
    /// register the job id elsewhere (e.g. the job store) *before* any
    /// worker can possibly pop the job — no completion/registration race.
    pub fn ticket(&self) -> JobTicket {
        JobTicket {
            id: self.next_id.fetch_add(1, Ordering::Relaxed),
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// A ticket with a caller-chosen id, for journal replay: a recovered
    /// job keeps the id it was admitted under, so clients polling
    /// `GET /jobs/<id>` across a crash still find it. Bumps the id
    /// allocator past `id` so fresh tickets never collide with replays.
    pub fn ticket_for(&self, id: u64) -> JobTicket {
        self.next_id.fetch_max(id + 1, Ordering::Relaxed);
        JobTicket {
            id,
            cancelled: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Admits a job with no deadline, or reports backpressure. Never
    /// blocks.
    pub fn push(&self, priority: u8, payload: T) -> Result<JobTicket, QueueFull> {
        let ticket = self.ticket();
        self.push_ticketed(priority, None, &ticket, payload)?;
        Ok(ticket)
    }

    /// Admits a job under a pre-reserved ticket. `deadline` is the
    /// wall-clock instant the job's budget expires (if any); equal
    /// priorities drain deadline-earliest. Never blocks.
    pub fn push_ticketed(
        &self,
        priority: u8,
        deadline: Option<Instant>,
        ticket: &JobTicket,
        payload: T,
    ) -> Result<(), QueueFull> {
        lazymc_chaos::point!("queue.push");
        let mut state = plock(&self.state);
        if state.heap.len() >= self.capacity {
            self.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(QueueFull {
                capacity: self.capacity,
            });
        }
        state.heap.push(Queued {
            priority,
            deadline,
            seq: self.next_seq.fetch_add(1, Ordering::Relaxed),
            id: ticket.id,
            cancelled: ticket.cancelled.clone(),
            payload,
        });
        self.submitted.fetch_add(1, Ordering::Relaxed);
        drop(state);
        self.available.notify_one();
        Ok(())
    }

    /// Blocks for the next runnable job; `None` once the queue is closed
    /// and drained. Cancelled jobs are discarded here, not returned.
    pub fn pop(&self) -> Option<(JobTicket, T)> {
        let mut state = plock(&self.state);
        loop {
            while let Some(job) = state.heap.pop() {
                if job.cancelled.load(Ordering::Relaxed) {
                    self.cancelled.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                return Some((
                    JobTicket {
                        id: job.id,
                        cancelled: job.cancelled,
                    },
                    job.payload,
                ));
            }
            if state.closed {
                return None;
            }
            state = self
                .available
                .wait(state)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// The ordering key `(priority, deadline, seq)` of the most urgent
    /// *uncancelled* pending job, without removing it. This is what a
    /// pull-based scheduler source reports as its head-of-queue urgency.
    pub fn peek_key(&self) -> Option<(u8, Option<Instant>, u64)> {
        let mut state = plock(&self.state);
        // Reap cancelled heads so the reported key is a job that would
        // actually run; anything deeper stays until it surfaces.
        while let Some(head) = state.heap.peek() {
            if head.cancelled.load(Ordering::Relaxed) {
                state.heap.pop();
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            return Some((head.priority, head.deadline, head.seq));
        }
        None
    }

    /// Non-blocking pop: the most urgent runnable job, or `None` if the
    /// queue is momentarily empty. Cancelled jobs are discarded here, not
    /// returned. Unlike [`JobQueue::pop`] this never waits — the
    /// scheduler's workers poll through their own doorbell, not a
    /// queue-side condvar.
    pub fn try_pop(&self) -> Option<Popped<T>> {
        lazymc_chaos::point!("queue.pop");
        let mut state = plock(&self.state);
        while let Some(job) = state.heap.pop() {
            if job.cancelled.load(Ordering::Relaxed) {
                self.cancelled.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            return Some(Popped {
                ticket: JobTicket {
                    id: job.id,
                    cancelled: job.cancelled,
                },
                priority: job.priority,
                deadline: job.deadline,
                seq: job.seq,
                payload: job.payload,
            });
        }
        None
    }

    /// Cancels a *pending* job by id. Returns whether a pending job was
    /// found (a job already handed to a worker reports `false`; such jobs
    /// are cancelled through their [`JobTicket`] instead).
    pub fn cancel(&self, id: u64) -> bool {
        let state = plock(&self.state);
        for job in state.heap.iter() {
            if job.id == id {
                job.cancelled.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Jobs currently pending (cancelled-but-unreaped jobs included).
    pub fn depth(&self) -> usize {
        plock(&self.state).heap.len()
    }

    /// Pending depth broken out by priority level, ascending by priority.
    /// Feeds the per-priority queue-depth gauge on `/metrics`.
    pub fn depth_by_priority(&self) -> Vec<(u8, usize)> {
        let state = plock(&self.state);
        let mut counts = std::collections::BTreeMap::new();
        for job in state.heap.iter() {
            if !job.cancelled.load(Ordering::Relaxed) {
                *counts.entry(job.priority).or_insert(0usize) += 1;
            }
        }
        counts.into_iter().collect()
    }

    /// Closes the queue: poppers drain what is left, then see `None`.
    pub fn close(&self) {
        plock(&self.state).closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn priority_then_fifo_order() {
        let q = JobQueue::new(10);
        q.push(1, "low-1").unwrap();
        q.push(5, "high-1").unwrap();
        q.push(1, "low-2").unwrap();
        q.push(5, "high-2").unwrap();
        let order: Vec<&str> = (0..4).map(|_| q.pop().unwrap().1).collect();
        assert_eq!(order, vec!["high-1", "high-2", "low-1", "low-2"]);
    }

    #[test]
    fn backpressure_when_full() {
        let q = JobQueue::new(2);
        q.push(0, 1).unwrap();
        q.push(0, 2).unwrap();
        let err = q.push(0, 3).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert_eq!(q.rejected.load(Ordering::Relaxed), 1);
        assert_eq!(q.depth(), 2);
        // Draining one readmits.
        q.pop().unwrap();
        assert!(q.push(0, 3).is_ok());
    }

    #[test]
    fn cancelled_jobs_are_skipped() {
        let q = JobQueue::new(10);
        let t1 = q.push(3, "a").unwrap();
        q.push(2, "b").unwrap();
        t1.cancel();
        assert!(t1.is_cancelled());
        let (_, payload) = q.pop().unwrap();
        assert_eq!(payload, "b", "cancelled job must not run");
        assert_eq!(q.cancelled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn cancel_by_id_only_hits_pending() {
        let q = JobQueue::new(10);
        let t = q.push(0, ()).unwrap();
        assert!(q.cancel(t.id));
        assert!(!q.cancel(9999));
        // The cancelled job is reaped rather than returned.
        q.close();
        assert!(q.pop().is_none());
        assert_eq!(q.cancelled.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn close_unblocks_waiting_workers() {
        let q = Arc::new(JobQueue::<u32>::new(4));
        let q2 = q.clone();
        let h = std::thread::spawn(move || q2.pop());
        std::thread::sleep(std::time::Duration::from_millis(50));
        q.close();
        assert!(h.join().unwrap().is_none());
    }

    #[test]
    fn equal_priority_drains_deadline_earliest() {
        use std::time::Duration;
        let q = JobQueue::new(10);
        let now = Instant::now();
        // Submitted first but with the *latest* deadline; a later arrival
        // with a tighter budget must overtake it. No deadline sorts last.
        let t_late = q.ticket();
        q.push_ticketed(3, Some(now + Duration::from_secs(60)), &t_late, "late")
            .unwrap();
        let t_none = q.ticket();
        q.push_ticketed(3, None, &t_none, "none").unwrap();
        let t_soon = q.ticket();
        q.push_ticketed(3, Some(now + Duration::from_secs(1)), &t_soon, "soon")
            .unwrap();
        // Higher priority still beats any deadline.
        let t_hi = q.ticket();
        q.push_ticketed(7, None, &t_hi, "hi").unwrap();
        let order: Vec<&str> = (0..4).map(|_| q.try_pop().unwrap().payload).collect();
        assert_eq!(order, vec!["hi", "soon", "late", "none"]);
    }

    #[test]
    fn peek_key_matches_next_pop_and_reaps_cancelled_heads() {
        use std::time::Duration;
        let q = JobQueue::new(10);
        assert!(q.peek_key().is_none());
        let soon = Instant::now() + Duration::from_millis(5);
        let t_head = q.ticket();
        q.push_ticketed(5, Some(soon), &t_head, "head").unwrap();
        let t_tail = q.ticket();
        q.push_ticketed(5, None, &t_tail, "tail").unwrap();
        let (p, d, _) = q.peek_key().unwrap();
        assert_eq!((p, d), (5, Some(soon)));
        // Cancelling the head makes peek fall through to the next job —
        // and reap the cancelled one so depth reflects runnable work.
        t_head.cancel();
        let (p, d, _) = q.peek_key().unwrap();
        assert_eq!((p, d), (5, None));
        assert_eq!(q.depth(), 1);
        let got = q.try_pop().unwrap();
        assert_eq!(got.payload, "tail");
        assert_eq!(got.ticket.id, t_tail.id);
        assert!(q.try_pop().is_none());
    }

    #[test]
    fn depth_by_priority_counts_runnable_jobs() {
        let q = JobQueue::new(10);
        q.push(1, "a").unwrap();
        q.push(1, "b").unwrap();
        let t = q.push(4, "c").unwrap();
        q.push(9, "d").unwrap();
        assert_eq!(q.depth_by_priority(), vec![(1, 2), (4, 1), (9, 1)]);
        t.cancel();
        assert_eq!(q.depth_by_priority(), vec![(1, 2), (9, 1)]);
    }

    #[test]
    fn concurrent_producers_and_consumers_conserve_jobs() {
        let q = Arc::new(JobQueue::<u64>::new(1_000));
        let consumed = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for p in 0..4u64 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    while q.push((p % 3) as u8, p * 1000 + i).is_err() {
                        std::thread::yield_now();
                    }
                }
            }));
        }
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let q = q.clone();
            let consumed = consumed.clone();
            consumers.push(std::thread::spawn(move || {
                while q.pop().is_some() {
                    consumed.fetch_add(1, Ordering::Relaxed);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        q.close();
        for h in consumers {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), 400);
    }
}
