//! The named benchmark suite.
//!
//! Each instance is a deterministic synthetic stand-in for one *class* of
//! the paper's 28 datasets (see DESIGN.md §4 for the mapping). Two scales
//! are provided: [`Scale::Test`] keeps every instance solvable in
//! milliseconds for integration tests; [`Scale::Standard`] is the size used
//! by the experiment binaries regenerating the paper's tables and figures.

use crate::{gen, CsrGraph};

/// Suite sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny instances for tests (each solves in well under a second).
    Test,
    /// The sizes used by the experiment harness.
    Standard,
}

/// A named suite instance.
pub struct SuiteInstance {
    /// Short name used in experiment tables.
    pub name: &'static str,
    /// Which dataset class of the paper's Table I this instance mirrors.
    pub mirrors: &'static str,
    /// Known maximum clique size, when the construction pins it.
    pub expected_omega: Option<usize>,
    /// Whether the instance is engineered to have clique-core gap zero.
    pub gap_zero: bool,
    builder: fn(Scale) -> CsrGraph,
}

impl SuiteInstance {
    /// Materializes the graph at the requested scale.
    pub fn build(&self, scale: Scale) -> CsrGraph {
        (self.builder)(scale)
    }
}

fn road(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::triangulated_grid(20, 15),
        Scale::Standard => gen::triangulated_grid(500, 360),
    }
}

fn planar(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::apollonian(300, 19),
        Scale::Standard => gen::apollonian(250_000, 19),
    }
}

fn web(s: Scale) -> CsrGraph {
    // BA background (low degeneracy) + one planted clique that dominates the
    // degeneracy, so gap = 0 and the coreness heuristic finds ω.
    let (n, m_per, k, seed) = match s {
        Scale::Test => (600, 3, 12, 21),
        Scale::Standard => (150_000, 4, 33, 21),
    };
    let ba = gen::barabasi_albert(n, m_per, seed);
    let mut b = crate::GraphBuilder::with_capacity(n, ba.num_edges() + k * k);
    b.extend_edges(ba.edges());
    // plant on the last k ids (deterministic, disjoint from the dense BA core)
    let ids: Vec<u32> = ((n - k) as u32..n as u32).collect();
    for (i, &u) in ids.iter().enumerate() {
        for &v in &ids[i + 1..] {
            b.add_edge(u, v);
        }
    }
    b.build()
}

fn social(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::rmat(9, 10, 0.57, 0.19, 0.19, 42),
        Scale::Standard => gen::rmat(16, 16, 0.57, 0.19, 0.19, 42),
    }
}

fn collab(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::caveman(30, 8, 0.03, 7),
        Scale::Standard => gen::caveman(6_000, 14, 0.03, 7),
    }
}

fn wiki(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::rmat(9, 6, 0.50, 0.22, 0.18, 13),
        Scale::Standard => gen::rmat(15, 8, 0.50, 0.22, 0.18, 13),
    }
}

fn bio_dense(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::dense_overlap(220, 30, 8, 20, 0.06, 5),
        Scale::Standard => gen::dense_overlap(1_600, 140, 16, 48, 0.08, 5),
    }
}

fn gnp_easy(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::gnp(800, 0.005, 31),
        Scale::Standard => gen::gnp(250_000, 0.000_05, 31),
    }
}

fn planted_hard(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::planted_clique(700, 0.01, 10, 77),
        Scale::Standard => gen::planted_clique(24_000, 0.002, 26, 77),
    }
}

fn orkut_like(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::rmat(10, 14, 0.57, 0.19, 0.19, 23),
        Scale::Standard => gen::rmat(17, 20, 0.57, 0.19, 0.19, 23),
    }
}

fn gene_hard(s: Scale) -> CsrGraph {
    match s {
        Scale::Test => gen::dense_overlap(260, 40, 10, 22, 0.08, 15),
        Scale::Standard => gen::dense_overlap(2_400, 220, 18, 56, 0.10, 15),
    }
}

/// All suite instances, in the order the experiment tables print them.
pub fn all() -> Vec<SuiteInstance> {
    vec![
        SuiteInstance {
            name: "road",
            mirrors: "USAroad / CAroad",
            expected_omega: Some(4),
            gap_zero: false, // triangulated grid: d = 4, ω = 4 → gap 1
            builder: road,
        },
        SuiteInstance {
            name: "planar",
            mirrors: "USAroad (d=3, gap 0)",
            expected_omega: Some(4),
            gap_zero: true,
            builder: planar,
        },
        SuiteInstance {
            name: "web",
            mirrors: "uk-union / it / hollywood",
            expected_omega: None, // = planted size; asserted in tests at Test scale
            gap_zero: true,
            builder: web,
        },
        SuiteInstance {
            name: "social",
            mirrors: "sinaweibo / soflow / orkut",
            expected_omega: None,
            gap_zero: false,
            builder: social,
        },
        SuiteInstance {
            name: "collab",
            mirrors: "dblp / hudong",
            expected_omega: None,
            gap_zero: true,
            builder: collab,
        },
        SuiteInstance {
            name: "wiki",
            mirrors: "wiki-talk / topcats",
            expected_omega: None,
            gap_zero: false,
            builder: wiki,
        },
        SuiteInstance {
            name: "bio-dense",
            mirrors: "bio-mouse-gene / bio-human-gene",
            expected_omega: None,
            gap_zero: false,
            builder: bio_dense,
        },
        SuiteInstance {
            name: "gnp-easy",
            mirrors: "yahoo-member",
            expected_omega: None,
            gap_zero: false,
            builder: gnp_easy,
        },
        SuiteInstance {
            name: "planted-hard",
            mirrors: "flickr (stress)",
            expected_omega: None,
            gap_zero: false,
            builder: planted_hard,
        },
        SuiteInstance {
            name: "orkut-like",
            mirrors: "orkut / LiveJournal",
            expected_omega: None,
            gap_zero: false,
            builder: orkut_like,
        },
        SuiteInstance {
            name: "gene-hard",
            mirrors: "bio-human-gene-1/2",
            expected_omega: None,
            gap_zero: false,
            builder: gene_hard,
        },
    ]
}

/// Looks an instance up by name.
pub fn by_name(name: &str) -> Option<SuiteInstance> {
    all().into_iter().find(|i| i.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_instances_build_and_validate_at_test_scale() {
        for inst in all() {
            let g = inst.build(Scale::Test);
            assert!(
                g.validate().is_ok(),
                "instance {} failed validation",
                inst.name
            );
            assert!(g.num_vertices() > 0);
            assert!(g.num_edges() > 0, "instance {} has no edges", inst.name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        for inst in all() {
            assert_eq!(
                inst.build(Scale::Test),
                inst.build(Scale::Test),
                "instance {} not deterministic",
                inst.name
            );
        }
    }

    #[test]
    fn by_name_finds_all() {
        for inst in all() {
            assert!(by_name(inst.name).is_some());
        }
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn road_contains_k4() {
        let g = by_name("road").unwrap().build(Scale::Test);
        assert!(g.is_clique(&[0, 1, 20, 21]));
    }

    #[test]
    fn web_contains_planted_clique() {
        let g = by_name("web").unwrap().build(Scale::Test);
        let ids: Vec<u32> = (588..600).collect();
        assert!(g.is_clique(&ids));
    }
}
