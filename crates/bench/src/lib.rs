//! Experiment harness for the LazyMC reproduction.
//!
//! One binary per table/figure of the paper (see DESIGN.md §5) plus shared
//! plumbing: suite loading, timing, and text-table rendering.

pub mod alloc;
pub mod harness;
pub mod perf;

pub use harness::{median, time_once, time_stats, Table};

pub mod cli;
