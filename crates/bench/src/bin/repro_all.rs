//! Runs every experiment binary in sequence and tees the output into
//! `EXPERIMENTS-results/` — the one-command reproduction entry point.
//!
//! Run: `cargo run -p lazymc-bench --release --bin repro_all [--test]`

use std::fs;
use std::process::Command;

const BINARIES: [&str; 11] = [
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "ablation_design",
];

fn main() {
    let pass_through: Vec<String> = std::env::args().skip(1).collect();
    let out_dir = std::path::Path::new("EXPERIMENTS-results");
    fs::create_dir_all(out_dir).expect("create results dir");

    // The experiment binaries live next to this one.
    let mut exe_dir = std::env::current_exe().expect("own path");
    exe_dir.pop();

    for bin in BINARIES {
        println!("=== {bin} ===");
        let output = Command::new(exe_dir.join(bin))
            .args(&pass_through)
            .output()
            .unwrap_or_else(|e| panic!("failed to launch {bin}: {e}"));
        let text = String::from_utf8_lossy(&output.stdout);
        print!("{text}");
        if !output.status.success() {
            eprintln!("{bin} FAILED: {}", String::from_utf8_lossy(&output.stderr));
            std::process::exit(1);
        }
        fs::write(out_dir.join(format!("{bin}.txt")), text.as_bytes()).expect("write result file");
    }
    println!("All experiment outputs written to {}", out_dir.display());
}
