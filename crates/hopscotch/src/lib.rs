//! Hopscotch hash set for `u32` vertex identifiers.
//!
//! The paper (§V) implements neighbourhood sets with hopscotch hashing
//! [Herlihy, Shavit, Tzafrir, DISC'08] where the maximum distance between a
//! key's slot and its home bucket equals one cache line: 64 bytes = 16
//! four-byte vertex ids. Membership metadata is kept as a *bitmask* per home
//! bucket (the paper found bitmasks faster than the original delta encoding).
//!
//! This crate reimplements exactly that variant:
//!
//! * neighbourhood size `H = 16`, hop-information is a `u16` bitmask;
//! * open addressing over a power-of-two table with multiplicative
//!   (Fibonacci) hashing;
//! * `contains` probes only the (at most 16) slots whose bit is set — the
//!   operation the early-exit intersection kernels hammer;
//! * insertion displaces ("hops") the nearest free slot towards the home
//!   bucket; if no displacement chain exists the table grows.
//!
//! The set is optimized for the build-once, probe-many pattern of
//! neighbourhood sets; removal is supported for general use.
//!
//! ```
//! use lazymc_hopscotch::HopscotchSet;
//!
//! let mut set = HopscotchSet::with_capacity(4);
//! set.insert(7);
//! set.insert(42);
//! assert!(set.contains(7) && !set.contains(8));
//! assert_eq!(set.len(), 2);
//! set.remove(7);
//! assert!(!set.contains(7));
//! ```

/// Hop range: one 64-byte cache line of 4-byte ids.
pub const H: usize = 16;

/// Sentinel marking an empty slot. `u32::MAX` can therefore not be stored;
/// vertex ids are always `< |V| <= u32::MAX`.
const EMPTY: u32 = u32::MAX;

/// Smallest table we ever allocate. Must exceed `H` so displacement windows
/// cannot wrap onto themselves.
const MIN_CAPACITY: usize = 32;

/// Load factor numerator/denominator: grow beyond 7/8 full.
const LOAD_NUM: usize = 7;
const LOAD_DEN: usize = 8;

/// An insert-only hopscotch hash set of `u32` keys.
#[derive(Clone)]
pub struct HopscotchSet {
    slots: Vec<u32>,
    hop: Vec<u16>,
    mask: usize,
    len: usize,
    shift: u32,
}

impl HopscotchSet {
    /// Creates an empty set sized for `expected` insertions without growth.
    pub fn with_capacity(expected: usize) -> Self {
        // Size so that `expected` keys stay under the load limit.
        let wanted = expected
            .saturating_mul(LOAD_DEN)
            .div_ceil(LOAD_NUM)
            .max(MIN_CAPACITY);
        let cap = wanted.next_power_of_two();
        Self::with_pow2_capacity(cap)
    }

    /// Creates an empty set with the default minimum capacity.
    pub fn new() -> Self {
        Self::with_pow2_capacity(MIN_CAPACITY)
    }

    fn with_pow2_capacity(cap: usize) -> Self {
        debug_assert!(cap.is_power_of_two() && cap >= MIN_CAPACITY);
        HopscotchSet {
            slots: vec![EMPTY; cap],
            hop: vec![0u16; cap],
            mask: cap - 1,
            len: 0,
            shift: 64 - cap.trailing_zeros(),
        }
    }

    /// Number of keys stored.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Current table capacity (diagnostics / tests).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Fibonacci multiplicative hash onto the table.
    #[inline(always)]
    fn home(&self, key: u32) -> usize {
        (((key as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> self.shift) as usize) & self.mask
    }

    /// Membership test: probes only slots flagged in the home bitmask.
    /// This is the hot operation of every intersection kernel.
    #[inline]
    pub fn contains(&self, key: u32) -> bool {
        let home = self.home(key);
        let mut bits = self.hop[home];
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            if self.slots[(home + i) & self.mask] == key {
                return true;
            }
            bits &= bits - 1;
        }
        false
    }

    /// Inserts `key`; returns `true` if it was not present before.
    ///
    /// # Panics
    /// Panics on `key == u32::MAX` (reserved sentinel).
    pub fn insert(&mut self, key: u32) -> bool {
        assert_ne!(key, EMPTY, "u32::MAX is reserved");
        if self.contains(key) {
            return false;
        }
        if (self.len + 1) * LOAD_DEN > self.slots.len() * LOAD_NUM {
            self.grow();
        }
        while !self.try_insert(key) {
            self.grow();
        }
        self.len += 1;
        true
    }

    /// One insertion attempt at the current capacity; `false` means the
    /// displacement chain failed and the table must grow.
    fn try_insert(&mut self, key: u32) -> bool {
        let home = self.home(key);
        // Find the nearest free slot (linear probe; bounded by table size).
        let cap = self.slots.len();
        let mut free_dist = usize::MAX;
        for d in 0..cap {
            if self.slots[(home + d) & self.mask] == EMPTY {
                free_dist = d;
                break;
            }
        }
        if free_dist == usize::MAX {
            return false; // table completely full (cannot happen below load limit)
        }
        // Hop the free slot towards home until it lies within H.
        while free_dist >= H {
            let free_slot = (home + free_dist) & self.mask;
            let mut hopped = false;
            // Consider buckets that could relocate one of their keys into
            // the free slot: bucket `free_slot - off` can, if it owns a key
            // at distance j < off (the key then moves to distance off < H).
            for off in (1..H).rev() {
                let b = free_slot.wrapping_sub(off) & self.mask;
                let candidates = self.hop[b] & ((1u16 << off) - 1);
                if candidates != 0 {
                    let j = candidates.trailing_zeros() as usize;
                    let s = (b + j) & self.mask;
                    self.slots[free_slot] = self.slots[s];
                    self.slots[s] = EMPTY;
                    self.hop[b] = (self.hop[b] & !(1u16 << j)) | (1u16 << off);
                    free_dist -= off - j;
                    hopped = true;
                    break;
                }
            }
            if !hopped {
                return false;
            }
        }
        let slot = (home + free_dist) & self.mask;
        debug_assert_eq!(self.slots[slot], EMPTY);
        self.slots[slot] = key;
        self.hop[home] |= 1u16 << free_dist;
        true
    }

    /// Doubles capacity and rehashes.
    fn grow(&mut self) {
        let mut cap = self.slots.len() * 2;
        'retry: loop {
            let mut bigger = Self::with_pow2_capacity(cap);
            for &k in &self.slots {
                if k != EMPTY && !bigger.try_insert(k) {
                    // Chain failure right after doubling is extremely rare;
                    // keep doubling until everything fits.
                    cap *= 2;
                    continue 'retry;
                }
            }
            bigger.len = self.len;
            *self = bigger;
            return;
        }
    }

    /// Removes `key`; returns `true` if it was present. Lookups only ever
    /// walk home-bucket bitmasks, so clearing the slot and its hop bit is
    /// all hopscotch deletion requires (no tombstones, no compaction).
    pub fn remove(&mut self, key: u32) -> bool {
        if key == EMPTY {
            return false;
        }
        let home = self.home(key);
        let mut bits = self.hop[home];
        while bits != 0 {
            let i = bits.trailing_zeros() as usize;
            let slot = (home + i) & self.mask;
            if self.slots[slot] == key {
                self.slots[slot] = EMPTY;
                self.hop[home] &= !(1u16 << i);
                self.len -= 1;
                return true;
            }
            bits &= bits - 1;
        }
        false
    }

    /// Iterates over the stored keys in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.slots.iter().copied().filter(|&k| k != EMPTY)
    }

    /// Collects the keys into a sorted vector (tests / conversions).
    pub fn to_sorted_vec(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.iter().collect();
        v.sort_unstable();
        v
    }

    /// Internal consistency check used by the property tests: every key's
    /// slot must lie within `H` of its home, and every hop bit must point at
    /// a key hashing to that bucket.
    pub fn check_invariants(&self) -> Result<(), String> {
        let cap = self.slots.len();
        let mut counted = 0usize;
        for b in 0..cap {
            let mut bits = self.hop[b];
            while bits != 0 {
                let i = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let s = (b + i) & self.mask;
                let k = self.slots[s];
                if k == EMPTY {
                    return Err(format!("hop bit {i} of bucket {b} points at empty slot"));
                }
                if self.home(k) != b {
                    return Err(format!("key {k} in bucket {b} hashes elsewhere"));
                }
                counted += 1;
            }
        }
        if counted != self.len {
            return Err(format!("hop bits count {counted} != len {}", self.len));
        }
        for (s, &k) in self.slots.iter().enumerate() {
            if k != EMPTY {
                let b = self.home(k);
                let dist = s.wrapping_sub(b) & self.mask;
                if dist >= H {
                    return Err(format!("key {k} at distance {dist} >= H from home"));
                }
                if self.hop[b] & (1u16 << dist) == 0 {
                    return Err(format!("key {k} not flagged in home bitmask"));
                }
            }
        }
        Ok(())
    }
}

impl Default for HopscotchSet {
    fn default() -> Self {
        Self::new()
    }
}

impl FromIterator<u32> for HopscotchSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let it = iter.into_iter();
        let mut s = HopscotchSet::with_capacity(it.size_hint().0);
        for k in it {
            s.insert(k);
        }
        s
    }
}

impl<'a> FromIterator<&'a u32> for HopscotchSet {
    fn from_iter<T: IntoIterator<Item = &'a u32>>(iter: T) -> Self {
        iter.into_iter().copied().collect()
    }
}

impl std::fmt::Debug for HopscotchSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "HopscotchSet {{ len: {}, capacity: {} }}",
            self.len,
            self.capacity()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_and_contains() {
        let mut s = HopscotchSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(0));
        assert!(s.contains(5));
        assert!(s.contains(0));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 2);
        s.check_invariants().unwrap();
    }

    #[test]
    fn empty_set() {
        let s = HopscotchSet::new();
        assert!(s.is_empty());
        assert!(!s.contains(0));
        assert_eq!(s.iter().count(), 0);
        s.check_invariants().unwrap();
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn rejects_sentinel() {
        let mut s = HopscotchSet::new();
        s.insert(u32::MAX);
    }

    #[test]
    fn sequential_dense_keys() {
        let mut s = HopscotchSet::with_capacity(1000);
        for k in 0..1000u32 {
            assert!(s.insert(k));
        }
        assert_eq!(s.len(), 1000);
        for k in 0..1000u32 {
            assert!(s.contains(k), "missing {k}");
        }
        for k in 1000..2000u32 {
            assert!(!s.contains(k));
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn growth_from_minimum() {
        let mut s = HopscotchSet::new();
        let start_cap = s.capacity();
        for k in 0..10_000u32 {
            s.insert(k * 7 + 1);
        }
        assert!(s.capacity() > start_cap);
        assert_eq!(s.len(), 10_000);
        for k in 0..10_000u32 {
            assert!(s.contains(k * 7 + 1));
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn collision_heavy_same_bucket() {
        // Keys spaced exactly `capacity` apart share a home bucket under the
        // masked multiplicative hash often enough to exercise displacement.
        let mut s = HopscotchSet::with_capacity(64);
        let cap = s.capacity() as u32;
        for i in 0..40u32 {
            s.insert(i * cap);
        }
        for i in 0..40u32 {
            assert!(s.contains(i * cap));
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn with_capacity_avoids_growth() {
        let mut s = HopscotchSet::with_capacity(500);
        let cap = s.capacity();
        for k in 0..500u32 {
            s.insert(k.wrapping_mul(2_654_435_761));
        }
        assert_eq!(s.capacity(), cap, "pre-sized table should not grow");
    }

    #[test]
    fn iter_yields_exactly_inserted_keys() {
        let keys = [3u32, 99, 12, 7, 1_000_000, 42];
        let s: HopscotchSet = keys.iter().collect();
        let mut got = s.to_sorted_vec();
        got.dedup();
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn remove_basics() {
        let mut s = HopscotchSet::new();
        s.insert(10);
        s.insert(20);
        assert!(s.remove(10));
        assert!(!s.remove(10));
        assert!(!s.contains(10));
        assert!(s.contains(20));
        assert_eq!(s.len(), 1);
        s.check_invariants().unwrap();
        // re-insertion after removal works
        assert!(s.insert(10));
        assert!(s.contains(10));
        s.check_invariants().unwrap();
    }

    #[test]
    fn remove_under_collisions() {
        let mut s = HopscotchSet::with_capacity(64);
        let cap = s.capacity() as u32;
        for i in 0..30u32 {
            s.insert(i * cap);
        }
        for i in (0..30u32).step_by(2) {
            assert!(s.remove(i * cap), "remove {i}");
        }
        for i in 0..30u32 {
            assert_eq!(s.contains(i * cap), i % 2 == 1, "key {i}");
        }
        s.check_invariants().unwrap();
    }

    #[test]
    fn remove_of_sentinel_is_noop() {
        let mut s = HopscotchSet::new();
        assert!(!s.remove(u32::MAX));
    }

    #[test]
    fn large_random_workload_matches_std() {
        use std::collections::HashSet;
        let mut model = HashSet::new();
        let mut s = HopscotchSet::new();
        let mut x = 0x2545_F491_4F6C_DD1Du64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = (x as u32) & 0xFFFF; // force collisions
            assert_eq!(s.insert(k), model.insert(k));
        }
        assert_eq!(s.len(), model.len());
        for k in 0..=0xFFFFu32 {
            assert_eq!(s.contains(k), model.contains(&k));
        }
        s.check_invariants().unwrap();
    }
}
