//! Fig. 5 — early-exit intersection ablation.
//!
//! Slowdown (×) of (a) disabling all early-exit intersections, and
//! (b) disabling only the second exit of `intersect-size-gt-bool`,
//! relative to the full configuration.
//!
//! Run: `cargo run -p lazymc-bench --release --bin fig5 [--test]`

use lazymc_bench::cli::{ratio, CommonArgs};
use lazymc_bench::{time_stats, Table};
use lazymc_core::{Config, LazyMc};

fn main() {
    let args = CommonArgs::parse();
    let mut table = Table::new(&["graph", "no early exits", "no second exit", "baseline[s]"]);
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let run = |cfg: Config| {
            let (r, mean, _) = time_stats(args.reps, || LazyMc::new(cfg.clone()).solve(&g));
            (r.size(), mean.as_secs_f64())
        };
        let (omega, base) = run(Config::default());
        let (o1, t_noee) = run(Config {
            early_exit: false,
            second_exit: false,
            ..Config::default()
        });
        let (o2, t_nose) = run(Config {
            second_exit: false,
            ..Config::default()
        });
        assert_eq!(omega, o1, "{}: ablation changed omega", inst.name);
        assert_eq!(omega, o2, "{}: ablation changed omega", inst.name);
        table.row(vec![
            inst.name.to_string(),
            ratio(t_noee / base.max(1e-9)),
            ratio(t_nose / base.max(1e-9)),
            format!("{base:.3}"),
        ]);
    }
    println!(
        "Fig. 5: slowdown without early-exit intersections / without the\n\
         second exit of intersect-size-gt-bool, {:?} scale",
        args.scale
    );
    println!("{}", table.render());
}
