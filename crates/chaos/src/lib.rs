//! lazymc-chaos — dependency-free fault injection for the lazymc daemon.
//!
//! A *fault point* is a named call site (`lazymc_chaos::point!("sched.unit")`
//! or `lazymc_chaos::raise_io("persist.write")?`) compiled into debug builds
//! and compiled out of release builds (unless the `armed` feature is on —
//! the calls below constant-fold to nothing when [`compiled_in`] is false).
//! Points do nothing until a *spec* arms them at runtime, either via the
//! `LAZYMC_CHAOS` environment variable at boot or `POST /debug/chaos` live.
//!
//! # Spec grammar
//!
//! ```text
//! spec    := clause [ ',' clause ]*
//! clause  := point '=' fault [ '@' trigger ]
//! fault   := 'eio' | 'enospc' | 'panic' | 'delay:' MILLIS
//! trigger := 'always' | 'once' | 'every:' N | 'prob:' P [ ':' SEED ]
//! ```
//!
//! Examples:
//!
//! ```text
//! LAZYMC_CHAOS='persist.write=eio@once'
//! LAZYMC_CHAOS='sched.unit=panic@every:50,journal.append=enospc'
//! LAZYMC_CHAOS='netio.wait=delay:5@prob:0.1:42'
//! ```
//!
//! Triggers are deterministic: `every:N` fires on the Nth, 2Nth, … hit of
//! that point; `prob:P:SEED` drives a per-point xorshift64 stream from SEED
//! (default seed 0x1azy… well, `0x6c617a79`), so a single-threaded run
//! replays identically. `once` fires on the first hit only.
//!
//! Io-style faults (`eio`, `enospc`) only apply at io points
//! ([`raise_io`]); at unit points ([`raise`]) they are ignored without
//! counting as an injection. `panic` and `delay` apply at both.

use std::collections::BTreeMap;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock, PoisonError};
use std::time::Duration;

/// Environment variable consulted by [`arm_from_env`].
pub const ENV_VAR: &str = "LAZYMC_CHAOS";

/// Whether fault points exist in this build. Debug builds always compile
/// them in; release builds only with the `armed` cargo feature.
pub const COMPILED_IN: bool = cfg!(any(debug_assertions, feature = "armed"));

/// The fault a point injects when its trigger fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// `io::Error` EIO ("chaos: injected I/O error").
    Eio,
    /// `io::Error` ENOSPC ("chaos: injected disk-full error").
    Enospc,
    /// Panic with a message naming the point.
    Panic,
    /// Sleep for this many milliseconds, then continue normally.
    DelayMs(u64),
}

impl Fault {
    fn label(&self) -> String {
        match self {
            Fault::Eio => "eio".into(),
            Fault::Enospc => "enospc".into(),
            Fault::Panic => "panic".into(),
            Fault::DelayMs(ms) => format!("delay:{ms}"),
        }
    }
}

const DEFAULT_SEED: u64 = 0x6c61_7a79; // "lazy"

enum Trigger {
    Always,
    Once(AtomicBool),
    /// Fires on every Nth hit (hits N, 2N, …).
    Every(u64, AtomicU64),
    /// Threshold out of 2^32 against the high bits of a xorshift64 stream.
    Prob(u32, AtomicU64),
}

impl Trigger {
    fn label(&self) -> String {
        match self {
            Trigger::Always => "always".into(),
            Trigger::Once(_) => "once".into(),
            Trigger::Every(n, _) => format!("every:{n}"),
            Trigger::Prob(thr, _) => {
                format!("prob:{:.4}", *thr as f64 / 4294967296.0)
            }
        }
    }

    fn fires(&self) -> bool {
        match self {
            Trigger::Always => true,
            Trigger::Once(done) => !done.swap(true, Ordering::Relaxed),
            Trigger::Every(n, count) => {
                let hit = count.fetch_add(1, Ordering::Relaxed) + 1;
                *n > 0 && hit % *n == 0
            }
            Trigger::Prob(threshold, state) => {
                // Racy read-modify-write is acceptable: concurrent hits may
                // share a draw, but a single-threaded run is deterministic.
                let mut x = state.load(Ordering::Relaxed);
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                state.store(x, Ordering::Relaxed);
                ((x >> 32) as u32) < *threshold
            }
        }
    }
}

struct PointState {
    fault: Fault,
    trigger: Trigger,
    hits: AtomicU64,
    injected: AtomicU64,
}

struct Registry {
    spec: String,
    points: BTreeMap<String, PointState>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static INJECTIONS: AtomicU64 = AtomicU64::new(0);

fn registry() -> &'static Mutex<Option<Registry>> {
    static REG: OnceLock<Mutex<Option<Registry>>> = OnceLock::new();
    REG.get_or_init(|| Mutex::new(None))
}

fn parse_fault(s: &str) -> Result<Fault, String> {
    match s {
        "eio" => Ok(Fault::Eio),
        "enospc" => Ok(Fault::Enospc),
        "panic" => Ok(Fault::Panic),
        _ => {
            if let Some(ms) = s.strip_prefix("delay:") {
                let ms: u64 = ms
                    .parse()
                    .map_err(|_| format!("bad delay millis in fault `{s}`"))?;
                Ok(Fault::DelayMs(ms))
            } else {
                Err(format!(
                    "unknown fault `{s}` (expected eio|enospc|panic|delay:<ms>)"
                ))
            }
        }
    }
}

fn parse_trigger(s: &str) -> Result<Trigger, String> {
    match s {
        "always" => Ok(Trigger::Always),
        "once" => Ok(Trigger::Once(AtomicBool::new(false))),
        _ => {
            if let Some(n) = s.strip_prefix("every:") {
                let n: u64 = n
                    .parse()
                    .map_err(|_| format!("bad count in trigger `{s}`"))?;
                if n == 0 {
                    return Err("every:0 never fires; use a positive count".into());
                }
                Ok(Trigger::Every(n, AtomicU64::new(0)))
            } else if let Some(rest) = s.strip_prefix("prob:") {
                let (p, seed) = match rest.split_once(':') {
                    Some((p, seed)) => {
                        let seed: u64 = seed
                            .parse()
                            .map_err(|_| format!("bad seed in trigger `{s}`"))?;
                        (p, seed)
                    }
                    None => (rest, DEFAULT_SEED),
                };
                let p: f64 = p
                    .parse()
                    .map_err(|_| format!("bad probability in trigger `{s}`"))?;
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("probability {p} outside [0,1]"));
                }
                let threshold = (p * 4294967296.0).min(u32::MAX as f64) as u32;
                Ok(Trigger::Prob(threshold, AtomicU64::new(seed.max(1))))
            } else {
                Err(format!(
                    "unknown trigger `{s}` (expected always|once|every:<n>|prob:<p>[:<seed>])"
                ))
            }
        }
    }
}

fn parse_spec(spec: &str) -> Result<BTreeMap<String, PointState>, String> {
    let mut points = BTreeMap::new();
    for clause in spec.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (name, rhs) = clause
            .split_once('=')
            .ok_or_else(|| format!("clause `{clause}` missing `=` (point=fault[@trigger])"))?;
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("clause `{clause}` has an empty point name"));
        }
        let (fault, trigger) = match rhs.split_once('@') {
            Some((f, t)) => (parse_fault(f.trim())?, parse_trigger(t.trim())?),
            None => (parse_fault(rhs.trim())?, Trigger::Always),
        };
        points.insert(
            name.to_string(),
            PointState {
                fault,
                trigger,
                hits: AtomicU64::new(0),
                injected: AtomicU64::new(0),
            },
        );
    }
    if points.is_empty() {
        return Err("empty chaos spec".into());
    }
    Ok(points)
}

/// Arm the registry with `spec`, replacing any previous configuration.
/// Returns the number of armed points. Errs on parse failure or when fault
/// points are compiled out of this build ([`COMPILED_IN`] is false).
pub fn arm(spec: &str) -> Result<usize, String> {
    if !COMPILED_IN {
        return Err("chaos fault points are compiled out of this build \
             (release without the lazymc-chaos `armed` feature)"
            .into());
    }
    let points = parse_spec(spec)?;
    let n = points.len();
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    *reg = Some(Registry {
        spec: spec.trim().to_string(),
        points,
    });
    drop(reg);
    ARMED.store(true, Ordering::Release);
    Ok(n)
}

/// Arm from the `LAZYMC_CHAOS` environment variable. Returns `None` when the
/// variable is unset or empty, otherwise the result of [`arm`].
pub fn arm_from_env() -> Option<Result<usize, String>> {
    match std::env::var(ENV_VAR) {
        Ok(spec) if !spec.trim().is_empty() => Some(arm(&spec)),
        _ => None,
    }
}

/// Disarm every point. Counters for the dropped configuration are lost;
/// the process-wide [`injections_total`] survives.
pub fn disarm() {
    ARMED.store(false, Ordering::Release);
    let mut reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    *reg = None;
}

/// The currently armed spec string, if any.
pub fn active_spec() -> Option<String> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    reg.as_ref().map(|r| r.spec.clone())
}

/// Process-wide count of injected faults (io errors, panics, delays) since
/// start. Survives re-arming and disarming.
pub fn injections_total() -> u64 {
    INJECTIONS.load(Ordering::Relaxed)
}

/// Per-point statistics for the currently armed configuration.
#[derive(Clone, Debug)]
pub struct PointStat {
    pub point: String,
    pub fault: String,
    pub trigger: String,
    pub hits: u64,
    pub injected: u64,
}

/// Snapshot of every armed point's counters (empty when disarmed).
pub fn point_stats() -> Vec<PointStat> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let Some(reg) = reg.as_ref() else {
        return Vec::new();
    };
    reg.points
        .iter()
        .map(|(name, p)| PointStat {
            point: name.clone(),
            fault: p.fault.label(),
            trigger: p.trigger.label(),
            hits: p.hits.load(Ordering::Relaxed),
            injected: p.injected.load(Ordering::Relaxed),
        })
        .collect()
}

/// Evaluate `point` and return the fault to apply now, if any. Counts the
/// hit and (when the trigger fires) the injection.
fn evaluate(point: &str, io_capable: bool) -> Option<Fault> {
    let reg = registry().lock().unwrap_or_else(PoisonError::into_inner);
    let state = reg.as_ref()?.points.get(point)?;
    state.hits.fetch_add(1, Ordering::Relaxed);
    if !io_capable && matches!(state.fault, Fault::Eio | Fault::Enospc) {
        // Io faults are meaningless at a unit point; don't burn the trigger.
        return None;
    }
    if !state.trigger.fires() {
        return None;
    }
    state.injected.fetch_add(1, Ordering::Relaxed);
    INJECTIONS.fetch_add(1, Ordering::Relaxed);
    Some(state.fault)
}

fn apply_panic_or_delay(point: &str, fault: Fault) {
    match fault {
        Fault::Panic => panic!("chaos: injected panic at point `{point}`"),
        Fault::DelayMs(ms) => std::thread::sleep(Duration::from_millis(ms)),
        Fault::Eio | Fault::Enospc => unreachable!("io fault at unit point"),
    }
}

/// Unit fault point: may panic or sleep; io faults armed on this point are
/// ignored. Compiles to nothing in release builds without `armed`.
#[inline(always)]
pub fn raise(point: &str) {
    if !COMPILED_IN || !ARMED.load(Ordering::Acquire) {
        return;
    }
    if let Some(fault) = evaluate(point, false) {
        apply_panic_or_delay(point, fault);
    }
}

/// Io fault point: returns the injected `io::Error` for `eio`/`enospc`,
/// panics for `panic`, sleeps for `delay`. Compiles to `Ok(())` in release
/// builds without `armed`.
#[inline(always)]
pub fn raise_io(point: &str) -> io::Result<()> {
    if !COMPILED_IN || !ARMED.load(Ordering::Acquire) {
        return Ok(());
    }
    match evaluate(point, true) {
        Some(Fault::Eio) => Err(io::Error::other(format!(
            "chaos: injected I/O error at point `{point}` (EIO)"
        ))),
        Some(Fault::Enospc) => Err(io::Error::new(
            io::ErrorKind::StorageFull,
            format!("chaos: injected disk-full error at point `{point}` (ENOSPC)"),
        )),
        Some(fault) => {
            apply_panic_or_delay(point, fault);
            Ok(())
        }
        None => Ok(()),
    }
}

/// Unit fault point. `lazymc_chaos::point!("sched.unit")` — may panic or
/// inject latency at the call site.
#[macro_export]
macro_rules! point {
    ($name:expr) => {
        $crate::raise($name)
    };
}

/// Io fault point for use inside functions returning `io::Result` (or any
/// `Result<_, E: From<io::Error>>`): `lazymc_chaos::io_point!("persist.write");`
/// propagates the injected error with `?`.
#[macro_export]
macro_rules! io_point {
    ($name:expr) => {
        $crate::raise_io($name)?
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// The registry is process-global; serialize tests that arm it.
    fn guard() -> MutexGuard<'static, ()> {
        static GATE: OnceLock<Mutex<()>> = OnceLock::new();
        GATE.get_or_init(|| Mutex::new(()))
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
    }

    #[test]
    fn disarmed_points_do_nothing() {
        let _g = guard();
        disarm();
        raise("anything");
        assert!(raise_io("anything").is_ok());
        assert!(active_spec().is_none());
        assert!(point_stats().is_empty());
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(arm("").is_err());
        assert!(arm("noequals").is_err());
        assert!(arm("p=weird").is_err());
        assert!(arm("p=eio@every:0").is_err());
        assert!(arm("p=eio@prob:1.5").is_err());
        assert!(arm("p=delay:abc").is_err());
        assert!(arm("=eio").is_err());
    }

    #[test]
    fn eio_and_enospc_inject_on_io_points_only() {
        let _g = guard();
        arm("io.p=eio,unit.p=enospc").unwrap();
        let err = raise_io("io.p").unwrap_err();
        assert!(err.to_string().contains("EIO"), "{err}");
        // Unit points ignore io faults without burning the trigger.
        raise("unit.p");
        let stats = point_stats();
        let unit = stats.iter().find(|s| s.point == "unit.p").unwrap();
        assert_eq!(unit.hits, 1);
        assert_eq!(unit.injected, 0);
        let err = raise_io("unit.p").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::StorageFull);
        disarm();
    }

    #[test]
    fn once_fires_exactly_once() {
        let _g = guard();
        arm("p=eio@once").unwrap();
        assert!(raise_io("p").is_err());
        assert!(raise_io("p").is_ok());
        assert!(raise_io("p").is_ok());
        let stats = point_stats();
        assert_eq!(stats[0].hits, 3);
        assert_eq!(stats[0].injected, 1);
        disarm();
    }

    #[test]
    fn every_nth_is_periodic() {
        let _g = guard();
        arm("p=eio@every:3").unwrap();
        let pattern: Vec<bool> = (0..9).map(|_| raise_io("p").is_err()).collect();
        assert_eq!(
            pattern,
            [false, false, true, false, false, true, false, false, true]
        );
        disarm();
    }

    #[test]
    fn prob_is_deterministic_for_a_seed() {
        let _g = guard();
        arm("p=eio@prob:0.5:12345").unwrap();
        let a: Vec<bool> = (0..64).map(|_| raise_io("p").is_err()).collect();
        arm("p=eio@prob:0.5:12345").unwrap();
        let b: Vec<bool> = (0..64).map(|_| raise_io("p").is_err()).collect();
        assert_eq!(a, b);
        let fired = a.iter().filter(|f| **f).count();
        assert!((8..=56).contains(&fired), "p=0.5 fired {fired}/64");
        disarm();
    }

    #[test]
    fn panic_fault_panics_with_point_name() {
        let _g = guard();
        arm("p=panic@once").unwrap();
        let caught = std::panic::catch_unwind(|| raise("p"));
        let msg = *caught.unwrap_err().downcast::<String>().unwrap();
        assert!(msg.contains("chaos: injected panic at point `p`"), "{msg}");
        raise("p"); // once: second hit is clean
        assert!(injections_total() >= 1);
        disarm();
    }

    #[test]
    fn delay_returns_ok_after_sleeping() {
        let _g = guard();
        arm("p=delay:1").unwrap();
        let start = std::time::Instant::now();
        assert!(raise_io("p").is_ok());
        assert!(start.elapsed() >= Duration::from_millis(1));
        disarm();
    }

    #[test]
    fn arm_replaces_previous_spec() {
        let _g = guard();
        arm("a=eio").unwrap();
        arm("b=panic@once").unwrap();
        assert!(raise_io("a").is_ok(), "old point must be gone");
        assert_eq!(active_spec().as_deref(), Some("b=panic@once"));
        disarm();
    }

    #[test]
    fn env_arming_round_trips() {
        let _g = guard();
        std::env::set_var(ENV_VAR, "p=eio@once");
        assert_eq!(arm_from_env(), Some(Ok(1)));
        std::env::remove_var(ENV_VAR);
        assert_eq!(arm_from_env(), None);
        disarm();
    }
}
