//! Fixed-width bitsets and bit-matrix adjacency for dense subgraphs.
//!
//! The filtered neighbourhoods LazyMC hands to the subgraph solvers are
//! small (bounded by coreness) and dense (paper §III-D: often > 90%), which
//! makes word-parallel adjacency the right representation: candidate-set
//! intersection becomes a few `AND`s per row (cf. the bit-parallel MC
//! literature the paper cites \[41\], \[42\]).

use lazymc_graph::CsrGraph;

/// A fixed-capacity bitset over `0..nbits`.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    nbits: usize,
}

impl Bitset {
    /// An empty set with capacity for `nbits` elements.
    pub fn new(nbits: usize) -> Self {
        Bitset {
            words: vec![0u64; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// The full set `{0, …, nbits-1}`.
    pub fn full(nbits: usize) -> Self {
        let mut s = Self::new(nbits);
        for i in 0..nbits / 64 {
            s.words[i] = !0u64;
        }
        if !nbits.is_multiple_of(64) {
            s.words[nbits / 64] = (1u64 << (nbits % 64)) - 1;
        }
        s
    }

    /// Capacity in bits.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.nbits
    }

    /// Inserts `i`.
    #[inline]
    pub fn insert(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Removes `i`.
    #[inline]
    pub fn remove(&mut self, i: usize) {
        debug_assert!(i < self.nbits);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.nbits);
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of elements (popcount).
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether no element is present.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Reshapes this set to an *empty* set of capacity `nbits`, reusing
    /// the existing allocation whenever it suffices. The workhorse of the
    /// scratch-arena search paths: after a warm-up solve at a given size,
    /// `reset` never touches the heap again.
    pub fn reset(&mut self, nbits: usize) {
        self.nbits = nbits;
        self.words.clear();
        self.words.resize(nbits.div_ceil(64), 0);
    }

    /// Reshapes this set to the *full* set `{0, …, nbits-1}`, reusing the
    /// allocation like [`Bitset::reset`].
    pub fn reset_full(&mut self, nbits: usize) {
        self.nbits = nbits;
        let nwords = nbits.div_ceil(64);
        self.words.clear();
        self.words.resize(nwords, !0u64);
        if !nbits.is_multiple_of(64) {
            self.words[nwords - 1] = (1u64 << (nbits % 64)) - 1;
        }
    }

    /// Reshapes to capacity `nbits` *without* clearing retained words —
    /// only for callers that immediately overwrite every word (e.g. as an
    /// [`Bitset::intersection_into`] destination). Skips the redundant
    /// zeroing pass `reset` would pay on every branch-and-bound node.
    #[inline]
    pub(crate) fn reset_for_overwrite(&mut self, nbits: usize) {
        self.nbits = nbits;
        self.words.resize(nbits.div_ceil(64), 0);
    }

    /// Makes this set a copy of `other` (capacity included), reusing the
    /// allocation when possible.
    pub fn copy_from(&mut self, other: &Bitset) {
        self.nbits = other.nbits;
        self.words.clear();
        self.words.extend_from_slice(&other.words);
    }

    /// `self &= other`.
    #[inline]
    pub fn intersect_with(&mut self, other: &Bitset) {
        debug_assert_eq!(self.nbits, other.nbits);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// `self &= row` where `row` is a raw word slice (a BitMatrix row).
    #[inline]
    pub fn intersect_with_words(&mut self, row: &[u64]) {
        debug_assert_eq!(self.words.len(), row.len());
        for (a, &b) in self.words.iter_mut().zip(row) {
            *a &= b;
        }
    }

    /// `self -= other` (set difference).
    #[inline]
    pub fn subtract(&mut self, other: &Bitset) {
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }

    /// `|self ∩ row|` without materializing.
    #[inline]
    pub fn intersection_count_words(&self, row: &[u64]) -> usize {
        self.words
            .iter()
            .zip(row)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `out = self ∩ row`.
    #[inline]
    pub fn intersection_into(&self, row: &[u64], out: &mut Bitset) {
        debug_assert_eq!(self.words.len(), out.words.len());
        for ((o, a), &b) in out.words.iter_mut().zip(&self.words).zip(row) {
            *o = a & b;
        }
    }

    /// Lowest element, if any.
    pub fn first(&self) -> Option<usize> {
        for (wi, &w) in self.words.iter().enumerate() {
            if w != 0 {
                return Some(wi * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Iterates elements in increasing order.
    pub fn iter(&self) -> BitsetIter<'_> {
        BitsetIter {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Collects into a `Vec<u32>` (ascending).
    pub fn to_vec(&self) -> Vec<u32> {
        self.iter().map(|i| i as u32).collect()
    }

    /// Raw words (read-only).
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Heap bytes backing this set (capacity, not live words) — used by
    /// scratch pools to bound what they retain.
    pub fn heap_bytes(&self) -> usize {
        self.words.capacity() * 8
    }

    /// Raw words (mutable, crate-internal: used by the coloring kernels).
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }
}

impl std::fmt::Debug for Bitset {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<usize> for Bitset {
    fn from_iter<T: IntoIterator<Item = usize>>(iter: T) -> Self {
        let items: Vec<usize> = iter.into_iter().collect();
        let cap = items.iter().copied().max().map_or(0, |m| m + 1);
        let mut s = Bitset::new(cap);
        for i in items {
            s.insert(i);
        }
        s
    }
}

/// Iterator over set bits.
pub struct BitsetIter<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for BitsetIter<'_> {
    type Item = usize;
    #[inline]
    fn next(&mut self) -> Option<usize> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros() as usize;
                self.current &= self.current - 1;
                return Some(self.word_idx * 64 + bit);
            }
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
    }
}

/// Dense adjacency matrix: one bitset row per vertex.
#[derive(Clone, Default, PartialEq, Eq)]
pub struct BitMatrix {
    n: usize,
    words_per_row: usize,
    bits: Vec<u64>,
}

impl BitMatrix {
    /// An edgeless matrix on `n` vertices.
    pub fn new(n: usize) -> Self {
        let words_per_row = n.div_ceil(64).max(1);
        BitMatrix {
            n,
            words_per_row,
            bits: vec![0u64; n * words_per_row],
        }
    }

    /// Builds from a small CSR graph.
    pub fn from_csr(g: &CsrGraph) -> Self {
        let mut m = Self::new(g.num_vertices());
        for v in g.vertices() {
            for &u in g.neighbors(v) {
                m.add_edge(v as usize, u as usize);
            }
        }
        m
    }

    /// Number of vertices.
    #[inline]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Words per row (for sizing compatible [`Bitset`]s: `len()` bits).
    pub fn words_per_row(&self) -> usize {
        self.words_per_row
    }

    /// Heap bytes backing this matrix (capacity, not live words) — used
    /// by scratch pools to bound what they retain.
    pub fn heap_bytes(&self) -> usize {
        self.bits.capacity() * 8
    }

    /// Adds the undirected edge `(u, v)`. Self-loops are ignored.
    pub fn add_edge(&mut self, u: usize, v: usize) {
        if u == v {
            return;
        }
        debug_assert!(u < self.n && v < self.n);
        self.bits[u * self.words_per_row + v / 64] |= 1u64 << (v % 64);
        self.bits[v * self.words_per_row + u / 64] |= 1u64 << (u % 64);
    }

    /// The adjacency row of `v` as raw words.
    #[inline]
    pub fn row(&self, v: usize) -> &[u64] {
        &self.bits[v * self.words_per_row..(v + 1) * self.words_per_row]
    }

    /// Edge test.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.row(u)[v / 64] & (1u64 << (v % 64)) != 0
    }

    /// Degree of `v` restricted to `within`.
    #[inline]
    pub fn degree_within(&self, v: usize, within: &Bitset) -> usize {
        within.intersection_count_words(self.row(v))
    }

    /// Total degree of `v`.
    pub fn degree(&self, v: usize) -> usize {
        self.row(v).iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Number of undirected edges.
    pub fn num_edges(&self) -> usize {
        (0..self.n).map(|v| self.degree(v)).sum::<usize>() / 2
    }

    /// Reshapes to an edgeless matrix on `n` vertices, reusing the bit
    /// storage whenever it suffices (scratch-arena counterpart of
    /// [`BitMatrix::new`]).
    pub fn reset(&mut self, n: usize) {
        self.n = n;
        self.words_per_row = n.div_ceil(64).max(1);
        self.bits.clear();
        self.bits.resize(n * self.words_per_row, 0);
    }

    /// The complement matrix (no self-loops).
    pub fn complement(&self) -> BitMatrix {
        let mut c = BitMatrix::new(0);
        self.complement_into(&mut c);
        c
    }

    /// Writes the complement matrix (no self-loops) into `out`, reusing
    /// `out`'s storage.
    pub fn complement_into(&self, out: &mut BitMatrix) {
        out.reset(self.n);
        for v in 0..self.n {
            let (row_out, row_in) = (v * out.words_per_row, v * self.words_per_row);
            for w in 0..self.words_per_row {
                out.bits[row_out + w] = !self.bits[row_in + w];
            }
            // mask out self-loop and bits beyond n
            out.bits[row_out + v / 64] &= !(1u64 << (v % 64));
            if !self.n.is_multiple_of(64) {
                out.bits[row_out + self.words_per_row - 1] &= (1u64 << (self.n % 64)) - 1;
            }
        }
    }

    /// Whether `verts` forms a clique.
    pub fn is_clique(&self, verts: &[u32]) -> bool {
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                if u == v || !self.has_edge(u as usize, v as usize) {
                    return false;
                }
            }
        }
        true
    }
}

impl std::fmt::Debug for BitMatrix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "BitMatrix {{ n: {}, m: {} }}", self.n, self.num_edges())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitset_basics() {
        let mut s = Bitset::new(130);
        s.insert(0);
        s.insert(64);
        s.insert(129);
        assert!(s.contains(0) && s.contains(64) && s.contains(129));
        assert!(!s.contains(1));
        assert_eq!(s.len(), 3);
        assert_eq!(s.to_vec(), vec![0, 64, 129]);
        s.remove(64);
        assert_eq!(s.len(), 2);
        assert!(!s.contains(64));
    }

    #[test]
    fn bitset_full_and_clear() {
        let mut s = Bitset::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        s.clear();
        assert!(s.is_empty());
        let f = Bitset::full(64);
        assert_eq!(f.len(), 64);
    }

    #[test]
    fn bitset_set_ops() {
        let a: Bitset = [1usize, 3, 5, 64, 100].into_iter().collect();
        let mut b: Bitset = [3usize, 5, 7, 100].into_iter().collect();
        // align capacities
        let mut a2 = Bitset::new(101);
        for i in a.iter() {
            a2.insert(i);
        }
        b = {
            let mut b2 = Bitset::new(101);
            for i in b.iter() {
                b2.insert(i);
            }
            b2
        };
        let mut c = a2.clone();
        c.intersect_with(&b);
        assert_eq!(c.to_vec(), vec![3, 5, 100]);
        let mut d = a2.clone();
        d.subtract(&b);
        assert_eq!(d.to_vec(), vec![1, 64]);
    }

    #[test]
    fn bitset_first_and_iter_order() {
        let s: Bitset = [90usize, 5, 63].into_iter().collect();
        assert_eq!(s.first(), Some(5));
        assert_eq!(s.to_vec(), vec![5, 63, 90]);
        let empty = Bitset::new(10);
        assert_eq!(empty.first(), None);
    }

    #[test]
    fn matrix_edges_and_degree() {
        let mut m = BitMatrix::new(100);
        m.add_edge(0, 99);
        m.add_edge(0, 50);
        m.add_edge(0, 0); // ignored
        assert!(m.has_edge(99, 0));
        assert!(!m.has_edge(0, 0));
        assert_eq!(m.degree(0), 2);
        assert_eq!(m.num_edges(), 2);
    }

    #[test]
    fn matrix_from_csr_roundtrip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let m = BitMatrix::from_csr(&g);
        for u in 0..5 {
            for v in 0..5 {
                assert_eq!(
                    m.has_edge(u, v),
                    g.has_edge(u as u32, v as u32),
                    "({u},{v})"
                );
            }
        }
    }

    #[test]
    fn matrix_complement() {
        let mut m = BitMatrix::new(4);
        m.add_edge(0, 1);
        m.add_edge(2, 3);
        let c = m.complement();
        assert!(!c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert!(c.has_edge(0, 3));
        assert!(c.has_edge(1, 2));
        assert!(!c.has_edge(1, 1));
        assert_eq!(c.num_edges(), 4);
    }

    #[test]
    fn degree_within_subset() {
        let mut m = BitMatrix::new(6);
        m.add_edge(0, 1);
        m.add_edge(0, 2);
        m.add_edge(0, 3);
        let mut within = Bitset::new(6);
        within.insert(1);
        within.insert(3);
        within.insert(5);
        assert_eq!(m.degree_within(0, &within), 2);
    }

    #[test]
    fn reset_reuses_and_reshapes() {
        let mut s = Bitset::full(100);
        s.reset(70);
        assert_eq!(s.capacity(), 70);
        assert!(s.is_empty());
        s.reset_full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(69));
        // shrinking then growing must not leak stale bits
        s.reset_full(130);
        assert_eq!(s.len(), 130);
        s.reset(10);
        s.reset_full(64);
        assert_eq!(s.len(), 64);
        let other: Bitset = [3usize, 80].into_iter().collect();
        s.copy_from(&other);
        assert_eq!(s.capacity(), other.capacity());
        assert_eq!(s.to_vec(), vec![3, 80]);
    }

    #[test]
    fn matrix_reset_and_complement_into() {
        let mut m = BitMatrix::new(4);
        m.add_edge(0, 1);
        let mut c = BitMatrix::new(77); // wrong-size scratch gets reshaped
        m.complement_into(&mut c);
        assert_eq!(c.len(), 4);
        assert!(!c.has_edge(0, 1));
        assert!(c.has_edge(0, 2));
        assert_eq!(c.num_edges(), 5);
        m.reset(3);
        assert_eq!(m.len(), 3);
        assert_eq!(m.num_edges(), 0);
    }

    #[test]
    fn is_clique_checks() {
        let mut m = BitMatrix::new(4);
        for (u, v) in [(0, 1), (0, 2), (1, 2)] {
            m.add_edge(u, v);
        }
        assert!(m.is_clique(&[0, 1, 2]));
        assert!(!m.is_clique(&[0, 1, 3]));
        assert!(m.is_clique(&[]));
    }
}
