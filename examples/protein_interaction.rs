//! Dense-graph scenario: gene/protein-correlation-style networks (the
//! paper's bio-mouse-gene / bio-human-gene régime) where filtered
//! subgraphs are so dense that *k-vertex-cover on the complement* beats
//! direct clique search — the paper's "algorithmic choice".
//!
//! Sweeps the density threshold φ to show where each engine wins.
//!
//! Run: `cargo run --release --example protein_interaction`

use lazymc::core::{Config, LazyMc};
use lazymc::graph::gen;
use std::time::Instant;

fn main() {
    // Small but dense: heavy planted-clique overlap over a noisy backbone.
    let g = gen::dense_overlap(900, 90, 14, 36, 0.08, 13);
    println!(
        "protein-like network: {} vertices, {} edges, density {:.3}",
        g.num_vertices(),
        g.num_edges(),
        g.density()
    );

    let mut omega = None;
    println!("\nφ sweep (φ = density threshold routing subgraphs to k-VC):");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>10} {:>10}",
        "phi", "time", "MC-work", "kVC-work", "n(MC)", "n(kVC)"
    );
    for phi in [0.0, 0.3, 0.5, 0.7, 1.0] {
        let cfg = Config::default().with_density_threshold(phi);
        let t = Instant::now();
        let r = LazyMc::new(cfg).solve(&g);
        let elapsed = t.elapsed();
        match omega {
            None => omega = Some(r.size()),
            Some(o) => assert_eq!(o, r.size(), "φ must not change ω"),
        }
        let m = &r.metrics;
        println!(
            "{:>5.1} {:>9.3}s {:>11.3}s {:>11.3}s {:>10} {:>10}",
            phi,
            elapsed.as_secs_f64(),
            m.mc_time.as_secs_f64(),
            m.kvc_time.as_secs_f64(),
            m.searched_mc,
            m.searched_kvc,
        );
    }
    println!("\nω = {} (stable across the sweep)", omega.unwrap());
}
