//! Quickstart: build a graph, find its maximum clique, inspect the result.
//!
//! Run: `cargo run --release --example quickstart`

use lazymc::core::{Config, LazyMc};
use lazymc::graph::{gen, CsrGraph};

fn main() {
    // Graphs can be built from explicit edge lists…
    let tiny = CsrGraph::from_edges(
        6,
        &[
            (0, 1),
            (0, 2),
            (1, 2),
            (2, 3),
            (3, 4),
            (4, 5),
            (3, 5),
            (2, 4),
        ],
    );
    let clique = lazymc::maximum_clique(&tiny);
    println!("tiny graph: ω = {} (witness {:?})", clique.len(), clique);

    // …or generated. Here: a 2 000-vertex sparse random graph with a
    // planted 17-clique that LazyMC must recover exactly.
    let g = gen::planted_clique(2_000, 0.01, 17, 42);
    println!(
        "planted instance: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let result = LazyMc::new(Config::default()).solve(&g);
    println!("ω = {}", result.size());
    assert_eq!(result.size(), 17, "planted clique must be recovered");
    assert!(g.is_clique(result.vertices()));

    // The solver reports rich metrics about how it got there.
    let m = &result.metrics;
    println!("degeneracy            : {}", m.degeneracy);
    println!("degree-heuristic ω̂    : {}", m.omega_degree_heuristic);
    println!("coreness-heuristic ω̂  : {}", m.omega_coreness_heuristic);
    println!(
        "neighbourhoods searched in detail: {} (of {} considered)",
        m.searched_mc + m.searched_kvc,
        m.retained_coreness
    );
    println!("total solve time      : {:?}", m.phases.total());
}
