//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! a [`Mutex`] whose `lock()` returns the guard directly (no poison
//! `Result`). Built on `std::sync::Mutex`; a poisoned lock is recovered
//! rather than propagated, matching parking_lot's panic-transparent
//! behaviour closely enough for the incumbent/lazy-graph use here.

use std::fmt;
use std::ops::{Deref, DerefMut};

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

pub struct MutexGuard<'a, T: ?Sized>(std::sync::MutexGuard<'a, T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard(self.0.lock().unwrap_or_else(|e| e.into_inner()))
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(MutexGuard(g)),
            Err(std::sync::TryLockError::Poisoned(e)) => Some(MutexGuard(e.into_inner())),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Mutex::new(T::default())
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl<'a, T: ?Sized> Deref for MutexGuard<'a, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.0
    }
}

impl<'a, T: ?Sized> DerefMut for MutexGuard<'a, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(0u32);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
