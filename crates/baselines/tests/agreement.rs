//! Property test: every baseline must agree with the Bron–Kerbosch oracle
//! on arbitrary random graphs — the strongest correctness signal we have
//! short of a certified solver.

use lazymc_baselines::{run, Algorithm};
use lazymc_graph::{gen, CsrGraph};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        (2usize..40, 0.0f64..0.5, 0u64..1000).prop_map(|(n, p, s)| gen::gnp(n, p, s)),
        (2usize..30, 0.0f64..0.2, 2usize..8, 0u64..1000)
            .prop_map(|(n, p, k, s)| gen::planted_clique(n.max(k), p, k.min(n), s)),
        (1usize..6, 2usize..6, 0.0f64..0.3, 0u64..100)
            .prop_map(|(l, k, p, s)| gen::caveman(l, k, p, s)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn baselines_agree_with_oracle(g in arb_graph()) {
        let oracle = run(Algorithm::Reference, &g);
        prop_assert!(g.is_clique(&oracle));
        for alg in Algorithm::table2() {
            let c = run(alg, &g);
            prop_assert!(g.is_clique(&c), "{} returned a non-clique", alg.name());
            prop_assert_eq!(c.len(), oracle.len(), "{} disagrees with oracle", alg.name());
        }
    }
}
