//! Graph substrate for the LazyMC reproduction.
//!
//! This crate provides everything the solvers need from a graph library:
//!
//! * [`CsrGraph`] — compact, immutable, undirected graphs in compressed
//!   sparse row form with sorted adjacency lists;
//! * [`GraphBuilder`] — ingestion of arbitrary (possibly duplicated,
//!   self-looped, one-directional) edge streams;
//! * [`io`] — readers/writers for edge-list, DIMACS `.clq` and
//!   MatrixMarket files;
//! * [`gen`] — deterministic synthetic generators used as stand-ins for the
//!   paper's 28 proprietary/web-scale datasets (see DESIGN.md §4);
//! * [`suite`] — the named benchmark suite used by every experiment binary;
//! * [`snapshot`] — the `.lmcs` durable snapshot container: versioned,
//!   checksummed, mmap-friendly serialization of CSR arrays plus
//!   caller-defined sections (coreness lives in `lazymc-order`);
//! * [`mmap`] — the zero-copy loader: [`MappedSnapshot`] validates a
//!   snapshot file in place and borrows the CSR slices straight out of
//!   a read-only mapping, behind the [`GraphStore`] `Heap | Mapped`
//!   enum and the [`GraphAccess`] trait every kernel consumes.
//!
//! All vertex identifiers are [`VertexId`] (`u32`), matching the 4-byte ids
//! the paper assumes (16 per cache line, which motivates the hopscotch hash
//! neighbourhood size of 16).

pub mod access;
pub mod builder;
pub mod components;
pub mod csr;
pub mod gen;
pub mod io;
pub mod mmap;
pub mod snapshot;
pub mod stats;
pub mod suite;

pub use access::GraphAccess;
pub use builder::GraphBuilder;
pub use components::{connected_components, largest_component, triangle_count, DisjointSet};
pub use csr::CsrGraph;
pub use mmap::{GraphStore, MappedSnapshot};
pub use stats::GraphStats;

/// Vertex identifier. The paper stores vertices as 4-byte integers.
pub type VertexId = u32;

/// Marker for "no vertex" in dense arrays.
pub const NO_VERTEX: VertexId = VertexId::MAX;
