//! Command-line maximum clique solver for graph files.
//!
//! Reads edge-list, DIMACS `.clq` or MatrixMarket `.mtx` files (format is
//! chosen by extension), solves, and prints ω, the witness clique and the
//! solver's phase breakdown.
//!
//! Run: `cargo run --release --example file_solver -- <path> [threads]`
//!
//! With no argument, a demo DIMACS instance is written to a temp file and
//! solved, so the example is runnable out of the box.

use lazymc::core::{Config, LazyMc};
use lazymc::graph::{gen, io};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let path = match args.get(1) {
        Some(p) => std::path::PathBuf::from(p),
        None => {
            // Demo mode: materialize a caveman instance as DIMACS.
            let g = gen::caveman(40, 9, 0.05, 3);
            let path = std::env::temp_dir().join("lazymc_demo.clq");
            let f = std::fs::File::create(&path).expect("create demo file");
            io::write_dimacs(&g, std::io::BufWriter::new(f)).expect("write demo file");
            println!("(no path given; wrote demo instance to {})", path.display());
            path
        }
    };
    let threads: usize = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(0);

    let g = match io::read_path(&path) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("failed to read {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    println!(
        "{}: {} vertices, {} edges",
        path.display(),
        g.num_vertices(),
        g.num_edges()
    );

    let cfg = Config::default().with_threads(threads);
    let r = LazyMc::new(cfg).solve(&g);
    println!("ω = {}", r.size());
    let mut witness = r.vertices().to_vec();
    witness.sort_unstable();
    println!("witness clique: {witness:?}");
    assert!(g.is_clique(r.vertices()));

    let p = &r.metrics.phases;
    println!("\nphase breakdown:");
    println!("  degree heuristic   : {:?}", p.degree_heuristic);
    println!("  k-core             : {:?}", p.kcore);
    println!("  reorder            : {:?}", p.reorder);
    println!("  prepopulate        : {:?}", p.prepopulate);
    println!("  coreness heuristic : {:?}", p.coreness_heuristic);
    println!("  systematic search  : {:?}", p.systematic);
    println!("  total              : {:?}", p.total());
}
