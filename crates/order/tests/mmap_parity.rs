//! Decoder parity for the zero-copy loader: `MappedSnapshot::map` must
//! accept exactly the files that the heap pipeline (`Snapshot::decode` +
//! `Snapshot::graph` + `extract_kcore`) accepts — and on acceptance the
//! borrowed slices must be bit-identical to the decoded arrays. Probed
//! under random single-byte flips and truncations, the same corruption
//! model `crates/graph/tests/snapshot.rs` uses for the heap decoder.

use lazymc_graph::snapshot::{write_file_atomic, Snapshot};
use lazymc_graph::{gen, CsrGraph, GraphAccess, MappedSnapshot};
use lazymc_order::{embed_kcore, extract_kcore, kcore_sequential};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    prop_oneof![
        proptest::collection::vec((0u32..40, 0u32..40), 0..200)
            .prop_map(|edges| CsrGraph::from_edges(0, &edges)),
        (10usize..70, 0u64..20).prop_map(|(n, seed)| gen::gnp(n, 0.1, seed)),
        (20usize..80, 0u64..20).prop_map(|(n, seed)| gen::planted_clique(n, 0.08, 6, seed)),
        (0usize..30).prop_map(CsrGraph::empty),
        (3usize..30, 0u64..10).prop_map(|(n, seed)| gen::barabasi_albert(n, 2, seed)),
    ]
}

/// Writes `bytes` to a unique temp file and returns its path.
fn tmp_file(bytes: &[u8]) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!("lazymc_parity_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let path = dir.join(format!("{}.lmcs", SEQ.fetch_add(1, Ordering::Relaxed)));
    write_file_atomic(&path, bytes).expect("write");
    path
}

/// The full snapshot bytes the service persists: CSR + embedded k-core.
fn full_snapshot_bytes(g: &CsrGraph) -> Vec<u8> {
    let kc = kcore_sequential(g);
    let mut snap = Snapshot::from_graph(g);
    embed_kcore(&mut snap, &kc);
    snap.encode()
}

/// Whether the heap pipeline accepts these bytes end to end.
fn decoder_accepts(bytes: &[u8]) -> bool {
    let Ok(snap) = Snapshot::decode(bytes) else {
        return false;
    };
    snap.graph().is_ok() && extract_kcore(&snap).is_ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A freshly persisted snapshot maps, and every borrowed slice is
    /// bit-identical to what the heap pipeline decodes.
    #[test]
    fn mapped_slices_equal_decoded_arrays(g in arb_graph()) {
        let bytes = full_snapshot_bytes(&g);
        prop_assert!(decoder_accepts(&bytes), "heap pipeline rejects its own encode");
        let path = tmp_file(&bytes);
        let m = MappedSnapshot::map(&path).expect("map of a valid snapshot");
        let kc = kcore_sequential(&g);
        prop_assert_eq!(GraphAccess::num_vertices(&m), g.num_vertices());
        prop_assert_eq!(GraphAccess::num_edges(&m), g.num_edges());
        prop_assert_eq!(m.fingerprint(), g.fingerprint());
        for v in 0..g.num_vertices() as u32 {
            prop_assert_eq!(GraphAccess::neighbors(&m, v), g.neighbors(v));
        }
        prop_assert_eq!(m.coreness(), Some(&kc.coreness[..]));
        prop_assert_eq!(m.degeneracy(), kc.degeneracy);
        prop_assert_eq!(m.peel_order(), &kc.peel_order[..]);
        let _ = std::fs::remove_file(&path);
    }

    /// Any single flipped byte is rejected by BOTH paths — the mapped
    /// loader must not accept bytes the decoder quarantines, nor vice
    /// versa (the flip breaks the whole-file checksum either way; a
    /// checksum-field flip mismatches the recomputed sum instead).
    #[test]
    fn flipped_byte_parity(g in arb_graph(), at_frac in 0u64..1000, bit in 0u32..8) {
        let bytes = full_snapshot_bytes(&g);
        let at = ((at_frac as usize * bytes.len()) / 1000).min(bytes.len() - 1);
        let mut corrupt = bytes.clone();
        corrupt[at] ^= 1u8 << bit;
        let path = tmp_file(&corrupt);
        let map_ok = MappedSnapshot::map(&path).is_ok();
        let heap_ok = decoder_accepts(&corrupt);
        prop_assert_eq!(
            map_ok, heap_ok,
            "parity broke on bit {} of byte {}/{}", bit, at, bytes.len()
        );
        prop_assert!(!map_ok, "flip of bit {} at byte {} went undetected", bit, at);
        let _ = std::fs::remove_file(&path);
    }

    /// Every strict prefix is rejected by both paths.
    #[test]
    fn truncation_parity(g in arb_graph(), cut_frac in 0u64..1000) {
        let bytes = full_snapshot_bytes(&g);
        let keep = (cut_frac as usize * bytes.len()) / 1000;
        let keep = keep.min(bytes.len().saturating_sub(1));
        let truncated = &bytes[..keep];
        let path = tmp_file(truncated);
        let map_ok = MappedSnapshot::map(&path).is_ok();
        let heap_ok = decoder_accepts(truncated);
        prop_assert_eq!(map_ok, heap_ok, "truncation parity broke at {} bytes", keep);
        prop_assert!(!map_ok, "truncation to {} bytes went undetected", keep);
        let _ = std::fs::remove_file(&path);
    }
}
