//! Shared live-socket test client: one blocking keep-alive HTTP/1.1
//! client for every service integration suite, so framing fixes land in
//! one place. Nagle is disabled at connect — a test client's own write
//! fragmentation plus delayed ACKs would otherwise add ~40 ms phantom
//! latency to anything it measures.

#![allow(dead_code)] // each test binary uses its own subset of helpers

use lazymc_service::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

pub struct Client {
    pub stream: TcpStream,
    pub reader: BufReader<TcpStream>,
}

impl Client {
    pub fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    /// Writes raw bytes, then reads one response.
    pub fn raw(&mut self, request: &str) -> (u16, Vec<(String, String)>, String) {
        self.stream.write_all(request.as_bytes()).expect("write");
        self.stream.flush().unwrap();
        self.read_response()
    }

    /// Reads one response: (status, lower-cased headers, body).
    pub fn read_response(&mut self) -> (u16, Vec<(String, String)>, String) {
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
                if k == "content-length" {
                    content_length = v.parse().expect("content-length");
                }
                headers.push((k, v));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, headers, String::from_utf8(body).expect("utf8"))
    }

    pub fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> (u16, Vec<(String, String)>, String) {
        let body = body.unwrap_or("");
        self.raw(&format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        ))
    }

    pub fn post_json(&mut self, path: &str, body: &str) -> (u16, Json) {
        let (status, _, body) = self.request("POST", path, Some(body));
        (status, Json::parse(&body).expect("json body"))
    }

    pub fn get_json(&mut self, path: &str) -> (u16, Json) {
        let (status, _, body) = self.request("GET", path, None);
        (status, Json::parse(&body).expect("json body"))
    }

    pub fn delete_json(&mut self, path: &str) -> (u16, Json) {
        let (status, _, body) = self.request("DELETE", path, None);
        (status, Json::parse(&body).expect("json body"))
    }

    /// Scrapes one series out of the Prometheus text format.
    pub fn metric(&mut self, name: &str) -> u64 {
        let (status, _, text) = self.request("GET", "/metrics", None);
        assert_eq!(status, 200);
        text.lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} not found"))
    }
}

/// Uploads `g` as an edge list under `name`, asserting the 201.
pub fn upload(client: &mut Client, name: &str, g: &lazymc_graph::CsrGraph) -> Json {
    let mut text = Vec::new();
    lazymc_graph::io::write_edge_list(g, &mut text).unwrap();
    let body = Json::obj(vec![
        ("name", Json::str(name)),
        ("format", Json::str("edgelist")),
        ("content", Json::str(String::from_utf8(text).unwrap())),
    ])
    .encode();
    let (status, response) = client.post_json("/graphs", &body);
    assert_eq!(status, 201, "upload failed: {response:?}");
    response
}

pub fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing numeric {key:?} in {v:?}"))
}

pub fn str_field<'a>(v: &'a Json, key: &str) -> &'a str {
    v.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string {key:?} in {v:?}"))
}

pub fn bool_field(v: &Json, key: &str) -> bool {
    v.get(key)
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("missing bool {key:?} in {v:?}"))
}
