//! Greedy graph coloring for clique upper bounds.
//!
//! A clique of size `k` needs `k` colors, so the chromatic number of the
//! subgraph induced by a candidate set bounds any clique inside it (paper
//! §II-A, \[10\], \[15\]). The branch-and-bound solver uses the classic
//! Tomita-style *color order*: candidates are emitted grouped by color
//! class, and the color index of a candidate is an upper bound for the best
//! clique extendable from it and everything emitted before it.
//!
//! The kernels here are the innermost loops of the dense MC search — they
//! run once per branch-and-bound node, millions of times per solve — so
//! they are written as allocation-free word loops over a caller-provided
//! [`ColorScratch`]. Building a color class costs one word-level copy of
//! the uncolored set plus one AND-NOT per picked vertex, and the AND-NOT
//! only touches words at or after the pick (picks move strictly
//! rightward, so earlier words are spent). Nothing is cloned, per class
//! or otherwise.

use crate::bitset::{BitMatrix, Bitset};

/// Reusable buffers for the coloring kernels. One per worker; after the
/// first call at a given subgraph size, no method here allocates.
#[derive(Default)]
pub struct ColorScratch {
    uncolored: Bitset,
    avail: Bitset,
}

impl ColorScratch {
    /// An empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Heap bytes retained by the scratch buffers.
    pub fn heap_bytes(&self) -> usize {
        self.uncolored.heap_bytes() + self.avail.heap_bytes()
    }
}

/// Lowest set bit at or after word `from_word`, if any.
#[inline]
fn next_set_bit(words: &[u64], from_word: usize) -> Option<usize> {
    words[from_word..].iter().position(|&w| w != 0).map(|off| {
        let wi = from_word + off;
        wi * 64 + words[wi].trailing_zeros() as usize
    })
}

/// Core kernel: peels one greedy color class per outer iteration, invoking
/// `emit(v, color)` for every vertex in pick order. Returns the number of
/// colors used.
#[inline]
fn color_classes(
    adj: &BitMatrix,
    cand: &Bitset,
    scratch: &mut ColorScratch,
    mut emit: impl FnMut(usize, u32),
) -> u32 {
    scratch.uncolored.copy_from(cand);
    let ColorScratch { uncolored, avail } = scratch;
    let mut color = 0u32;
    while let Some(seed) = uncolored.first() {
        color += 1;
        avail.copy_from(uncolored);
        let mut v = seed;
        loop {
            uncolored.remove(v);
            avail.remove(v);
            emit(v, color);
            // Drop v's neighbors from this class's availability. Picks
            // move strictly rightward (v was the lowest available bit),
            // so only words from v's onward can still hold candidates.
            let w0 = v / 64;
            let row = adj.row(v);
            let words = avail.words_mut();
            for wi in w0..words.len() {
                words[wi] &= !row[wi];
            }
            match next_set_bit(avail.words(), w0) {
                Some(u) => v = u,
                None => break,
            }
        }
    }
    color
}

/// Greedy sequential coloring of the subgraph induced by `cand`, using
/// caller-owned scratch. Returns the number of colors used — an upper
/// bound on ω(G\[cand\]).
pub fn greedy_color_count_scratch(
    adj: &BitMatrix,
    cand: &Bitset,
    scratch: &mut ColorScratch,
) -> usize {
    color_classes(adj, cand, scratch, |_, _| {}) as usize
}

/// [`greedy_color_count_scratch`] with throwaway scratch (convenience for
/// one-shot callers; hot paths should hold a [`ColorScratch`]).
pub fn greedy_color_count(adj: &BitMatrix, cand: &Bitset) -> usize {
    greedy_color_count_scratch(adj, cand, &mut ColorScratch::default())
}

/// Tomita-style color order, using caller-owned scratch.
///
/// Emits the candidates of `cand` as `(order, bound)` where `order` lists
/// vertices grouped by ascending color class and `bound[i]` is the color
/// (1-based) of `order[i]`. For every prefix cut at `i`, the best clique
/// using only `order[0..=i]` has size at most `bound[i]`, so branching from
/// the *end* of the array lets the solver prune the entire remainder as
/// soon as `|C| + bound[i] <= incumbent`.
pub fn color_order_scratch(
    adj: &BitMatrix,
    cand: &Bitset,
    order: &mut Vec<u32>,
    bound: &mut Vec<u32>,
    scratch: &mut ColorScratch,
) {
    order.clear();
    bound.clear();
    color_classes(adj, cand, scratch, |v, color| {
        order.push(v as u32);
        bound.push(color);
    });
}

/// [`color_order_scratch`] with throwaway scratch.
pub fn color_order(adj: &BitMatrix, cand: &Bitset, order: &mut Vec<u32>, bound: &mut Vec<u32>) {
    color_order_scratch(adj, cand, order, bound, &mut ColorScratch::default());
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(n: usize) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        for u in 0..n {
            for v in u + 1..n {
                m.add_edge(u, v);
            }
        }
        m
    }

    #[test]
    fn complete_graph_needs_n_colors() {
        let m = k(5);
        let cand = Bitset::full(5);
        assert_eq!(greedy_color_count(&m, &cand), 5);
    }

    #[test]
    fn edgeless_graph_needs_one_color() {
        let m = BitMatrix::new(8);
        let cand = Bitset::full(8);
        assert_eq!(greedy_color_count(&m, &cand), 1);
    }

    #[test]
    fn empty_candidate_set_needs_zero() {
        let m = k(4);
        let cand = Bitset::new(4);
        assert_eq!(greedy_color_count(&m, &cand), 0);
    }

    #[test]
    fn bipartite_needs_at_most_two() {
        // C4: 0-1-2-3-0
        let mut m = BitMatrix::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3), (3, 0)] {
            m.add_edge(u, v);
        }
        let colors = greedy_color_count(&m, &Bitset::full(4));
        assert!(colors <= 2, "C4 is bipartite, got {colors}");
    }

    #[test]
    fn color_order_bounds_are_monotone_and_valid() {
        // K4 on {0..3} plus a pendant vertex 4 attached to 0.
        let mut m = BitMatrix::new(5);
        for u in 0..4 {
            for v in u + 1..4 {
                m.add_edge(u, v);
            }
        }
        m.add_edge(0, 4);
        let mut order = Vec::new();
        let mut bound = Vec::new();
        let mut cand = Bitset::full(5);
        color_order(&m, &cand, &mut order, &mut bound);
        assert_eq!(order.len(), 5);
        // bounds ascend
        for w in bound.windows(2) {
            assert!(w[0] <= w[1]);
        }
        // max bound >= omega (K4 → >= 4)
        assert!(*bound.last().unwrap() >= 4);
        // restricted candidate set
        cand.clear();
        cand.insert(1);
        cand.insert(4);
        color_order(&m, &cand, &mut order, &mut bound);
        assert_eq!(order.len(), 2);
        // 1 and 4 are non-adjacent → same color class
        assert_eq!(bound, vec![1, 1]);
    }

    #[test]
    fn coloring_never_below_clique_number_random() {
        // sanity on random graphs: colors >= omega via a known clique
        let mut m = BitMatrix::new(10);
        // plant a triangle 2-5-7 plus noise
        for (u, v) in [(2, 5), (5, 7), (2, 7), (0, 1), (3, 4), (8, 9), (1, 9)] {
            m.add_edge(u, v);
        }
        assert!(greedy_color_count(&m, &Bitset::full(10)) >= 3);
    }

    #[test]
    fn scratch_reuse_across_sizes_matches_fresh() {
        // The same scratch, fed candidate sets of different capacities,
        // must behave exactly like a fresh one (reset must not leak
        // stale words across sizes).
        let mut scratch = ColorScratch::new();
        let sizes = [130usize, 5, 64, 100, 3, 129];
        for &n in &sizes {
            let m = k(n);
            let cand = Bitset::full(n);
            assert_eq!(greedy_color_count_scratch(&m, &cand, &mut scratch), n);
            let mut order = Vec::new();
            let mut bound = Vec::new();
            color_order_scratch(&m, &cand, &mut order, &mut bound, &mut scratch);
            assert_eq!(order.len(), n);
            assert_eq!(bound.last().copied().unwrap_or(0) as usize, n);
        }
    }

    #[test]
    fn color_order_multiword_graph() {
        // A graph spanning multiple words: two cliques of 40 joined by a
        // perfect matching. Coloring must still bound ω = 40.
        let n = 80;
        let mut m = BitMatrix::new(n);
        for u in 0..40 {
            for v in u + 1..40 {
                m.add_edge(u, v);
                m.add_edge(40 + u, 40 + v);
            }
        }
        for u in 0..40 {
            m.add_edge(u, 40 + u);
        }
        let colors = greedy_color_count(&m, &Bitset::full(n));
        assert!(colors >= 40);
        let mut order = Vec::new();
        let mut bound = Vec::new();
        color_order(&m, &Bitset::full(n), &mut order, &mut bound);
        assert_eq!(order.len(), n);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..n as u32).collect::<Vec<_>>());
    }
}
