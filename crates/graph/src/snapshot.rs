//! `.lmcs` — the durable snapshot container.
//!
//! A snapshot freezes the artifacts that are expensive to recompute — the
//! CSR adjacency arrays and (via sections written by `lazymc-order`) the
//! exact k-core decomposition — into one versioned, checksummed,
//! little-endian file. The layout is mmap-friendly by construction:
//!
//! * a fixed 64-byte header holding the magic, version, total length,
//!   content fingerprint and checksum;
//! * a section table of fixed-size records (id, element width, absolute
//!   byte offset, element count);
//! * the section payloads themselves, each starting on an 8-byte boundary
//!   and zero-padded to one.
//!
//! Today the decoder copies sections into owned `Vec`s; because every
//! offset in the table is absolute and 8-byte aligned, a future zero-copy
//! loader can `mmap` the file and point slices straight into it without a
//! format change.
//!
//! Corruption detection is layered: the header carries the exact file
//! length (truncation), an FNV-1a checksum over the whole file (bit flips
//! anywhere, header included), and [`Snapshot::graph`] re-fingerprints the
//! decoded CSR against the recorded content fingerprint. Every decode path
//! returns `Err` rather than panicking on hostile bytes.

use crate::CsrGraph;
use std::io::Write as _;
use std::path::Path;

/// File magic: the first four bytes of every `.lmcs` file.
pub const MAGIC: [u8; 4] = *b"LMCS";
/// Current format version. Decoders reject other versions.
pub const VERSION: u32 = 1;
/// Fixed header size in bytes.
pub const HEADER_LEN: usize = 64;
/// Size of one section-table record in bytes.
pub const SECTION_RECORD_LEN: usize = 24;

/// Section ids. The graph crate owns the CSR sections; other crates claim
/// ids for their own artifacts (coreness and peel order live in
/// `lazymc-order`).
pub const SEC_OFFSETS: u32 = 1;
/// CSR adjacency targets (`u32`).
pub const SEC_TARGETS: u32 = 2;
/// Exact per-vertex coreness (`u32`), written by `lazymc-order`.
pub const SEC_CORENESS: u32 = 3;
/// Sequential peel order (`u32`), written by `lazymc-order`.
pub const SEC_PEEL_ORDER: u32 = 4;

/// Payload of one section: a flat array of 4- or 8-byte little-endian
/// elements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SectionData {
    U32(Vec<u32>),
    U64(Vec<u64>),
}

impl SectionData {
    fn elem_width(&self) -> u32 {
        match self {
            SectionData::U32(_) => 4,
            SectionData::U64(_) => 8,
        }
    }

    fn elem_count(&self) -> u64 {
        match self {
            SectionData::U32(v) => v.len() as u64,
            SectionData::U64(v) => v.len() as u64,
        }
    }

    fn byte_len(&self) -> usize {
        (self.elem_width() as usize) * (self.elem_count() as usize)
    }
}

/// Header fields readable without touching the payload — what a startup
/// index scan needs to know about a file before deciding to load it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotInfo {
    pub version: u32,
    /// Total file length the header promises (truncation check).
    pub file_len: u64,
    /// Content fingerprint of the stored graph ([`CsrGraph::fingerprint`]).
    pub fingerprint: u64,
    /// Vertex count.
    pub n: u64,
    /// Length of the targets array (twice the undirected edge count).
    pub m2: u64,
}

/// An in-memory snapshot: fingerprint + typed sections.
///
/// Build one with [`Snapshot::from_graph`], attach extra sections (e.g.
/// coreness) with [`Snapshot::push_section`], then [`Snapshot::encode`].
/// The reverse path is [`Snapshot::decode`] → [`Snapshot::graph`] /
/// [`Snapshot::u32_section`].
#[derive(Debug, Clone)]
pub struct Snapshot {
    pub fingerprint: u64,
    pub n: u64,
    pub m2: u64,
    sections: Vec<(u32, SectionData)>,
}

impl Snapshot {
    /// A snapshot of `g`'s CSR arrays, fingerprinted.
    pub fn from_graph(g: &CsrGraph) -> Snapshot {
        let (offsets, targets) = g.raw_parts();
        Snapshot {
            fingerprint: g.fingerprint(),
            n: g.num_vertices() as u64,
            m2: targets.len() as u64,
            sections: vec![
                (
                    SEC_OFFSETS,
                    SectionData::U64(offsets.iter().map(|&o| o as u64).collect()),
                ),
                (SEC_TARGETS, SectionData::U32(targets.to_vec())),
            ],
        }
    }

    /// Adds (or replaces) a section by id.
    pub fn push_section(&mut self, id: u32, data: SectionData) {
        self.sections.retain(|(existing, _)| *existing != id);
        self.sections.push((id, data));
    }

    /// The section with this id, if present.
    pub fn section(&self, id: u32) -> Option<&SectionData> {
        self.sections
            .iter()
            .find(|(existing, _)| *existing == id)
            .map(|(_, d)| d)
    }

    /// A `u32` section's payload, if present with that element width.
    pub fn u32_section(&self, id: u32) -> Option<&[u32]> {
        match self.section(id) {
            Some(SectionData::U32(v)) => Some(v),
            _ => None,
        }
    }

    /// A `u64` section's payload, if present with that element width.
    pub fn u64_section(&self, id: u32) -> Option<&[u64]> {
        match self.section(id) {
            Some(SectionData::U64(v)) => Some(v),
            _ => None,
        }
    }

    /// Reconstructs the CSR graph, validating structure (monotone offsets,
    /// in-range targets) and re-fingerprinting against the header value, so
    /// corruption that slipped past the checksum still cannot produce a
    /// silently wrong graph.
    pub fn graph(&self) -> Result<CsrGraph, String> {
        let offsets_raw = self
            .u64_section(SEC_OFFSETS)
            .ok_or("snapshot has no offsets section")?;
        let targets = self
            .u32_section(SEC_TARGETS)
            .ok_or("snapshot has no targets section")?;
        if offsets_raw.len() as u64 != self.n + 1 {
            return Err(format!(
                "offsets section has {} entries, expected n+1 = {}",
                offsets_raw.len(),
                self.n + 1
            ));
        }
        if targets.len() as u64 != self.m2 {
            return Err(format!(
                "targets section has {} entries, header says {}",
                targets.len(),
                self.m2
            ));
        }
        let mut offsets = Vec::with_capacity(offsets_raw.len());
        for &o in offsets_raw {
            if o > targets.len() as u64 {
                return Err(format!("offset {o} exceeds targets length"));
            }
            offsets.push(o as usize);
        }
        if offsets.first() != Some(&0) || offsets.last() != Some(&targets.len()) {
            return Err("offsets do not span the targets array".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets are not monotone".into());
        }
        let n = offsets.len() - 1;
        if targets.iter().any(|&t| (t as usize) >= n) && n > 0 {
            return Err("target vertex out of range".into());
        }
        if n == 0 && !targets.is_empty() {
            return Err("targets present in an empty graph".into());
        }
        let g = CsrGraph::from_parts(offsets, targets.to_vec());
        let fp = g.fingerprint();
        if fp != self.fingerprint {
            return Err(format!(
                "content fingerprint mismatch: stored {:016x}, decoded {fp:016x}",
                self.fingerprint
            ));
        }
        Ok(g)
    }

    /// Serializes to the `.lmcs` byte layout (header, section table,
    /// 8-byte-aligned payloads, checksum patched into the header).
    pub fn encode(&self) -> Vec<u8> {
        let table_len = self.sections.len() * SECTION_RECORD_LEN;
        let mut payload_offset = align8(HEADER_LEN + table_len);
        let mut records = Vec::with_capacity(self.sections.len());
        for (id, data) in &self.sections {
            records.push((
                *id,
                data.elem_width(),
                payload_offset as u64,
                data.elem_count(),
            ));
            payload_offset = align8(payload_offset + data.byte_len());
        }
        let file_len = payload_offset;

        let mut out = vec![0u8; file_len];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&VERSION.to_le_bytes());
        out[8..16].copy_from_slice(&(file_len as u64).to_le_bytes());
        out[16..24].copy_from_slice(&self.fingerprint.to_le_bytes());
        out[24..32].copy_from_slice(&self.n.to_le_bytes());
        out[32..40].copy_from_slice(&self.m2.to_le_bytes());
        out[40..44].copy_from_slice(&(self.sections.len() as u32).to_le_bytes());
        // out[44..48] reserved, zero. out[48..56] is the checksum slot,
        // zero while hashing. out[56..64] reserved, zero.
        for (i, (id, width, offset, count)) in records.iter().enumerate() {
            let at = HEADER_LEN + i * SECTION_RECORD_LEN;
            out[at..at + 4].copy_from_slice(&id.to_le_bytes());
            out[at + 4..at + 8].copy_from_slice(&width.to_le_bytes());
            out[at + 8..at + 16].copy_from_slice(&offset.to_le_bytes());
            out[at + 16..at + 24].copy_from_slice(&count.to_le_bytes());
        }
        for ((_, data), (_, _, offset, _)) in self.sections.iter().zip(&records) {
            let mut at = *offset as usize;
            match data {
                SectionData::U32(v) => {
                    for x in v {
                        out[at..at + 4].copy_from_slice(&x.to_le_bytes());
                        at += 4;
                    }
                }
                SectionData::U64(v) => {
                    for x in v {
                        out[at..at + 8].copy_from_slice(&x.to_le_bytes());
                        at += 8;
                    }
                }
            }
        }
        let checksum = fnv1a(&out);
        out[48..56].copy_from_slice(&checksum.to_le_bytes());
        out
    }

    /// Reads just the fixed header: magic, version, promised length,
    /// fingerprint, counts. Cheap enough to run over a whole directory at
    /// boot. Does **not** verify the checksum — that happens on full
    /// [`Snapshot::decode`].
    pub fn peek(bytes: &[u8]) -> Result<SnapshotInfo, String> {
        if bytes.len() < HEADER_LEN {
            return Err(format!(
                "file too short for a snapshot header ({} bytes)",
                bytes.len()
            ));
        }
        if bytes[0..4] != MAGIC {
            return Err("bad magic (not an .lmcs file)".into());
        }
        let version = u32_at(bytes, 4);
        if version != VERSION {
            return Err(format!("unsupported snapshot version {version}"));
        }
        Ok(SnapshotInfo {
            version,
            file_len: u64_at(bytes, 8),
            fingerprint: u64_at(bytes, 16),
            n: u64_at(bytes, 24),
            m2: u64_at(bytes, 32),
        })
    }

    /// Full decode with corruption detection: exact-length check,
    /// whole-file checksum, bounds- and alignment-checked section table.
    pub fn decode(bytes: &[u8]) -> Result<Snapshot, String> {
        let info = Snapshot::peek(bytes)?;
        if info.file_len != bytes.len() as u64 {
            return Err(format!(
                "truncated or padded snapshot: header promises {} bytes, file has {}",
                info.file_len,
                bytes.len()
            ));
        }
        let stored_checksum = u64_at(bytes, 48);
        // Hash the file with the checksum field as zeroes, without copying
        // the (possibly multi-GB) buffer: three spans, eight literal zeros.
        let computed = fnv1a_update(fnv1a_update(fnv1a(&bytes[..48]), &[0u8; 8]), &bytes[56..]);
        if computed != stored_checksum {
            return Err(format!(
                "checksum mismatch: stored {stored_checksum:016x}, computed {computed:016x}"
            ));
        }
        let section_count = u32_at(bytes, 40) as usize;
        let table_end = HEADER_LEN
            .checked_add(
                section_count
                    .checked_mul(SECTION_RECORD_LEN)
                    .ok_or("section table overflow")?,
            )
            .ok_or("section table overflow")?;
        if table_end > bytes.len() {
            return Err("section table extends past end of file".into());
        }
        let mut sections = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let at = HEADER_LEN + i * SECTION_RECORD_LEN;
            let id = u32_at(bytes, at);
            let width = u32_at(bytes, at + 4);
            let offset = u64_at(bytes, at + 8) as usize;
            let count = u64_at(bytes, at + 16) as usize;
            if width != 4 && width != 8 {
                return Err(format!("section {id}: unsupported element width {width}"));
            }
            if !offset.is_multiple_of(8) {
                return Err(format!("section {id}: payload not 8-byte aligned"));
            }
            let byte_len = count
                .checked_mul(width as usize)
                .ok_or_else(|| format!("section {id}: length overflow"))?;
            let end = offset
                .checked_add(byte_len)
                .ok_or_else(|| format!("section {id}: extent overflow"))?;
            if offset < table_end || end > bytes.len() {
                return Err(format!("section {id}: payload out of bounds"));
            }
            let data = if width == 4 {
                SectionData::U32((0..count).map(|j| u32_at(bytes, offset + j * 4)).collect())
            } else {
                SectionData::U64((0..count).map(|j| u64_at(bytes, offset + j * 8)).collect())
            };
            if sections.iter().any(|(existing, _)| *existing == id) {
                return Err(format!("duplicate section id {id}"));
            }
            sections.push((id, data));
        }
        Ok(Snapshot {
            fingerprint: info.fingerprint,
            n: info.n,
            m2: info.m2,
            sections,
        })
    }
}

fn align8(x: usize) -> usize {
    (x + 7) & !7
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap())
}

/// FNV-1a over a byte stream — the same family as
/// [`CsrGraph::fingerprint`], applied bytewise.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_update(0xcbf2_9ce4_8422_2325, bytes)
}

/// Continues an FNV-1a hash over another span (for hashing a file in
/// pieces, e.g. skipping the checksum field without copying the buffer).
pub(crate) fn fnv1a_update(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Durably writes `bytes` to `path`: write to a sibling temp file, fsync
/// it, rename over the target, then fsync the parent directory so the
/// rename itself survives a crash. The temp name embeds the pid *and* a
/// process-wide counter, so neither another process sharing the data dir
/// nor a concurrent thread writing the same target can clobber a
/// half-written file.
pub fn write_file_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    let file_name = path.file_name().ok_or_else(|| {
        std::io::Error::new(std::io::ErrorKind::InvalidInput, "path has no file name")
    })?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let mut f = std::fs::File::create(&tmp)?;
    f.write_all(bytes)?;
    f.sync_all()?;
    drop(f);
    if let Err(e) = std::fs::rename(&tmp, path) {
        let _ = std::fs::remove_file(&tmp);
        return Err(e);
    }
    if let Some(dir) = dir {
        // Directory fsync can fail on exotic filesystems; the data itself
        // is already durable, so don't fail the write over it.
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn round_trip_preserves_graph_and_fingerprint() {
        for g in [
            gen::complete(6),
            gen::planted_clique(120, 0.05, 9, 3),
            CsrGraph::empty(0),
            CsrGraph::empty(5),
            gen::path(2),
        ] {
            let snap = Snapshot::from_graph(&g);
            let bytes = snap.encode();
            let back = Snapshot::decode(&bytes).expect("decode");
            assert_eq!(back.fingerprint, g.fingerprint());
            let h = back.graph().expect("graph");
            assert_eq!(h, g);
        }
    }

    #[test]
    fn extra_sections_survive_round_trip() {
        let g = gen::cycle(10);
        let mut snap = Snapshot::from_graph(&g);
        snap.push_section(SEC_CORENESS, SectionData::U32(vec![2; 10]));
        snap.push_section(99, SectionData::U64(vec![7, 8, 9]));
        let back = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(back.u32_section(SEC_CORENESS), Some(&[2u32; 10][..]));
        assert_eq!(back.u64_section(99), Some(&[7u64, 8, 9][..]));
        assert!(back.u32_section(99).is_none(), "width-typed accessors");
    }

    #[test]
    fn push_section_replaces_same_id() {
        let g = gen::path(4);
        let mut snap = Snapshot::from_graph(&g);
        snap.push_section(SEC_CORENESS, SectionData::U32(vec![1; 4]));
        snap.push_section(SEC_CORENESS, SectionData::U32(vec![2; 4]));
        assert_eq!(snap.u32_section(SEC_CORENESS), Some(&[2u32; 4][..]));
    }

    #[test]
    fn sections_are_aligned_and_header_is_fixed() {
        let g = gen::planted_clique(33, 0.1, 5, 1); // odd sizes → padding
        let mut snap = Snapshot::from_graph(&g);
        snap.push_section(SEC_CORENESS, SectionData::U32(vec![0; 33]));
        let bytes = snap.encode();
        assert_eq!(&bytes[0..4], b"LMCS");
        assert_eq!(bytes.len() % 8, 0);
        let count = u32_at(&bytes, 40) as usize;
        for i in 0..count {
            let at = HEADER_LEN + i * SECTION_RECORD_LEN;
            assert_eq!(u64_at(&bytes, at + 8) % 8, 0, "section {i} misaligned");
        }
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = Snapshot::from_graph(&gen::complete(8)).encode();
        for cut in [
            0,
            10,
            HEADER_LEN - 1,
            HEADER_LEN,
            bytes.len() - 8,
            bytes.len() - 1,
        ] {
            assert!(
                Snapshot::decode(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Padding (extra bytes) is also rejected.
        let mut padded = bytes.clone();
        padded.extend_from_slice(&[0; 8]);
        assert!(Snapshot::decode(&padded).is_err());
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = Snapshot::from_graph(&gen::planted_clique(40, 0.1, 5, 2)).encode();
        // Exhaustive over the whole file: header, table, payload, padding.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x01;
            assert!(
                Snapshot::decode(&corrupt).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn peek_reads_header_only() {
        let g = gen::planted_clique(50, 0.1, 6, 4);
        let bytes = Snapshot::from_graph(&g).encode();
        let info = Snapshot::peek(&bytes[..HEADER_LEN]).unwrap();
        assert_eq!(info.version, VERSION);
        assert_eq!(info.fingerprint, g.fingerprint());
        assert_eq!(info.n, 50);
        assert_eq!(info.m2, 2 * g.num_edges() as u64);
        assert_eq!(info.file_len, bytes.len() as u64);
        assert!(Snapshot::peek(b"nope").is_err());
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert!(Snapshot::peek(&wrong_version).is_err());
    }

    #[test]
    fn hostile_section_tables_do_not_panic() {
        let g = gen::path(6);
        let base = Snapshot::from_graph(&g).encode();
        // Corrupt the table in targeted ways, re-patching the checksum so
        // only the structural validation can catch it.
        let rewrite = |f: &mut dyn FnMut(&mut Vec<u8>)| {
            let mut b = base.clone();
            f(&mut b);
            b[48..56].fill(0);
            let c = fnv1a(&b);
            b[48..56].copy_from_slice(&c.to_le_bytes());
            Snapshot::decode(&b)
        };
        // Section offset pointing past the end.
        assert!(rewrite(&mut |b| {
            let at = HEADER_LEN + 8;
            b[at..at + 8].copy_from_slice(&(1u64 << 40).to_le_bytes());
        })
        .is_err());
        // Element count overflowing the extent.
        assert!(rewrite(&mut |b| {
            let at = HEADER_LEN + 16;
            b[at..at + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        })
        .is_err());
        // Bogus element width.
        assert!(rewrite(&mut |b| {
            let at = HEADER_LEN + 4;
            b[at..at + 4].copy_from_slice(&3u32.to_le_bytes());
        })
        .is_err());
        // Misaligned payload offset.
        assert!(rewrite(&mut |b| {
            let at = HEADER_LEN + 8;
            let off = u64_at(b, at) + 4;
            b[at..at + 8].copy_from_slice(&off.to_le_bytes());
        })
        .is_err());
    }

    #[test]
    fn graph_rejects_structurally_bad_sections() {
        let g = gen::path(4);
        // Offsets not spanning targets.
        let mut snap = Snapshot::from_graph(&g);
        snap.push_section(SEC_OFFSETS, SectionData::U64(vec![0, 1, 2, 3, 4]));
        assert!(snap.graph().is_err());
        // Out-of-range target.
        let mut snap = Snapshot::from_graph(&g);
        let mut targets = snap.u32_section(SEC_TARGETS).unwrap().to_vec();
        targets[0] = 1000;
        snap.push_section(SEC_TARGETS, SectionData::U32(targets));
        assert!(snap.graph().is_err());
        // Fingerprint mismatch.
        let mut snap = Snapshot::from_graph(&g);
        snap.fingerprint ^= 1;
        assert!(snap.graph().is_err());
    }

    #[test]
    fn atomic_write_replaces_and_leaves_no_temp() {
        let dir = std::env::temp_dir().join(format!("lmcs_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.lmcs");
        write_file_atomic(&path, b"first").unwrap();
        write_file_atomic(&path, b"second").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }
}
