//! PMC-like parallel maximum clique solver (Rossi et al. \[6\]).
//!
//! The paper's closest comparator. The structural differences from LazyMC
//! are exactly the paper's contributions, absent here:
//!
//! * the relabelled graph is built **eagerly** for all vertices up front;
//! * neighbourhoods are **unfiltered** — only the size-vs-incumbent test
//!   prunes before a search (no 3-stage advance filtering);
//! * intersections run to completion (sorted merges, no early exits);
//! * every surviving subproblem goes to the coloring-bounded MC search —
//!   no k-vertex-cover algorithmic choice.
//!
//! Shared with PMC proper: degeneracy ordering, a coreness-based greedy
//! heuristic, parallel search over vertices, coloring-based pruning.

use crate::shared::{greedy_from, SharedBest};
use lazymc_graph::{CsrGraph, VertexId};
use lazymc_intersect::intersect_sorted;
use lazymc_order::kcore_sequential;
use lazymc_solver::bitset::BitMatrix;
use lazymc_solver::max_clique_dense;
use rayon::prelude::*;

/// Runs the PMC-like solver; returns a maximum clique in original ids.
pub fn pmc_like(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let kc = kcore_sequential(g);

    // Eager reordered graph: vertices relabelled by peeling order. This is
    // the up-front cost LazyMC's lazy representation avoids.
    let mut rank = vec![0 as VertexId; n];
    for (i, &v) in kc.peel_order.iter().enumerate() {
        rank[v as usize] = i as VertexId;
    }
    let rg = g.relabel(&rank);
    let core_rel: Vec<u32> = kc
        .peel_order
        .iter()
        .map(|&v| kc.coreness[v as usize])
        .collect();

    let best = SharedBest::new();

    // Heuristic: greedy descent from the vertices of the top coreness
    // levels (PMC primes its incumbent the same way).
    let top: Vec<VertexId> = (0..n as VertexId)
        .filter(|&v| kc.coreness[v as usize] == kc.degeneracy)
        .take(16)
        .collect();
    for v in top {
        best.offer(&greedy_from(g, v));
    }

    // Parallel branch-and-bound over right-neighbourhoods, highest
    // coreness first.
    (0..n as VertexId).into_par_iter().rev().for_each(|v| {
        let cstar = best.size();
        if (core_rel[v as usize] as usize) < cstar {
            return;
        }
        let nbrs = rg.neighbors(v);
        let split = nbrs.partition_point(|&u| u <= v);
        let right = &nbrs[split..];
        if right.len() < cstar {
            return; // cannot host a clique of size cstar+1 through v
        }
        // Cut out G[N+(v)] with full sorted-merge intersections.
        let members: Vec<VertexId> = right.to_vec();
        let mut adj = BitMatrix::new(members.len());
        let mut row = Vec::new();
        for (i, &u) in members.iter().enumerate() {
            intersect_sorted(&members, rg.neighbors(u), &mut row);
            for &w in &row {
                let j = members.binary_search(&w).expect("member");
                if j > i {
                    adj.add_edge(i, j);
                }
            }
        }
        if let Some(local) = max_clique_dense(&adj, cstar.saturating_sub(1), None) {
            let mut clique: Vec<VertexId> = local
                .iter()
                .map(|&i| kc.peel_order[members[i as usize] as usize])
                .collect();
            clique.push(kc.peel_order[v as usize]);
            best.offer(&clique);
        }
    });

    // Ensure a non-empty answer on edgeless graphs.
    let result = best.take();
    if result.is_empty() && n > 0 {
        return vec![0];
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;

    #[test]
    fn pmc_solves_known_graphs() {
        assert_eq!(pmc_like(&gen::complete(9)).len(), 9);
        assert_eq!(pmc_like(&gen::path(15)).len(), 2);
        assert_eq!(pmc_like(&gen::triangulated_grid(6, 5)).len(), 4);
        assert_eq!(pmc_like(&CsrGraph::empty(4)).len(), 1);
        assert_eq!(pmc_like(&CsrGraph::empty(0)).len(), 0);
    }

    #[test]
    fn pmc_finds_planted_clique() {
        let g = gen::planted_clique(200, 0.03, 11, 4);
        let c = pmc_like(&g);
        assert!(g.is_clique(&c));
        assert_eq!(c.len(), 11);
    }

    #[test]
    fn pmc_caveman() {
        let g = gen::caveman(8, 6, 0.05, 3);
        assert_eq!(pmc_like(&g).len(), 6);
    }
}
