//! Criterion micro-benchmark: lazy-graph construction policies — what
//! Fig. 4 measures end-to-end, isolated to the representation layer.
//! "None" costs nothing up front; "Must" builds the zone of interest;
//! "All" pays for the whole graph (the paper's 26×/OOM failure mode).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazymc_graph::gen;
use lazymc_lazygraph::{LazyGraph, PrePopulate};
use lazymc_order::{coreness_degree_order, kcore_sequential};
use std::hint::black_box;
use std::sync::atomic::AtomicUsize;
use std::sync::Arc;

fn bench_prepopulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazygraph_prepopulate");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let g = gen::planted_clique(20_000, 0.001, 20, 7);
    let kc = kcore_sequential(&g);
    let ord = coreness_degree_order(&g, &kc.coreness);
    // A realistic incumbent: what the degree heuristic would know.
    let incumbent = 18usize;

    for (label, policy) in [
        ("none", PrePopulate::None),
        ("must", PrePopulate::Must),
        ("all", PrePopulate::All),
    ] {
        group.bench_with_input(BenchmarkId::new("policy", label), &policy, |b, &policy| {
            b.iter(|| {
                let inc = Arc::new(AtomicUsize::new(incumbent));
                let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc);
                lg.prepopulate(policy, incumbent);
                black_box(lg.built_counts())
            })
        });
    }
    group.finish();
}

fn bench_query_after_policy(c: &mut Criterion) {
    let mut group = c.benchmark_group("lazygraph_query");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let g = gen::planted_clique(20_000, 0.001, 20, 7);
    let kc = kcore_sequential(&g);
    let ord = coreness_degree_order(&g, &kc.coreness);
    // Queries touch only the deepest core — the realistic access pattern.
    let hot: Vec<u32> = (0..g.num_vertices() as u32)
        .filter(|&v| kc.coreness[ord.to_original(v) as usize] >= 18)
        .collect();

    group.bench_function("cold_lazy_then_hot_queries", |b| {
        b.iter(|| {
            let inc = Arc::new(AtomicUsize::new(18));
            let lg = LazyGraph::new(&g, &ord, &kc.coreness, inc);
            let mut total = 0usize;
            for &v in &hot {
                total += lg.sorted(v).len();
                total += lg.hashed(v).len();
            }
            black_box(total)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_prepopulate, bench_query_after_policy);
criterion_main!(benches);
