//! Lock-free log₂-bucketed latency histograms.
//!
//! Bucket `i` counts observations `v` (in microseconds) with
//! `v <= 2^i µs`; the last bucket is the `+Inf` overflow. 31 finite
//! buckets span 1 µs to 2^30 µs (~18 minutes) — wider than any request
//! the daemon will ever serve — at a fixed 2× relative error, which is
//! plenty for p50/p90/p99 and costs one `fetch_add` per observation.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of buckets, including the final `+Inf` overflow bucket.
pub const BUCKETS: usize = 32;

/// A mergeable, lock-free latency histogram (microsecond domain).
#[derive(Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_us: AtomicU64,
}

/// Bucket index for a value in microseconds: the smallest `i` with
/// `v <= 2^i`, clamped into the overflow bucket.
#[inline]
fn bucket_index(v_us: u64) -> usize {
    let bits = u64::BITS - v_us.saturating_sub(1).leading_zeros();
    (bits as usize).min(BUCKETS - 1)
}

/// Upper bound of finite bucket `i`, in microseconds.
#[inline]
fn bucket_bound_us(i: usize) -> u64 {
    1u64 << i
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Histogram {
        Histogram::default()
    }

    /// Records one observation of `v_us` microseconds.
    #[inline]
    pub fn observe_micros(&self, v_us: u64) {
        self.buckets[bucket_index(v_us)].fetch_add(1, Ordering::Relaxed);
        self.sum_us.fetch_add(v_us, Ordering::Relaxed);
    }

    /// Records one observation of a `Duration`.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// A consistent-enough snapshot (relaxed loads; buckets may trail the
    /// sum by in-flight observations, which is fine for monitoring).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (b, a) in buckets.iter_mut().zip(self.buckets.iter()) {
            *b = a.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            sum_us: self.sum_us.load(Ordering::Relaxed),
        }
    }
}

/// Immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket (non-cumulative) observation counts.
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed values, microseconds.
    pub sum_us: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            sum_us: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Element-wise sum with another snapshot (e.g. folding per-phase
    /// histograms into an all-phases total).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.sum_us += other.sum_us;
    }

    /// Quantile estimate in microseconds: the upper bound of the bucket
    /// where the cumulative count first reaches `q * count`. Within a
    /// factor of 2 of the true quantile; `None` when empty. `q` is
    /// clamped to `[0, 1]`.
    pub fn quantile_us(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_bound_us(i.min(BUCKETS - 2)));
            }
        }
        Some(bucket_bound_us(BUCKETS - 2))
    }

    /// Appends this snapshot as a Prometheus histogram family body:
    /// cumulative `_bucket{le="..."}` series (seconds domain, trailing
    /// `+Inf`), `_sum` (seconds) and `_count`. `extra_labels` (e.g.
    /// `route="/solve"`) are spliced into every series; the caller owns
    /// the `# HELP`/`# TYPE` header so one family can carry many label
    /// sets.
    pub fn render_prometheus(&self, out: &mut String, name: &str, extra_labels: &str) {
        let sep = if extra_labels.is_empty() { "" } else { "," };
        let mut cumulative = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            cumulative += c;
            if i == BUCKETS - 1 {
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{extra_labels}{sep}le=\"+Inf\"}} {cumulative}"
                );
            } else {
                let le = bucket_bound_us(i) as f64 / 1e6;
                let _ = writeln!(
                    out,
                    "{name}_bucket{{{extra_labels}{sep}le=\"{le}\"}} {cumulative}"
                );
            }
        }
        let labels = if extra_labels.is_empty() {
            String::new()
        } else {
            format!("{{{extra_labels}}}")
        };
        let _ = writeln!(out, "{name}_sum{labels} {}", self.sum_us as f64 / 1e6);
        let _ = writeln!(out, "{name}_count{labels} {cumulative}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_smallest_covering_power() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(5), 3);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(1025), 11);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn observations_land_under_their_bound() {
        let h = Histogram::new();
        for v in [0u64, 1, 7, 1000, 1_000_000, u64::MAX] {
            h.observe_micros(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 6);
        // Every finite observation sits in a bucket whose bound covers it.
        for (i, &c) in s.buckets.iter().enumerate().take(BUCKETS - 1) {
            if c > 0 {
                assert!(bucket_bound_us(i) >= 1);
            }
        }
        assert_eq!(s.buckets[BUCKETS - 1], 1, "u64::MAX overflows");
    }

    #[test]
    fn merge_sums_counts_and_sums() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe_micros(10);
        b.observe_micros(10);
        b.observe_micros(100_000);
        let mut s = a.snapshot();
        s.merge(&b.snapshot());
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum_us, 100_020);
    }

    #[test]
    fn quantiles_bound_the_data() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe_micros(1_000); // ~1ms
        }
        for _ in 0..10 {
            h.observe_micros(1_000_000); // ~1s
        }
        let s = h.snapshot();
        let p50 = s.quantile_us(0.50).unwrap();
        let p99 = s.quantile_us(0.99).unwrap();
        assert!((1_000..4_000).contains(&p50), "p50 ~1ms, got {p50}");
        assert!((1_000_000..4_000_000).contains(&p99), "p99 ~1s, got {p99}");
        assert_eq!(HistogramSnapshot::default().quantile_us(0.5), None);
    }

    #[test]
    fn prometheus_rendering_is_cumulative_and_complete() {
        let h = Histogram::new();
        h.observe_micros(3);
        h.observe_micros(1_000);
        let mut out = String::new();
        h.snapshot().render_prometheus(&mut out, "x_seconds", "");
        let buckets: Vec<&str> = out.lines().filter(|l| l.contains("_bucket")).collect();
        assert_eq!(buckets.len(), BUCKETS);
        assert!(buckets.last().unwrap().contains("le=\"+Inf\"} 2"));
        // Cumulative counts are monotone non-decreasing.
        let counts: Vec<u64> = buckets
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]));
        assert!(out.contains("x_seconds_sum 0.001003"));
        assert!(out.contains("x_seconds_count 2"));
    }

    #[test]
    fn prometheus_rendering_splices_labels() {
        let h = Histogram::new();
        h.observe_micros(5);
        let mut out = String::new();
        h.snapshot()
            .render_prometheus(&mut out, "x_seconds", "route=\"/solve\"");
        assert!(out.contains("x_seconds_bucket{route=\"/solve\",le=\"+Inf\"} 1"));
        assert!(out.contains("x_seconds_sum{route=\"/solve\"}"));
        assert!(out.contains("x_seconds_count{route=\"/solve\"} 1"));
    }

    #[test]
    fn concurrent_observations_are_not_lost() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.observe_micros(t * 1000 + i % 7);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.snapshot().count(), 40_000);
    }
}
