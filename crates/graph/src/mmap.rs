//! Zero-copy `.lmcs` loading: `mmap` the snapshot file and point CSR
//! slices straight into the mapping.
//!
//! The `.lmcs` layout was designed for this from day one (fixed header,
//! absolute 8-byte-aligned section offsets — see [`crate::snapshot`]);
//! this module finally cashes that in. [`MappedSnapshot::map`] runs the
//! *same* validation ladder as [`Snapshot::decode`] +
//! [`Snapshot::graph`] — exact length, whole-file checksum, hostile
//! section-table checks, CSR structure, content re-fingerprint — but
//! reads the bytes through the mapping instead of copying them, so a
//! validated graph costs one streaming pass at page-cache speed and
//! **zero resident heap**. The offsets, targets, coreness and peel-order
//! arrays are then borrowed `&[u64]` / `&[u32]` slices into the file.
//!
//! # Safety argument
//!
//! The borrowed slices are sound because:
//!
//! * `mmap` returns a page-aligned base, and every section payload
//!   starts at a file offset that is a validated multiple of 8, so the
//!   `*const u8 → *const u32 / *const u64` casts are always aligned;
//! * the mapping is `PROT_READ` + `MAP_PRIVATE` and lives exactly as
//!   long as the `MappedSnapshot` (unmapped in `Drop`), and every slice
//!   borrows from `&self`, so no slice can outlive the mapping;
//! * section bounds were checked against the mapped length before any
//!   slice is formed, so no slice reaches past the file;
//! * snapshot files are only ever replaced by atomic rename
//!   ([`crate::snapshot::write_file_atomic`]) or quarantined by rename —
//!   never rewritten in place — so the inode backing an open mapping is
//!   immutable for the mapping's lifetime and the process cannot take a
//!   `SIGBUS` from a shrinking file. In-place corruption by an outside
//!   actor is outside the contract; the service's scrubber detects it on
//!   the *file* and drops the mapped registry entry (see
//!   `docs/snapshot-format.md` § zero-copy loader).
//!
//! u32/u64 have no invalid bit patterns, so even hostile payload bytes
//! can at worst fail validation — they cannot cause UB through the
//! typed slices.

use crate::csr::CsrGraph;
use crate::snapshot::{
    fnv1a_update, HEADER_LEN, MAGIC, SECTION_RECORD_LEN, SEC_CORENESS, SEC_OFFSETS, SEC_PEEL_ORDER,
    SEC_TARGETS, VERSION,
};
use crate::{access::GraphAccess, VertexId};
use std::path::Path;

/// Raw mmap surface, `extern "C"` against the libc `std` already links —
/// same zero-deps pattern as `crates/netio`.
mod sys {
    #![allow(non_camel_case_types)]

    use std::os::raw::{c_int, c_void};

    pub const PROT_READ: c_int = 0x1;
    pub const MAP_PRIVATE: c_int = 0x02;
    /// `MAP_FAILED` is `(void *)-1`.
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    pub const MADV_RANDOM: c_int = 1;
    pub const MADV_WILLNEED: c_int = 3;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            length: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, length: usize) -> c_int;
        pub fn madvise(addr: *mut c_void, length: usize, advice: c_int) -> c_int;
    }
}

/// Byte range of one section payload inside the mapping.
#[derive(Clone, Copy)]
struct Span {
    offset: usize,
    count: usize,
}

/// A validated `.lmcs` snapshot whose CSR arrays are borrowed straight
/// out of a read-only file mapping. See the module docs for the
/// validation ladder and the safety argument.
pub struct MappedSnapshot {
    base: *mut std::os::raw::c_void,
    len: usize,
    fingerprint: u64,
    n: usize,
    m2: usize,
    offsets: Span,
    targets: Span,
    coreness: Option<Span>,
    peel_order: Option<Span>,
    degeneracy: u32,
}

// SAFETY: the mapping is PROT_READ and never written through; all
// accessors hand out shared immutable slices, so the type is as
// thread-safe as `&[u8]`.
unsafe impl Send for MappedSnapshot {}
unsafe impl Sync for MappedSnapshot {}

impl Drop for MappedSnapshot {
    fn drop(&mut self) {
        // SAFETY: base/len are exactly what mmap returned; the struct is
        // being dropped, so no borrowed slice can still be live.
        unsafe {
            sys::munmap(self.base, self.len);
        }
    }
}

/// RAII guard so validation failures between `mmap` and the
/// `MappedSnapshot` construction still unmap.
struct RawMapping {
    base: *mut std::os::raw::c_void,
    len: usize,
}

impl Drop for RawMapping {
    fn drop(&mut self) {
        if !self.base.is_null() {
            // SAFETY: base/len came from a successful mmap.
            unsafe {
                sys::munmap(self.base, self.len);
            }
        }
    }
}

impl MappedSnapshot {
    /// Maps `path` and validates it with full decoder parity: anything
    /// [`Snapshot::decode`] / [`Snapshot::graph`] would reject, this
    /// rejects with an equivalent error — truncation, bit flips, hostile
    /// section tables, malformed CSR, fingerprint mismatch — plus shape
    /// checks on embedded coreness / peel-order sections when present.
    ///
    /// [`Snapshot::decode`]: crate::snapshot::Snapshot::decode
    /// [`Snapshot::graph`]: crate::snapshot::Snapshot::graph
    pub fn map(path: &Path) -> Result<MappedSnapshot, String> {
        use std::os::unix::io::AsRawFd;

        let file = std::fs::File::open(path).map_err(|e| format!("open {path:?}: {e}"))?;
        let len = file
            .metadata()
            .map_err(|e| format!("stat {path:?}: {e}"))?
            .len();
        let len = usize::try_from(len).map_err(|_| "file larger than address space")?;
        if len < HEADER_LEN {
            return Err(format!(
                "file too short for a snapshot header ({len} bytes)"
            ));
        }
        // SAFETY: plain read-only private mapping of an open fd; length
        // is non-zero (>= HEADER_LEN). The fd may be closed after mmap —
        // the mapping keeps its own reference to the inode.
        let base = unsafe {
            sys::mmap(
                std::ptr::null_mut(),
                len,
                sys::PROT_READ,
                sys::MAP_PRIVATE,
                file.as_raw_fd(),
                0,
            )
        };
        if base == sys::MAP_FAILED {
            return Err(format!(
                "mmap {path:?} failed: {}",
                std::io::Error::last_os_error()
            ));
        }
        let guard = RawMapping { base, len };
        // SAFETY: the mapping covers exactly `len` readable bytes and
        // outlives `bytes` via `guard` (moved into the final struct on
        // success, unmapped on error).
        let bytes: &[u8] = unsafe { std::slice::from_raw_parts(base as *const u8, len) };
        let parsed = Self::validate(bytes)?;
        let mapped = MappedSnapshot {
            base: guard.base,
            len: guard.len,
            fingerprint: parsed.fingerprint,
            n: parsed.n,
            m2: parsed.m2,
            offsets: parsed.offsets,
            targets: parsed.targets,
            coreness: parsed.coreness,
            peel_order: parsed.peel_order,
            degeneracy: parsed.degeneracy,
        };
        std::mem::forget(guard);
        Ok(mapped)
    }

    /// The full decoder-parity validation ladder over the mapped bytes.
    fn validate(bytes: &[u8]) -> Result<ParsedLayout, String> {
        // ---- header (Snapshot::peek parity) ----
        if bytes[0..4] != MAGIC {
            return Err("bad magic (not an .lmcs file)".into());
        }
        let version = u32_at(bytes, 4);
        if version != VERSION {
            return Err(format!("unsupported snapshot version {version}"));
        }
        let file_len = u64_at(bytes, 8);
        if file_len != bytes.len() as u64 {
            return Err(format!(
                "truncated or padded snapshot: header promises {} bytes, file has {}",
                file_len,
                bytes.len()
            ));
        }
        let fingerprint = u64_at(bytes, 16);
        let n_u64 = u64_at(bytes, 24);
        let m2_u64 = u64_at(bytes, 32);
        let n = usize::try_from(n_u64).map_err(|_| "vertex count overflows usize")?;
        let m2 = usize::try_from(m2_u64).map_err(|_| "target count overflows usize")?;

        // ---- whole-file checksum (Snapshot::decode parity) ----
        let stored_checksum = u64_at(bytes, 48);
        let computed = fnv1a_update(
            fnv1a_update(crate::snapshot::fnv1a(&bytes[..48]), &[0u8; 8]),
            &bytes[56..],
        );
        if computed != stored_checksum {
            return Err(format!(
                "checksum mismatch: stored {stored_checksum:016x}, computed {computed:016x}"
            ));
        }

        // ---- section table (Snapshot::decode parity) ----
        let section_count = u32_at(bytes, 40) as usize;
        let table_end = HEADER_LEN
            .checked_add(
                section_count
                    .checked_mul(SECTION_RECORD_LEN)
                    .ok_or("section table overflow")?,
            )
            .ok_or("section table overflow")?;
        if table_end > bytes.len() {
            return Err("section table extends past end of file".into());
        }
        let mut sections: Vec<(u32, u32, Span)> = Vec::with_capacity(section_count);
        for i in 0..section_count {
            let at = HEADER_LEN + i * SECTION_RECORD_LEN;
            let id = u32_at(bytes, at);
            let width = u32_at(bytes, at + 4);
            let offset = u64_at(bytes, at + 8) as usize;
            let count = u64_at(bytes, at + 16) as usize;
            if width != 4 && width != 8 {
                return Err(format!("section {id}: unsupported element width {width}"));
            }
            if !offset.is_multiple_of(8) {
                return Err(format!("section {id}: payload not 8-byte aligned"));
            }
            let byte_len = count
                .checked_mul(width as usize)
                .ok_or_else(|| format!("section {id}: length overflow"))?;
            let end = offset
                .checked_add(byte_len)
                .ok_or_else(|| format!("section {id}: extent overflow"))?;
            if offset < table_end || end > bytes.len() {
                return Err(format!("section {id}: payload out of bounds"));
            }
            if sections.iter().any(|(existing, _, _)| *existing == id) {
                return Err(format!("duplicate section id {id}"));
            }
            sections.push((id, width, Span { offset, count }));
        }
        let span_of = |want_id: u32, want_width: u32| -> Option<Span> {
            sections
                .iter()
                .find(|(id, width, _)| *id == want_id && *width == want_width)
                .map(|(_, _, span)| *span)
        };

        // ---- CSR structure (Snapshot::graph parity) ----
        let off_span = span_of(SEC_OFFSETS, 8).ok_or("snapshot has no offsets section")?;
        let tgt_span = span_of(SEC_TARGETS, 4).ok_or("snapshot has no targets section")?;
        if off_span.count != n + 1 {
            return Err(format!(
                "offsets section has {} entries, expected n+1 = {}",
                off_span.count,
                n + 1
            ));
        }
        if tgt_span.count != m2 {
            return Err(format!(
                "targets section has {} entries, header says {}",
                tgt_span.count, m2
            ));
        }
        let offsets = slice_u64(bytes, off_span);
        let targets = slice_u32(bytes, tgt_span);
        if offsets.first() != Some(&0) || offsets.last() != Some(&(m2 as u64)) {
            return Err("offsets do not span the targets array".into());
        }
        if offsets.windows(2).any(|w| w[0] > w[1]) {
            return Err("offsets are not monotone".into());
        }
        if n > 0 && targets.iter().any(|&t| (t as usize) >= n) {
            return Err("target vertex out of range".into());
        }
        if n == 0 && !targets.is_empty() {
            return Err("targets present in an empty graph".into());
        }

        // ---- content re-fingerprint (Snapshot::graph parity), computed
        // over the mapped slices — no CSR copy ----
        let fp = fingerprint_csr(n, offsets, targets);
        if fp != fingerprint {
            return Err(format!(
                "content fingerprint mismatch: stored {fingerprint:016x}, decoded {fp:016x}"
            ));
        }

        // ---- embedded decomposition (extract_kcore parity) ----
        let coreness = span_of(SEC_CORENESS, 4);
        if let Some(span) = coreness {
            if span.count != n {
                return Err(format!(
                    "coreness section has {} entries for {n} vertices",
                    span.count
                ));
            }
        }
        let peel_order = span_of(SEC_PEEL_ORDER, 4);
        if let Some(span) = peel_order {
            if span.count != n {
                return Err(format!(
                    "peel order has {} entries for {n} vertices",
                    span.count
                ));
            }
            let order = slice_u32(bytes, span);
            let mut seen = vec![false; n];
            for &v in order {
                let Some(slot) = seen.get_mut(v as usize) else {
                    return Err(format!("peel order names out-of-range vertex {v}"));
                };
                if std::mem::replace(slot, true) {
                    return Err(format!("peel order repeats vertex {v}"));
                }
            }
        }
        let degeneracy = coreness
            .map(|span| slice_u32(bytes, span).iter().copied().max().unwrap_or(0))
            .unwrap_or(0);

        Ok(ParsedLayout {
            fingerprint,
            n,
            m2,
            offsets: off_span,
            targets: tgt_span,
            coreness,
            peel_order,
            degeneracy,
        })
    }

    /// The mapped bytes (whole file).
    fn bytes(&self) -> &[u8] {
        // SAFETY: the mapping is live for &self's lifetime and covers
        // exactly `len` readable bytes.
        unsafe { std::slice::from_raw_parts(self.base as *const u8, self.len) }
    }

    /// CSR row offsets, borrowed from the mapping (`n + 1` entries).
    pub fn offsets(&self) -> &[u64] {
        slice_u64(self.bytes(), self.offsets)
    }

    /// CSR adjacency targets, borrowed from the mapping (`m2` entries).
    pub fn targets(&self) -> &[u32] {
        slice_u32(self.bytes(), self.targets)
    }

    /// Embedded per-vertex coreness, borrowed from the mapping.
    pub fn coreness(&self) -> Option<&[u32]> {
        self.coreness.map(|span| slice_u32(self.bytes(), span))
    }

    /// Embedded sequential peel order (empty when the snapshot was
    /// written from a parallel decomposition, which records none).
    pub fn peel_order(&self) -> &[u32] {
        self.peel_order
            .map(|span| slice_u32(self.bytes(), span))
            .unwrap_or(&[])
    }

    /// Content fingerprint (validated against the stored CSR on map).
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Degeneracy = max embedded coreness (0 when no coreness section).
    pub fn degeneracy(&self) -> u32 {
        self.degeneracy
    }

    /// Size of the backing file in bytes (the mapping's length).
    pub fn byte_len(&self) -> u64 {
        self.len as u64
    }

    /// Hints the kernel to prefetch the whole mapping (first solve on a
    /// cold graph).
    pub fn advise_willneed(&self) {
        // SAFETY: base/len are the live mapping; madvise is advisory and
        // cannot invalidate it. Failure is ignorable by design.
        unsafe {
            sys::madvise(self.base, self.len, sys::MADV_WILLNEED);
        }
    }

    /// Hints the kernel that access will be random (branch-and-bound
    /// neighbourhood probes), disabling readahead.
    pub fn advise_random(&self) {
        // SAFETY: as advise_willneed.
        unsafe {
            sys::madvise(self.base, self.len, sys::MADV_RANDOM);
        }
    }
}

impl std::fmt::Debug for MappedSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedSnapshot")
            .field("len", &self.len)
            .field("n", &self.n)
            .field("m2", &self.m2)
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("degeneracy", &self.degeneracy)
            .finish()
    }
}

impl GraphAccess for MappedSnapshot {
    fn num_vertices(&self) -> usize {
        self.n
    }

    fn num_edges(&self) -> usize {
        self.m2 / 2
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let offsets = self.offsets();
        let start = offsets[v as usize] as usize;
        let end = offsets[v as usize + 1] as usize;
        &self.targets()[start..end]
    }

    fn degree(&self, v: VertexId) -> usize {
        let offsets = self.offsets();
        (offsets[v as usize + 1] - offsets[v as usize]) as usize
    }
}

/// What `validate` extracts from the bytes, before the struct exists.
struct ParsedLayout {
    fingerprint: u64,
    n: usize,
    m2: usize,
    offsets: Span,
    targets: Span,
    coreness: Option<Span>,
    peel_order: Option<Span>,
    degeneracy: u32,
}

/// [`CsrGraph::fingerprint`] recomputed over borrowed snapshot slices:
/// n, then degree gaps, then targets — byte-identical mixing.
fn fingerprint_csr(n: usize, offsets: &[u64], targets: &[u32]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    let mut mix = |x: u64| {
        for byte in x.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(PRIME);
        }
    };
    mix(n as u64);
    for w in offsets.windows(2) {
        mix(w[1] - w[0]);
    }
    for &t in targets {
        mix(t as u64);
    }
    h
}

fn u32_at(bytes: &[u8], at: usize) -> u32 {
    u32::from_le_bytes(
        bytes[at..at + 4]
            .try_into()
            .unwrap_or_else(|_| unreachable!("bounds checked by caller")),
    )
}

fn u64_at(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(
        bytes[at..at + 8]
            .try_into()
            .unwrap_or_else(|_| unreachable!("bounds checked by caller")),
    )
}

/// Borrows a validated u64 section out of the mapped bytes.
fn slice_u64(bytes: &[u8], span: Span) -> &[u64] {
    let ptr = bytes[span.offset..span.offset + span.count * 8].as_ptr();
    debug_assert!(
        (ptr as usize).is_multiple_of(8),
        "section offset must be 8-aligned"
    );
    // SAFETY: the span's bounds and 8-byte alignment were validated
    // against the mapping before construction (see `validate`); the
    // mapping base itself is page-aligned, so `base + offset` is
    // 8-aligned. u64 has no invalid bit patterns. Lifetime is tied to
    // `bytes`, which borrows the mapping.
    unsafe { std::slice::from_raw_parts(ptr as *const u64, span.count) }
}

/// Borrows a validated u32 section out of the mapped bytes.
fn slice_u32(bytes: &[u8], span: Span) -> &[u32] {
    let ptr = bytes[span.offset..span.offset + span.count * 4].as_ptr();
    debug_assert!(
        (ptr as usize).is_multiple_of(4),
        "section offset must be 4-aligned"
    );
    // SAFETY: as `slice_u64` — bounds/alignment validated up front, u32
    // has no invalid bit patterns, lifetime tied to the mapping.
    unsafe { std::slice::from_raw_parts(ptr as *const u32, span.count) }
}

/// One graph, either decoded onto the heap or mapped zero-copy — the
/// registry's unit of residency. Small graphs stay [`GraphStore::Heap`]
/// (the dense kernels' bit-matrix fast path wants hot contiguous heap
/// memory anyway); large graphs go [`GraphStore::Mapped`] and cost the
/// page cache, not the process, their bytes.
#[derive(Debug)]
pub enum GraphStore {
    Heap(CsrGraph),
    Mapped(MappedSnapshot),
}

impl GraphStore {
    /// Approximate resident heap bytes: the CSR arrays for heap graphs,
    /// 0 for mapped graphs (their pages belong to the page cache and are
    /// reclaimable at any time — eviction must not count them).
    pub fn heap_bytes(&self) -> u64 {
        match self {
            GraphStore::Heap(g) => {
                let (offsets, targets) = g.raw_parts();
                (std::mem::size_of_val(offsets) + std::mem::size_of_val(targets)) as u64
            }
            GraphStore::Mapped(_) => 0,
        }
    }

    /// Bytes of file mapped into the address space (0 for heap graphs).
    pub fn mapped_bytes(&self) -> u64 {
        match self {
            GraphStore::Heap(_) => 0,
            GraphStore::Mapped(m) => m.byte_len(),
        }
    }

    pub fn is_mapped(&self) -> bool {
        matches!(self, GraphStore::Mapped(_))
    }

    /// Content fingerprint, identical across representations.
    pub fn fingerprint(&self) -> u64 {
        match self {
            GraphStore::Heap(g) => g.fingerprint(),
            GraphStore::Mapped(m) => m.fingerprint(),
        }
    }

    pub fn as_mapped(&self) -> Option<&MappedSnapshot> {
        match self {
            GraphStore::Heap(_) => None,
            GraphStore::Mapped(m) => Some(m),
        }
    }
}

impl GraphAccess for GraphStore {
    fn num_vertices(&self) -> usize {
        match self {
            GraphStore::Heap(g) => GraphAccess::num_vertices(g),
            GraphStore::Mapped(m) => GraphAccess::num_vertices(m),
        }
    }

    fn num_edges(&self) -> usize {
        match self {
            GraphStore::Heap(g) => GraphAccess::num_edges(g),
            GraphStore::Mapped(m) => GraphAccess::num_edges(m),
        }
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        match self {
            GraphStore::Heap(g) => GraphAccess::neighbors(g, v),
            GraphStore::Mapped(m) => GraphAccess::neighbors(m, v),
        }
    }

    fn degree(&self, v: VertexId) -> usize {
        match self {
            GraphStore::Heap(g) => GraphAccess::degree(g, v),
            GraphStore::Mapped(m) => GraphAccess::degree(m, v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use crate::snapshot::{write_file_atomic, Snapshot};

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("lazymc_mmap_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn snap_to(path: &Path, g: &CsrGraph) {
        let bytes = Snapshot::from_graph(g).encode();
        write_file_atomic(path, &bytes).expect("write snapshot");
    }

    #[test]
    fn mapped_slices_match_heap_decode() {
        let dir = temp_dir("roundtrip");
        let g = gen::planted_clique(500, 0.02, 9, 42);
        let path = dir.join("g.lmcs");
        snap_to(&path, &g);
        let m = MappedSnapshot::map(&path).expect("map");
        assert_eq!(GraphAccess::num_vertices(&m), g.num_vertices());
        assert_eq!(GraphAccess::num_edges(&m), g.num_edges());
        assert_eq!(m.fingerprint(), g.fingerprint());
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(GraphAccess::neighbors(&m, v), g.neighbors(v));
            assert_eq!(GraphAccess::degree(&m, v), g.degree(v));
        }
        assert!(m.coreness().is_none());
        assert!(m.peel_order().is_empty());
        m.advise_willneed();
        m.advise_random();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn empty_graph_maps() {
        let dir = temp_dir("empty");
        let g = CsrGraph::empty(0);
        let path = dir.join("e.lmcs");
        snap_to(&path, &g);
        let m = MappedSnapshot::map(&path).expect("map empty");
        assert_eq!(GraphAccess::num_vertices(&m), 0);
        assert_eq!(GraphAccess::num_edges(&m), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn map_rejects_missing_and_garbage_files() {
        let dir = temp_dir("garbage");
        assert!(MappedSnapshot::map(&dir.join("nope.lmcs")).is_err());
        let short = dir.join("short.lmcs");
        std::fs::write(&short, b"LMCS").expect("write");
        assert!(MappedSnapshot::map(&short).is_err());
        let junk = dir.join("junk.lmcs");
        std::fs::write(&junk, vec![0xAAu8; 4096]).expect("write");
        assert!(MappedSnapshot::map(&junk).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn graph_store_byte_accounting() {
        let dir = temp_dir("store");
        let g = gen::gnp(300, 0.05, 3);
        let path = dir.join("g.lmcs");
        snap_to(&path, &g);
        let heap = GraphStore::Heap(g);
        assert!(!heap.is_mapped());
        assert!(heap.heap_bytes() > 0);
        assert_eq!(heap.mapped_bytes(), 0);
        let mapped = GraphStore::Mapped(MappedSnapshot::map(&path).expect("map"));
        assert!(mapped.is_mapped());
        assert_eq!(mapped.heap_bytes(), 0);
        assert!(mapped.mapped_bytes() > 0);
        assert_eq!(heap.fingerprint(), mapped.fingerprint());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
