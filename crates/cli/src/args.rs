//! Tiny flag parser: positional arguments plus `--flag [value]` options.
//! Deliberately dependency-free (the workspace promises no third-party
//! crates beyond the approved list).

use std::collections::HashMap;

/// Parsed command-line arguments for one subcommand.
pub struct Parsed {
    positional: Vec<String>,
    flags: HashMap<String, Option<String>>,
}

/// Flags that take a value (everything else is boolean).
const VALUED: &[&str] = &[
    "--threads",
    "--budget",
    "--phi",
    "--prepopulate",
    "--skip",
    "--top-k",
    "--filter-rounds",
    "--workers",
    "--solver-workers",
    "--io-threads",
    "--conn-limit",
    "--max-graphs",
    "--queue-cap",
    "--data-dir",
    "--max-budget-ms",
    "--job-ttl-ms",
    "--result-cache-bytes",
    "--slow-query-ms",
    "--queue-delay-target-ms",
    "--max-memory-bytes",
    "--drain-timeout-ms",
    "--scrub-interval-ms",
    "--mmap-threshold-bytes",
    "--dir",
    "--timeout-ms",
    "--suite",
    "--out",
    "--reps",
    "--write-graphs",
    "--check-json",
    "--compare",
];

impl Parsed {
    /// Parses `argv`; returns an error message on malformed input.
    pub fn parse(argv: &[String]) -> Result<Parsed, String> {
        let mut positional = Vec::new();
        let mut flags = HashMap::new();
        let mut i = 0;
        while i < argv.len() {
            let a = &argv[i];
            if let Some(name) = a.strip_prefix("--").map(|_| a.clone()) {
                if VALUED.contains(&name.as_str()) {
                    i += 1;
                    let v = argv
                        .get(i)
                        .ok_or_else(|| format!("flag {name} needs a value"))?;
                    flags.insert(name, Some(v.clone()));
                } else {
                    flags.insert(name, None);
                }
            } else {
                positional.push(a.clone());
            }
            i += 1;
        }
        Ok(Parsed { positional, flags })
    }

    /// The `idx`-th positional argument.
    pub fn positional(&self, idx: usize) -> Option<&str> {
        self.positional.get(idx).map(String::as_str)
    }

    /// Whether a boolean flag is present.
    pub fn has(&self, name: &str) -> bool {
        self.flags.contains_key(name)
    }

    /// A valued flag, parsed to `T`.
    pub fn value<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.flags.get(name) {
            Some(Some(v)) => v
                .parse::<T>()
                .map(Some)
                .map_err(|_| format!("invalid value {v:?} for {name}")),
            Some(None) => Err(format!("flag {name} needs a value")),
            None => Ok(None),
        }
    }

    /// A valued flag as a raw string.
    pub fn raw(&self, name: &str) -> Option<&str> {
        self.flags.get(name).and_then(|v| v.as_deref())
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn sv(items: &[&str]) -> Vec<String> {
        items.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn positional_and_flags() {
        let p = Parsed::parse(&sv(&["file.clq", "--threads", "4", "--quiet"])).unwrap();
        assert_eq!(p.positional(0), Some("file.clq"));
        assert_eq!(p.value::<usize>("--threads").unwrap(), Some(4));
        assert!(p.has("--quiet"));
        assert!(!p.has("--verbose"));
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(Parsed::parse(&sv(&["--threads"])).is_err());
    }

    #[test]
    fn bad_value_reports_flag_name() {
        let p = Parsed::parse(&sv(&["--phi", "xyz"])).unwrap();
        let err = p.value::<f64>("--phi").unwrap_err();
        assert!(err.contains("--phi"));
    }

    #[test]
    fn absent_flag_is_none() {
        let p = Parsed::parse(&sv(&["x"])).unwrap();
        assert_eq!(p.value::<usize>("--threads").unwrap(), None);
    }
}
