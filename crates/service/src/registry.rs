//! Named graph store and result cache.
//!
//! The registry is where the daemon amortizes work across queries: a graph
//! is parsed, fingerprinted and k-core-decomposed **once** at upload, then
//! every solve shares the `Arc`'d CSR arrays and exact coreness (handed to
//! [`lazymc_core::LazyMc::solve_prepared`], which skips its per-solve
//! k-core phase). Resident graphs are bounded with LRU eviction.
//!
//! The result cache keys completed solves by
//! `(graph name, content fingerprint, Config::canonical_key())`: the
//! fingerprint invalidates entries when a name is re-uploaded with
//! different content, and keeps them when identical content is re-uploaded.
//! Only exact results are cached — a truncated answer depends on budget
//! and machine load, not just the query.

use crate::health::Health;
use crate::persist::SnapshotStore;
use crate::plock;
use lazymc_graph::{CsrGraph, GraphStore};
use lazymc_order::{kcore_sequential, KCoreView};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// Default `--mmap-threshold-bytes`: snapshots at least this large load
/// zero-copy through [`lazymc_graph::MappedSnapshot`]; smaller ones decode
/// onto the heap, where pointer-free arrays beat page-cache indirection.
pub const DEFAULT_MMAP_THRESHOLD: u64 = 4 << 20;

/// Where a resident entry's k-core decomposition lives.
enum KCoreSource {
    /// Computed (upload) or decoded (heap reload) onto the heap.
    Owned(Arc<lazymc_order::KCore>),
    /// Embedded in the mapped snapshot; views borrow from the mapping.
    Embedded,
}

/// A resident graph with everything precomputed at load time.
pub struct GraphEntry {
    pub name: String,
    /// Heap CSR for uploads/small graphs, zero-copy mapping for large ones.
    pub graph: Arc<GraphStore>,
    /// Exact decomposition (with peel order) shared by every query.
    kcore: KCoreSource,
    pub fingerprint: u64,
    pub loaded_at: Instant,
    /// Milliseconds spent parsing + fingerprinting + decomposing at load
    /// (or decoding/mapping the snapshot, for lazy reloads).
    pub prep_ms: u64,
    /// Whether this entry came from a disk snapshot rather than an upload.
    pub lazy_loaded: bool,
    /// First-solve madvise latch (mapped entries only).
    madvised: AtomicBool,
    queries: AtomicU64,
    last_used: AtomicU64,
}

impl GraphEntry {
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    /// Borrowed view of the decomposition, regardless of where it lives.
    /// Mapped entries hand out slices straight into the file mapping.
    pub fn kcore_view(&self) -> KCoreView<'_> {
        match &self.kcore {
            KCoreSource::Owned(kc) => kc.view(),
            KCoreSource::Embedded => {
                let m = self
                    .graph
                    .as_mapped()
                    .expect("embedded kcore implies a mapped store");
                KCoreView {
                    coreness: m
                        .coreness()
                        .expect("mapped entries are validated to carry coreness"),
                    degeneracy: m.degeneracy(),
                    peel_order: m.peel_order(),
                }
            }
        }
    }

    pub fn degeneracy(&self) -> u32 {
        self.kcore_view().degeneracy
    }

    pub fn omega_upper_bound(&self) -> usize {
        self.kcore_view().omega_upper_bound()
    }

    /// Whether this entry serves straight from a page-cache-backed mapping.
    pub fn is_mapped(&self) -> bool {
        self.graph.is_mapped()
    }

    /// On the first solve touching a mapped entry, hint the kernel:
    /// prefetch the whole file now (`WILLNEED`), then disable readahead
    /// (`RANDOM`) for the branch-and-bound neighbourhood probes. No-op
    /// for heap entries and on every later call.
    pub fn advise_first_solve(&self) {
        if let Some(m) = self.graph.as_mapped() {
            if !self.madvised.swap(true, Ordering::Relaxed) {
                m.advise_willneed();
                m.advise_random();
            }
        }
    }
}

/// Bounded, thread-safe store of named graphs, optionally backed by a
/// [`SnapshotStore`]: uploads persist durably, LRU eviction only frees
/// memory (the snapshot stays), and a post-eviction or post-restart lookup
/// reloads the graph *and its precomputed coreness* from disk instead of
/// answering 404 — no re-upload, no re-core.
pub struct Registry {
    graphs: Mutex<HashMap<String, Arc<GraphEntry>>>,
    /// Names with a mutation in flight (lazy reload, upload, or removal);
    /// paired with `loading_done`. Concurrent misses on one name decode
    /// the snapshot once (single-flight), and reload/insert/remove never
    /// interleave on the same name (see [`Registry::acquire_name_slot`]).
    loading: Mutex<HashSet<String>>,
    loading_done: Condvar,
    store: Option<Arc<SnapshotStore>>,
    /// Degraded-health sink for snapshot write failures (see [`Health`]).
    health: Option<Arc<Health>>,
    capacity: usize,
    /// Snapshot size (bytes) at or above which loads go zero-copy.
    mmap_threshold: AtomicU64,
    clock: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
    /// k-core decompositions computed in-process (uploads). Lazy reloads
    /// deserialize instead, so this staying flat across a restart is the
    /// observable proof of work-avoidance.
    pub core_computes: AtomicU64,
}

impl Registry {
    /// A memory-only registry holding at most `capacity` graphs (≥ 1).
    pub fn new(capacity: usize) -> Registry {
        Registry::with_store(capacity, None)
    }

    /// A registry persisting every upload into `store` (when given).
    pub fn with_store(capacity: usize, store: Option<Arc<SnapshotStore>>) -> Registry {
        Registry::with_store_health(capacity, store, None)
    }

    /// Like [`Registry::with_store`], but snapshot write failures also
    /// flip `health` into the degraded state (and the next successful
    /// write clears it) instead of only logging.
    pub fn with_store_health(
        capacity: usize,
        store: Option<Arc<SnapshotStore>>,
        health: Option<Arc<Health>>,
    ) -> Registry {
        Registry {
            graphs: Mutex::new(HashMap::new()),
            loading: Mutex::new(HashSet::new()),
            loading_done: Condvar::new(),
            store,
            health,
            capacity: capacity.max(1),
            mmap_threshold: AtomicU64::new(DEFAULT_MMAP_THRESHOLD),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            core_computes: AtomicU64::new(0),
        }
    }

    /// The backing snapshot store, if any.
    pub fn store(&self) -> Option<&Arc<SnapshotStore>> {
        self.store.as_ref()
    }

    /// Sets the zero-copy threshold: snapshots of at least `bytes` load
    /// via `mmap` instead of a heap decode. `0` maps everything.
    pub fn set_mmap_threshold(&self, bytes: u64) {
        self.mmap_threshold.store(bytes, Ordering::Relaxed);
    }

    pub fn mmap_threshold(&self) -> u64 {
        self.mmap_threshold.load(Ordering::Relaxed)
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Registers `graph` under `name`, computing fingerprint and k-core
    /// once and (with a store) persisting the snapshot before it becomes
    /// visible. Replaces any same-named graph; evicts the
    /// least-recently-used entry when over capacity — eviction frees
    /// memory only, never the snapshot. Returns the shared entry.
    pub fn insert(&self, name: &str, graph: CsrGraph) -> Arc<GraphEntry> {
        let t = Instant::now();
        let fingerprint = graph.fingerprint();
        let kcore = kcore_sequential(&graph);
        self.core_computes.fetch_add(1, Ordering::Relaxed);
        // Claim the name's mutation slot only after the expensive
        // preprocessing: from here, save + install must not interleave
        // with a lazy reload of the same name (a loader that read the old
        // snapshot could otherwise install stale data over this upload).
        self.acquire_name_slot(name);
        let mut saved_len = None;
        if let Some(store) = &self.store {
            match store.save(name, &graph, &kcore) {
                Ok(len) => {
                    saved_len = Some(len);
                    // Disk works again: the snapshot subsystem is healthy,
                    // even if earlier uploads remain memory-only.
                    if let Some(health) = &self.health {
                        health.clear("snapshot");
                    }
                }
                Err(e) => {
                    store.write_errors.fetch_add(1, Ordering::Relaxed);
                    if let Some(health) = &self.health {
                        health.degrade(
                            "snapshot",
                            format!("snapshot write for {name:?} failed: {e}"),
                        );
                    }
                    eprintln!(
                        "lazymc-service: snapshot write for {name:?} failed ({e}); \
                         graph is resident but not durable"
                    );
                }
            }
        }
        // Large snapshots become the resident representation themselves:
        // drop the heap CSR and owned decomposition, re-map the file just
        // written, and let the page cache own the bytes.
        let mapped = saved_len
            .filter(|&len| len >= self.mmap_threshold.load(Ordering::Relaxed))
            .and(self.store.as_ref())
            .and_then(|store| store.load_mapped(name));
        let prep_ms = t.elapsed().as_millis() as u64;
        let entry = match mapped {
            Some(m) => self.install(
                name,
                GraphStore::Mapped(m),
                KCoreSource::Embedded,
                fingerprint,
                prep_ms,
                false,
            ),
            None => self.install(
                name,
                GraphStore::Heap(graph),
                KCoreSource::Owned(Arc::new(kcore)),
                fingerprint,
                prep_ms,
                false,
            ),
        };
        self.release_name_slot(name);
        entry
    }

    /// Builds the entry and installs it under the map lock, applying LRU
    /// eviction. Shared by uploads and lazy reloads.
    fn install(
        &self,
        name: &str,
        graph: GraphStore,
        kcore: KCoreSource,
        fingerprint: u64,
        prep_ms: u64,
        lazy_loaded: bool,
    ) -> Arc<GraphEntry> {
        let entry = Arc::new(GraphEntry {
            name: name.to_string(),
            graph: Arc::new(graph),
            kcore,
            fingerprint,
            loaded_at: Instant::now(),
            prep_ms,
            lazy_loaded,
            madvised: AtomicBool::new(false),
            queries: AtomicU64::new(0),
            last_used: AtomicU64::new(self.tick()),
        });
        let mut map = plock(&self.graphs);
        map.insert(name.to_string(), entry.clone());
        // Mapped entries cost ~nothing resident (the page cache owns their
        // bytes and reclaims them under pressure), so capacity — and the
        // eviction it drives — counts heap entries only.
        loop {
            let heap_resident = map.values().filter(|e| !e.graph.is_mapped()).count();
            if heap_resident <= self.capacity {
                break;
            }
            // Evict the stalest heap entry that is not the one just
            // inserted. In-flight solves keep their `Arc<GraphEntry>`
            // alive; with a store, the victim's snapshot remains on disk
            // for lazy reload.
            let victim = map
                .iter()
                .filter(|(k, e)| k.as_str() != name && !e.graph.is_mapped())
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        entry
    }

    /// Resident-map probe, bumping LRU stamp and query count on a hit.
    fn lookup_resident(&self, name: &str) -> Option<Arc<GraphEntry>> {
        let map = plock(&self.graphs);
        map.get(name).map(|e| {
            e.last_used.store(self.tick(), Ordering::Relaxed);
            e.queries.fetch_add(1, Ordering::Relaxed);
            e.clone()
        })
    }

    /// Looks up a graph. A memory miss falls through to the snapshot store
    /// (when configured): the first lookup after a restart or eviction
    /// decodes the snapshot — graph *and* coreness, no recomputation — and
    /// re-installs it. Concurrent misses on one name are single-flighted.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        if let Some(e) = self.lookup_resident(name) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(e);
        }
        let reloadable = self
            .store
            .as_ref()
            .is_some_and(|store| store.contains(name));
        if !reloadable {
            self.misses.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        // Win or wait for the per-name slot (shared with insert/remove).
        {
            let mut loading = plock(&self.loading);
            while loading.contains(name) {
                loading = self
                    .loading_done
                    .wait(loading)
                    .unwrap_or_else(PoisonError::into_inner);
                // The prior holder finished; its entry (if any) is resident.
                drop(loading);
                if let Some(e) = self.lookup_resident(name) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(e);
                }
                loading = plock(&self.loading);
            }
            loading.insert(name.to_string());
        }
        // We hold the slot. Re-check residency first: a load may have
        // completed between our miss and winning the slot — reloading again
        // would double-insert and reset the entry's counters.
        if let Some(e) = self.lookup_resident(name) {
            self.release_name_slot(name);
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(e);
        }
        let t = Instant::now();
        // Large snapshots re-enter as zero-copy mappings — O(µs), no heap
        // decode, no k-core extraction copies. Small ones decode as before.
        let use_mmap = self
            .store
            .as_ref()
            .and_then(|store| store.bytes_of(name))
            .is_some_and(|bytes| bytes >= self.mmap_threshold.load(Ordering::Relaxed));
        let loaded = if use_mmap {
            self.store
                .as_ref()
                .and_then(|store| store.load_mapped(name))
                .map(|m| {
                    let fingerprint = m.fingerprint();
                    (GraphStore::Mapped(m), KCoreSource::Embedded, fingerprint)
                })
        } else {
            self.store.as_ref().and_then(|store| store.load(name)).map(
                |(graph, kcore, fingerprint)| {
                    (
                        GraphStore::Heap(graph),
                        KCoreSource::Owned(Arc::new(kcore)),
                        fingerprint,
                    )
                },
            )
        };
        let result = match loaded {
            Some((graph, kcore, fingerprint)) => {
                let entry = self.install(
                    name,
                    graph,
                    kcore,
                    fingerprint,
                    t.elapsed().as_millis() as u64,
                    true,
                );
                entry.queries.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(entry)
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        };
        self.release_name_slot(name);
        result
    }

    /// Blocks until `name`'s mutation slot is free, then claims it. The
    /// slot serializes the three per-name mutators — lazy reload (in
    /// [`Registry::get`]), [`Registry::insert`], [`Registry::remove`] — so
    /// a DELETE cannot interleave with an in-flight disk reload (which
    /// would resurrect the deleted graph) and a re-upload cannot be
    /// overwritten by a loader that read the previous snapshot.
    fn acquire_name_slot(&self, name: &str) {
        let mut loading = plock(&self.loading);
        while loading.contains(name) {
            loading = self
                .loading_done
                .wait(loading)
                .unwrap_or_else(PoisonError::into_inner);
        }
        loading.insert(name.to_string());
    }

    fn release_name_slot(&self, name: &str) {
        plock(&self.loading).remove(name);
        self.loading_done.notify_all();
    }

    /// Drops a graph by name — from memory *and* from the snapshot store
    /// (DELETE means forget durably, unlike eviction). Returns `true` if
    /// the graph existed in either place. Solves already holding the entry
    /// keep their `Arc`'d arrays; only the name and the file go away.
    pub fn remove(&self, name: &str) -> bool {
        self.acquire_name_slot(name);
        let in_memory = plock(&self.graphs).remove(name).is_some();
        let on_disk = self.store.as_ref().is_some_and(|store| store.remove(name));
        self.release_name_slot(name);
        in_memory || on_disk
    }

    /// Drops the resident entry for `name` iff it is a zero-copy mapping.
    /// Used when the backing snapshot is quarantined: the mapping's pages
    /// belong to the rotted file, so it must not serve another solve. Heap
    /// entries own their (decode-validated) arrays and stay resident.
    pub fn drop_mapped(&self, name: &str) -> bool {
        let mut map = plock(&self.graphs);
        if map.get(name).is_some_and(|e| e.graph.is_mapped()) {
            map.remove(name);
            true
        } else {
            false
        }
    }

    pub fn len(&self) -> usize {
        plock(&self.graphs).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of resident entries, stalest first.
    pub fn entries(&self) -> Vec<Arc<GraphEntry>> {
        let map = plock(&self.graphs);
        let mut v: Vec<Arc<GraphEntry>> = map.values().cloned().collect();
        v.sort_by_key(|e| e.last_used.load(Ordering::Relaxed));
        v
    }
}

/// A cached exact solve.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    pub omega: usize,
    pub clique: Vec<u32>,
    /// Milliseconds the original (uncached) solve took.
    pub solve_ms: u64,
}

/// LRU cache of exact solve results keyed by
/// `(graph name, content fingerprint, canonical config)`.
///
/// The fingerprint makes re-uploading identical content under the same
/// name keep its cache entries while changed content invalidates them.
/// The *name* is in the key because the fingerprint alone is a 64-bit
/// non-cryptographic hash: an adversarial upload could collide it and a
/// hit would then return another graph's clique. With the name included,
/// a collision requires replacing that very graph, which already hands
/// the uploader control of its answers.
///
/// Eviction is accounted in **bytes**, not entries: a thousand 3-vertex
/// cliques and a thousand 10k-vertex witnesses are not the same memory,
/// and long-lived daemons care about the latter. Entries additionally
/// expire after `ttl` (when set) so a years-resident deployment does not
/// pin every answer it ever produced.
pub struct ResultCache {
    inner: Mutex<CacheInner>,
    max_bytes: usize,
    ttl: Option<Duration>,
    clock: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub ttl_evictions: AtomicU64,
    pub size_evictions: AtomicU64,
}

struct CacheInner {
    #[allow(clippy::type_complexity)]
    map: HashMap<(String, u64, String), CacheSlot>,
    bytes: usize,
}

struct CacheSlot {
    used: u64,
    stored: Instant,
    bytes: usize,
    result: CachedSolve,
}

/// Approximate heap footprint of one cache entry: both key strings, the
/// clique witness, and fixed bookkeeping overhead.
fn entry_bytes(name: &str, canonical: &str, result: &CachedSolve) -> usize {
    name.len() + canonical.len() + result.clique.len() * 4 + 96
}

impl ResultCache {
    /// A cache bounded at `max_bytes` of accounted entry footprint, with
    /// entries expiring `ttl` after insertion (`None` = never).
    pub fn new(max_bytes: usize, ttl: Option<Duration>) -> ResultCache {
        ResultCache {
            inner: Mutex::new(CacheInner {
                map: HashMap::new(),
                bytes: 0,
            }),
            max_bytes: max_bytes.max(1),
            ttl,
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            ttl_evictions: AtomicU64::new(0),
            size_evictions: AtomicU64::new(0),
        }
    }

    pub fn get(&self, name: &str, fingerprint: u64, canonical: &str) -> Option<CachedSolve> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut inner = plock(&self.inner);
        let key = (name.to_string(), fingerprint, canonical.to_string());
        if let Some(slot) = inner.map.get_mut(&key) {
            if let Some(ttl) = self.ttl {
                if slot.stored.elapsed() > ttl {
                    let bytes = slot.bytes;
                    inner.map.remove(&key);
                    inner.bytes -= bytes;
                    self.ttl_evictions.fetch_add(1, Ordering::Relaxed);
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    return None;
                }
            }
            slot.used = stamp;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Some(slot.result.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        None
    }

    pub fn put(&self, name: &str, fingerprint: u64, canonical: String, result: CachedSolve) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let bytes = entry_bytes(name, &canonical, &result);
        // An entry larger than the whole cache would evict everything and
        // still not fit; don't admit it.
        if bytes > self.max_bytes {
            return;
        }
        let mut inner = plock(&self.inner);
        let old = inner.map.insert(
            (name.to_string(), fingerprint, canonical),
            CacheSlot {
                used: stamp,
                stored: Instant::now(),
                bytes,
                result,
            },
        );
        inner.bytes += bytes;
        if let Some(old) = old {
            inner.bytes -= old.bytes;
        }
        // Expired entries go first, then LRU, until the byte budget holds.
        if inner.bytes > self.max_bytes {
            if let Some(ttl) = self.ttl {
                let expired: Vec<_> = inner
                    .map
                    .iter()
                    .filter(|(_, s)| s.stored.elapsed() > ttl)
                    .map(|(k, _)| k.clone())
                    .collect();
                for k in expired {
                    if let Some(s) = inner.map.remove(&k) {
                        inner.bytes -= s.bytes;
                        self.ttl_evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        while inner.bytes > self.max_bytes {
            let victim = inner
                .map
                .iter()
                .min_by_key(|(_, s)| s.used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    if let Some(s) = inner.map.remove(&k) {
                        inner.bytes -= s.bytes;
                        self.size_evictions.fetch_add(1, Ordering::Relaxed);
                    }
                }
                None => break,
            }
        }
    }

    /// Accounted bytes currently cached.
    pub fn bytes(&self) -> usize {
        plock(&self.inner).bytes
    }

    pub fn len(&self) -> usize {
        plock(&self.inner).map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lazymc_graph::{gen, GraphAccess};

    #[test]
    fn insert_precomputes_and_get_bumps_counters() {
        let reg = Registry::new(4);
        let g = gen::planted_clique(100, 0.05, 8, 3);
        let fp = g.fingerprint();
        let e = reg.insert("g1", g);
        assert_eq!(e.fingerprint, fp);
        assert!(e.degeneracy() >= 7);
        assert!(
            !e.kcore_view().peel_order.is_empty(),
            "exact peel order expected"
        );

        assert!(reg.get("nope").is_none());
        let e2 = reg.get("g1").unwrap();
        assert_eq!(e2.fingerprint, fp);
        assert_eq!(e2.queries(), 1);
        assert_eq!(reg.hits.load(Ordering::Relaxed), 1);
        assert_eq!(reg.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let reg = Registry::new(2);
        reg.insert("a", gen::complete(5));
        reg.insert("b", gen::complete(6));
        reg.get("a"); // a is now fresher than b
        reg.insert("c", gen::complete(7));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("a").is_some());
        assert!(reg.get("b").is_none(), "stalest entry should be evicted");
        assert!(reg.get("c").is_some());
        assert_eq!(reg.evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn replacing_same_name_does_not_evict_others() {
        let reg = Registry::new(2);
        reg.insert("a", gen::complete(5));
        reg.insert("b", gen::complete(6));
        reg.insert("a", gen::complete(9));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("a").unwrap().graph.num_vertices(), 9);
        assert!(reg.get("b").is_some());
    }

    fn tmp_store(tag: &str) -> (std::path::PathBuf, Arc<SnapshotStore>) {
        let dir = std::env::temp_dir().join(format!(
            "lazymc_reg_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(SnapshotStore::open(&dir).unwrap());
        (dir, store)
    }

    #[test]
    fn persistent_registry_reloads_after_restart_without_recore() {
        let (dir, store) = tmp_store("restart");
        let g = gen::planted_clique(100, 0.05, 8, 3);
        let fp = g.fingerprint();
        let kcore_expected = kcore_sequential(&g);
        {
            let reg = Registry::with_store(4, Some(store.clone()));
            reg.insert("g1", g.clone());
            assert_eq!(reg.core_computes.load(Ordering::Relaxed), 1);
            assert_eq!(store.writes.load(Ordering::Relaxed), 1);
        }
        // "Restart": fresh store over the same dir, fresh registry.
        let store2 = Arc::new(SnapshotStore::open(&dir).unwrap());
        let reg2 = Registry::with_store(4, Some(store2.clone()));
        assert_eq!(reg2.len(), 0, "nothing resident before first touch");
        let e = reg2.get("g1").expect("lazy reload");
        assert!(e.lazy_loaded);
        assert_eq!(e.fingerprint, fp);
        assert_eq!(e.graph.fingerprint(), g.fingerprint());
        assert_eq!(e.graph.num_vertices(), g.num_vertices());
        assert_eq!(
            e.kcore_view(),
            kcore_expected.view(),
            "identical decomposition"
        );
        assert_eq!(reg2.core_computes.load(Ordering::Relaxed), 0, "no re-core");
        assert_eq!(store2.lazy_loads.load(Ordering::Relaxed), 1);
        assert_eq!(reg2.hits.load(Ordering::Relaxed), 1);
        // Second lookup is a plain memory hit — no further disk work.
        reg2.get("g1").unwrap();
        assert_eq!(store2.lazy_loads.load(Ordering::Relaxed), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn eviction_keeps_snapshot_and_inflight_entry_usable() {
        let (dir, store) = tmp_store("evict");
        let reg = Registry::with_store(2, Some(store.clone()));
        let g = gen::planted_clique(80, 0.06, 7, 5);
        reg.insert("a", g.clone());
        // Simulate a solve that grabbed the entry and is mid-flight.
        let held = reg.get("a").unwrap();
        // Two more inserts evict "a" from memory.
        reg.insert("b", gen::complete(5));
        reg.insert("c", gen::complete(6));
        assert_eq!(reg.evictions.load(Ordering::Relaxed), 1);
        assert_eq!(reg.len(), 2);
        // The in-flight solve still works against the evicted entry's
        // arrays, and the snapshot file was NOT unlinked by the eviction.
        let expected = lazymc_core::LazyMc::new(lazymc_core::Config::default())
            .solve(&g)
            .size();
        let deadline = lazymc_core::Deadline::starting_now(None);
        let r = lazymc_core::LazyMc::new(lazymc_core::Config::default()).solve_prepared(
            held.graph.as_ref(),
            Some(held.kcore_view()),
            &deadline,
        );
        assert!(r.is_exact());
        assert_eq!(r.size(), expected, "solve against evicted entry must agree");
        assert!(store.contains("a"), "eviction must not unlink the snapshot");
        // A later lookup lazily reloads the evicted graph from disk.
        let reloaded = reg.get("a").expect("reload after eviction");
        assert!(reloaded.lazy_loaded);
        assert_eq!(reloaded.fingerprint, held.fingerprint);
        assert_eq!(reloaded.graph.fingerprint(), held.graph.fingerprint());
        assert_eq!(
            reg.core_computes.load(Ordering::Relaxed),
            3,
            "3 inserts, 0 reloads"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mmap_reload_skips_decode_and_matches_heap() {
        let (dir, store) = tmp_store("mmapreload");
        let g = gen::planted_clique(120, 0.05, 8, 11);
        {
            let reg = Registry::with_store(4, Some(store.clone()));
            reg.insert("big", g.clone());
        }
        let store2 = Arc::new(SnapshotStore::open(&dir).unwrap());
        let reg = Registry::with_store(4, Some(store2.clone()));
        reg.set_mmap_threshold(0); // force the zero-copy path
        let e = reg.get("big").expect("mapped reload");
        assert!(e.is_mapped());
        assert_eq!(store2.mmap_loads.load(Ordering::Relaxed), 1);
        assert_eq!(
            store2.lazy_loads.load(Ordering::Relaxed),
            0,
            "mapped reload must not decode onto the heap"
        );
        assert_eq!(reg.core_computes.load(Ordering::Relaxed), 0, "no re-core");
        assert_eq!(e.graph.fingerprint(), g.fingerprint());
        assert_eq!(e.kcore_view(), kcore_sequential(&g).view());
        // Solving through the mapping agrees with the heap solve.
        let deadline = lazymc_core::Deadline::starting_now(None);
        e.advise_first_solve();
        let r = lazymc_core::LazyMc::new(lazymc_core::Config::default()).solve_prepared(
            e.graph.as_ref(),
            Some(e.kcore_view()),
            &deadline,
        );
        let expected = lazymc_core::LazyMc::new(lazymc_core::Config::default()).solve(&g);
        assert!(r.is_exact());
        assert_eq!(r.size(), expected.size());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mapped_entries_do_not_count_toward_eviction_capacity() {
        let (dir, store) = tmp_store("mmapevict");
        let reg = Registry::with_store(2, Some(store.clone()));
        reg.set_mmap_threshold(0); // every insert installs as a mapping
        reg.insert("a", gen::complete(5));
        reg.insert("b", gen::complete(6));
        reg.insert("c", gen::complete(7));
        reg.insert("d", gen::complete(8));
        assert_eq!(reg.len(), 4, "mapped entries are resident-cost-free");
        assert_eq!(reg.evictions.load(Ordering::Relaxed), 0);
        for (name, n) in [("a", 5), ("b", 6), ("c", 7), ("d", 8)] {
            let e = reg.get(name).unwrap();
            assert!(e.is_mapped());
            assert_eq!(e.graph.num_vertices(), n);
            assert_eq!(e.graph.heap_bytes(), 0);
            assert!(e.graph.mapped_bytes() > 0);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_misses_single_flight_one_load() {
        let (dir, store) = tmp_store("flight");
        {
            let reg = Registry::with_store(2, Some(store.clone()));
            reg.insert("hot", gen::planted_clique(150, 0.05, 8, 9));
            // Evict "hot" so every thread below starts from a memory miss.
            reg.insert("x", gen::complete(4));
            reg.insert("y", gen::complete(4));
            assert!(reg.get("hot").is_some());
        }
        let store2 = Arc::new(SnapshotStore::open(&dir).unwrap());
        let reg = Arc::new(Registry::with_store(4, Some(store2.clone())));
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || reg.get("hot").expect("reload").fingerprint)
            })
            .collect();
        let fps: Vec<u64> = threads.into_iter().map(|t| t.join().unwrap()).collect();
        assert!(fps.windows(2).all(|w| w[0] == w[1]));
        assert_eq!(
            store2.lazy_loads.load(Ordering::Relaxed),
            1,
            "8 racing misses must decode the snapshot exactly once"
        );
        assert_eq!(reg.core_computes.load(Ordering::Relaxed), 0);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_is_final_under_concurrent_lazy_reloads() {
        let (dir, store) = tmp_store("race");
        {
            let reg = Registry::with_store(2, Some(store.clone()));
            reg.insert("hot", gen::planted_clique(120, 0.05, 7, 1));
            reg.insert("x", gen::complete(4));
            reg.insert("y", gen::complete(4)); // "hot" now disk-only
        }
        let store2 = Arc::new(SnapshotStore::open(&dir).unwrap());
        let reg = Arc::new(Registry::with_store(4, Some(store2.clone())));
        // Hammer get() from many threads while remove() lands mid-storm:
        // whatever interleaving occurs, once remove() has returned the
        // graph must be gone for good — no lazy resurrection.
        let getters: Vec<_> = (0..6)
            .map(|_| {
                let reg = reg.clone();
                std::thread::spawn(move || {
                    for _ in 0..50 {
                        let _ = reg.get("hot");
                    }
                })
            })
            .collect();
        std::thread::sleep(std::time::Duration::from_millis(2));
        reg.remove("hot");
        for t in getters {
            t.join().unwrap();
        }
        assert!(reg.get("hot").is_none(), "removed graph must stay removed");
        assert!(!store2.contains("hot"));
        assert!(!dir.join("hot.lmcs").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_unlinks_snapshot_but_eviction_does_not() {
        let (dir, store) = tmp_store("remove");
        let reg = Registry::with_store(4, Some(store.clone()));
        reg.insert("gone", gen::complete(5));
        assert!(store.contains("gone"));
        assert!(reg.remove("gone"));
        assert!(!store.contains("gone"), "DELETE must unlink the snapshot");
        assert!(
            reg.get("gone").is_none(),
            "no lazy resurrection after DELETE"
        );
        // Removing a graph that is only on disk (evicted) also works.
        let reg2 = Registry::with_store(1, Some(store.clone()));
        reg2.insert("d1", gen::complete(4));
        reg2.insert("d2", gen::complete(4)); // evicts d1 from memory
        assert!(store.contains("d1"));
        assert!(reg2.remove("d1"), "disk-only graph is still deletable");
        assert!(!store.contains("d1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn snapshot_write_failure_degrades_health_and_success_clears_it() {
        let (dir, store) = tmp_store("health");
        let health = Arc::new(Health::new());
        let reg = Registry::with_store_health(4, Some(store.clone()), Some(health.clone()));
        reg.insert("ok", gen::complete(4));
        assert!(!health.is_degraded());
        // Break the store out from under the registry: replace the data
        // directory with a plain file so the atomic temp write fails.
        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::write(&dir, b"not a dir").unwrap();
        reg.insert("broken", gen::complete(5));
        assert!(health.is_degraded());
        assert!(health.reasons().iter().any(|(c, _)| *c == "snapshot"));
        assert_eq!(store.write_errors.load(Ordering::Relaxed), 1);
        // Graceful degradation: the graph is resident and queryable even
        // though it never reached disk.
        assert!(reg.get("broken").is_some());
        // Fix the disk; the next successful write clears the reason.
        std::fs::remove_file(&dir).unwrap();
        std::fs::create_dir_all(&dir).unwrap();
        reg.insert("fixed", gen::complete(4));
        assert!(!health.is_degraded());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_cache_hits_and_evicts_by_bytes() {
        // Budget fits exactly two of these entries (each ~113 bytes).
        let r = CachedSolve {
            omega: 4,
            clique: vec![1, 2, 3, 4],
            solve_ms: 12,
        };
        let per_entry = super::entry_bytes("g", "k1", &r);
        let cache = ResultCache::new(2 * per_entry + per_entry / 2, None);
        assert!(cache.get("g", 7, "k1").is_none());
        cache.put("g", 7, "k1".into(), r.clone());
        assert_eq!(cache.bytes(), per_entry);
        let hit = cache.get("g", 7, "k1").unwrap();
        assert_eq!(hit.omega, 4);
        assert_eq!(hit.clique, vec![1, 2, 3, 4]);
        // Same config on different content misses; so does a fingerprint
        // collision under a different name.
        assert!(cache.get("g", 8, "k1").is_none());
        assert!(cache.get("other", 7, "k1").is_none());
        cache.put("g", 8, "k1".into(), r.clone());
        cache.get("g", 7, "k1"); // freshen (g, 7, k1)
        cache.put("g", 9, "k1".into(), r.clone());
        assert_eq!(cache.len(), 2, "third entry must evict over the budget");
        assert!(
            cache.get("g", 7, "k1").is_some(),
            "freshened entry survives"
        );
        assert!(cache.get("g", 8, "k1").is_none(), "stalest entry evicted");
        assert_eq!(cache.size_evictions.load(Ordering::Relaxed), 1);
        assert!(cache.bytes() <= 2 * per_entry + per_entry / 2);

        // A big witness displaces several small entries' worth of budget.
        let big = CachedSolve {
            omega: 64,
            clique: (0..2000).collect(),
            solve_ms: 1,
        };
        cache.put("g", 10, "k1".into(), big.clone());
        assert!(
            cache.get("g", 10, "k1").is_none(),
            "an entry larger than the whole cache is not admitted"
        );
        let roomy = ResultCache::new(64 << 10, None);
        roomy.put("g", 10, "k1".into(), big);
        assert!(roomy.bytes() > 2000 * 4, "bytes track the witness size");
    }

    #[test]
    fn result_cache_ttl_expires_entries() {
        let r = CachedSolve {
            omega: 3,
            clique: vec![1, 2, 3],
            solve_ms: 5,
        };
        let cache = ResultCache::new(1 << 20, Some(Duration::from_millis(40)));
        cache.put("g", 1, "k".into(), r.clone());
        assert!(cache.get("g", 1, "k").is_some(), "fresh entry hits");
        std::thread::sleep(Duration::from_millis(60));
        assert!(cache.get("g", 1, "k").is_none(), "expired entry misses");
        assert_eq!(cache.ttl_evictions.load(Ordering::Relaxed), 1);
        assert_eq!(cache.bytes(), 0, "expiry returns the bytes");
        // Without a TTL nothing expires.
        let forever = ResultCache::new(1 << 20, None);
        forever.put("g", 1, "k".into(), r);
        std::thread::sleep(Duration::from_millis(50));
        assert!(forever.get("g", 1, "k").is_some());
    }
}
