//! Criterion micro-benchmark: early-exit intersection kernels vs. their
//! plain counterparts (the mechanism behind the paper's Fig. 5), across
//! hit-rates and thresholds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazymc_hopscotch::HopscotchSet;
use lazymc_intersect::*;
use std::hint::black_box;

fn make_sets(n: usize, overlap_percent: usize) -> (Vec<u32>, HopscotchSet) {
    // `a` = 0..n; `b` contains `overlap_percent`% of a's elements plus
    // disjoint filler.
    let a: Vec<u32> = (0..n as u32).collect();
    let keep = n * overlap_percent / 100;
    let b: HopscotchSet = (0..keep as u32)
        .chain((n as u32)..(n as u32 + (n - keep) as u32))
        .collect();
    (a, b)
}

fn bench_intersections(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &overlap in &[10usize, 50, 90] {
        let (a, b) = make_sets(4096, overlap);
        let theta = 2048usize; // demands a majority overlap

        group.bench_with_input(
            BenchmarkId::new("size_gt_bool/early", overlap),
            &overlap,
            |bench, _| {
                bench.iter(|| {
                    black_box(intersect_size_gt_bool(
                        black_box(&a),
                        black_box(&b),
                        theta,
                        true,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("size_gt_bool/no_second_exit", overlap),
            &overlap,
            |bench, _| {
                bench.iter(|| {
                    black_box(intersect_size_gt_bool(
                        black_box(&a),
                        black_box(&b),
                        theta,
                        false,
                    ))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("size_plain", overlap),
            &overlap,
            |bench, _| bench.iter(|| black_box(intersect_size_plain(black_box(&a), black_box(&b)))),
        );
        group.bench_with_input(
            BenchmarkId::new("size_gt_val/early", overlap),
            &overlap,
            |bench, _| {
                bench.iter(|| black_box(intersect_size_gt_val(black_box(&a), black_box(&b), theta)))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_intersections);
criterion_main!(benches);
