//! Workspace-level integration tests: LazyMC against every baseline and
//! the oracle, across the whole benchmark suite and assorted adversarial
//! graphs. This is the test the paper's Table II implicitly relies on —
//! "all algorithms compute the exact maximum clique".

use lazymc::baselines::{run, Algorithm};
use lazymc::core::{Config, LazyMc};
use lazymc::graph::suite::{all, Scale};
use lazymc::graph::{gen, CsrGraph};

#[test]
fn lazymc_agrees_with_all_baselines_on_the_suite() {
    for inst in all() {
        let g = inst.build(Scale::Test);
        let lazy = LazyMc::new(Config::default()).solve(&g);
        assert!(
            g.is_clique(lazy.vertices()),
            "{}: LazyMC returned a non-clique",
            inst.name
        );
        for alg in Algorithm::table2() {
            let c = run(alg, &g);
            assert!(g.is_clique(&c), "{}: {} non-clique", inst.name, alg.name());
            assert_eq!(
                c.len(),
                lazy.size(),
                "{}: {} disagrees with LazyMC",
                inst.name,
                alg.name()
            );
        }
        if let Some(expected) = inst.expected_omega {
            assert_eq!(lazy.size(), expected, "{}: wrong omega", inst.name);
        }
    }
}

#[test]
fn oracle_agreement_on_dense_random_graphs() {
    for seed in 0..8 {
        let g = gen::gnp(45, 0.4, seed);
        let oracle = run(Algorithm::Reference, &g).len();
        let lazy = LazyMc::new(Config::default()).solve(&g);
        assert_eq!(lazy.size(), oracle, "seed {seed}");
    }
}

#[test]
fn planted_cliques_of_every_size_are_recovered() {
    for k in [3usize, 5, 8, 13, 21] {
        let g = gen::planted_clique(500, 0.015, k, k as u64);
        let r = LazyMc::new(Config::default()).solve(&g);
        assert_eq!(r.size(), k, "planted k={k}");
    }
}

#[test]
fn adversarial_structures() {
    // Two same-size maximum cliques — solver must return one of them.
    let mut edges = Vec::new();
    for base in [0u32, 10] {
        for i in 0..5 {
            for j in i + 1..5 {
                edges.push((base + i, base + j));
            }
        }
    }
    edges.push((4, 10)); // bridge
    let g = CsrGraph::from_edges(15, &edges);
    let r = LazyMc::new(Config::default()).solve(&g);
    assert_eq!(r.size(), 5);
    assert!(g.is_clique(r.vertices()));

    // A clique hidden at the very end of the id space.
    let mut edges2: Vec<(u32, u32)> = (0..100u32).map(|i| (i, i + 1)).collect();
    for i in 101..107u32 {
        for j in i + 1..107 {
            edges2.push((i, j));
        }
    }
    let g2 = CsrGraph::from_edges(107, &edges2);
    assert_eq!(LazyMc::new(Config::default()).solve(&g2).size(), 6);

    // Isolated vertices plus one edge.
    let g3 = CsrGraph::from_edges(50, &[(7, 33)]);
    assert_eq!(LazyMc::new(Config::default()).solve(&g3).size(), 2);
}

#[test]
fn turan_like_graph() {
    // Complete 4-partite graph with parts of size 4: ω = 4 (one vertex per
    // part), dense and highly symmetric — a classic stress for bounds.
    let mut edges = Vec::new();
    let part = |v: u32| v / 4;
    for u in 0..16u32 {
        for v in u + 1..16 {
            if part(u) != part(v) {
                edges.push((u, v));
            }
        }
    }
    let g = CsrGraph::from_edges(16, &edges);
    let oracle = run(Algorithm::Reference, &g).len();
    assert_eq!(oracle, 4);
    assert_eq!(LazyMc::new(Config::default()).solve(&g).size(), 4);
}

#[test]
fn hamming_graphs_known_omega() {
    // H(n, 2): ω = 2^(n-1) — the even-parity code. Matches the published
    // DIMACS values (hamming6-2: ω = 32).
    for bits in [4u32, 5, 6] {
        let g = gen::hamming(bits, 2);
        let r = LazyMc::new(Config::default()).solve(&g);
        assert_eq!(r.size(), 1 << (bits - 1), "H({bits},2)");
    }
    // hamming6-4: ω = 4 (published DIMACS value).
    let g = gen::hamming(6, 4);
    assert_eq!(LazyMc::new(Config::default()).solve(&g).size(), 4);
}

#[test]
fn paley_graphs_match_oracle() {
    // Strongly regular, quasi-random — hard for bounds; oracle-checked.
    for q in [13u32, 17, 29, 37] {
        let g = gen::paley(q);
        let oracle = run(Algorithm::Reference, &g).len();
        let r = LazyMc::new(Config::default()).solve(&g);
        assert_eq!(r.size(), oracle, "Paley({q})");
    }
    // Published values as an extra anchor.
    assert_eq!(
        LazyMc::new(Config::default()).solve(&gen::paley(13)).size(),
        3
    );
    assert_eq!(
        LazyMc::new(Config::default()).solve(&gen::paley(17)).size(),
        3
    );
}

#[test]
fn repeated_solves_are_stable() {
    let g = gen::rmat(10, 10, 0.57, 0.19, 0.19, 3);
    let first = LazyMc::new(Config::default()).solve(&g).size();
    for _ in 0..5 {
        assert_eq!(LazyMc::new(Config::default()).solve(&g).size(), first);
    }
}
