//! Fig. 3 — break-down of systematic-search work: filtering vs. the MC
//! solver vs. the k-VC (MVC) solver, as percentages of the total work
//! (summed across threads). Instances whose heuristic finds a zero-gap
//! maximum clique report no data, exactly like the paper's empty bars.
//!
//! Run: `cargo run -p lazymc-bench --release --bin fig3 [--test]`

use lazymc_bench::cli::CommonArgs;
use lazymc_bench::Table;
use lazymc_core::{Config, LazyMc};

fn main() {
    let args = CommonArgs::parse();
    let mut table = Table::new(&[
        "graph",
        "filter",
        "MC",
        "MVC",
        "searched-MC",
        "searched-MVC",
        "work[ms]",
    ]);
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let r = LazyMc::new(Config::default()).solve(&g);
        let m = &r.metrics;
        let work = m.systematic_work().as_secs_f64();
        if work < 1e-9 {
            table.row(vec![
                inst.name.to_string(),
                "-".into(),
                "-".into(),
                "-".into(),
                "0".into(),
                "0".into(),
                "0".into(),
            ]);
            continue;
        }
        let pc = |d: std::time::Duration| format!("{:.1}%", d.as_secs_f64() / work * 100.0);
        table.row(vec![
            inst.name.to_string(),
            pc(m.filter_time),
            pc(m.mc_time),
            pc(m.kvc_time),
            m.searched_mc.to_string(),
            m.searched_kvc.to_string(),
            format!("{:.1}", work * 1e3),
        ]);
    }
    println!(
        "Fig. 3: systematic-search work split (filter / MC / MVC), {:?} scale",
        args.scale
    );
    println!("(graphs with no data: maximum clique found during heuristic search)");
    println!("{}", table.render());
}
