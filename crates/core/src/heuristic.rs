//! Heuristic (greedy, inexact) clique searches — paper Algorithms 5 and 6.
//!
//! Both prime the incumbent cheaply so that filtering and pruning bite from
//! the very start of the systematic search. The *degree-based* search runs
//! on the original graph before any preprocessing and repeatedly absorbs
//! the candidate with the highest residual degree; the *coreness-based*
//! search runs on the relabelled lazy graph and absorbs the
//! highest-numbered (= highest-coreness) candidate. Both lean on the
//! early-exit intersection kernels.

use crate::config::Config;
use crate::incumbent::Incumbent;
use lazymc_graph::{GraphAccess, VertexId};
use lazymc_intersect::{
    intersect_gt, intersect_plain, intersect_size_gt_val, intersect_size_plain, intersect_sorted,
    SortedSlice,
};
use lazymc_lazygraph::LazyGraph;
use lazymc_solver::Pool;
use rayon::prelude::*;

/// Per-descent reusable buffers for the greedy heuristic searches: the
/// candidate set, the clique under construction, and the intersection
/// output. Pooled so the thousands of parallel descents reuse a handful
/// of warmed allocations instead of allocating three vectors each.
#[derive(Default)]
struct HeurScratch {
    cand: Vec<VertexId>,
    clique: Vec<VertexId>,
    tmp: Vec<VertexId>,
}

static HEUR_SCRATCH: Pool<HeurScratch> = Pool::new();

/// Degree-based heuristic search (paper Algorithm 5).
///
/// Expands the `top_k` highest-degree vertices in parallel; from each, it
/// greedily grows a clique by absorbing the candidate of maximum degree
/// *within the candidate set*, found with `intersect-size-gt-val` whose
/// threshold ratchets to the running maximum.
pub fn degree_heuristic(g: &dyn GraphAccess, cfg: &Config, inc: &Incumbent) {
    let n = g.num_vertices();
    if n == 0 || cfg.top_k == 0 {
        return;
    }
    let k = cfg.top_k.min(n);
    // Top-k selection by degree (O(n) select, then truncate).
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    if k < n {
        ids.select_nth_unstable_by_key(k - 1, |&v| std::cmp::Reverse(g.degree(v)));
        ids.truncate(k);
    }
    ids.par_iter().for_each(|&v| {
        HEUR_SCRATCH.with(|s| {
            let cstar = inc.size();
            let HeurScratch { cand, clique, tmp } = s;
            cand.clear();
            cand.extend(
                g.neighbors(v)
                    .iter()
                    .copied()
                    .filter(|&u| g.degree(u) >= cstar),
            );
            clique.clear();
            clique.push(v);
            while !cand.is_empty() {
                let u = select_max_degree_candidate(g, cand, cfg.early_exit);
                clique.push(u);
                // cand ∩ N(u): both sides sorted, merge.
                intersect_sorted(cand, g.neighbors(u), tmp);
                std::mem::swap(cand, tmp);
            }
            inc.offer(clique);
        });
    });
}

/// `arg max_{w ∈ cand} |cand ∩ N(w)|`, with the early-exit kernel ratcheting
/// on the best value seen so far (ties: first seen).
fn select_max_degree_candidate(
    g: &dyn GraphAccess,
    cand: &[VertexId],
    early_exit: bool,
) -> VertexId {
    let mut best_w = cand[0];
    let mut best_d = 0usize;
    for &w in cand {
        let nw = SortedSlice(g.neighbors(w));
        let d = if early_exit {
            intersect_size_gt_val(cand, &nw, best_d)
        } else {
            Some(intersect_size_plain(cand, &nw))
        };
        if let Some(d) = d {
            if d > best_d {
                best_d = d;
                best_w = w;
            }
        }
    }
    best_w
}

/// Coreness-based heuristic search (paper Algorithm 6).
///
/// One greedy descent per degeneracy level, in parallel: start from the
/// lowest-numbered vertex of the level, repeatedly absorb the
/// highest-numbered candidate (maximal coreness under the relabelling),
/// shrinking the candidate set with `intersect-gt` at θ = |C*| − |C| — if
/// the remaining intersection cannot beat the incumbent, the whole descent
/// is abandoned.
pub fn coreness_heuristic(
    lg: &LazyGraph<'_>,
    levels: &[(u32, u32)],
    cfg: &Config,
    inc: &Incumbent,
) {
    levels.par_iter().rev().for_each(|&(start, end)| {
        if start == end {
            return; // empty level
        }
        HEUR_SCRATCH.with(|s| {
            let v = start; // lowest-numbered vertex of this coreness level
            let HeurScratch { cand, clique, tmp } = s;
            cand.clear();
            cand.extend_from_slice(lg.right_sorted(v));
            let clique_rel = clique;
            clique_rel.clear();
            clique_rel.push(v);
            while !cand.is_empty() {
                let u = *cand.last().unwrap(); // highest-numbered candidate
                clique_rel.push(u);
                let theta = inc.size().saturating_sub(clique_rel.len());
                let res = if cfg.early_exit {
                    intersect_gt(cand, lg.hashed(u), tmp, theta)
                } else {
                    Some(intersect_plain(cand, lg.hashed(u), tmp))
                };
                match res {
                    Some(_) => std::mem::swap(cand, tmp),
                    // Early exit: the descent cannot beat the incumbent any
                    // more (remaining intersection ≤ |C*| − |C|). The prefix
                    // gathered so far is still a valid clique, so fall through
                    // to the offer — which rejects non-improving candidates.
                    None => break,
                }
            }
            // Every prefix of the greedy descent is a clique: each absorbed
            // vertex came from the common neighbourhood of all before it.
            // Map to original ids in place (tmp is free again here).
            tmp.clear();
            tmp.extend(clique_rel.iter().map(|&r| lg.order().to_original(r)));
            debug_assert!(lg.original_graph().is_clique(tmp));
            inc.offer(tmp);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::{gen, CsrGraph};
    use lazymc_order::{coreness_degree_order, kcore_sequential, relabel::level_ranges};

    fn run_degree(g: &CsrGraph) -> usize {
        let inc = Incumbent::new();
        degree_heuristic(g, &Config::default(), &inc);
        assert!(g.is_clique(&inc.clique()));
        inc.size()
    }

    fn run_coreness(g: &CsrGraph, seed_incumbent: usize) -> usize {
        let kc = kcore_sequential(g);
        let ord = coreness_degree_order(g, &kc.coreness);
        let inc = Incumbent::new();
        if seed_incumbent > 0 {
            // pre-seed with an artificial size floor (no witness needed)
        }
        let lg = LazyGraph::new(g, &ord, &kc.coreness, inc.size_cell());
        let levels = level_ranges(&ord, &kc.coreness, kc.degeneracy);
        coreness_heuristic(&lg, &levels, &Config::default(), &inc);
        assert!(g.is_clique(&inc.clique()));
        inc.size()
    }

    #[test]
    fn degree_heuristic_finds_complete_graph() {
        let g = gen::complete(12);
        assert_eq!(run_degree(&g), 12);
    }

    #[test]
    fn degree_heuristic_on_planted_clique() {
        let g = gen::planted_clique(300, 0.02, 15, 11);
        // the planted clique's members have the highest degrees; greedy
        // should recover most or all of it
        assert!(run_degree(&g) >= 10);
    }

    #[test]
    fn degree_heuristic_trivial_graphs() {
        assert_eq!(run_degree(&gen::star(8)), 2);
        assert_eq!(run_degree(&gen::path(6)), 2);
        let isolated = CsrGraph::empty(4);
        assert_eq!(run_degree(&isolated), 1);
    }

    #[test]
    fn degree_heuristic_empty_graph() {
        let g = CsrGraph::empty(0);
        let inc = Incumbent::new();
        degree_heuristic(&g, &Config::default(), &inc);
        assert_eq!(inc.size(), 0);
    }

    #[test]
    fn coreness_heuristic_finds_caveman_community() {
        let g = gen::caveman(8, 6, 0.0, 1);
        assert_eq!(run_coreness(&g, 0), 6);
    }

    #[test]
    fn coreness_heuristic_on_complete_graph() {
        assert_eq!(run_coreness(&gen::complete(9), 0), 9);
    }

    #[test]
    fn heuristics_agree_with_early_exit_disabled() {
        let g = gen::planted_clique(150, 0.04, 10, 3);
        let inc1 = Incumbent::new();
        degree_heuristic(&g, &Config::default(), &inc1);
        let inc2 = Incumbent::new();
        let cfg = Config {
            early_exit: false,
            ..Config::default()
        };
        degree_heuristic(&g, &cfg, &inc2);
        // Early exits never change the greedy trajectory, only its cost.
        assert_eq!(inc1.size(), inc2.size());
    }
}
