//! Where structured log lines go.
//!
//! The daemon emits one JSON object per line; the sink decides the
//! destination. Production uses [`LogSink::Stdout`] (line-buffered,
//! one `write` per line so concurrent emitters never interleave
//! mid-line); tests use [`LogSink::Capture`] and assert on the lines.

use parking_lot::Mutex;
use std::io::Write as _;
use std::sync::Arc;

/// Destination for structured log lines.
#[derive(Clone, Default)]
pub enum LogSink {
    /// Drop every line (logging disabled).
    #[default]
    Null,
    /// One `write(2)` per line to stdout.
    Stdout,
    /// Append to a shared in-memory buffer (tests).
    Capture(Arc<Mutex<Vec<String>>>),
}

impl std::fmt::Debug for LogSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LogSink::Null => "LogSink::Null",
            LogSink::Stdout => "LogSink::Stdout",
            LogSink::Capture(_) => "LogSink::Capture",
        })
    }
}

impl LogSink {
    /// A capture sink plus the buffer it appends to.
    pub fn capture() -> (LogSink, Arc<Mutex<Vec<String>>>) {
        let buf = Arc::new(Mutex::new(Vec::new()));
        (LogSink::Capture(Arc::clone(&buf)), buf)
    }

    /// Whether emitting has any effect — callers skip building the line
    /// entirely when it does not.
    pub fn enabled(&self) -> bool {
        !matches!(self, LogSink::Null)
    }

    /// Emits one line (no trailing newline in `line`).
    pub fn emit(&self, line: &str) {
        match self {
            LogSink::Null => {}
            LogSink::Stdout => {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(out, "{line}");
            }
            LogSink::Capture(buf) => buf.lock().push(line.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_collects_lines_in_order() {
        let (sink, buf) = LogSink::capture();
        assert!(sink.enabled());
        sink.emit("one");
        sink.emit("two");
        assert_eq!(*buf.lock(), vec!["one".to_string(), "two".to_string()]);
    }

    #[test]
    fn null_sink_is_disabled() {
        let sink = LogSink::Null;
        assert!(!sink.enabled());
        sink.emit("dropped"); // must not panic
    }

    #[test]
    fn clone_shares_the_capture_buffer() {
        let (sink, buf) = LogSink::capture();
        let clone = sink.clone();
        clone.emit("via clone");
        assert_eq!(buf.lock().len(), 1);
    }
}
