//! Small shared pieces for the baseline solvers: a thread-safe incumbent
//! (kept separate from lazymc-core's so the baselines stay independent of
//! the system under test) and a cheap coreness-order greedy heuristic.

use lazymc_graph::{CsrGraph, VertexId};
use lazymc_intersect::intersect_sorted;
use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Minimal shared incumbent for the parallel baselines.
pub(crate) struct SharedBest {
    size: AtomicUsize,
    clique: Mutex<Vec<VertexId>>,
}

impl SharedBest {
    pub fn new() -> Self {
        SharedBest {
            size: AtomicUsize::new(0),
            clique: Mutex::new(Vec::new()),
        }
    }

    #[inline]
    pub fn size(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    pub fn offer(&self, candidate: &[VertexId]) {
        let mut cur = self.size.load(Ordering::Relaxed);
        while candidate.len() > cur {
            match self.size.compare_exchange_weak(
                cur,
                candidate.len(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let mut guard = self.clique.lock();
                    if candidate.len() > guard.len() {
                        *guard = candidate.to_vec();
                    }
                    return;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    pub fn take(self) -> Vec<VertexId> {
        self.clique.into_inner()
    }
}

/// Greedy clique from vertex `v`: repeatedly absorb the lowest-degree-last
/// candidate (simple, deterministic). Used by baselines as a heuristic
/// primer; intentionally simpler than LazyMC's Algorithms 5/6.
pub(crate) fn greedy_from(g: &CsrGraph, v: VertexId) -> Vec<VertexId> {
    let mut clique = vec![v];
    let mut cand: Vec<VertexId> = g.neighbors(v).to_vec();
    let mut tmp = Vec::new();
    while !cand.is_empty() {
        // absorb the candidate with maximum degree (global degree as proxy)
        let &u = cand
            .iter()
            .max_by_key(|&&w| g.degree(w))
            .expect("non-empty");
        clique.push(u);
        intersect_sorted(&cand, g.neighbors(u), &mut tmp);
        std::mem::swap(&mut cand, &mut tmp);
    }
    clique
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;

    #[test]
    fn shared_best_monotone() {
        let b = SharedBest::new();
        b.offer(&[1, 2]);
        b.offer(&[3]);
        assert_eq!(b.size(), 2);
        assert_eq!(b.take(), vec![1, 2]);
    }

    #[test]
    fn greedy_returns_clique() {
        let g = gen::planted_clique(60, 0.08, 6, 5);
        for v in 0..10u32 {
            assert!(g.is_clique(&greedy_from(&g, v)));
        }
    }
}
