//! Deterministic RNG and error type backing the `proptest!` macro.

use std::hash::{Hash, Hasher};

/// xorshift64* seeded from the test name: every test sees its own
/// deterministic stream, stable across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn from_name(name: &str) -> Self {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        // DefaultHasher::new() is specified to be stable per-process; the
        // seed also mixes in a constant so an empty name still works.
        0x9E37_79B9u64.hash(&mut h);
        name.hash(&mut h);
        TestRng {
            state: h.finish() | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
}

/// Why a single generated case failed.
#[derive(Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }

    /// proptest-compatible alias used by some call sites.
    pub fn reject(message: impl Into<String>) -> Self {
        Self::fail(message)
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::from_name("x");
        let mut b = TestRng::from_name("x");
        let mut c = TestRng::from_name("y");
        let xs: Vec<u64> = (0..4).map(|_| a.next_u64()).collect();
        assert_eq!(xs, (0..4).map(|_| b.next_u64()).collect::<Vec<_>>());
        assert_ne!(xs, (0..4).map(|_| c.next_u64()).collect::<Vec<_>>());
    }
}
