//! Fig. 2 — relative time spent in the key steps of LazyMC.
//!
//! Per instance: the percentage of end-to-end runtime in the degree-based
//! heuristic, k-core + reordering, must-subgraph pre-population, the
//! coreness-based heuristic, and systematic search.
//!
//! Run: `cargo run -p lazymc-bench --release --bin fig2 [--test]`

use lazymc_bench::cli::CommonArgs;
use lazymc_bench::Table;
use lazymc_core::{Config, LazyMc};

fn main() {
    let args = CommonArgs::parse();
    let mut table = Table::new(&[
        "graph",
        "degree-heur",
        "kcore+reorder",
        "must-subgraph",
        "core-heur",
        "systematic",
        "total[s]",
    ]);
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let r = LazyMc::new(Config::default()).solve(&g);
        let p = &r.metrics.phases;
        let total = p.total().as_secs_f64().max(1e-12);
        let pc = |d: std::time::Duration| format!("{:.1}%", d.as_secs_f64() / total * 100.0);
        table.row(vec![
            inst.name.to_string(),
            pc(p.degree_heuristic),
            pc(p.kcore + p.reorder),
            pc(p.prepopulate),
            pc(p.coreness_heuristic),
            pc(p.systematic),
            format!("{total:.3}"),
        ]);
    }
    println!(
        "Fig. 2: relative time per phase of LazyMC ({:?} scale)",
        args.scale
    );
    println!("{}", table.render());
}
