//! Live-socket fault-injection tests: the `/debug/chaos` control surface,
//! graceful degradation when snapshot/journal writes fail, worker
//! supervision (a panicking sched worker respawns), the failed-job
//! terminal-state contract for `DELETE /jobs/<id>`, and a scaled-down
//! version of the acceptance scenario — random sched-unit panics under
//! concurrent load leave every job in a terminal state with the daemon
//! still answering.
//!
//! The chaos registry is process-global, so every test serializes on
//! `CHAOS_LOCK` and disarms on entry and exit (including panic exits, via
//! the guard's `Drop`). Tests run in the default debug profile where
//! `lazymc_chaos::COMPILED_IN` is true.

mod common;

use common::{bool_field, str_field, u64_field, upload, Client};
use lazymc_graph::gen;
use lazymc_service::{serve, Json, ServiceConfig, ServiceHandle};
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};
use std::time::{Duration, Instant};

static CHAOS_LOCK: Mutex<()> = Mutex::new(());

/// Held for the duration of a test: serializes chaos tests against each
/// other and guarantees the registry is disarmed before and after.
struct Serial(#[allow(dead_code)] std::sync::MutexGuard<'static, ()>);

impl Drop for Serial {
    fn drop(&mut self) {
        lazymc_chaos::disarm();
    }
}

fn serial() -> Serial {
    let guard = CHAOS_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
    lazymc_chaos::disarm();
    Serial(guard)
}

fn start(cfg: ServiceConfig) -> ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind service")
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lazymc_chaos_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Arms a spec through the HTTP control endpoint, asserting success.
fn arm(client: &mut Client, spec: &str) {
    let body = Json::obj(vec![("spec", Json::str(spec))]).encode();
    let (status, response) = client.post_json("/debug/chaos", &body);
    assert_eq!(status, 200, "arm {spec:?}: {response:?}");
    assert!(bool_field(&response, "armed"));
}

fn disarm(client: &mut Client) {
    let (status, response) = client.post_json("/debug/chaos", r#"{"disarm":true}"#);
    assert_eq!(status, 200, "disarm: {response:?}");
    assert!(!bool_field(&response, "armed"));
}

fn poll_job(client: &mut Client, id: u64, timeout: Duration, done: impl Fn(&str) -> bool) -> Json {
    let t = Instant::now();
    loop {
        let (status, view) = client.get_json(&format!("/jobs/{id}"));
        assert_eq!(status, 200, "job {id} vanished while polling: {view:?}");
        if done(str_field(&view, "status")) {
            return view;
        }
        assert!(
            t.elapsed() < timeout,
            "job {id} stuck in {:?} after {timeout:?}",
            str_field(&view, "status")
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Polls a metric until `ok(value)` holds, failing after `timeout`.
fn poll_metric(
    client: &mut Client,
    name: &str,
    timeout: Duration,
    ok: impl Fn(u64) -> bool,
) -> u64 {
    let t = Instant::now();
    loop {
        let v = client.metric(name);
        if ok(v) {
            return v;
        }
        assert!(
            t.elapsed() < timeout,
            "metric {name} stuck at {v} after {timeout:?}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
}

/// Arm/inspect/disarm lifecycle of the control endpoint itself, plus the
/// error surface for malformed bodies and specs.
#[test]
fn debug_chaos_endpoint_lifecycle() {
    let _serial = serial();
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());

    // Disarmed by default: spec is null, the harness is compiled in.
    let (status, view) = c.get_json("/debug/chaos");
    assert_eq!(status, 200);
    assert!(bool_field(&view, "compiled_in"));
    assert!(matches!(view.get("spec"), Some(Json::Null)));

    // Arming registers the point and reports it back with counters.
    arm(&mut c, "persist.write=eio@every:3");
    let (_, view) = c.get_json("/debug/chaos");
    assert_eq!(str_field(&view, "spec"), "persist.write=eio@every:3");
    let points = match view.get("points") {
        Some(Json::Arr(points)) => points,
        other => panic!("points must be an array: {other:?}"),
    };
    assert_eq!(points.len(), 1);
    assert_eq!(str_field(&points[0], "point"), "persist.write");
    assert_eq!(str_field(&points[0], "fault"), "eio");
    assert_eq!(str_field(&points[0], "trigger"), "every:3");
    assert_eq!(u64_field(&points[0], "injected"), 0, "never hit yet");

    // Bad specs and bad bodies are 400s, and leave the old spec armed.
    let (status, _) = c.post_json("/debug/chaos", r#"{"spec":"nonsense"}"#);
    assert_eq!(status, 400, "spec without point=fault must be rejected");
    let (status, _, _) = c.request("POST", "/debug/chaos", Some("not json"));
    assert_eq!(status, 400);
    let (status, _) = c.post_json("/debug/chaos", r#"{"what":1}"#);
    assert_eq!(status, 400, "body without spec/disarm must be rejected");
    let (_, view) = c.get_json("/debug/chaos");
    assert_eq!(str_field(&view, "spec"), "persist.write=eio@every:3");

    // Disarm: spec back to null, counters reset with the registry.
    disarm(&mut c);
    let (_, view) = c.get_json("/debug/chaos");
    assert!(matches!(view.get("spec"), Some(Json::Null)));
    handle.stop();
}

/// Snapshot writes failing with EIO must not fail uploads: the graph
/// stays resident and solvable, `/healthz` flips to degraded with a
/// `snapshot` reason, and the next clean save clears the state.
#[test]
fn snapshot_write_fault_degrades_and_recovers() {
    let _serial = serial();
    let dir = tmp_dir("snapshot");
    let handle = start(ServiceConfig {
        data_dir: Some(dir.to_str().expect("utf8 path").to_string()),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::planted_clique(120, 0.05, 7, 3);

    // Healthy baseline: a clean upload persists and health is ok.
    upload(&mut c, "ok", &g);
    let (_, health) = c.get_json("/healthz");
    assert_eq!(str_field(&health, "state"), "ok");

    // Fault armed: the upload still answers 201 (memory-only), the
    // daemon reports degraded with the snapshot reason, and both the
    // injection and the write error are counted.
    arm(&mut c, "persist.write=eio@always");
    upload(&mut c, "faulted", &g);
    let (_, health) = c.get_json("/healthz");
    assert_eq!(str_field(&health, "state"), "degraded");
    let reasons = match health.get("degraded_reasons") {
        Some(Json::Arr(reasons)) => reasons,
        other => panic!("degraded_reasons must be an array: {other:?}"),
    };
    assert!(
        reasons
            .iter()
            .any(|r| str_field(r, "component") == "snapshot"),
        "snapshot reason missing: {reasons:?}"
    );
    assert_eq!(c.metric("lazymc_degraded"), 1);
    assert!(c.metric("lazymc_degraded_events_total") >= 1);
    assert!(c.metric("lazymc_snapshot_write_errors_total") >= 1);
    assert!(c.metric("lazymc_chaos_injections_total") >= 1);

    // The unpersisted graph is fully usable from memory.
    let (status, solved) = c.post_json("/solve", r#"{"graph":"faulted"}"#);
    assert_eq!(status, 200, "degraded daemon must keep solving: {solved:?}");
    assert!(u64_field(&solved, "omega") >= 7);

    // Disk "repaired": the next successful snapshot clears the reason.
    disarm(&mut c);
    upload(&mut c, "recovered", &g);
    let (_, health) = c.get_json("/healthz");
    assert_eq!(str_field(&health, "state"), "ok");
    assert_eq!(c.metric("lazymc_degraded"), 0);
    handle.stop();
}

/// A journal append error disables journaling for the process (memory-only
/// from then on) but never fails the solve that triggered it; `/healthz`
/// reports the degradation and the journal stays off after the fault
/// clears — only a restart re-enables it.
#[test]
fn journal_append_fault_goes_memory_only() {
    let _serial = serial();
    let dir = tmp_dir("journal");
    let handle = start(ServiceConfig {
        data_dir: Some(dir.to_str().expect("utf8 path").to_string()),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::planted_clique(100, 0.05, 6, 11);
    upload(&mut c, "pc", &g);
    let (_, health) = c.get_json("/healthz");
    assert_eq!(str_field(&health, "journal"), "enabled");

    // The admit record for this job fails to append: the job must still
    // be accepted and must still complete.
    arm(&mut c, "journal.append=eio@once");
    let (status, accepted) = c.post_json("/solve?async=1", r#"{"graph":"pc"}"#);
    assert_eq!(status, 202, "journal fault must not fail admission");
    let id = u64_field(&accepted, "job_id");
    poll_job(&mut c, id, Duration::from_secs(30), |s| s == "done");

    let (_, health) = c.get_json("/healthz");
    assert_eq!(str_field(&health, "state"), "degraded");
    assert_eq!(str_field(&health, "journal"), "disabled");
    assert!(c.metric("lazymc_journal_append_errors_total") >= 1);
    assert_eq!(c.metric("lazymc_degraded"), 1);

    // After the fault clears the daemon keeps serving, but the journal
    // does not silently re-enable mid-flight: replay correctness after
    // a gap cannot be guaranteed, so memory-only until restart.
    disarm(&mut c);
    let (status, accepted) = c.post_json("/solve?async=1", r#"{"graph":"pc","no_cache":true}"#);
    assert_eq!(status, 202);
    let id = u64_field(&accepted, "job_id");
    poll_job(&mut c, id, Duration::from_secs(30), |s| s == "done");
    let (_, health) = c.get_json("/healthz");
    assert_eq!(str_field(&health, "journal"), "disabled");
    handle.stop();
}

/// The failed-job contract: a job that died to a solver panic answers
/// `GET`/`DELETE /jobs/<id>` with its terminal `failed` state — for both
/// the retained (async) record and the delivered-and-dropped (sync)
/// tombstone — instead of pretending the id never existed.
#[test]
fn failed_jobs_answer_delete_with_terminal_state() {
    let _serial = serial();
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    let g = gen::planted_clique(80, 0.05, 6, 5);
    upload(&mut c, "a", &g);
    upload(&mut c, "b", &g);

    // Async path: the retained record flips to `failed` and cancelling
    // it is a 409 naming that state, not a 404.
    arm(&mut c, "solve.run=panic@once");
    let (status, accepted) = c.post_json("/solve?async=1", r#"{"graph":"a"}"#);
    assert_eq!(status, 202);
    let id = u64_field(&accepted, "job_id");
    let view = poll_job(&mut c, id, Duration::from_secs(30), |s| s == "failed");
    let result = view.get("result").expect("failed jobs retain their error");
    assert!(str_field(result, "error").contains("panicked"));
    assert!(c.metric("lazymc_solver_panics_total") >= 1);
    let (status, body) = c.delete_json(&format!("/jobs/{id}"));
    assert_eq!(status, 409, "failed is terminal: {body:?}");
    assert!(str_field(&body, "error").contains("already failed"));

    // Sync path: the record is delivered and dropped, but a tombstone
    // keeps answering with the terminal state. The job id is the next
    // one after the async job — this server saw no other submissions.
    arm(&mut c, "solve.run=panic@once");
    let (status, body) = c.post_json("/solve", r#"{"graph":"b"}"#);
    assert_eq!(status, 500, "sync panic surfaces as structured 500");
    assert!(str_field(&body, "error").contains("panicked"));
    let sync_id = id + 1;
    let (status, view) = c.get_json(&format!("/jobs/{sync_id}"));
    assert_eq!(status, 200, "tombstone must answer: {view:?}");
    assert_eq!(str_field(&view, "status"), "failed");
    assert!(!bool_field(&view, "retained"));
    let (status, body) = c.delete_json(&format!("/jobs/{sync_id}"));
    assert_eq!(status, 409);
    assert!(str_field(&body, "error").contains("already failed"));

    // Ids the daemon never issued are still honest 404s.
    let (status, _) = c.delete_json("/jobs/424242");
    assert_eq!(status, 404);
    handle.stop();
}

/// Worker supervision: a panic in a sched worker's main loop (not in a
/// task) kills the thread, the supervisor respawns it, both are counted,
/// and the pool keeps solving.
#[test]
fn sched_worker_panic_respawns_supervised() {
    let _serial = serial();
    let handle = start(ServiceConfig {
        solver_workers: 2,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());

    // Parked workers wake on a timer, so the loop-top point fires within
    // ~50ms of arming even with no jobs in flight.
    arm(&mut c, "sched.worker=panic@once");
    poll_metric(
        &mut c,
        "lazymc_sched_worker_panics_total",
        Duration::from_secs(10),
        |v| v >= 1,
    );
    poll_metric(
        &mut c,
        "lazymc_sched_worker_respawns_total",
        Duration::from_secs(10),
        |v| v >= 1,
    );
    disarm(&mut c);

    // The respawned pool is fully functional.
    let g = gen::planted_clique(100, 0.05, 7, 9);
    upload(&mut c, "pc", &g);
    let (status, solved) = c.post_json("/solve", r#"{"graph":"pc"}"#);
    assert_eq!(status, 200, "pool dead after respawn: {solved:?}");
    assert!(u64_field(&solved, "omega") >= 7);
    handle.stop();
}

/// Scaled-down acceptance scenario: with sched units randomly panicking
/// (seeded 1-in-50) under concurrent submissions, every job must reach a
/// terminal state — done, or failed with a structured error — with no
/// hangs, and the daemon must still be answering afterwards.
#[test]
fn sched_unit_panic_storm_leaves_every_job_terminal() {
    let _serial = serial();
    let handle = start(ServiceConfig {
        solver_workers: 4,
        queue_capacity: 256,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();
    let mut c = Client::connect(addr);
    // Dense enough that width-4 solves split subtree units into the pool
    // (the armed point lives in the unit runner); per-job budgets bound
    // the storm's wall clock.
    let g = gen::gnp(250, 0.5, 7);
    upload(&mut c, "dense", &g);
    arm(&mut c, "sched.unit=panic@prob:0.02:1337");

    // 4 concurrent clients × 3 async jobs each. `no_cache` keeps every
    // job a real solve instead of collapsing into one cached answer.
    let body = r#"{"graph":"dense","threads":4,"no_cache":true,"budget_ms":15000}"#;
    let ids: Vec<u64> = std::thread::scope(|scope| {
        let submitters: Vec<_> = (0..4)
            .map(|_| {
                scope.spawn(move || {
                    let mut c = Client::connect(addr);
                    (0..3)
                        .map(|_| {
                            let (status, accepted) = c.post_json("/solve?async=1", body);
                            assert_eq!(status, 202, "admission failed: {accepted:?}");
                            u64_field(&accepted, "job_id")
                        })
                        .collect::<Vec<u64>>()
                })
            })
            .collect();
        submitters
            .into_iter()
            .flat_map(|t| t.join().expect("submitter thread"))
            .collect()
    });
    assert_eq!(ids.len(), 12);

    // Every single job terminates; none is left queued or running.
    let mut failed = 0usize;
    for id in ids {
        let view = poll_job(&mut c, id, Duration::from_secs(240), |s| {
            matches!(s, "done" | "failed" | "cancelled")
        });
        if str_field(&view, "status") == "failed" {
            failed += 1;
        } else {
            // Done (possibly budget-truncated) jobs carry a real result.
            let result = view.get("result").expect("done jobs retain results");
            assert!(u64_field(result, "omega") >= 1);
        }
    }

    // The armed point really saw traffic (hits count even when the
    // trigger does not fire, so this is deterministic).
    let (_, view) = c.get_json("/debug/chaos");
    let points = match view.get("points") {
        Some(Json::Arr(points)) => points,
        other => panic!("points must be an array: {other:?}"),
    };
    let unit = points
        .iter()
        .find(|p| str_field(p, "point") == "sched.unit")
        .expect("sched.unit point registered");
    assert!(u64_field(unit, "hits") > 0, "no unit ever hit the point");
    // Injections are probabilistic per run, but bookkeeping must agree:
    // every injected panic produced a failed job, never a hang.
    assert_eq!(
        c.metric("lazymc_solver_panics_total"),
        failed as u64,
        "every unit panic fails exactly its own job"
    );

    // The daemon survived the storm: disarm and solve cleanly.
    disarm(&mut c);
    let (status, solved) = c.post_json(
        "/solve",
        r#"{"graph":"dense","no_cache":true,"budget_ms":2000}"#,
    );
    assert_eq!(status, 200, "daemon unhealthy after storm: {solved:?}");
    assert!(u64_field(&solved, "omega") >= 1);
    let (_, health) = c.get_json("/healthz");
    assert_eq!(str_field(&health, "status"), "ok");
    handle.stop();
}
