//! Disk persistence for the registry: a directory of `.lmcs` snapshots.
//!
//! The store implements the durability policy around the format defined in
//! [`lazymc_graph::snapshot`]:
//!
//! * **atomic writes** — every snapshot lands via temp file + fsync +
//!   rename (+ parent-directory fsync), so a crash mid-write leaves either
//!   the old file or the new one, never a torn hybrid;
//! * **index scan at boot** — [`SnapshotStore::open`] reads only the fixed
//!   64-byte header of each file to learn names, fingerprints and sizes;
//!   payloads stay untouched until a graph is actually asked for;
//! * **lazy reload** — [`SnapshotStore::load`] fully decodes (checksum,
//!   structure, fingerprint) on the first `GET`/`POST /solve` after boot;
//! * **quarantine, never crash** — a file that fails any validation is
//!   renamed to `<file>.corrupt` with a warning on stderr and dropped from
//!   the index; the daemon keeps serving.

use crate::plock;
use lazymc_graph::snapshot::{write_file_atomic, Snapshot};
use lazymc_graph::{CsrGraph, MappedSnapshot};
use lazymc_order::{embed_kcore, extract_kcore, KCore};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// File extension of live snapshots.
pub const SNAPSHOT_EXT: &str = "lmcs";
/// Suffix appended (after the extension) to quarantined files.
pub const QUARANTINE_SUFFIX: &str = "corrupt";

/// What the boot-time index scan learned about one on-disk snapshot.
#[derive(Debug, Clone)]
struct IndexEntry {
    fingerprint: u64,
    bytes: u64,
}

/// A `--data-dir`-backed snapshot directory with an in-memory index.
pub struct SnapshotStore {
    dir: PathBuf,
    index: Mutex<HashMap<String, IndexEntry>>,
    /// Snapshots fully decoded on demand after boot.
    pub lazy_loads: AtomicU64,
    /// Snapshots mapped zero-copy (no heap decode) on demand after boot.
    pub mmap_loads: AtomicU64,
    /// Snapshots written (uploads and replacements).
    pub writes: AtomicU64,
    /// Snapshot writes that failed (the graph stays memory-only).
    pub write_errors: AtomicU64,
    /// Files renamed aside after failing validation.
    pub quarantined: AtomicU64,
}

/// `Some(file stem)` iff `name` is safe to use as a file name: the same
/// `[A-Za-z0-9._-]{1,128}` alphabet the HTTP layer enforces, re-checked
/// here because the registry is also a library API.
fn safe_name(name: &str) -> Option<&str> {
    let ok = !name.is_empty()
        && name.len() <= 128
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    ok.then_some(name)
}

impl SnapshotStore {
    /// Opens (creating if needed) a snapshot directory and index-scans it.
    /// Corrupt headers are quarantined during the scan; an unreadable
    /// directory is the only fatal error.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<SnapshotStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let store = SnapshotStore {
            dir,
            index: Mutex::new(HashMap::new()),
            lazy_loads: AtomicU64::new(0),
            mmap_loads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            write_errors: AtomicU64::new(0),
            quarantined: AtomicU64::new(0),
        };
        store.scan()?;
        Ok(store)
    }

    /// The directory this store persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path_of(&self, name: &str) -> PathBuf {
        self.dir.join(format!("{name}.{SNAPSHOT_EXT}"))
    }

    /// Renames a failed file aside and counts it. Idempotent enough for a
    /// daemon: an existing quarantine file of the same name is replaced.
    fn quarantine(&self, path: &Path, why: &str) {
        let target = {
            let mut os = path.as_os_str().to_owned();
            os.push(".");
            os.push(QUARANTINE_SUFFIX);
            PathBuf::from(os)
        };
        eprintln!(
            "lazymc-service: quarantining snapshot {} -> {}: {why}",
            path.display(),
            target.display()
        );
        if std::fs::rename(path, &target).is_err() {
            // Rename failed (e.g. removed underneath us); try to at least
            // get the bad file out of the way.
            let _ = std::fs::remove_file(path);
        }
        self.quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Header-only directory scan: learns names, fingerprints and sizes.
    fn scan(&self) -> std::io::Result<()> {
        let mut index = HashMap::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let Ok(entry) = entry else { continue };
            let path = entry.path();
            if path.extension().and_then(|e| e.to_str()) != Some(SNAPSHOT_EXT) {
                continue;
            }
            let Some(name) = path
                .file_stem()
                .and_then(|s| s.to_str())
                .and_then(safe_name)
                .map(str::to_string)
            else {
                continue;
            };
            let Ok(meta) = entry.metadata() else { continue };
            let header = match read_prefix(&path, lazymc_graph::snapshot::HEADER_LEN) {
                Ok(h) => h,
                Err(e) => {
                    self.quarantine(&path, &format!("unreadable header: {e}"));
                    continue;
                }
            };
            match Snapshot::peek(&header) {
                Ok(info) if info.file_len == meta.len() => {
                    index.insert(
                        name,
                        IndexEntry {
                            fingerprint: info.fingerprint,
                            bytes: meta.len(),
                        },
                    );
                }
                Ok(info) => {
                    self.quarantine(
                        &path,
                        &format!(
                            "length mismatch: header promises {} bytes, file has {}",
                            info.file_len,
                            meta.len()
                        ),
                    );
                }
                Err(e) => self.quarantine(&path, &e),
            }
        }
        *plock(&self.index) = index;
        Ok(())
    }

    /// Whether a (non-quarantined) snapshot of `name` is indexed on disk.
    pub fn contains(&self, name: &str) -> bool {
        plock(&self.index).contains_key(name)
    }

    /// Number of indexed snapshots.
    pub fn len(&self) -> usize {
        plock(&self.index).len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Disk footprint of one snapshot, if indexed.
    pub fn bytes_of(&self, name: &str) -> Option<u64> {
        plock(&self.index).get(name).map(|e| e.bytes)
    }

    /// Total disk footprint of all indexed snapshots.
    pub fn total_bytes(&self) -> u64 {
        plock(&self.index).values().map(|e| e.bytes).sum()
    }

    /// Indexed names, unordered.
    pub fn names(&self) -> Vec<String> {
        plock(&self.index).keys().cloned().collect()
    }

    /// Durably writes a snapshot of `graph` + `kcore` under `name`.
    /// Returns `Err` for names that cannot be file names or on I/O failure
    /// (counted in [`SnapshotStore::write_errors`] by the caller's policy).
    pub fn save(&self, name: &str, graph: &CsrGraph, kcore: &KCore) -> std::io::Result<u64> {
        let Some(name) = safe_name(name) else {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                format!("graph name {name:?} is not persistable"),
            ));
        };
        let mut snap = Snapshot::from_graph(graph);
        embed_kcore(&mut snap, kcore);
        let bytes = snap.encode();
        lazymc_chaos::io_point!("persist.write");
        write_file_atomic(&self.path_of(name), &bytes)?;
        let len = bytes.len() as u64;
        plock(&self.index).insert(
            name.to_string(),
            IndexEntry {
                fingerprint: snap.fingerprint,
                bytes: len,
            },
        );
        self.writes.fetch_add(1, Ordering::Relaxed);
        Ok(len)
    }

    /// Fully loads and validates the snapshot of `name`. Any failure
    /// (missing file, checksum, structure, fingerprint, bad coreness)
    /// quarantines the file and returns `None` — a load can only ever
    /// produce a graph+decomposition pair that is exactly what was saved.
    pub fn load(&self, name: &str) -> Option<(CsrGraph, KCore, u64)> {
        if safe_name(name).is_none() || !self.contains(name) {
            return None;
        }
        let path = self.path_of(name);
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) => {
                self.quarantine(&path, &format!("unreadable: {e}"));
                plock(&self.index).remove(name);
                return None;
            }
        };
        let decoded = Snapshot::decode(&bytes)
            .and_then(|snap| Ok((snap.graph()?, extract_kcore(&snap)?, snap.fingerprint)));
        match decoded {
            Ok(loaded) => {
                self.lazy_loads.fetch_add(1, Ordering::Relaxed);
                Some(loaded)
            }
            Err(e) => {
                self.quarantine(&path, &e);
                plock(&self.index).remove(name);
                None
            }
        }
    }

    /// Maps the snapshot of `name` zero-copy: the CSR arrays and embedded
    /// k-core sections are validated in place (checksum, structure,
    /// fingerprint — the same ladder [`SnapshotStore::load`] runs) and then
    /// borrowed straight out of the read-only mapping. No heap decode
    /// happens; the page cache backs every byte. Failure policy is
    /// identical to `load`: the file is quarantined and de-indexed, so a
    /// mapping can only ever expose exactly what was saved. A snapshot
    /// without an embedded decomposition is rejected too — callers rely on
    /// the mapped coreness/peel-order the same way heap loads rely on
    /// [`extract_kcore`].
    pub fn load_mapped(&self, name: &str) -> Option<MappedSnapshot> {
        if safe_name(name).is_none() || !self.contains(name) {
            return None;
        }
        let path = self.path_of(name);
        let mapped = MappedSnapshot::map(&path).and_then(|m| {
            if m.coreness().is_none() {
                Err("snapshot has no coreness section".to_string())
            } else {
                Ok(m)
            }
        });
        match mapped {
            Ok(m) => {
                self.mmap_loads.fetch_add(1, Ordering::Relaxed);
                Some(m)
            }
            Err(e) => {
                self.quarantine(&path, &e);
                plock(&self.index).remove(name);
                None
            }
        }
    }

    /// Integrity re-verification for the background scrubber: fully
    /// decodes the on-disk snapshot of `name` — checksum, structure,
    /// fingerprint, coreness — and discards the result. Bit-rot
    /// quarantines the file exactly like a failed [`SnapshotStore::load`]
    /// would, so a corrupt snapshot is pulled from the index *before*
    /// any request tries to serve it. Returns `false` iff the file was
    /// quarantined (a name removed meanwhile verifies vacuously).
    pub fn verify(&self, name: &str) -> bool {
        if safe_name(name).is_none() || !self.contains(name) {
            return true;
        }
        let path = self.path_of(name);
        let checked = std::fs::read(&path)
            .map_err(|e| format!("unreadable: {e}"))
            .and_then(|bytes| {
                let snap = Snapshot::decode(&bytes)?;
                snap.graph()?;
                extract_kcore(&snap)?;
                Ok(())
            });
        match checked {
            Ok(()) => true,
            Err(e) => {
                self.quarantine(&path, &format!("scrub: {e}"));
                plock(&self.index).remove(name);
                false
            }
        }
    }

    /// Unlinks the snapshot of `name`; `true` if one was indexed. The
    /// in-memory CSR of any in-flight solve is untouched — `Arc`s keep the
    /// data alive regardless of what happens to the file.
    pub fn remove(&self, name: &str) -> bool {
        let had = plock(&self.index).remove(name).is_some();
        if had {
            let _ = std::fs::remove_file(self.path_of(name));
        }
        had
    }

    /// The indexed fingerprint of `name`'s snapshot, if any.
    pub fn fingerprint_of(&self, name: &str) -> Option<u64> {
        plock(&self.index).get(name).map(|e| e.fingerprint)
    }
}

/// Reads at most `cap` leading bytes of `path`.
fn read_prefix(path: &Path, cap: usize) -> std::io::Result<Vec<u8>> {
    use std::io::Read as _;
    let mut buf = vec![0u8; cap];
    let mut f = std::fs::File::open(path)?;
    let mut filled = 0;
    while filled < cap {
        match f.read(&mut buf[filled..])? {
            0 => break,
            n => filled += n,
        }
    }
    buf.truncate(filled);
    Ok(buf)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lazymc_graph::gen;
    use lazymc_order::kcore_sequential;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "lazymc_store_{tag}_{}_{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn save_load_remove_cycle() {
        let dir = tmp_dir("cycle");
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let g = gen::planted_clique(90, 0.05, 7, 2);
        let kc = kcore_sequential(&g);
        let written = store.save("g1", &g, &kc).unwrap();
        assert!(written > 0);
        assert!(store.contains("g1"));
        assert_eq!(store.bytes_of("g1"), Some(written));
        assert_eq!(store.total_bytes(), written);
        assert_eq!(store.fingerprint_of("g1"), Some(g.fingerprint()));

        let (g2, kc2, fp) = store.load("g1").expect("load");
        assert_eq!(g2, g);
        assert_eq!(kc2, kc);
        assert_eq!(fp, g.fingerprint());
        assert_eq!(store.lazy_loads.load(Ordering::Relaxed), 1);

        assert!(store.remove("g1"));
        assert!(!store.contains("g1"));
        assert!(store.load("g1").is_none());
        assert!(!store.remove("g1"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopen_indexes_previous_snapshots_without_loading() {
        let dir = tmp_dir("reopen");
        let g = gen::gnp(60, 0.1, 4);
        let kc = kcore_sequential(&g);
        {
            let store = SnapshotStore::open(&dir).unwrap();
            store.save("kept", &g, &kc).unwrap();
        }
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.contains("kept"));
        assert_eq!(store.fingerprint_of("kept"), Some(g.fingerprint()));
        assert_eq!(
            store.lazy_loads.load(Ordering::Relaxed),
            0,
            "scan must not decode"
        );
        let (g2, _, _) = store.load("kept").unwrap();
        assert_eq!(g2, g);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_files_are_quarantined_not_fatal() {
        let dir = tmp_dir("corrupt");
        let g = gen::planted_clique(70, 0.08, 6, 1);
        let kc = kcore_sequential(&g);
        {
            let store = SnapshotStore::open(&dir).unwrap();
            store.save("flip", &g, &kc).unwrap();
            store.save("trunc", &g, &kc).unwrap();
            store.save("garbage", &g, &kc).unwrap();
        }
        // Flip a payload byte (header still valid → survives scan, dies on load).
        let flip_path = dir.join("flip.lmcs");
        let mut bytes = std::fs::read(&flip_path).unwrap();
        let at = bytes.len() - 3;
        bytes[at] ^= 0xff;
        std::fs::write(&flip_path, &bytes).unwrap();
        // Truncate another (caught at scan by the length check).
        let trunc_path = dir.join("trunc.lmcs");
        let bytes = std::fs::read(&trunc_path).unwrap();
        std::fs::write(&trunc_path, &bytes[..bytes.len() / 2]).unwrap();
        // And plain garbage (caught at scan by the magic check).
        std::fs::write(dir.join("garbage.lmcs"), b"not a snapshot at all").unwrap();

        let store = SnapshotStore::open(&dir).unwrap();
        assert_eq!(
            store.quarantined.load(Ordering::Relaxed),
            2,
            "trunc + garbage at scan"
        );
        assert!(!store.contains("trunc"));
        assert!(!store.contains("garbage"));
        assert!(store.contains("flip"), "valid header passes the scan");
        assert!(
            store.load("flip").is_none(),
            "checksum catches the flip at load"
        );
        assert_eq!(store.quarantined.load(Ordering::Relaxed), 3);
        assert!(!store.contains("flip"));
        assert!(dir.join("flip.lmcs.corrupt").exists());
        assert!(dir.join("trunc.lmcs.corrupt").exists());
        assert!(dir.join("garbage.lmcs.corrupt").exists());
        // Quarantined files are not re-indexed on the next boot.
        let store = SnapshotStore::open(&dir).unwrap();
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_verify_quarantines_bit_rot() {
        let dir = tmp_dir("scrubv");
        let store = SnapshotStore::open(&dir).unwrap();
        let g = gen::planted_clique(60, 0.05, 5, 3);
        let kc = kcore_sequential(&g);
        store.save("ok", &g, &kc).unwrap();
        store.save("rot", &g, &kc).unwrap();
        assert!(store.verify("ok"));
        assert!(store.verify("missing"), "absent names verify vacuously");
        // Flip one payload byte: header stays valid, checksum does not.
        let path = dir.join("rot.lmcs");
        let mut bytes = std::fs::read(&path).unwrap();
        let at = bytes.len() - 9;
        bytes[at] ^= 0x10;
        std::fs::write(&path, &bytes).unwrap();
        assert!(!store.verify("rot"), "a single flipped byte must be caught");
        assert!(!store.contains("rot"));
        assert!(dir.join("rot.lmcs.corrupt").exists());
        assert_eq!(store.quarantined.load(Ordering::Relaxed), 1);
        // Clean snapshots still verify and load.
        assert!(store.verify("ok"));
        assert!(store.load("ok").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unsafe_names_are_rejected_not_written() {
        let dir = tmp_dir("names");
        let store = SnapshotStore::open(&dir).unwrap();
        let g = gen::complete(4);
        let kc = kcore_sequential(&g);
        assert!(store.save("a/b", &g, &kc).is_err());
        assert!(store.save("", &g, &kc).is_err());
        assert!(store.save(&"x".repeat(200), &g, &kc).is_err());
        assert!(store.is_empty());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
