//! A tiny lock-based object pool for search scratch arenas.
//!
//! The systematic sweep solves thousands of small neighbourhood subgraphs
//! from short-lived parallel tasks; a worker checks an arena out of the
//! pool, runs one solve, and returns it. Because arenas grow monotonically
//! and are reshaped (not reallocated) between solves, the whole sweep
//! reaches a steady state where no solve allocates at all — the buffers
//! warmed by early neighbourhoods are reused by every later one, across
//! worker threads and parallel phases.
//!
//! The pool is a mutex around a stack of boxes. One lock round-trip per
//! neighbourhood solve is noise next to the solve itself, and a stack (as
//! opposed to per-thread storage) keeps warm arenas alive across the
//! short-lived scoped threads the vendored rayon shim spawns per phase.

use std::sync::Mutex;

/// Most idle objects a pool retains; beyond that, returned objects are
/// dropped. Bounds memory at (number of workers that ever ran) arenas.
const POOL_CAP: usize = 64;

/// A pool of reusable `T`s. `T::default()` is the cold-start object.
pub struct Pool<T> {
    stack: Mutex<Vec<Box<T>>>,
    /// When set, objects failing the predicate are dropped on `put`
    /// instead of retained — the hook long-lived processes use to stop
    /// one huge problem instance from pinning its arenas forever.
    retain: Option<fn(&T) -> bool>,
}

impl<T: Default> Pool<T> {
    /// An empty pool (usable as a `static`).
    pub const fn new() -> Self {
        Pool {
            stack: Mutex::new(Vec::new()),
            retain: None,
        }
    }

    /// An empty pool that drops returned objects failing `retain` —
    /// e.g. arenas grown past a byte budget by an outlier instance.
    pub const fn with_retain(retain: fn(&T) -> bool) -> Self {
        Pool {
            stack: Mutex::new(Vec::new()),
            retain: Some(retain),
        }
    }

    /// Pops a warm object, or builds a cold one.
    pub fn take(&self) -> Box<T> {
        self.stack.lock().unwrap().pop().unwrap_or_default()
    }

    /// Returns an object to the pool (dropped when the pool is full or
    /// the object fails the retain predicate).
    pub fn put(&self, item: Box<T>) {
        if let Some(retain) = self.retain {
            if !retain(&item) {
                return;
            }
        }
        let mut stack = self.stack.lock().unwrap();
        if stack.len() < POOL_CAP {
            stack.push(item);
        }
    }

    /// Runs `f` with a pooled object, returning it afterwards. If `f`
    /// panics the object is dropped, not returned — a half-updated arena
    /// never re-enters circulation.
    pub fn with<R>(&self, f: impl FnOnce(&mut T) -> R) -> R {
        let mut item = self.take();
        let r = f(&mut item);
        self.put(item);
        r
    }
}

impl<T: Default> Default for Pool<T> {
    fn default() -> Self {
        Self::new()
    }
}

/// Everything one worker needs to run both subgraph engines: the MC arena
/// and the full clique-via-VC pipeline scratch.
#[derive(Default)]
pub struct SolverScratch {
    /// Dense MC search arena.
    pub mc: crate::mc::McScratch,
    /// Clique-via-k-VC pipeline scratch (complement matrix included).
    pub vc: crate::vc::VcSolveScratch,
    /// Witness buffer shared by both engines.
    pub clique: Vec<u32>,
}

impl SolverScratch {
    /// Heap bytes retained across both engines (pool retention bound).
    pub fn heap_bytes(&self) -> usize {
        self.mc.heap_bytes() + self.vc.heap_bytes() + self.clique.capacity() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_objects() {
        static POOL: Pool<Vec<u32>> = Pool::new();
        POOL.with(|v| {
            assert!(v.is_empty());
            v.reserve(1024);
        });
        let cap = POOL.with(|v| v.capacity());
        assert!(cap >= 1024, "warm object must come back from the pool");
    }

    #[test]
    fn pool_retain_drops_oversized() {
        static POOL: Pool<Vec<u32>> = Pool::with_retain(|v| v.capacity() <= 100);
        POOL.with(|v| v.reserve(1000));
        // The oversized object was dropped on return: next take is cold.
        assert_eq!(POOL.with(|v| v.capacity()), 0);
        POOL.with(|v| v.reserve(10));
        assert!(POOL.with(|v| v.capacity()) >= 10, "small objects retained");
    }

    #[test]
    fn pool_survives_concurrent_use() {
        static POOL: Pool<Vec<u32>> = Pool::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for i in 0..100u32 {
                        POOL.with(|v| {
                            v.clear();
                            v.push(i);
                            assert_eq!(v.len(), 1);
                        });
                    }
                });
            }
        });
    }
}
