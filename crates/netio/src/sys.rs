//! Raw Linux syscall surface for the reactor, declared `extern "C"`
//! against the libc that `std` already links — the workspace vendors no
//! third-party crates, so there is no `libc` crate to lean on. Only the
//! handful of calls the poller needs are declared, with their constants
//! taken from the kernel UAPI headers.

#![allow(non_camel_case_types)]

use std::os::raw::{c_int, c_uint, c_void};

// epoll_ctl ops.
pub const EPOLL_CTL_ADD: c_int = 1;
pub const EPOLL_CTL_DEL: c_int = 2;
pub const EPOLL_CTL_MOD: c_int = 3;

// epoll event bits.
pub const EPOLLIN: u32 = 0x001;
pub const EPOLLOUT: u32 = 0x004;
pub const EPOLLERR: u32 = 0x008;
pub const EPOLLHUP: u32 = 0x010;
pub const EPOLLRDHUP: u32 = 0x2000;
pub const EPOLLET: u32 = 1 << 31;

// epoll_create1 / eventfd flags (CLOEXEC = O_CLOEXEC, NONBLOCK = O_NONBLOCK).
pub const EPOLL_CLOEXEC: c_int = 0o2000000;
pub const EFD_CLOEXEC: c_int = 0o2000000;
pub const EFD_NONBLOCK: c_int = 0o4000;

// fcntl.
pub const F_GETFL: c_int = 3;
pub const F_SETFL: c_int = 4;
pub const O_NONBLOCK: c_int = 0o4000;

// signalfd flags (same O_CLOEXEC/O_NONBLOCK encoding as eventfd).
pub const SFD_CLOEXEC: c_int = 0o2000000;
pub const SFD_NONBLOCK: c_int = 0o4000;
// sigprocmask/pthread_sigmask `how`.
pub const SIG_BLOCK: c_int = 0;
// Signal numbers the daemon cares about.
pub const SIGINT: c_int = 2;
pub const SIGTERM: c_int = 15;

/// glibc's `sigset_t`: 1024 bits regardless of how many signals the
/// kernel actually defines. Zeroed = empty set; `sigaddset` fills it.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct sigset_t {
    pub bits: [u64; 16],
}

/// The kernel's `struct signalfd_siginfo` is 128 bytes; the reactor only
/// drains it (which signal arrived is implied by the mask), so an opaque
/// byte blob is enough.
#[repr(C)]
#[derive(Clone, Copy)]
pub struct signalfd_siginfo {
    pub bytes: [u8; 128],
}

// setsockopt.
pub const SOL_SOCKET: c_int = 1;
pub const SO_SNDBUF: c_int = 7;
pub const SO_RCVBUF: c_int = 8;

/// The kernel's `struct epoll_event`. On x86-64 the ABI packs it (glibc's
/// `__EPOLL_PACKED`); elsewhere natural alignment applies — getting this
/// wrong corrupts the `data` field of every event after the first.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
pub struct epoll_event {
    pub events: u32,
    /// We always carry a caller token here (the `u64` arm of the kernel's
    /// `epoll_data_t` union).
    pub data: u64,
}

extern "C" {
    pub fn epoll_create1(flags: c_int) -> c_int;
    pub fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut epoll_event) -> c_int;
    pub fn epoll_wait(
        epfd: c_int,
        events: *mut epoll_event,
        maxevents: c_int,
        timeout: c_int,
    ) -> c_int;
    pub fn eventfd(initval: c_uint, flags: c_int) -> c_int;
    pub fn read(fd: c_int, buf: *mut c_void, count: usize) -> isize;
    pub fn write(fd: c_int, buf: *const c_void, count: usize) -> isize;
    pub fn close(fd: c_int) -> c_int;
    pub fn fcntl(fd: c_int, cmd: c_int, arg: c_int) -> c_int;
    pub fn setsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *const c_void,
        optlen: u32,
    ) -> c_int;
    pub fn getsockopt(
        fd: c_int,
        level: c_int,
        optname: c_int,
        optval: *mut c_void,
        optlen: *mut u32,
    ) -> c_int;
    pub fn sigemptyset(set: *mut sigset_t) -> c_int;
    pub fn sigaddset(set: *mut sigset_t, signum: c_int) -> c_int;
    pub fn pthread_sigmask(how: c_int, set: *const sigset_t, oldset: *mut sigset_t) -> c_int;
    pub fn signalfd(fd: c_int, mask: *const sigset_t, flags: c_int) -> c_int;
}
