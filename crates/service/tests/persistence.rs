//! Live-socket tests of `--data-dir` durability and the request-framing
//! hardening: kill-and-restart reload (no re-core), corruption quarantine,
//! LRU eviction + lazy reload over HTTP, DELETE unlinking, and the
//! request-smuggling error surface (duplicate Content-Length, chunked
//! Transfer-Encoding).

mod common;

use common::{bool_field, u64_field, upload, Client};
use lazymc_graph::gen;
use lazymc_service::{serve, Json, ServiceConfig, ServiceHandle};
use std::path::PathBuf;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lazymc_svc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(data_dir: &std::path::Path, max_graphs: usize) -> ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        max_graphs,
        data_dir: Some(data_dir.to_str().unwrap().to_string()),
        ..ServiceConfig::default()
    })
    .expect("bind service")
}

/// The acceptance scenario: upload, kill the daemon, boot a fresh one over
/// the same data dir, and solve WITHOUT re-uploading. The reload must be
/// lazy (nothing resident before first touch), must not recompute the
/// k-core, and must agree with the pre-restart answer.
#[test]
fn restart_survives_and_skips_recore() {
    let dir = tmp_dir("restart");
    let g = gen::planted_clique(250, 0.04, 10, 13);

    // Daemon #1: upload + solve.
    let first = start(&dir, 8);
    let mut c1 = Client::connect(first.addr());
    let info = upload(&mut c1, "pc", &g);
    let degeneracy = u64_field(&info, "degeneracy");
    let (status, solved) = c1.post_json("/solve", r#"{"graph":"pc"}"#);
    assert_eq!(status, 200);
    let omega = u64_field(&solved, "omega");
    assert!(bool_field(&solved, "exact"));
    assert_eq!(c1.metric("lazymc_core_computes_total"), 1);
    assert_eq!(c1.metric("lazymc_snapshot_writes_total"), 1);
    assert_eq!(c1.metric("lazymc_snapshot_lazy_loads_total"), 0);
    first.stop(); // kill

    // Daemon #2 over the same dir: the graph is on disk, not in memory.
    let second = start(&dir, 8);
    let mut c2 = Client::connect(second.addr());
    let (_, health) = c2.get_json("/healthz");
    assert_eq!(
        u64_field(&health, "graphs"),
        0,
        "lazy: nothing resident at boot"
    );
    assert_eq!(u64_field(&health, "snapshots"), 1);
    assert!(u64_field(&health, "snapshot_disk_bytes") > 0);
    let (_, listing) = c2.get_json("/graphs");
    match listing.get("on_disk") {
        Some(Json::Arr(names)) => {
            assert_eq!(names.len(), 1);
            assert_eq!(names[0].as_str(), Some("pc"));
        }
        other => panic!("bad on_disk {other:?}"),
    }

    // Solve without re-upload: lazy-load hit, zero core computes.
    let (status, resolved) = c2.post_json("/solve", r#"{"graph":"pc"}"#);
    assert_eq!(
        status, 200,
        "solve after restart without re-upload: {resolved:?}"
    );
    assert_eq!(u64_field(&resolved, "omega"), omega);
    assert!(bool_field(&resolved, "exact"));
    assert_eq!(
        c2.metric("lazymc_snapshot_lazy_loads_total"),
        1,
        "first touch reloads from disk"
    );
    assert_eq!(
        c2.metric("lazymc_core_computes_total"),
        0,
        "coreness must be deserialized, not recomputed"
    );

    // The reloaded stats agree with the original preprocessing.
    let (status, stats) = c2.get_json("/stats/pc");
    assert_eq!(status, 200);
    assert_eq!(u64_field(&stats, "degeneracy"), degeneracy);
    assert!(bool_field(&stats, "lazy_loaded"));
    assert!(u64_field(&stats, "snapshot_bytes") > 0);

    // Second solve: plain memory hit, still exactly one lazy load.
    let (_, again) = c2.post_json("/solve", r#"{"graph":"pc"}"#);
    assert_eq!(u64_field(&again, "omega"), omega);
    assert_eq!(c2.metric("lazymc_snapshot_lazy_loads_total"), 1);

    second.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A corrupted snapshot in the data dir is quarantined with a warning at
/// boot (or at first load), never crashing the daemon or serving wrong
/// bytes.
#[test]
fn corrupted_snapshot_is_quarantined_not_fatal() {
    let dir = tmp_dir("quarantine");
    let g = gen::planted_clique(150, 0.05, 8, 3);
    {
        let first = start(&dir, 8);
        let mut c = Client::connect(first.addr());
        upload(&mut c, "ok", &g);
        upload(&mut c, "bitrot", &g);
        first.stop();
    }
    // Flip one payload byte in bitrot's snapshot: the header stays valid,
    // so only the full checksum at load time can catch it.
    let victim = dir.join("bitrot.lmcs");
    let mut bytes = std::fs::read(&victim).unwrap();
    let at = bytes.len() - 5;
    bytes[at] ^= 0x10;
    std::fs::write(&victim, &bytes).unwrap();
    // And drop outright garbage beside it (caught at boot scan).
    std::fs::write(dir.join("junk.lmcs"), b"LMCSgarbage").unwrap();

    let second = start(&dir, 8);
    let mut c = Client::connect(second.addr());
    assert_eq!(
        c.metric("lazymc_snapshots_quarantined_total"),
        1,
        "junk dies at scan"
    );

    // The intact graph still lazily reloads and solves.
    let (status, solved) = c.post_json("/solve", r#"{"graph":"ok"}"#);
    assert_eq!(status, 200, "{solved:?}");
    assert!(bool_field(&solved, "exact"));

    // Touching the bit-rotted graph quarantines it and answers 404.
    let (status, _) = c.post_json("/solve", r#"{"graph":"bitrot"}"#);
    assert_eq!(status, 404, "corrupt snapshot must not resurrect");
    assert_eq!(c.metric("lazymc_snapshots_quarantined_total"), 2);
    assert!(dir.join("bitrot.lmcs.corrupt").exists());
    assert!(dir.join("junk.lmcs.corrupt").exists());

    // The daemon is still healthy after all of that.
    let (status, health) = c.get_json("/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));
    second.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// LRU eviction with a data dir only frees memory: the victim lazily
/// reloads on its next query (registry-level mid-flight safety is covered
/// by registry unit tests), and DELETE unlinks the snapshot for real.
#[test]
fn eviction_reloads_lazily_but_delete_unlinks() {
    let dir = tmp_dir("evict");
    let handle = start(&dir, 2);
    let mut c = Client::connect(handle.addr());

    let g = gen::planted_clique(120, 0.05, 7, 5);
    upload(&mut c, "a", &g);
    let (_, first) = c.post_json("/solve", r#"{"graph":"a"}"#);
    let omega = u64_field(&first, "omega");
    upload(&mut c, "b", &gen::complete(6));
    upload(&mut c, "c", &gen::complete(7)); // evicts "a" (LRU)
    assert!(c.metric("lazymc_graphs_evicted_total") >= 1);
    assert_eq!(
        c.metric("lazymc_snapshots_on_disk"),
        3,
        "eviction keeps the snapshot"
    );

    // The evicted graph answers again via lazy reload — same omega, no
    // re-upload, no re-core (3 uploads = 3 core computes, no more).
    let (status, resolved) = c.post_json("/solve", r#"{"graph":"a","no_cache":true}"#);
    assert_eq!(status, 200, "{resolved:?}");
    assert_eq!(u64_field(&resolved, "omega"), omega);
    assert_eq!(c.metric("lazymc_snapshot_lazy_loads_total"), 1);
    assert_eq!(c.metric("lazymc_core_computes_total"), 3);

    // DELETE = forget durably: memory, disk, and no lazy resurrection.
    let (status, _, _) = c.request("DELETE", "/graphs/a", None);
    assert_eq!(status, 200);
    assert!(
        !dir.join("a.lmcs").exists(),
        "DELETE must unlink the snapshot"
    );
    let (status, _) = c.post_json("/solve", r#"{"graph":"a"}"#);
    assert_eq!(status, 404);
    // Deleting an evicted (disk-only) graph also works end-to-end.
    upload(&mut c, "d", &gen::complete(5)); // evicts b or c from memory
    let (status, _, _) = c.request("DELETE", "/graphs/b", None);
    assert_eq!(status, 200, "disk-only graphs are deletable");
    assert!(!dir.join("b.lmcs").exists());

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Pre-seeding: `.lmcs` files written offline (e.g. by `lazymc snapshot`)
/// are picked up by the boot index scan and served without any upload.
#[test]
fn preseeded_data_dir_serves_without_upload() {
    let dir = tmp_dir("preseed");
    std::fs::create_dir_all(&dir).unwrap();
    let g = gen::planted_clique(100, 0.06, 9, 21);
    let kc = lazymc_order::kcore_sequential(&g);
    let mut snap = lazymc_graph::snapshot::Snapshot::from_graph(&g);
    lazymc_order::embed_kcore(&mut snap, &kc);
    lazymc_graph::snapshot::write_file_atomic(&dir.join("seeded.lmcs"), &snap.encode()).unwrap();

    let handle = start(&dir, 8);
    let mut c = Client::connect(handle.addr());
    let (status, solved) = c.post_json("/solve", r#"{"graph":"seeded"}"#);
    assert_eq!(status, 200, "{solved:?}");
    assert!(bool_field(&solved, "exact"));
    assert!(u64_field(&solved, "omega") >= 9);
    assert_eq!(c.metric("lazymc_core_computes_total"), 0);
    assert_eq!(c.metric("lazymc_snapshot_lazy_loads_total"), 1);
    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Request-smuggling hygiene: duplicate/conflicting Content-Length headers
/// are a 400, Transfer-Encoding (chunked or otherwise) a 501 — in both
/// cases the connection closes instead of misreading the body.
#[test]
fn framing_rejects_smuggling_vectors() {
    let handle = serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..ServiceConfig::default()
    })
    .expect("bind");
    let addr = handle.addr();

    // Conflicting Content-Length pair.
    let mut c = Client::connect(addr);
    let (status, _, body) = c.raw(
        "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nContent-Length: 5\r\n\r\n{}xyz",
    );
    assert_eq!(status, 400, "conflicting Content-Length: {body}");

    // Duplicate-but-agreeing Content-Length is still ambiguous upstream.
    let mut c = Client::connect(addr);
    let (status, _, _) = c
        .raw("POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\n{}");
    assert_eq!(status, 400, "duplicate Content-Length");

    // Comma-merged Content-Length list.
    let mut c = Client::connect(addr);
    let (status, _, _) = c.raw("POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: 2, 2\r\n\r\n{}");
    assert_eq!(status, 400, "comma-joined Content-Length");

    // Chunked transfer coding: answered 501, never parsed as if framed.
    let mut c = Client::connect(addr);
    let (status, _, body) = c.raw(
        "POST /solve HTTP/1.1\r\nHost: t\r\nTransfer-Encoding: chunked\r\n\r\n2\r\n{}\r\n0\r\n\r\n",
    );
    assert_eq!(status, 501, "chunked must be refused: {body}");
    assert!(body.contains("Transfer-Encoding"));

    // TE + CL together (the classic desync vector) also refused.
    let mut c = Client::connect(addr);
    let (status, _, _) = c.raw(
        "POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: 2\r\nTransfer-Encoding: chunked\r\n\r\n{}",
    );
    assert_eq!(status, 501, "TE+CL must be refused");

    // The daemon still serves ordinary requests afterwards.
    let mut c = Client::connect(addr);
    let (status, _) = c.get_json("/healthz");
    assert_eq!(status, 200);
    handle.stop();
}

/// Without --data-dir nothing persists and the new surfaces degrade
/// gracefully (no snapshot metrics movement, no on_disk names).
#[test]
fn memory_only_mode_unchanged() {
    let handle = serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..ServiceConfig::default()
    })
    .expect("bind");
    let mut c = Client::connect(handle.addr());
    upload(&mut c, "tmp", &gen::complete(5));
    let (_, health) = c.get_json("/healthz");
    assert!(!bool_field(&health, "durable"));
    assert_eq!(u64_field(&health, "snapshots"), 0);
    assert_eq!(c.metric("lazymc_snapshot_writes_total"), 0);
    let (_, stats) = c.get_json("/stats/tmp");
    assert_eq!(u64_field(&stats, "snapshot_bytes"), 0);
    assert!(!bool_field(&stats, "lazy_loaded"));
    handle.stop();
}
