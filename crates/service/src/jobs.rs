//! Asynchronous job lifecycle: every solve the daemon runs — synchronous,
//! `?async=1`, or one slot of a batch — is a **job** with an id, a
//! cancellable ticket, a cancellable deadline, and a *sink* that receives
//! its one result:
//!
//! * [`JobSink::Sync`] — a [`Responder`] for the connection blocked (at
//!   the HTTP level only; no thread waits) on `POST /solve`.
//! * [`JobSink::Async`] — the result is retained in the [`JobStore`] for
//!   `GET /jobs/<id>` polling, byte-bounded with TTL eviction.
//! * [`JobSink::Batch`] — one slot of a [`BatchAggregator`]; the last
//!   slot to fill sends the combined array response.
//!
//! The store is the single place job state transitions happen, so
//! `DELETE /jobs/<id>` cannot race the solver pool: cancellation of a
//! *queued* job takes the sink and answers it immediately (the popped
//! carcass is skipped by the worker); cancellation of a *running* job
//! trips the ticket and the deadline, and the worker's completion — which
//! always goes through [`JobStore::complete`] — reports it cancelled.

use crate::conn::Response;
use crate::plock;
use crate::protocol::Json;
use crate::queue::JobTicket;
use crate::reactor::Responder;
use lazymc_core::{Deadline, PhaseTimes, SolveProgress};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Where a job's one result goes.
pub(crate) enum JobSink {
    Sync(Responder),
    Async,
    Batch {
        agg: Arc<BatchAggregator>,
        slot: usize,
    },
}

/// Request facts needed to format the job's result later.
pub(crate) struct JobMeta {
    pub graph: String,
    pub budget_clamped: bool,
    /// Trace id of the request that submitted the job (flows into the
    /// solve's log line and slow-query entry).
    pub trace: String,
    /// Request-body parse time, the first span of the job's trace.
    pub parse_us: u64,
    /// Effective solve budget after server-side clamping, for the live
    /// progress view's elapsed-vs-budget readout.
    pub budget_ms: Option<u64>,
    /// Queue priority the job was admitted at; the hard memory watermark
    /// uses it to pick the cheapest running solve to cancel.
    pub priority: u8,
}

/// Lifecycle states surfaced by `GET /jobs/<id>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
}

impl JobState {
    pub fn as_str(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Cancelled => "cancelled",
            JobState::Failed => "failed",
        }
    }
}

/// What a solver worker reports back for one executed job.
pub(crate) struct SolveReply {
    pub omega: usize,
    pub clique: Vec<u32>,
    pub exact: bool,
    pub cached: bool,
    pub wait_ms: u64,
    pub solve_ms: u64,
    /// Per-phase wall times of the executed solve (zeroed for cache
    /// hits, which never ran).
    pub phases: PhaseTimes,
}

/// Submission facts handed to [`JobStore::complete`]'s observer so the
/// solver worker can emit the job's solve observation (trace line,
/// histograms, slow-query entry) without re-locking the store.
pub(crate) struct CompletedMeta {
    pub trace: String,
    pub graph: String,
    pub parse_us: u64,
    /// Result-JSON encoding time, measured inside `complete`.
    pub serialize_us: u64,
}

struct JobRecord {
    state: JobState,
    ticket: JobTicket,
    deadline: Arc<Deadline>,
    sink: Option<JobSink>,
    meta: JobMeta,
    created: Instant,
    /// Live solve progress, installed when a solver worker picks the
    /// job up; `GET /jobs/<id>` reads it while the job runs.
    progress: Option<Arc<SolveProgress>>,
    running_since: Option<Instant>,
    completed: Option<Instant>,
    /// Encoded result object, retained for async jobs only.
    result: Option<String>,
    /// Whether the record outlives completion (async) or is dropped the
    /// moment its sink fires (sync, batch).
    retain: bool,
}

impl JobRecord {
    fn bytes(&self) -> usize {
        self.meta.graph.len() + self.result.as_ref().map_or(0, String::len) + 128
    }
}

/// Terminal fate of a job whose full record is gone. Two flavors:
///
/// * `evicted: false` — the record was delivered to a one-shot sink
///   (sync, batch) and dropped. `GET`/`DELETE /jobs/<id>` answer with the
///   terminal state instead of 404: a *failed* job (solver panic, poisoned
///   scope) stays discoverable after its 500 went out.
/// * `evicted: true` — the retained record aged out (TTL) or was pushed
///   out of the byte budget; surfaces as the historical `"expired"` 404.
#[derive(Clone, Copy)]
struct Tombstone {
    state: JobState,
    evicted: bool,
}

struct Inner {
    jobs: HashMap<u64, JobRecord>,
    /// Retained jobs in completion order (TTL/byte eviction order).
    done_order: VecDeque<u64>,
    /// Accounted bytes of retained completed jobs.
    result_bytes: usize,
    /// Terminal states of departed records, keyed by job id.
    tombstones: HashMap<u64, Tombstone>,
    /// FIFO of `tombstones` for bounded eviction.
    tombstone_order: VecDeque<u64>,
}

/// Most tombstones retained; beyond it the oldest forget their history
/// (their 404s degrade to "unknown").
const MAX_TOMBSTONES: usize = 4096;

impl Inner {
    /// Records the terminal `state` of a departed record under `id`.
    fn entomb(&mut self, id: u64, state: JobState, evicted: bool) {
        if self
            .tombstones
            .insert(id, Tombstone { state, evicted })
            .is_none()
        {
            self.tombstone_order.push_back(id);
            while self.tombstone_order.len() > MAX_TOMBSTONES {
                if let Some(old) = self.tombstone_order.pop_front() {
                    self.tombstones.remove(&old);
                }
            }
        }
    }
}

/// Outcome of a `DELETE /jobs/<id>`.
pub(crate) enum CancelOutcome {
    NotFound,
    AlreadyDone(JobState),
    Cancelled { was: JobState },
}

/// Byte-bounded, TTL-evicting store of job records.
pub struct JobStore {
    inner: Mutex<Inner>,
    ttl: Duration,
    max_bytes: usize,
    /// Jobs currently executing in a solver worker (gauge).
    pub jobs_inflight: AtomicU64,
    pub async_submitted: AtomicU64,
    pub cancelled_http: AtomicU64,
    pub expired: AtomicU64,
}

impl JobStore {
    pub(crate) fn new(ttl: Duration, max_bytes: usize) -> JobStore {
        JobStore {
            inner: Mutex::new(Inner {
                jobs: HashMap::new(),
                done_order: VecDeque::new(),
                result_bytes: 0,
                tombstones: HashMap::new(),
                tombstone_order: VecDeque::new(),
            }),
            ttl,
            max_bytes: max_bytes.max(1),
            jobs_inflight: AtomicU64::new(0),
            async_submitted: AtomicU64::new(0),
            cancelled_http: AtomicU64::new(0),
            expired: AtomicU64::new(0),
        }
    }

    /// Registers a queued job *before* it becomes poppable (the caller
    /// pushes to the queue only after this returns).
    pub(crate) fn insert_queued(
        &self,
        ticket: JobTicket,
        deadline: Arc<Deadline>,
        sink: JobSink,
        meta: JobMeta,
    ) {
        // `async_submitted` is NOT counted here: the caller counts it
        // only once the queue push actually succeeds, so rejected (429)
        // submissions never inflate the metric.
        let retain = matches!(sink, JobSink::Async);
        let record = JobRecord {
            state: JobState::Queued,
            ticket,
            deadline,
            sink: Some(sink),
            meta,
            created: Instant::now(),
            progress: None,
            running_since: None,
            completed: None,
            result: None,
            retain,
        };
        let id = record.ticket.id;
        let mut inner = plock(&self.inner);
        inner.jobs.insert(id, record);
    }

    /// Installs an already-terminal retained record. Boot replay uses
    /// this when a journaled job can no longer run (its graph's snapshot
    /// is gone, or the service has no solver for it anymore):
    /// `GET /jobs/<id>` then reports the terminal state and result like
    /// any completed async job, instead of pretending the job never
    /// existed.
    pub(crate) fn insert_terminal(
        &self,
        ticket: JobTicket,
        graph: String,
        state: JobState,
        result: Json,
    ) {
        let id = ticket.id;
        let now = Instant::now();
        let record = JobRecord {
            state,
            ticket,
            deadline: Arc::new(Deadline::starting_now(None)),
            sink: None,
            meta: JobMeta {
                graph,
                budget_clamped: false,
                trace: String::new(),
                parse_us: 0,
                budget_ms: None,
                priority: 0,
            },
            created: now,
            progress: None,
            running_since: None,
            completed: Some(now),
            result: Some(result.encode()),
            retain: true,
        };
        let bytes = record.bytes();
        let mut inner = plock(&self.inner);
        inner.jobs.insert(id, record);
        inner.result_bytes += bytes;
        inner.done_order.push_back(id);
        self.evict_locked(&mut inner);
    }

    /// Rolls back [`JobStore::insert_queued`] after a failed queue push.
    ///
    /// If a racing `DELETE /jobs/<id>` finalized the record first (the
    /// job id is visible from the moment it is inserted), the record is
    /// left alone: its sink was already answered and, for async jobs,
    /// its bytes are already accounted in `done_order` — removing it
    /// here would leak the accounting. The caller's own follow-up
    /// response is harmless either way (sync responders are first-wins,
    /// batch slots are first-fill-wins).
    pub(crate) fn forget(&self, id: u64) {
        let mut inner = plock(&self.inner);
        if inner.jobs.get(&id).is_some_and(|r| r.completed.is_none()) {
            inner.jobs.remove(&id);
        }
    }

    /// A solver worker picked the job up; `progress` is the live cell
    /// the solve publishes into and `GET /jobs/<id>` reads from.
    pub(crate) fn mark_running(&self, id: u64, progress: Arc<SolveProgress>) {
        if let Some(r) = plock(&self.inner).jobs.get_mut(&id) {
            if r.state == JobState::Queued {
                r.state = JobState::Running;
                r.progress = Some(progress);
                r.running_since = Some(Instant::now());
            }
        }
    }

    /// Formats a solve result object (shared by live solves, cache hits
    /// and batch slots, so all three speak the same shape).
    pub(crate) fn result_json(
        graph: &str,
        job_id: Option<u64>,
        reply: &SolveReply,
        budget_clamped: bool,
        cancelled: bool,
    ) -> Json {
        Json::obj(vec![
            ("graph", Json::str(graph)),
            (
                "job_id",
                match job_id {
                    Some(id) => Json::num(id as f64),
                    None => Json::Null, // cache hits never became a job
                },
            ),
            ("omega", Json::num(reply.omega as f64)),
            (
                "clique",
                Json::Arr(reply.clique.iter().map(|&v| Json::num(v as f64)).collect()),
            ),
            ("exact", Json::Bool(reply.exact)),
            ("truncated", Json::Bool(!reply.exact)),
            ("cached", Json::Bool(reply.cached)),
            ("cancelled", Json::Bool(cancelled)),
            ("budget_clamped", Json::Bool(budget_clamped)),
            ("wait_ms", Json::num(reply.wait_ms as f64)),
            ("solve_ms", Json::num(reply.solve_ms as f64)),
            (
                "phase_ms",
                Json::Obj(
                    crate::obs::PHASES
                        .iter()
                        .zip(crate::obs::phase_micros(&reply.phases))
                        .map(|(name, us)| (name.to_string(), Json::num(us as f64 / 1e3)))
                        .collect(),
                ),
            ),
        ])
    }

    /// Delivers a finished job to its sink and transitions the record.
    /// `cancelled` reports a mid-solve cancellation observed by the
    /// worker; `reply: Err(reason)` reports a job that produced no result
    /// (solver panic, dead-on-arrival reap). `observe` runs
    /// with the job's submission facts *before* the sink fires, so a
    /// client that already holds its answer can never catch the metrics
    /// unrecorded; it is skipped when a racing cancel already finalized
    /// the record (that path observed nothing worth logging twice).
    pub(crate) fn complete(
        &self,
        id: u64,
        reply: Result<SolveReply, String>,
        cancelled: bool,
        observe: impl FnOnce(CompletedMeta),
    ) {
        let mut inner = plock(&self.inner);
        let Some(record) = inner.jobs.get_mut(&id) else {
            return; // cancelled-while-queued: sink already answered
        };
        if record.completed.is_some() {
            // Already finalized by a racing cancel (the cancel landed in
            // the window between the worker's pop and mark_running, so it
            // took the Queued branch: sink answered, bytes accounted).
            // Re-finalizing here would double-count done_order/bytes.
            return;
        }
        let (state, result_json, status) = match &reply {
            Ok(r) => {
                let state = if cancelled {
                    JobState::Cancelled
                } else {
                    JobState::Done
                };
                let json = Self::result_json(
                    &record.meta.graph,
                    Some(id),
                    r,
                    record.meta.budget_clamped,
                    cancelled,
                );
                (state, json, 200)
            }
            Err(reason) => (
                JobState::Failed,
                Json::obj(vec![("error", Json::str(reason.clone()))]),
                500,
            ),
        };
        record.state = state;
        record.completed = Some(Instant::now());
        record.progress = None; // the solve is over; stop serving live reads
        let t_ser = Instant::now();
        let encoded = result_json.encode();
        let meta = CompletedMeta {
            trace: record.meta.trace.clone(),
            graph: record.meta.graph.clone(),
            parse_us: record.meta.parse_us,
            serialize_us: t_ser.elapsed().as_micros() as u64,
        };
        let sink = record.sink.take();
        if record.retain {
            record.result = Some(encoded);
            let bytes = record.bytes();
            inner.result_bytes += bytes;
            inner.done_order.push_back(id);
        } else {
            inner.jobs.remove(&id);
            inner.entomb(id, state, false);
        }
        self.evict_locked(&mut inner);
        drop(inner);
        // Observation first, delivery second: by the time any client can
        // see this result, its histograms/log line are already recorded.
        observe(meta);
        match sink {
            Some(JobSink::Sync(responder)) => {
                responder.respond(Response::json(status, result_json))
            }
            Some(JobSink::Batch { agg, slot }) => agg.fill(slot, result_json),
            Some(JobSink::Async) | None => {}
        }
    }

    /// `DELETE /jobs/<id>`.
    pub(crate) fn cancel(&self, id: u64) -> CancelOutcome {
        let mut inner = plock(&self.inner);
        let Some(record) = inner.jobs.get_mut(&id) else {
            // A delivered-and-dropped job still answers with its terminal
            // state (a failed sync job must not 404); evicted records keep
            // the historical "expired" 404.
            return match inner.tombstones.get(&id) {
                Some(t) if !t.evicted => CancelOutcome::AlreadyDone(t.state),
                _ => CancelOutcome::NotFound,
            };
        };
        match record.state {
            JobState::Queued => {
                record.ticket.cancel();
                record.deadline.cancel();
                record.state = JobState::Cancelled;
                record.completed = Some(Instant::now());
                let sink = record.sink.take();
                let retain = record.retain;
                if retain {
                    let bytes = record.bytes();
                    inner.result_bytes += bytes;
                    inner.done_order.push_back(id);
                } else {
                    inner.jobs.remove(&id);
                    inner.entomb(id, JobState::Cancelled, false);
                }
                drop(inner);
                self.cancelled_http.fetch_add(1, Ordering::Relaxed);
                let cancelled_json = Json::obj(vec![
                    ("error", Json::str("job cancelled before it ran")),
                    ("job_id", Json::num(id as f64)),
                    ("cancelled", Json::Bool(true)),
                ]);
                match sink {
                    Some(JobSink::Sync(responder)) => {
                        responder.respond(Response::json(409, cancelled_json))
                    }
                    Some(JobSink::Batch { agg, slot }) => agg.fill(slot, cancelled_json),
                    Some(JobSink::Async) | None => {}
                }
                CancelOutcome::Cancelled {
                    was: JobState::Queued,
                }
            }
            JobState::Running => {
                // Trip both flags: the queue-level ticket (so the worker
                // reports "cancelled") and the deadline (so the solve
                // actually stops at its next poll). The completion still
                // flows through `complete`.
                record.ticket.cancel();
                record.deadline.cancel();
                self.cancelled_http.fetch_add(1, Ordering::Relaxed);
                CancelOutcome::Cancelled {
                    was: JobState::Running,
                }
            }
            state => CancelOutcome::AlreadyDone(state),
        }
    }

    /// Trips the abort machinery of the lowest-priority *running* job —
    /// the hard memory watermark's victim. Among equal priorities the
    /// most recently started loses (least work discarded). The solve
    /// observes its tripped deadline at the next poll and completes as
    /// cancelled through the normal [`JobStore::complete`] path; this
    /// only selects and trips. Returns the victim's id and priority.
    pub(crate) fn cancel_lowest_priority_running(&self) -> Option<(u64, u8)> {
        let inner = plock(&self.inner);
        let (&id, record) = inner
            .jobs
            .iter()
            .filter(|(_, r)| r.state == JobState::Running)
            .min_by_key(|(_, r)| {
                (
                    r.meta.priority,
                    // Reverse the start time: later start = smaller key.
                    std::cmp::Reverse(r.running_since.unwrap_or(r.created)),
                )
            })?;
        record.ticket.cancel();
        record.deadline.cancel();
        Some((id, record.meta.priority))
    }

    /// `GET /jobs/<id>`: state + retained result. Applies TTL lazily —
    /// an expired record is removed and reported absent.
    pub(crate) fn view(&self, id: u64) -> Option<Json> {
        let mut inner = plock(&self.inner);
        let expired = inner
            .jobs
            .get(&id)
            .is_some_and(|r| r.completed.is_some_and(|t| t.elapsed() > self.ttl));
        if expired {
            if let Some(r) = inner.jobs.remove(&id) {
                inner.result_bytes = inner.result_bytes.saturating_sub(r.bytes());
                inner.entomb(id, r.state, true);
            }
            self.expired.fetch_add(1, Ordering::Relaxed);
            return None;
        }
        let Some(record) = inner.jobs.get(&id) else {
            // Delivered-and-dropped (sync/batch) jobs keep answering with
            // their terminal state — no retained result, but the fate
            // (notably `failed`) is preserved. Evicted records stay 404.
            let tomb = *inner.tombstones.get(&id)?;
            if tomb.evicted {
                return None;
            }
            return Some(Json::obj(vec![
                ("job_id", Json::num(id as f64)),
                ("status", Json::str(tomb.state.as_str())),
                ("retained", Json::Bool(false)),
                ("result", Json::Null),
            ]));
        };
        let mut fields = vec![
            ("job_id", Json::num(id as f64)),
            ("status", Json::str(record.state.as_str())),
            ("graph", Json::str(&*record.meta.graph)),
            (
                "age_ms",
                Json::num(record.created.elapsed().as_millis() as f64),
            ),
        ];
        if record.completed.is_none() {
            if let Some(p) = &record.progress {
                // Live view of a running solve: every field is a relaxed
                // load the search performs anyway.
                let snap = p.counters_snapshot();
                let mut prog = vec![
                    ("phase", Json::str(p.phase().name())),
                    ("nodes_expanded", Json::num(p.nodes_expanded() as f64)),
                    ("incumbent_size", Json::num(p.incumbent_size() as f64)),
                    (
                        "retained_coreness",
                        Json::num(snap.retained_coreness as f64),
                    ),
                    ("retained_f1", Json::num(snap.retained_f1 as f64)),
                    ("retained_f2", Json::num(snap.retained_f2 as f64)),
                    ("retained_f3", Json::num(snap.retained_f3 as f64)),
                    ("searched_mc", Json::num(snap.searched_mc as f64)),
                    ("searched_kvc", Json::num(snap.searched_kvc as f64)),
                ];
                if let Some(since) = record.running_since {
                    prog.push(("elapsed_ms", Json::num(since.elapsed().as_millis() as f64)));
                }
                match record.meta.budget_ms {
                    Some(b) => prog.push(("budget_ms", Json::num(b as f64))),
                    None => prog.push(("budget_ms", Json::Null)),
                }
                fields.push(("progress", Json::obj(prog)));
            }
        }
        match &record.result {
            Some(encoded) => fields.push(("result", Json::parse(encoded).unwrap_or(Json::Null))),
            None => fields.push(("result", Json::Null)),
        }
        Some(Json::obj(fields))
    }

    /// Drops expired completed records, then oldest-completed records
    /// until the byte budget holds. Callers hold the lock.
    fn evict_locked(&self, inner: &mut Inner) {
        // TTL pass over the completion-ordered queue front.
        while let Some(&front) = inner.done_order.front() {
            let expired = inner
                .jobs
                .get(&front)
                .is_none_or(|r| r.completed.is_some_and(|t| t.elapsed() > self.ttl));
            if expired {
                inner.done_order.pop_front();
                if let Some(r) = inner.jobs.remove(&front) {
                    inner.result_bytes = inner.result_bytes.saturating_sub(r.bytes());
                    inner.entomb(front, r.state, true);
                    self.expired.fetch_add(1, Ordering::Relaxed);
                }
            } else {
                break;
            }
        }
        // Byte pass: oldest completed first.
        while inner.result_bytes > self.max_bytes {
            let Some(victim) = inner.done_order.pop_front() else {
                break;
            };
            if let Some(r) = inner.jobs.remove(&victim) {
                inner.result_bytes = inner.result_bytes.saturating_sub(r.bytes());
                inner.entomb(victim, r.state, true);
            }
        }
    }

    /// Why a job id is absent: `"expired"` if a record with this id was
    /// evicted (TTL or byte budget), `"unknown"` if no such job ever
    /// existed (or its tombstone aged out of the bounded history).
    pub(crate) fn missing_reason(&self, id: u64) -> &'static str {
        match plock(&self.inner).tombstones.get(&id) {
            Some(t) if t.evicted => "expired",
            _ => "unknown",
        }
    }

    /// (total records, retained-result bytes) for introspection.
    pub fn stats(&self) -> (usize, usize) {
        let inner = plock(&self.inner);
        (inner.jobs.len(), inner.result_bytes)
    }
}

/// Collects one batch's slot results and sends the combined response when
/// the last slot fills. Slots fill from request workers (cache hits,
/// rejections) and solver workers (live solves) in any order.
pub(crate) struct BatchAggregator {
    responder: Responder,
    slots: Mutex<Vec<Option<Json>>>,
    remaining: AtomicU64,
}

impl BatchAggregator {
    pub(crate) fn new(responder: Responder, n: usize) -> Arc<BatchAggregator> {
        Arc::new(BatchAggregator {
            responder,
            slots: Mutex::new(vec![None; n]),
            remaining: AtomicU64::new(n as u64),
        })
    }

    /// Fills `slot`; the last distinct slot to fill responds. First fill
    /// of a slot wins: a duplicate (a cancel racing a queue-full
    /// rollback can produce one) is dropped rather than double-counted,
    /// and a fill arriving after the response went out (`slots` already
    /// taken) is a no-op — never a panic in a worker thread.
    pub(crate) fn fill(&self, slot: usize, result: Json) {
        {
            let mut slots = plock(&self.slots);
            if slot >= slots.len() || slots[slot].is_some() {
                return;
            }
            slots[slot] = Some(result);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let slots = std::mem::take(&mut *plock(&self.slots));
            let results: Vec<Json> = slots.into_iter().map(|s| s.unwrap_or(Json::Null)).collect();
            let count = results.len();
            self.responder.respond(Response::json(
                200,
                Json::obj(vec![
                    ("results", Json::Arr(results)),
                    ("count", Json::num(count as f64)),
                ]),
            ));
        }
    }
}
