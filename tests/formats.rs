//! End-to-end file-format test: graphs survive a write/read round-trip in
//! every supported format and solve to the same ω afterwards.

use lazymc::core::{Config, LazyMc};
use lazymc::graph::{gen, io};

#[test]
fn solve_after_dimacs_roundtrip() {
    let g = gen::planted_clique(120, 0.05, 9, 3);
    let omega = LazyMc::new(Config::default()).solve(&g).size();

    let mut buf = Vec::new();
    io::write_dimacs(&g, &mut buf).unwrap();
    let h = io::read_dimacs(&buf[..]).unwrap();
    assert_eq!(g, h);
    assert_eq!(LazyMc::new(Config::default()).solve(&h).size(), omega);
}

#[test]
fn solve_after_edge_list_roundtrip() {
    let g = gen::caveman(12, 6, 0.08, 5);
    let omega = LazyMc::new(Config::default()).solve(&g).size();

    let mut buf = Vec::new();
    io::write_edge_list(&g, &mut buf).unwrap();
    let h = io::read_edge_list(&buf[..]).unwrap();
    assert_eq!(g, h);
    assert_eq!(LazyMc::new(Config::default()).solve(&h).size(), omega);
}

#[test]
fn bare_comment_token_lines_are_skipped() {
    // Regression: a lone `c` line (legal in DIMACS-flavoured files, common
    // when a comment block ends with an empty comment) used to be parsed
    // as an edge and rejected. Bare `#` and `%` markers get the same
    // treatment.
    let text = "c\nc regular comment\n#\n%\n0 1\n1 2\nc\n2 0\n";
    let g = io::read_edge_list(text.as_bytes()).unwrap();
    assert_eq!(g.num_vertices(), 3);
    assert_eq!(g.num_edges(), 3);
    assert_eq!(LazyMc::new(Config::default()).solve(&g).size(), 3);
}

#[test]
fn read_path_dispatches_by_extension() {
    let g = gen::gnp(60, 0.1, 8);
    let dir = std::env::temp_dir();

    let clq = dir.join("lazymc_test_roundtrip.clq");
    io::write_dimacs(&g, std::fs::File::create(&clq).unwrap()).unwrap();
    assert_eq!(io::read_path(&clq).unwrap(), g);

    let txt = dir.join("lazymc_test_roundtrip.txt");
    io::write_edge_list(&g, std::fs::File::create(&txt).unwrap()).unwrap();
    assert_eq!(io::read_path(&txt).unwrap(), g);

    let _ = std::fs::remove_file(clq);
    let _ = std::fs::remove_file(txt);
}
