//! Property tests for k-core and ordering: the decompositions must agree
//! with the from-definition oracle, and the relabelling must be a sorted
//! bijection, on arbitrary random graphs.

use lazymc_graph::{gen, CsrGraph};
use lazymc_order::kcore::{kcore_naive, kcore_parallel, kcore_sequential, kcore_with_floor};
use lazymc_order::relabel::{coreness_degree_order, level_ranges};
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = CsrGraph> {
    (2usize..60, 0.0f64..0.4, 0u64..1000).prop_map(|(n, p, seed)| gen::gnp(n, p, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_kcore_matches_definition(g in arb_graph()) {
        let kc = kcore_sequential(&g);
        prop_assert_eq!(&kc.coreness, &kcore_naive(&g));
        prop_assert_eq!(
            kc.degeneracy,
            kc.coreness.iter().copied().max().unwrap_or(0)
        );
    }

    #[test]
    fn parallel_kcore_matches_sequential(g in arb_graph()) {
        let seq = kcore_sequential(&g);
        let par = kcore_parallel(&g);
        prop_assert_eq!(&seq.coreness, &par.coreness);
    }

    #[test]
    fn floored_kcore_contract(g in arb_graph(), floor in 0u32..8) {
        let exact = kcore_sequential(&g);
        let capped = kcore_with_floor(&g, floor);
        for v in 0..g.num_vertices() {
            let (e, c) = (exact.coreness[v], capped.coreness[v]);
            prop_assert_eq!(e >= floor, c >= floor, "v={}", v);
            if e >= floor {
                prop_assert_eq!(e, c, "v={}", v);
            }
        }
    }

    #[test]
    fn peel_order_is_permutation_with_bounded_right_degree(g in arb_graph()) {
        let kc = kcore_sequential(&g);
        let n = g.num_vertices();
        let mut seen = vec![false; n];
        for &v in &kc.peel_order {
            prop_assert!(!seen[v as usize]);
            seen[v as usize] = true;
        }
        prop_assert!(seen.into_iter().all(|s| s));
        let mut rank = vec![0u32; n];
        for (i, &v) in kc.peel_order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        for v in g.vertices() {
            let right = g
                .neighbors(v)
                .iter()
                .filter(|&&u| rank[u as usize] > rank[v as usize])
                .count();
            prop_assert!(right <= kc.coreness[v as usize] as usize);
        }
    }

    #[test]
    fn coreness_order_properties(g in arb_graph()) {
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        ord.validate().unwrap();
        let n = g.num_vertices();
        // sortedness by (coreness, degree)
        for i in 0..n.saturating_sub(1) {
            let a = ord.to_original(i as u32);
            let b = ord.to_original(i as u32 + 1);
            let ka = (kc.coreness[a as usize], g.degree(a) as u32);
            let kb = (kc.coreness[b as usize], g.degree(b) as u32);
            prop_assert!(ka <= kb);
        }
        // level ranges partition the id space
        let ranges = level_ranges(&ord, &kc.coreness, kc.degeneracy);
        let total: u32 = ranges.iter().map(|&(s, e)| e - s).sum();
        prop_assert_eq!(total as usize, n);
    }
}
