//! The correctness oracle: textbook Bron–Kerbosch with Tomita pivoting.
//!
//! No coloring bounds, no orderings, no filtering, no parallelism — a code
//! path as different from the optimized solvers as possible, so agreement
//! between this and LazyMC is strong evidence of correctness. Exponential;
//! intended for graphs up to a few hundred vertices.

use lazymc_graph::{CsrGraph, VertexId};
use lazymc_solver::bitset::{BitMatrix, Bitset};

/// Maximum clique by Bron–Kerbosch (original vertex ids).
pub fn max_clique_reference(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    let adj = BitMatrix::from_csr(g);
    let mut best: Vec<u32> = Vec::new();
    let mut current: Vec<u32> = Vec::new();
    let p = Bitset::full(n);
    let x = Bitset::new(n);
    bk(&adj, p, x, &mut current, &mut best);
    best
}

fn bk(adj: &BitMatrix, p: Bitset, mut x: Bitset, current: &mut Vec<u32>, best: &mut Vec<u32>) {
    if p.is_empty() && x.is_empty() {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    }
    // Tomita pivot: the vertex of P ∪ X with the most neighbors in P.
    let pivot = p
        .iter()
        .chain(x.iter())
        .max_by_key(|&u| adj.degree_within(u, &p))
        .expect("P ∪ X non-empty");
    // Branch on P \ N(pivot).
    let mut branch = p.clone();
    let mut masked = branch.clone();
    masked.intersect_with_words(adj.row(pivot));
    branch.subtract(&masked);
    let mut p = p;
    for v in branch.iter() {
        let mut p2 = p.clone();
        p2.intersect_with_words(adj.row(v));
        let mut x2 = x.clone();
        x2.intersect_with_words(adj.row(v));
        current.push(v as u32);
        bk(adj, p2, x2, current, best);
        current.pop();
        p.remove(v);
        x.insert(v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;

    #[test]
    fn known_cliques() {
        assert_eq!(max_clique_reference(&gen::complete(6)).len(), 6);
        assert_eq!(max_clique_reference(&gen::path(8)).len(), 2);
        assert_eq!(max_clique_reference(&gen::cycle(5)).len(), 2);
        assert_eq!(max_clique_reference(&gen::triangulated_grid(4, 3)).len(), 4);
        assert_eq!(max_clique_reference(&CsrGraph::empty(4)).len(), 1);
        assert_eq!(max_clique_reference(&CsrGraph::empty(0)).len(), 0);
    }

    #[test]
    fn returns_actual_clique() {
        let g = gen::planted_clique(50, 0.1, 6, 9);
        let c = max_clique_reference(&g);
        assert!(g.is_clique(&c));
        assert!(c.len() >= 6);
    }
}
