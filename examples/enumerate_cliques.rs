//! Maximal clique enumeration on a community graph: lists the largest
//! maximal cliques and shows how MC (one optimum) relates to MCE (all
//! maximal cliques) — the problem family the paper's intersection kernels
//! were originally designed for.
//!
//! Run: `cargo run --release --example enumerate_cliques`

use lazymc::core::{Config, LazyMc};
use lazymc::graph::gen;
use lazymc::mce::for_each_maximal_clique;

fn main() {
    let g = gen::caveman(12, 7, 0.12, 9);
    println!(
        "community graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Histogram of maximal clique sizes.
    let mut hist: Vec<u64> = Vec::new();
    let stats = for_each_maximal_clique(&g, |c| {
        if hist.len() <= c.len() {
            hist.resize(c.len() + 1, 0);
        }
        hist[c.len()] += 1;
    });
    println!(
        "{} maximal cliques ({} recursion nodes):",
        stats.cliques, stats.nodes
    );
    for (size, count) in hist.iter().enumerate().filter(|(_, &c)| c > 0) {
        println!("  size {size:>2}: {count}");
    }

    // The maximum clique is the largest of them — cross-check with LazyMC.
    let omega = LazyMc::new(Config::default()).solve(&g).size();
    let largest = hist.len() - 1;
    assert_eq!(omega, largest, "MC must equal the largest maximal clique");
    println!("\nω = {omega} (LazyMC agrees with the enumeration)");
}
