//! Edge-stream ingestion.
//!
//! Real-world edge lists are messy: duplicated edges, both orientations or
//! only one, self-loops, gaps in the id space. [`GraphBuilder`] normalizes
//! all of that into the invariants [`CsrGraph`] demands.
//! Construction is parallel (rayon sort) because graph loading is part of
//! the measured end-to-end time in the paper's Table II.

use crate::{CsrGraph, VertexId};
use rayon::prelude::*;

/// Accumulates raw edges and produces a normalized [`CsrGraph`].
#[derive(Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
}

impl GraphBuilder {
    /// New builder for a graph with at least `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
        }
    }

    /// New builder with an edge-capacity hint.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self {
            n,
            edges: Vec::with_capacity(m),
        }
    }

    /// Records an undirected edge. Self-loops are dropped silently; the
    /// vertex count grows to cover the endpoints.
    #[inline]
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if u == v {
            return;
        }
        let hi = u.max(v) as usize + 1;
        if hi > self.n {
            self.n = hi;
        }
        self.edges.push(if u < v { (u, v) } else { (v, u) });
    }

    /// Bulk variant of [`GraphBuilder::add_edge`].
    pub fn extend_edges(&mut self, it: impl IntoIterator<Item = (VertexId, VertexId)>) {
        for (u, v) in it {
            self.add_edge(u, v);
        }
    }

    /// Number of vertices the built graph will have.
    pub fn num_vertices(&self) -> usize {
        self.n
    }

    /// Raw (unnormalized) edge count so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Sort, deduplicate, symmetrize and freeze into CSR.
    pub fn build(mut self) -> CsrGraph {
        self.edges.par_sort_unstable();
        self.edges.dedup();
        let n = self.n;
        let m = self.edges.len();

        // Count degrees over both orientations.
        let mut offsets = vec![0usize; n + 1];
        for &(u, v) in &self.edges {
            offsets[u as usize + 1] += 1;
            offsets[v as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }

        // Scatter. `cursor` tracks the next free slot per vertex.
        let mut targets = vec![0 as VertexId; 2 * m];
        let mut cursor = offsets.clone();
        for &(u, v) in &self.edges {
            targets[cursor[u as usize]] = v;
            cursor[u as usize] += 1;
            targets[cursor[v as usize]] = u;
            cursor[v as usize] += 1;
        }

        // Edges were sorted by (u, v); scattering preserves sortedness for
        // the `u` rows but not for the `v` back-edges, so sort each row.
        // Rows are typically tiny (bounded by degree), so per-row sort in
        // parallel over vertices is the right granularity.
        let offsets_ref = &offsets;
        // Split `targets` into per-vertex rows to sort them in parallel.
        let mut rows: Vec<&mut [VertexId]> = Vec::with_capacity(n);
        let mut rest: &mut [VertexId] = &mut targets;
        for v in 0..n {
            let len = offsets_ref[v + 1] - offsets_ref[v];
            let (row, tail) = rest.split_at_mut(len);
            rows.push(row);
            rest = tail;
        }
        rows.par_iter_mut().for_each(|row| row.sort_unstable());

        CsrGraph::from_parts(offsets, targets)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedups_and_symmetrizes() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(0, 1);
        b.add_edge(1, 0); // reverse duplicate
        b.add_edge(0, 1); // plain duplicate
        b.add_edge(2, 2); // self loop dropped
        b.add_edge(1, 2);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
        assert!(g.validate().is_ok());
        assert_eq!(g.neighbors(1), &[0, 2]);
    }

    #[test]
    fn grows_vertex_count_from_edges() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(5, 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(4), 0);
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new(7).build();
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn extend_edges_equivalent_to_loop() {
        let mut a = GraphBuilder::new(0);
        a.extend_edges([(0, 1), (1, 2), (2, 3)]);
        let mut b = GraphBuilder::new(0);
        for e in [(0, 1), (1, 2), (2, 3)] {
            b.add_edge(e.0, e.1);
        }
        assert_eq!(a.build(), b.build());
    }

    #[test]
    fn adjacency_sorted_even_with_adversarial_insert_order() {
        let mut b = GraphBuilder::new(0);
        for v in (1..50u32).rev() {
            b.add_edge(0, v);
        }
        let g = b.build();
        let nbrs = g.neighbors(0);
        assert!(nbrs.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(nbrs.len(), 49);
    }
}
