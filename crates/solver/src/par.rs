//! Intra-solve work-splitting substrate: the shared incumbent and the
//! cooperative abort flag the parallel subgraph drivers coordinate on.
//!
//! The paper's work-avoidance thesis extends across threads: a bound that
//! is published the instant any worker improves it prunes *every* worker's
//! subtree. Two primitives carry that idea into the dense engines:
//!
//! * [`SharedBest`] — the incumbent of one parallel MC solve. The size
//!   lives in an `AtomicUsize` read with `Relaxed` loads on every node
//!   expansion (the same discipline as the solver-global
//!   `lazymc_core::Incumbent`); the witness clique sits behind a mutex
//!   touched only on improvements. Every successful publication is
//!   counted, surfaced as the `incumbent_broadcasts` statistic.
//! * [`SearchAbort`] — the k-VC analogue. A decision search has no
//!   incumbent to tighten; instead the first worker to find a cover
//!   triggers the flag and every other worker's subtree terminates at its
//!   next node.
//!
//! Both are deliberately tiny: the split drivers in `mc`/`vc` own the task
//! queues (a claim-by-index atomic over a pooled task arena — tasks are
//! generated once per solve, so a lock-free deque would be ceremony), and
//! the sequential kernels stay byte-identical via zero-sized link types
//! that monomorphize the sharing away (`threads = 1` *is* today's code).

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Cooperative stop hook of a scheduler-run solve: polled once per
/// claimed subtree task, `true` means "halt the whole solve" (deadline
/// trip or cancellation). Kept as a plain closure so the solver never
/// learns the driver's deadline type.
pub type StopFn<'a> = &'a (dyn Fn() -> bool + Sync);

/// The shared incumbent of one parallel MC solve: best size (atomic, read
/// per node by every worker) plus the witness clique (mutex, written only
/// on improvements).
pub struct SharedBest {
    size: AtomicUsize,
    clique: Mutex<Vec<u32>>,
    broadcasts: AtomicU64,
    halt: AtomicBool,
}

impl SharedBest {
    /// An incumbent floored at `lb`: only cliques strictly larger are
    /// accepted (the caller's incumbent already covers `lb`).
    pub fn with_floor(lb: usize) -> Self {
        SharedBest {
            size: AtomicUsize::new(lb),
            clique: Mutex::new(Vec::new()),
            broadcasts: AtomicU64::new(0),
            halt: AtomicBool::new(false),
        }
    }

    /// Tells every worker sharing this incumbent to stop searching: a
    /// cancelled or deadline-tripped solve drains mid-subtree instead of
    /// finishing its current task. The incumbent found so far remains
    /// valid (it only ever holds real cliques).
    #[inline]
    pub fn halt(&self) {
        self.halt.store(true, Ordering::Relaxed);
    }

    /// Whether the solve was told to stop.
    #[inline]
    pub fn halted(&self) -> bool {
        self.halt.load(Ordering::Relaxed)
    }

    /// Current best size (floor included). `Relaxed`: staleness only costs
    /// a little extra search, never correctness.
    #[inline]
    pub fn size(&self) -> usize {
        self.size.load(Ordering::Relaxed)
    }

    /// Pre-sizes the witness buffer so that publications of cliques up to
    /// `cap` vertices never allocate — the split drivers call this with
    /// the candidate-set size, keeping the whole worker steady state
    /// allocation-free.
    pub fn reserve(&self, cap: usize) {
        let mut guard = self.clique.lock().unwrap();
        let len = guard.len();
        guard.reserve(cap.saturating_sub(len));
    }

    /// Offers a candidate; returns whether it became the new incumbent.
    /// CAS-up first, so losing threads never take the lock.
    pub fn offer(&self, candidate: &[u32]) -> bool {
        let mut cur = self.size.load(Ordering::Relaxed);
        loop {
            if candidate.len() <= cur {
                return false;
            }
            match self.size.compare_exchange_weak(
                cur,
                candidate.len(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let mut guard = self.clique.lock().unwrap();
                    // A larger offer may have raced past between the CAS
                    // and the lock; never shrink the witness.
                    if candidate.len() > guard.len() {
                        guard.clear();
                        guard.extend_from_slice(candidate);
                    }
                    self.broadcasts.fetch_add(1, Ordering::Relaxed);
                    return true;
                }
                Err(seen) => cur = seen,
            }
        }
    }

    /// How many improvements were published to the other workers.
    pub fn broadcasts(&self) -> u64 {
        self.broadcasts.load(Ordering::Relaxed)
    }

    /// Copies the witness into `out` (cleared first); returns whether the
    /// incumbent ever rose above its floor.
    pub fn clique_into(&self, out: &mut Vec<u32>) -> bool {
        out.clear();
        let guard = self.clique.lock().unwrap();
        if guard.is_empty() {
            return false;
        }
        out.extend_from_slice(&guard);
        true
    }
}

/// Cooperative early-stop flag for parallel k-VC decision searches: the
/// first worker to find a cover triggers it; everyone else's subtree
/// terminates at the next node expansion.
#[derive(Default)]
pub struct SearchAbort(AtomicBool);

impl SearchAbort {
    /// An untriggered flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals every cooperating worker to stop.
    #[inline]
    pub fn trigger(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Whether the search was stopped. A `false` decision result obtained
    /// while this is `true` is *not* authoritative — another worker
    /// already succeeded.
    #[inline]
    pub fn triggered(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_best_is_monotone_and_floored() {
        let b = SharedBest::with_floor(2);
        assert_eq!(b.size(), 2);
        assert!(!b.offer(&[1, 2])); // not strictly better than the floor
        assert!(b.offer(&[1, 2, 3]));
        assert_eq!(b.size(), 3);
        assert!(!b.offer(&[7, 8, 9]));
        assert_eq!(b.broadcasts(), 1);
        let mut out = vec![99];
        assert!(b.clique_into(&mut out));
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn unimproved_incumbent_reports_nothing() {
        let b = SharedBest::with_floor(5);
        let mut out = vec![1];
        assert!(!b.clique_into(&mut out));
        assert!(out.is_empty());
        assert_eq!(b.broadcasts(), 0);
    }

    #[test]
    fn concurrent_offers_keep_maximum() {
        let b = SharedBest::with_floor(0);
        std::thread::scope(|s| {
            for t in 0..4 {
                let b = &b;
                s.spawn(move || {
                    for n in 1..100usize {
                        let cand: Vec<u32> = (0..(n + t) as u32).collect();
                        b.offer(&cand);
                    }
                });
            }
        });
        assert_eq!(b.size(), 102);
        let mut out = Vec::new();
        assert!(b.clique_into(&mut out));
        assert_eq!(out.len(), 102);
    }

    #[test]
    fn abort_flag_latches() {
        let a = SearchAbort::new();
        assert!(!a.triggered());
        a.trigger();
        assert!(a.triggered());
        a.trigger();
        assert!(a.triggered());
    }
}
