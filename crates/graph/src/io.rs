//! Graph file readers and writers.
//!
//! Three formats cover the datasets the paper draws from (SNAP edge lists,
//! DIMACS `.clq` clique instances, SuiteSparse/MatrixMarket):
//!
//! * **Edge list** — one `u v` pair per line; `#`, `%` or `c ` lines are
//!   comments. Ids need not be contiguous.
//! * **DIMACS** — `p edge <n> <m>` header, `e <u> <v>` lines, 1-based ids.
//! * **MatrixMarket** — `%%MatrixMarket` banner, `<rows> <cols> <nnz>`
//!   dimension line, 1-based coordinate pairs (extra fields ignored).
//!
//! All readers normalize through [`GraphBuilder`], so duplicate edges,
//! reverse edges and self-loops in the input are tolerated.

use crate::{CsrGraph, GraphBuilder, VertexId};
use std::io::{BufRead, BufReader, Read, Write};
use std::path::Path;

/// Errors produced by the readers.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structurally invalid content, with a line number and description.
    Parse { line: usize, msg: String },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "io error: {e}"),
            IoError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

fn parse_err(line: usize, msg: impl Into<String>) -> IoError {
    IoError::Parse {
        line,
        msg: msg.into(),
    }
}

/// Reads a whitespace-separated edge list.
pub fn read_edge_list<R: Read>(r: R) -> Result<CsrGraph, IoError> {
    let mut b = GraphBuilder::new(0);
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        // A lone `c` (or `#`/`%`) with nothing after it is a legal comment
        // line in DIMACS-flavoured edge lists, not a parse error.
        if t.is_empty()
            || t.starts_with('#')
            || t.starts_with('%')
            || t == "c"
            || t.starts_with("c ")
        {
            continue;
        }
        let mut it = t.split_whitespace();
        let u: VertexId = it
            .next()
            .ok_or_else(|| parse_err(idx + 1, "missing source"))?
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad source: {e}")))?;
        let v: VertexId = it
            .next()
            .ok_or_else(|| parse_err(idx + 1, "missing target"))?
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad target: {e}")))?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Reads a DIMACS `.clq`/`.col` instance (1-based vertex ids).
pub fn read_dimacs<R: Read>(r: R) -> Result<CsrGraph, IoError> {
    let mut b: Option<GraphBuilder> = None;
    for (idx, line) in BufReader::new(r).lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('c') {
            continue;
        }
        if let Some(rest) = t.strip_prefix('p') {
            let mut it = rest.split_whitespace();
            let kind = it.next().unwrap_or("");
            if kind != "edge" && kind != "col" {
                return Err(parse_err(idx + 1, format!("unknown problem kind {kind:?}")));
            }
            let n: usize = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing vertex count"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad vertex count: {e}")))?;
            let m: usize = it.next().unwrap_or("0").parse().unwrap_or(0);
            b = Some(GraphBuilder::with_capacity(n, m));
        } else if let Some(rest) = t.strip_prefix('e') {
            let b = b
                .as_mut()
                .ok_or_else(|| parse_err(idx + 1, "edge before problem line"))?;
            let mut it = rest.split_whitespace();
            let u: VertexId = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing source"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad source: {e}")))?;
            let v: VertexId = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing target"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad target: {e}")))?;
            if u == 0 || v == 0 {
                return Err(parse_err(idx + 1, "DIMACS ids are 1-based"));
            }
            b.add_edge(u - 1, v - 1);
        } else {
            return Err(parse_err(idx + 1, format!("unrecognized line {t:?}")));
        }
    }
    Ok(b.ok_or_else(|| parse_err(0, "missing problem line"))?
        .build())
}

/// Reads a MatrixMarket coordinate file as an undirected graph
/// (1-based ids; values, if present, are ignored).
pub fn read_matrix_market<R: Read>(r: R) -> Result<CsrGraph, IoError> {
    let reader = BufReader::new(r);
    let mut b: Option<GraphBuilder> = None;
    let mut saw_banner = false;
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if idx == 0 {
            if !t.starts_with("%%MatrixMarket") {
                return Err(parse_err(1, "missing %%MatrixMarket banner"));
            }
            saw_banner = true;
            continue;
        }
        if t.is_empty() || t.starts_with('%') {
            continue;
        }
        if b.is_none() {
            // dimension line: rows cols nnz
            let mut it = t.split_whitespace();
            let rows: usize = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing rows"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad rows: {e}")))?;
            let cols: usize = it
                .next()
                .ok_or_else(|| parse_err(idx + 1, "missing cols"))?
                .parse()
                .map_err(|e| parse_err(idx + 1, format!("bad cols: {e}")))?;
            let nnz: usize = it.next().unwrap_or("0").parse().unwrap_or(0);
            b = Some(GraphBuilder::with_capacity(rows.max(cols), nnz));
            continue;
        }
        let b = b.as_mut().unwrap();
        let mut it = t.split_whitespace();
        let u: VertexId = it
            .next()
            .ok_or_else(|| parse_err(idx + 1, "missing row"))?
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad row: {e}")))?;
        let v: VertexId = it
            .next()
            .ok_or_else(|| parse_err(idx + 1, "missing col"))?
            .parse()
            .map_err(|e| parse_err(idx + 1, format!("bad col: {e}")))?;
        if u == 0 || v == 0 {
            return Err(parse_err(idx + 1, "MatrixMarket ids are 1-based"));
        }
        b.add_edge(u - 1, v - 1);
    }
    if !saw_banner {
        return Err(parse_err(0, "empty file"));
    }
    Ok(b.ok_or_else(|| parse_err(0, "missing dimension line"))?
        .build())
}

/// Dispatches on the file extension: `.clq`/`.col`/`.dimacs` → DIMACS,
/// `.mtx` → MatrixMarket, everything else → edge list.
pub fn read_path(path: impl AsRef<Path>) -> Result<CsrGraph, IoError> {
    let path = path.as_ref();
    let f = std::fs::File::open(path)?;
    match path.extension().and_then(|e| e.to_str()) {
        Some("clq") | Some("col") | Some("dimacs") => read_dimacs(f),
        Some("mtx") => read_matrix_market(f),
        _ => read_edge_list(f),
    }
}

/// Writes `g` as an edge list (each undirected edge once).
pub fn write_edge_list<W: Write>(g: &CsrGraph, mut w: W) -> std::io::Result<()> {
    writeln!(
        w,
        "# {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    Ok(())
}

/// Writes `g` in DIMACS `.clq` format (1-based).
pub fn write_dimacs<W: Write>(g: &CsrGraph, mut w: W) -> std::io::Result<()> {
    writeln!(w, "p edge {} {}", g.num_vertices(), g.num_edges())?;
    for (u, v) in g.edges() {
        writeln!(w, "e {} {}", u + 1, v + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_list_roundtrip() {
        let g = CsrGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (0, 3)]);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let h = read_edge_list(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn dimacs_roundtrip() {
        let g = CsrGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4)]);
        let mut buf = Vec::new();
        write_dimacs(&g, &mut buf).unwrap();
        let h = read_dimacs(&buf[..]).unwrap();
        assert_eq!(g, h);
    }

    #[test]
    fn edge_list_skips_comments_and_blank_lines() {
        let text = "# comment\n% other comment\nc dimacs-style comment\n\n0 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn edge_list_accepts_bare_comment_tokens() {
        // A comment marker alone on its line (no trailing space) is legal.
        let text = "c\n#\n%\n  c  \n0 1\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn edge_list_rejects_garbage() {
        let e = read_edge_list("0 x\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }));
    }

    #[test]
    fn dimacs_rejects_zero_based_ids() {
        let e = read_dimacs("p edge 3 1\ne 0 1\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { .. }));
    }

    #[test]
    fn dimacs_requires_problem_line_first() {
        let e = read_dimacs("e 1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { .. }));
    }

    #[test]
    fn dimacs_isolated_vertices_preserved() {
        let g = read_dimacs("p edge 10 1\ne 1 2\n".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn matrix_market_basic() {
        let text = "%%MatrixMarket matrix coordinate pattern symmetric\n\
                    % a comment\n\
                    3 3 2\n\
                    1 2\n\
                    2 3\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn matrix_market_ignores_values_and_self_loops() {
        let text = "%%MatrixMarket matrix coordinate real general\n\
                    3 3 3\n\
                    1 2 0.5\n\
                    2 2 1.0\n\
                    3 1 2.5\n";
        let g = read_matrix_market(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 2);
        assert!(!g.has_edge(1, 1));
    }

    #[test]
    fn matrix_market_requires_banner() {
        let e = read_matrix_market("3 3 1\n1 2\n".as_bytes()).unwrap_err();
        assert!(matches!(e, IoError::Parse { line: 1, .. }));
    }
}
