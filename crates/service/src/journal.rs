//! Crash-safe job journal: an append-only, checksummed WAL under
//! `--data-dir` that makes admitted jobs survive `kill -9`.
//!
//! Every accepted solve writes an *admit* record (the job id plus the
//! request body re-encoded via [`crate::SolveRequest::to_json`]) and the
//! record is fsynced **before** the client hears `202`/sees a result — an
//! acknowledged admission is durable. Terminal transitions (done, failed,
//! cancelled) append a *complete* record without fsync: completes are
//! idempotent bookkeeping, and losing a tail of them merely re-runs a
//! finished job after a crash, which replay makes harmless.
//!
//! On boot, [`Journal::open`] scans every segment, tolerating a torn tail
//! the same way the `.lmcs` loader quarantines corrupt snapshots: a record
//! that fails its length or FNV-1a check ends that segment's replay with a
//! warning instead of an error. Jobs admitted but never completed are
//! returned for re-enqueue (under their original ids), and the surviving
//! state is compacted into a fresh segment so the journal never grows
//! across restarts.
//!
//! ## Format
//!
//! A segment (`journal/seg-<n>.wal`) is the 8-byte magic `LMCJWAL1`
//! followed by records:
//!
//! ```text
//! u32le payload_len | u64le fnv1a(payload) | payload
//! payload = kind u8 (1 = admit, 2 = complete) | u64le job_id | body…
//! ```
//!
//! `body` is the admit's request JSON (empty for completes). When the
//! active segment passes its size limit, the pending set is carried
//! forward into a new segment and the old one is deleted — completion
//! records never accumulate beyond one segment's worth.
//!
//! An append failure (disk full, chaos `journal.append`) disables the
//! journal — the daemon keeps serving from memory and [`crate::Health`]
//! reports `degraded`. It is no longer disabled *forever*: the
//! housekeeping thread calls [`Journal::try_reenable`] on an exponential
//! backoff, which probes the volume by writing a fresh compacted segment;
//! the first success re-enables journaling (and the caller clears the
//! degraded reason) without a restart.

use crate::plock;
use lazymc_graph::snapshot::fnv1a;
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

const MAGIC: &[u8; 8] = b"LMCJWAL1";
const KIND_ADMIT: u8 = 1;
const KIND_COMPLETE: u8 = 2;
/// Rotation threshold for the active segment.
const SEGMENT_BYTES: u64 = 1 << 20;
/// Reject absurd record lengths during replay (a corrupt length field
/// must not allocate gigabytes).
const MAX_PAYLOAD: u32 = 16 << 20;
/// Self-heal probing: first re-probe this long after the disabling
/// failure, doubling per failed probe up to the cap.
const REPROBE_INITIAL: Duration = Duration::from_secs(1);
const REPROBE_CAP: Duration = Duration::from_secs(60);

/// A job recovered from the journal at boot: admitted, never completed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplayedJob {
    pub id: u64,
    /// The admit body — a `SolveRequest` as JSON.
    pub body: String,
}

struct Active {
    file: Option<File>,
    seg: u64,
    bytes: u64,
    /// Admitted-but-not-completed jobs, mirrored in memory so rotation can
    /// carry them into the next segment.
    pending: BTreeMap<u64, String>,
}

/// The write-ahead job journal. One per daemon (when `--data-dir` is set).
pub struct Journal {
    dir: PathBuf,
    segment_bytes: u64,
    inner: Mutex<Active>,
    enabled: AtomicBool,
    /// When the journal disabled itself, for backoff-gated re-probing.
    disabled_at: Mutex<Option<Instant>>,
    /// Current re-probe backoff (doubles per failed probe).
    probe_backoff: Mutex<Duration>,
    pub appends: AtomicU64,
    pub append_errors: AtomicU64,
    pub rotations: AtomicU64,
    /// Successful self-heals ([`Journal::try_reenable`] re-enables).
    pub reenabled: AtomicU64,
    /// Jobs returned for re-enqueue by [`Journal::open`].
    pub replayed: AtomicU64,
}

fn encode_record(kind: u8, id: u64, body: &[u8]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + body.len());
    payload.push(kind);
    payload.extend_from_slice(&id.to_le_bytes());
    payload.extend_from_slice(body);
    let mut rec = Vec::with_capacity(12 + payload.len());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&fnv1a(&payload).to_le_bytes());
    rec.extend_from_slice(&payload);
    rec
}

fn seg_path(dir: &Path, seg: u64) -> PathBuf {
    dir.join(format!("seg-{seg}.wal"))
}

fn sync_dir(dir: &Path) -> io::Result<()> {
    File::open(dir)?.sync_all()
}

/// Applies one segment's records to `pending`. Returns the number of
/// valid records applied, or `Err` with a description of the first
/// malformed record; everything before it has already been applied
/// (truncation tolerance).
fn replay_segment(bytes: &[u8], pending: &mut BTreeMap<u64, String>) -> Result<u64, String> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err("bad segment magic".into());
    }
    let mut records = 0u64;
    let mut pos = MAGIC.len();
    while pos < bytes.len() {
        let Some(header) = bytes.get(pos..pos + 12) else {
            return Err(format!("torn record header at byte {pos}"));
        };
        let len = u32::from_le_bytes([header[0], header[1], header[2], header[3]]);
        let sum = u64::from_le_bytes([
            header[4], header[5], header[6], header[7], header[8], header[9], header[10],
            header[11],
        ]);
        if !(9..=MAX_PAYLOAD).contains(&len) {
            return Err(format!("implausible record length {len} at byte {pos}"));
        }
        let Some(payload) = bytes.get(pos + 12..pos + 12 + len as usize) else {
            return Err(format!("torn record payload at byte {pos}"));
        };
        if fnv1a(payload) != sum {
            return Err(format!("checksum mismatch at byte {pos}"));
        }
        let kind = payload[0];
        let id = u64::from_le_bytes([
            payload[1], payload[2], payload[3], payload[4], payload[5], payload[6], payload[7],
            payload[8],
        ]);
        match kind {
            KIND_ADMIT => match std::str::from_utf8(&payload[9..]) {
                Ok(body) => {
                    pending.insert(id, body.to_string());
                }
                Err(_) => return Err(format!("admit body for job {id} is not UTF-8")),
            },
            KIND_COMPLETE => {
                // Idempotent: completing an unknown or already-completed
                // job is a no-op, which is what makes unsynced completes
                // and replay re-runs safe.
                pending.remove(&id);
            }
            other => return Err(format!("unknown record kind {other} at byte {pos}")),
        }
        records += 1;
        pos += 12 + len as usize;
    }
    Ok(records)
}

impl Journal {
    /// Opens (or creates) the journal under `data_dir/journal`, replays
    /// every segment, compacts surviving state into a fresh segment, and
    /// returns the jobs that need re-enqueueing.
    pub fn open(data_dir: &Path) -> io::Result<(Journal, Vec<ReplayedJob>)> {
        Journal::open_with(data_dir, SEGMENT_BYTES)
    }

    /// [`Journal::open`] with an explicit rotation threshold (tests).
    pub fn open_with(
        data_dir: &Path,
        segment_bytes: u64,
    ) -> io::Result<(Journal, Vec<ReplayedJob>)> {
        let dir = data_dir.join("journal");
        fs::create_dir_all(&dir)?;

        // Collect segments in numeric order.
        let mut segs: Vec<u64> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(n) = name
                .strip_prefix("seg-")
                .and_then(|s| s.strip_suffix(".wal"))
                .and_then(|s| s.parse::<u64>().ok())
            {
                segs.push(n);
            }
        }
        segs.sort_unstable();

        let mut pending = BTreeMap::new();
        for &seg in &segs {
            let path = seg_path(&dir, seg);
            let mut bytes = Vec::new();
            match File::open(&path).and_then(|mut f| f.read_to_end(&mut bytes)) {
                Ok(_) => {
                    if let Err(why) = replay_segment(&bytes, &mut pending) {
                        eprintln!(
                            "warning: job journal {}: {} — replaying the records before it",
                            path.display(),
                            why
                        );
                    }
                }
                Err(e) => {
                    eprintln!(
                        "warning: job journal {}: unreadable ({}) — skipping segment",
                        path.display(),
                        e
                    );
                }
            }
        }

        let replayed: Vec<ReplayedJob> = pending
            .iter()
            .map(|(id, body)| ReplayedJob {
                id: *id,
                body: body.clone(),
            })
            .collect();

        let journal = Journal {
            dir: dir.clone(),
            segment_bytes: segment_bytes.max(4096),
            inner: Mutex::new(Active {
                file: None,
                seg: segs.last().map_or(1, |last| last + 1),
                bytes: 0,
                pending,
            }),
            enabled: AtomicBool::new(true),
            disabled_at: Mutex::new(None),
            probe_backoff: Mutex::new(REPROBE_INITIAL),
            appends: AtomicU64::new(0),
            append_errors: AtomicU64::new(0),
            rotations: AtomicU64::new(0),
            reenabled: AtomicU64::new(0),
            replayed: AtomicU64::new(replayed.len() as u64),
        };

        // Compact: write surviving admits into the fresh segment, then
        // drop the old segments. If this fails the journal starts
        // disabled (the old segments stay for the next boot) — the caller
        // reports degraded health.
        {
            let mut active = plock(&journal.inner);
            match journal.start_segment(&mut active) {
                Ok(()) => {
                    for &seg in &segs {
                        let _ = fs::remove_file(seg_path(&dir, seg));
                    }
                    let _ = sync_dir(&dir);
                }
                Err(e) => {
                    eprintln!("warning: job journal compaction failed ({e}); journaling disabled");
                    journal.enabled.store(false, Ordering::Relaxed);
                    *plock(&journal.disabled_at) = Some(Instant::now());
                }
            }
        }

        Ok((journal, replayed))
    }

    /// Whether appends are still being accepted (false after an append
    /// error flipped the daemon to memory-only persistence).
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Creates `active.seg` on disk and writes the magic plus an admit
    /// record per pending job. On success the file becomes the append
    /// target.
    fn start_segment(&self, active: &mut Active) -> io::Result<()> {
        let path = seg_path(&self.dir, active.seg);
        let mut file = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&path)?;
        let mut buf = Vec::with_capacity(MAGIC.len());
        buf.extend_from_slice(MAGIC);
        for (id, body) in &active.pending {
            buf.extend_from_slice(&encode_record(KIND_ADMIT, *id, body.as_bytes()));
        }
        file.write_all(&buf)?;
        file.sync_data()?;
        sync_dir(&self.dir)?;
        active.bytes = buf.len() as u64;
        active.file = Some(file);
        Ok(())
    }

    /// Appends one record, rotating first if the active segment is full.
    /// `durable` forces an fsync before returning.
    fn append(&self, kind: u8, id: u64, body: &str, durable: bool) -> io::Result<()> {
        if !self.is_enabled() {
            return Ok(());
        }
        let mut active = plock(&self.inner);
        let result = (|| -> io::Result<()> {
            lazymc_chaos::io_point!("journal.append");
            if active.file.is_none() || active.bytes >= self.segment_bytes {
                if active.file.is_some() {
                    let old = active.seg;
                    active.seg += 1;
                    self.start_segment(&mut active)?;
                    let _ = fs::remove_file(seg_path(&self.dir, old));
                    self.rotations.fetch_add(1, Ordering::Relaxed);
                } else {
                    self.start_segment(&mut active)?;
                }
            }
            let rec = encode_record(kind, id, body.as_bytes());
            let file = active
                .file
                .as_mut()
                .ok_or_else(|| io::Error::other("journal segment not open"))?;
            file.write_all(&rec)?;
            if durable {
                file.sync_data()?;
            }
            active.bytes += rec.len() as u64;
            Ok(())
        })();
        match result {
            Ok(()) => {
                match kind {
                    KIND_ADMIT => {
                        active.pending.insert(id, body.to_string());
                    }
                    _ => {
                        active.pending.remove(&id);
                    }
                }
                self.appends.fetch_add(1, Ordering::Relaxed);
                Ok(())
            }
            Err(e) => {
                self.append_errors.fetch_add(1, Ordering::Relaxed);
                self.enabled.store(false, Ordering::Relaxed);
                // The torn write may have left a half record at the tail
                // of the active segment; drop the handle so a successful
                // re-probe starts a *fresh* segment (replay tolerates the
                // torn tail regardless).
                active.file = None;
                *plock(&self.disabled_at) = Some(Instant::now());
                Err(e)
            }
        }
    }

    /// Durably records an admission. Must succeed (and fsync) before the
    /// admission is acknowledged to the client; an `Err` means the journal
    /// just disabled itself and the caller should degrade health — the job
    /// itself still runs.
    pub fn admit(&self, id: u64, body: &str) -> io::Result<()> {
        self.append(KIND_ADMIT, id, body, true)
    }

    /// Records a terminal transition (done / failed / cancelled). Not
    /// fsynced: a lost complete record only means a finished job re-runs
    /// after a crash.
    pub fn complete(&self, id: u64) -> io::Result<()> {
        self.append(KIND_COMPLETE, id, "", false)
    }

    /// Admitted-but-not-completed jobs currently tracked (gauge).
    pub fn pending_len(&self) -> usize {
        plock(&self.inner).pending.len()
    }

    /// Self-heal probe: if the journal is disabled and the current
    /// backoff has elapsed, try to write a fresh compacted segment (all
    /// still-pending admits). Success re-enables appends and returns
    /// `true` — the caller clears the degraded health reason. Failure
    /// doubles the backoff (capped) and returns `false`. Cheap to call
    /// every housekeeping tick: while healthy or before the backoff it
    /// is a couple of atomic/lock reads.
    pub fn try_reenable(&self) -> bool {
        if self.is_enabled() {
            return false;
        }
        {
            let disabled_at = plock(&self.disabled_at);
            let Some(at) = *disabled_at else { return false };
            if at.elapsed() < *plock(&self.probe_backoff) {
                return false;
            }
        }
        let mut active = plock(&self.inner);
        let probe = (|| -> io::Result<()> {
            lazymc_chaos::io_point!("journal.reprobe");
            fs::create_dir_all(&self.dir)?;
            let old = active.seg;
            active.seg += 1;
            self.start_segment(&mut active)?;
            let _ = fs::remove_file(seg_path(&self.dir, old));
            Ok(())
        })();
        match probe {
            Ok(()) => {
                self.enabled.store(true, Ordering::Relaxed);
                *plock(&self.disabled_at) = None;
                *plock(&self.probe_backoff) = REPROBE_INITIAL;
                self.reenabled.fetch_add(1, Ordering::Relaxed);
                true
            }
            Err(e) => {
                eprintln!("lazymc-service: journal re-probe failed ({e}); backing off");
                *plock(&self.disabled_at) = Some(Instant::now());
                let mut backoff = plock(&self.probe_backoff);
                *backoff = (*backoff * 2).min(REPROBE_CAP);
                false
            }
        }
    }

    /// Integrity scrub: re-reads the active segment from disk and
    /// re-verifies every frame's length and FNV-1a checksum (under the
    /// append lock, so no torn concurrent write can false-positive).
    /// Returns the number of verified frames, or what is wrong.
    pub fn scrub(&self) -> Result<u64, String> {
        lazymc_chaos::raise_io("scrub.journal").map_err(|e| e.to_string())?;
        let active = plock(&self.inner);
        if !self.is_enabled() || active.file.is_none() {
            return Ok(0);
        }
        let path = seg_path(&self.dir, active.seg);
        let mut bytes = Vec::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_end(&mut bytes))
            .map_err(|e| format!("active segment unreadable: {e}"))?;
        let mut scratch = BTreeMap::new();
        replay_segment(&bytes, &mut scratch)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    fn tempdir(tag: &str) -> PathBuf {
        static SEQ: AtomicU32 = AtomicU32::new(0);
        let dir = std::env::temp_dir().join(format!(
            "lazymc-journal-{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn seg_files(dir: &Path) -> Vec<String> {
        let mut names: Vec<String> = fs::read_dir(dir.join("journal"))
            .unwrap()
            .map(|e| e.unwrap().file_name().to_string_lossy().into_owned())
            .collect();
        names.sort();
        names
    }

    #[test]
    fn admitted_jobs_replay_and_completed_jobs_do_not() {
        let dir = tempdir("replay");
        {
            let (j, replayed) = Journal::open(&dir).unwrap();
            assert!(replayed.is_empty());
            j.admit(1, r#"{"graph":"a"}"#).unwrap();
            j.admit(2, r#"{"graph":"b"}"#).unwrap();
            j.admit(3, r#"{"graph":"c"}"#).unwrap();
            j.complete(2).unwrap();
            // Crash: drop without completing 1 and 3.
        }
        let (_j, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(
            replayed,
            vec![
                ReplayedJob {
                    id: 1,
                    body: r#"{"graph":"a"}"#.into()
                },
                ReplayedJob {
                    id: 3,
                    body: r#"{"graph":"c"}"#.into()
                },
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_and_unknown_completes_are_idempotent() {
        let dir = tempdir("idem");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.admit(7, "{}").unwrap();
            j.complete(7).unwrap();
            j.complete(7).unwrap();
            j.complete(999).unwrap();
        }
        let (_j, replayed) = Journal::open(&dir).unwrap();
        assert!(replayed.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_keeps_earlier_records() {
        let dir = tempdir("torn");
        let seg;
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.admit(1, r#"{"graph":"keep"}"#).unwrap();
            j.admit(2, r#"{"graph":"torn"}"#).unwrap();
            seg = plock(&j.inner).seg;
        }
        // Simulate a crash mid-write: cut the last record in half.
        let path = seg_path(&dir.join("journal"), seg);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (_j, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checksum_stops_that_segment_only() {
        let dir = tempdir("crc");
        let seg;
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.admit(1, r#"{"graph":"ok"}"#).unwrap();
            j.admit(2, r#"{"graph":"flip"}"#).unwrap();
            seg = plock(&j.inner).seg;
        }
        let path = seg_path(&dir.join("journal"), seg);
        let mut bytes = fs::read(&path).unwrap();
        // Flip a byte inside the *second* record's payload.
        let n = bytes.len();
        bytes[n - 3] ^= 0xff;
        fs::write(&path, &bytes).unwrap();
        let (_j, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 1, "record before the corruption survives");
        assert_eq!(replayed[0].id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rotation_carries_pending_and_prunes_old_segments() {
        let dir = tempdir("rotate");
        let (j, _) = Journal::open_with(&dir, 4096).unwrap();
        // Never-completed job must survive arbitrarily many rotations.
        j.admit(1, r#"{"graph":"sticky"}"#).unwrap();
        let filler = "x".repeat(512);
        for id in 2..40u64 {
            j.admit(id, &format!(r#"{{"graph":"{filler}"}}"#)).unwrap();
            j.complete(id).unwrap();
        }
        assert!(j.rotations.load(Ordering::Relaxed) >= 1);
        assert_eq!(seg_files(&dir).len(), 1, "rotation must prune old segments");
        assert_eq!(j.pending_len(), 1);
        drop(j);
        let (_j, replayed) = Journal::open(&dir).unwrap();
        assert_eq!(replayed.len(), 1);
        assert_eq!(replayed[0].id, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn compaction_on_open_leaves_one_fresh_segment() {
        let dir = tempdir("compact");
        {
            let (j, _) = Journal::open(&dir).unwrap();
            j.admit(5, "{}").unwrap();
        }
        {
            let (_j, _) = Journal::open(&dir).unwrap();
        }
        let names = seg_files(&dir);
        assert_eq!(names.len(), 1, "old segments compacted away: {names:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn append_error_disables_journal_but_not_the_caller() {
        let dir = tempdir("disable");
        let (j, _) = Journal::open(&dir).unwrap();
        j.admit(1, "{}").unwrap();
        // Nuke the directory out from under the journal, then force a
        // rotation so the next append must create a file and fails.
        fs::remove_dir_all(dir.join("journal")).unwrap();
        plock(&j.inner).bytes = u64::MAX;
        assert!(j.admit(2, "{}").is_err());
        assert!(!j.is_enabled());
        // Subsequent appends are silently skipped, not errors.
        assert!(j.admit(3, "{}").is_ok());
        assert!(j.complete(1).is_ok());
        assert_eq!(j.append_errors.load(Ordering::Relaxed), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn self_heal_reenables_after_the_volume_returns() {
        let dir = tempdir("heal");
        let (j, _) = Journal::open(&dir).unwrap();
        j.admit(1, r#"{"graph":"sticky"}"#).unwrap();
        // Volume vanishes: the next append fails and disables journaling.
        fs::remove_dir_all(dir.join("journal")).unwrap();
        plock(&j.inner).bytes = u64::MAX;
        assert!(j.admit(2, "{}").is_err());
        assert!(!j.is_enabled());
        // Backoff not yet elapsed: probe declines without touching disk.
        assert!(!j.try_reenable());
        assert!(!j.is_enabled());
        // Volume still broken when the backoff elapses (a *file* squats
        // on the journal directory path): the probe fails cleanly.
        fs::write(dir.join("journal"), b"squatter").unwrap();
        *plock(&j.probe_backoff) = Duration::ZERO;
        assert!(!j.try_reenable());
        assert!(!j.is_enabled());
        // Volume back: the next due probe writes a fresh compacted
        // segment and re-enables, with the pending admit preserved.
        fs::remove_file(dir.join("journal")).unwrap();
        *plock(&j.probe_backoff) = Duration::ZERO;
        assert!(j.try_reenable());
        assert!(j.is_enabled());
        assert_eq!(j.reenabled.load(Ordering::Relaxed), 1);
        assert_eq!(j.pending_len(), 1);
        assert!(j.admit(3, "{}").is_ok());
        drop(j);
        let (_j, replayed) = Journal::open(&dir).unwrap();
        let ids: Vec<u64> = replayed.iter().map(|r| r.id).collect();
        assert!(ids.contains(&1), "pending admit survives the heal: {ids:?}");
        assert!(ids.contains(&3));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn scrub_verifies_frames_and_reports_corruption() {
        let dir = tempdir("scrub");
        let (j, _) = Journal::open(&dir).unwrap();
        j.admit(1, r#"{"graph":"a"}"#).unwrap();
        j.admit(2, r#"{"graph":"b"}"#).unwrap();
        j.complete(1).unwrap();
        assert_eq!(j.scrub().unwrap(), 3, "three frames verify clean");
        // Bit-rot inside the active segment: scrub must notice.
        let seg = plock(&j.inner).seg;
        let path = seg_path(&dir.join("journal"), seg);
        let mut bytes = fs::read(&path).unwrap();
        let mid = MAGIC.len() + 14; // inside the first record's payload
        bytes[mid] ^= 0x01;
        fs::write(&path, &bytes).unwrap();
        let err = j.scrub().unwrap_err();
        assert!(err.contains("checksum"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }
}
