//! Zero-downtime lifecycle acceptance: a real `lazymc serve` child gets
//! SIGTERM mid-load and must drain — stop accepting, finish or persist
//! every admitted job, flip `/readyz` while `/healthz` stays live, tell
//! keep-alive clients `Connection: close`, and exit 0. A restart over the
//! same `--data-dir` then proves the journal owes nothing: a graceful
//! drain, unlike the SIGKILL in `crash_recovery.rs`, loses no work *and*
//! leaves none behind.

use lazymc_service::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

extern "C" {
    fn kill(pid: i32, sig: i32) -> i32;
}
const SIGTERM: i32 = 15;

struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `lazymc serve 127.0.0.1:0 --data-dir <dir> ...` and parses the
/// bound address out of the startup banner.
fn spawn_daemon(data_dir: &Path, extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lazymc"));
    cmd.arg("serve")
        .arg("127.0.0.1:0")
        .arg("--data-dir")
        .arg(data_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn lazymc serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before printing its address")
            .expect("read banner line");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.trim().parse().expect("bound address");
        }
    };
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

/// Minimal keep-alive HTTP client (mirrors the service test client; CLI
/// tests cannot share that module across crates).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).expect("nodelay");
                    let reader = BufReader::new(stream.try_clone().expect("clone"));
                    return Client { stream, reader };
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "daemon never accepted: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    /// One request; returns (status, lower-cased headers, parsed body).
    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: &str,
    ) -> (u16, Vec<(String, String)>, Json) {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        self.stream.flush().expect("flush");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
                if k == "content-length" {
                    content_length = v.parse().expect("content-length");
                }
                headers.push((k, v));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        let body = String::from_utf8(body).expect("utf8");
        (status, headers, Json::parse(&body).expect("json body"))
    }
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing number {key:?} in {v:?}")) as u64
}

fn str_field<'a>(v: &'a Json, key: &'a str) -> &'a str {
    v.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string {key:?} in {v:?}"))
}

fn has_close(headers: &[(String, String)]) -> bool {
    headers
        .iter()
        .any(|(k, v)| k == "connection" && v.eq_ignore_ascii_case("close"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lazymc_drain_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigterm_drains_finishes_jobs_and_exits_zero() {
    let dir = tmp_dir("term");
    let mut first = spawn_daemon(
        &dir,
        &[
            "--solver-workers",
            "1",
            "--workers",
            "1",
            "--drain-timeout-ms",
            "30000",
        ],
    );
    let mut c = Client::connect(first.addr);

    let g = lazymc_graph::gen::gnp(240, 0.5, 7);
    let mut edges = Vec::new();
    lazymc_graph::io::write_edge_list(&g, &mut edges).expect("serialize graph");
    let upload = Json::obj(vec![
        ("name", Json::str("dense")),
        ("format", Json::str("edgelist")),
        (
            "content",
            Json::str(String::from_utf8(edges).expect("utf8")),
        ),
    ])
    .encode();
    let (status, _, info) = c.request("POST", "/graphs", &upload);
    assert_eq!(status, 201, "upload failed: {info:?}");

    // One job pins the lone solver for ~1.2 s; three more wait behind it.
    // Every budget is measured from enqueue, so all of it resolves (runs,
    // finishes early, or is reaped dead-on-arrival) well inside the drain
    // timeout — a graceful exit has work to wait for, but not forever.
    let body = r#"{"graph":"dense","no_cache":true,"budget_ms":1200,"threads":1}"#;
    let mut admitted = 0u64;
    for _ in 0..4 {
        let (status, _, accepted) = c.request("POST", "/solve?async=1", body);
        assert_eq!(status, 202, "admission failed: {accepted:?}");
        admitted += 1;
    }
    assert_eq!(admitted, 4);

    // Pre-open the probe connections: the listener closes once the drain
    // begins, but connections accepted before it must keep answering.
    let mut ready_probe = Client::connect(first.addr);
    let mut health_probe = Client::connect(first.addr);
    let (status, headers, _) = ready_probe.request("GET", "/readyz", "");
    assert_eq!(status, 200, "daemon must be ready before SIGTERM");
    assert!(!has_close(&headers), "keep-alive before the drain");

    assert_eq!(
        unsafe { kill(first.child.id() as i32, SIGTERM) },
        0,
        "kill(SIGTERM) failed"
    );

    // In-flight connections: /readyz flips to 503 (with Connection:
    // close) while /healthz stays 200 and reports the phase.
    let (status, headers, _) = ready_probe.request("GET", "/readyz", "");
    assert_eq!(status, 503, "/readyz must refuse while draining");
    assert!(
        has_close(&headers),
        "drain responses must say Connection: close, got {headers:?}"
    );
    let (status, _, health) = health_probe.request("GET", "/healthz", "");
    assert_eq!(status, 200, "/healthz stays live through the drain");
    assert_eq!(
        health.get("draining").and_then(Json::as_bool),
        Some(true),
        "healthz must report draining: {health:?}"
    );

    // The listener is gone: new connections are refused, not queued.
    let t = Instant::now();
    loop {
        if TcpStream::connect(first.addr).is_err() {
            break;
        }
        assert!(
            t.elapsed() < Duration::from_secs(5),
            "listener still accepting after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // The child finishes its admitted work and exits 0 — not killed, not
    // timed out, not panicking on the way down.
    let t = Instant::now();
    let status = loop {
        if let Some(status) = first.child.try_wait().expect("try_wait") {
            break status;
        }
        assert!(
            t.elapsed() < Duration::from_secs(60),
            "daemon never exited after SIGTERM"
        );
        std::thread::sleep(Duration::from_millis(50));
    };
    assert_eq!(status.code(), Some(0), "drain must exit 0, got {status:?}");

    // A restart over the same data dir owes no replay: every admitted job
    // reached a terminal state before the first daemon exited.
    let second = spawn_daemon(&dir, &["--solver-workers", "1", "--workers", "1"]);
    let mut c = Client::connect(second.addr);
    let (status, _, health) = c.request("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(str_field(&health, "journal"), "enabled");
    assert_eq!(
        u64_field(&health, "journal_pending"),
        0,
        "graceful drain must leave no admitted-incomplete jobs behind"
    );
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}
