//! The crash-recovery acceptance harness: a real `lazymc serve` child
//! process is SIGKILLed mid-queue — jobs admitted (202 answered), most of
//! them never popped — and a second daemon booted over the same
//! `--data-dir` must replay every admitted-but-incomplete job from the
//! journal: same ids, pollable to a terminal state, zero jobs lost.
//!
//! This is deliberately a child-process test, not an in-process one: only
//! SIGKILL proves the journal's fsync-before-202 ordering. An in-process
//! "drop the handle" shutdown drains the queue and would pass even with
//! no journal at all.

use lazymc_service::Json;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Kills the child on drop so a failing assertion never leaks a daemon.
struct Daemon {
    child: Child,
    addr: SocketAddr,
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

/// Spawns `lazymc serve 127.0.0.1:0 --data-dir <dir> ...` and parses the
/// bound address out of the startup banner.
fn spawn_daemon(data_dir: &Path, extra: &[&str]) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lazymc"));
    cmd.arg("serve")
        .arg("127.0.0.1:0")
        .arg("--data-dir")
        .arg(data_dir)
        .args(extra)
        .stdout(Stdio::piped())
        .stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn lazymc serve");
    let stdout = child.stdout.take().expect("piped stdout");
    let mut lines = BufReader::new(stdout).lines();
    let addr = loop {
        let line = lines
            .next()
            .expect("daemon exited before printing its address")
            .expect("read banner line");
        if let Some(rest) = line.split("http://").nth(1) {
            break rest.trim().parse().expect("bound address");
        }
    };
    // Keep draining the banner so the child never blocks on a full pipe.
    std::thread::spawn(move || for _ in lines {});
    Daemon { child, addr }
}

/// Minimal keep-alive HTTP client (mirrors the service test client; CLI
/// tests cannot share that module across crates).
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match TcpStream::connect(addr) {
                Ok(stream) => {
                    stream.set_nodelay(true).expect("nodelay");
                    let reader = BufReader::new(stream.try_clone().expect("clone"));
                    return Client { stream, reader };
                }
                Err(e) => {
                    assert!(Instant::now() < deadline, "daemon never accepted: {e}");
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, Json) {
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        self.stream.flush().expect("flush");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .unwrap_or_else(|| panic!("bad status line {status_line:?}"))
            .parse()
            .expect("numeric status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().expect("content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        let body = String::from_utf8(body).expect("utf8");
        (status, Json::parse(&body).expect("json body"))
    }

    fn metric(&mut self, name: &str) -> u64 {
        write!(
            self.stream,
            "GET /metrics HTTP/1.1\r\nHost: test\r\nContent-Length: 0\r\n\r\n"
        )
        .expect("write request");
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line).expect("status");
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header");
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().expect("content-length");
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        String::from_utf8(body)
            .expect("utf8")
            .lines()
            .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("metric {name} not found"))
    }
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_f64)
        .unwrap_or_else(|| panic!("missing number {key:?} in {v:?}")) as u64
}

fn str_field<'a>(v: &'a Json, key: &'a str) -> &'a str {
    v.get(key)
        .and_then(Json::as_str)
        .unwrap_or_else(|| panic!("missing string {key:?} in {v:?}"))
}

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lazymc_crash_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn sigkill_mid_queue_loses_no_admitted_jobs() {
    let dir = tmp_dir("sigkill");

    // Daemon #1: one solver worker so submissions pile up queued behind
    // the first running job — the crash happens genuinely mid-queue.
    let first = spawn_daemon(&dir, &["--solver-workers", "1", "--workers", "1"]);
    let mut c = Client::connect(first.addr);

    // A dense graph whose budgeted solve takes far longer than the gap
    // between the last 202 and the SIGKILL, so nothing completes (and
    // writes its journal completion record) before the crash.
    let g = lazymc_graph::gen::gnp(240, 0.5, 7);
    let mut edges = Vec::new();
    lazymc_graph::io::write_edge_list(&g, &mut edges).expect("serialize graph");
    let upload = Json::obj(vec![
        ("name", Json::str("dense")),
        ("format", Json::str("edgelist")),
        (
            "content",
            Json::str(String::from_utf8(edges).expect("utf8")),
        ),
    ])
    .encode();
    let (status, info) = c.request("POST", "/graphs", &upload);
    assert_eq!(status, 201, "upload failed: {info:?}");

    let body = r#"{"graph":"dense","no_cache":true,"budget_ms":3000,"threads":1}"#;
    let ids: Vec<u64> = (0..5)
        .map(|_| {
            let (status, accepted) = c.request("POST", "/solve?async=1", body);
            assert_eq!(status, 202, "admission failed: {accepted:?}");
            u64_field(&accepted, "job_id")
        })
        .collect();

    // SIGKILL, not shutdown: no drain, no flush, no goodbye. Only what
    // the journal fsynced before each 202 survives.
    drop(first);

    // Daemon #2 over the same data dir replays every admitted job.
    let second = spawn_daemon(&dir, &["--solver-workers", "1", "--workers", "1"]);
    let mut c = Client::connect(second.addr);
    assert_eq!(
        c.metric("lazymc_jobs_replayed_total"),
        ids.len() as u64,
        "every admitted job must be recovered"
    );
    let (status, health) = c.request("GET", "/healthz", "");
    assert_eq!(status, 200);
    assert_eq!(str_field(&health, "journal"), "enabled");

    // Same ids as before the crash, each pollable to a terminal state:
    // zero admitted jobs lost.
    let deadline = Instant::now() + Duration::from_secs(120);
    for &id in &ids {
        loop {
            let (status, view) = c.request("GET", &format!("/jobs/{id}"), "");
            assert_eq!(status, 200, "recovered job {id} lost: {view:?}");
            match str_field(&view, "status") {
                "done" => {
                    let result = view.get("result").expect("done jobs retain results");
                    assert!(u64_field(result, "omega") >= 1);
                    break;
                }
                "failed" | "cancelled" => break,
                _ => {}
            }
            assert!(
                Instant::now() < deadline,
                "recovered job {id} never reached a terminal state"
            );
            std::thread::sleep(Duration::from_millis(25));
        }
    }

    // With every replayed job completed, the journal owes nothing.
    let (_, health) = c.request("GET", "/healthz", "");
    assert_eq!(u64_field(&health, "journal_pending"), 0);
    drop(second);
    let _ = std::fs::remove_dir_all(&dir);
}
