//! Maximal Clique Enumeration (MCE).
//!
//! The early-exit intersection kernels at the heart of LazyMC were first
//! introduced for MCE (paper §IV-B cites \[4\], the author's ICS'24 MCE
//! work), where the hot operation is *pivot selection*: at every node of
//! the Bron–Kerbosch recursion, pick the vertex of `P ∪ X` with the most
//! neighbors inside `P`. Like LazyMC's degree-based heuristic, that
//! arg-max only cares about sizes above the running maximum — precisely
//! what `intersect-size-gt-val` accelerates.
//!
//! This crate implements the standard state of the art:
//!
//! * outer loop over vertices in **degeneracy order** (Eppstein–Löffler–
//!   Strash), bounding every recursion's candidate set by the coreness;
//! * Bron–Kerbosch recursion with **Tomita pivoting**, pivot chosen with
//!   the ratcheting early-exit kernel;
//! * sets kept as sorted arrays, intersected with the workspace's merge
//!   kernels.
//!
//! ```
//! use lazymc_graph::gen;
//! use lazymc_mce::{count_maximal_cliques, for_each_maximal_clique};
//!
//! // A triangle-free graph's maximal cliques are exactly its edges.
//! let g = gen::cycle(5);
//! assert_eq!(count_maximal_cliques(&g), 5);
//!
//! let mut sizes = Vec::new();
//! for_each_maximal_clique(&gen::complete(4), |c| sizes.push(c.len()));
//! assert_eq!(sizes, vec![4]); // K4 has a single maximal clique
//! ```

use lazymc_graph::{CsrGraph, VertexId};
use lazymc_intersect::{intersect_size_gt_val, intersect_sorted, SortedSlice};
use lazymc_order::kcore_sequential;

/// Enumeration statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct MceStats {
    /// Maximal cliques reported.
    pub cliques: u64,
    /// Recursion nodes visited.
    pub nodes: u64,
}

struct Enumerator<'g, F> {
    g: &'g CsrGraph,
    emit: F,
    stats: MceStats,
    /// Current clique under construction.
    r: Vec<VertexId>,
    /// Scratch buffer for intersections.
    tmp: Vec<VertexId>,
}

impl<F: FnMut(&[VertexId])> Enumerator<'_, F> {
    /// Bron–Kerbosch with Tomita pivoting over sorted candidate/excluded
    /// sets. Invariant: every vertex of `p ∪ x` is adjacent to all of `r`.
    fn expand(&mut self, p: Vec<VertexId>, mut x: Vec<VertexId>) {
        self.stats.nodes += 1;
        if p.is_empty() {
            if x.is_empty() {
                self.stats.cliques += 1;
                (self.emit)(&self.r);
            }
            return;
        }
        // Pivot: w ∈ P ∪ X maximizing |P ∩ N(w)|, found with the
        // ratcheting early-exit kernel — the optimization of [4].
        let pivot = self.select_pivot(&p, &x);
        // Branch on P \ N(pivot).
        let pivot_nbrs = self.g.neighbors(pivot);
        let branch: Vec<VertexId> = p
            .iter()
            .copied()
            .filter(|&u| pivot_nbrs.binary_search(&u).is_err())
            .collect();
        let mut p = p;
        for v in branch {
            let nv = self.g.neighbors(v);
            let mut p2 = Vec::new();
            intersect_sorted(&p, nv, &mut p2);
            // v itself is in p but not in N(v); remove it from the child P.
            if let Ok(i) = p2.binary_search(&v) {
                p2.remove(i);
            }
            let mut x2 = Vec::new();
            intersect_sorted(&x, nv, &mut x2);
            self.r.push(v);
            self.expand(p2, x2);
            self.r.pop();
            // Move v from P to X (both stay sorted).
            if let Ok(i) = p.binary_search(&v) {
                p.remove(i);
            }
            if let Err(i) = x.binary_search(&v) {
                x.insert(i, v);
            }
        }
    }

    fn select_pivot(&mut self, p: &[VertexId], x: &[VertexId]) -> VertexId {
        let mut best = p[0];
        let mut best_d = 0usize;
        for &w in p.iter().chain(x) {
            let nw = SortedSlice(self.g.neighbors(w));
            // Early exit at the running maximum: most candidates abandon
            // the count long before scanning all of P.
            if let Some(d) = intersect_size_gt_val(p, &nw, best_d) {
                if d > best_d {
                    best_d = d;
                    best = w;
                }
            }
        }
        best
    }
}

/// Calls `emit` once per maximal clique of `g` (vertices in unspecified
/// order within the slice). Returns enumeration statistics.
pub fn for_each_maximal_clique<F: FnMut(&[VertexId])>(g: &CsrGraph, emit: F) -> MceStats {
    let n = g.num_vertices();
    if n == 0 {
        return MceStats::default();
    }
    let kc = kcore_sequential(g);
    let mut rank = vec![0u32; n];
    for (i, &v) in kc.peel_order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    let mut e = Enumerator {
        g,
        emit,
        stats: MceStats::default(),
        r: Vec::new(),
        tmp: Vec::new(),
    };
    let _ = &e.tmp;
    // Eppstein–Löffler–Strash outer loop: one recursion per vertex, with
    // P restricted to later (peel-order) neighbors and X to earlier ones —
    // every P is bounded by the degeneracy.
    for &v in &kc.peel_order {
        let nbrs = g.neighbors(v);
        let mut p: Vec<VertexId> = nbrs
            .iter()
            .copied()
            .filter(|&u| rank[u as usize] > rank[v as usize])
            .collect();
        let mut x: Vec<VertexId> = nbrs
            .iter()
            .copied()
            .filter(|&u| rank[u as usize] < rank[v as usize])
            .collect();
        p.sort_unstable();
        x.sort_unstable();
        e.r.push(v);
        e.expand(p, x);
        e.r.pop();
    }
    // Isolated vertices: the loop above emits them ({v} with empty P/X),
    // so nothing special is needed.
    e.stats
}

/// Number of maximal cliques of `g`.
pub fn count_maximal_cliques(g: &CsrGraph) -> u64 {
    for_each_maximal_clique(g, |_| {}).cliques
}

/// Collects all maximal cliques, each sorted ascending; the collection is
/// sorted lexicographically (tests / small graphs only — the count can be
/// exponential).
pub fn all_maximal_cliques(g: &CsrGraph) -> Vec<Vec<VertexId>> {
    let mut out = Vec::new();
    for_each_maximal_clique(g, |c| {
        let mut c = c.to_vec();
        c.sort_unstable();
        out.push(c);
    });
    out.sort();
    out
}

/// Reference oracle straight from the definition: a subset is a maximal
/// clique iff it is a clique and no outside vertex extends it. O(2^n · n²);
/// for graphs with at most ~16 vertices.
pub fn all_maximal_cliques_naive(g: &CsrGraph) -> Vec<Vec<VertexId>> {
    let n = g.num_vertices();
    assert!(n <= 20, "naive oracle is exponential");
    let mut out = Vec::new();
    for mask in 1u32..(1 << n) {
        let members: Vec<VertexId> = (0..n as u32).filter(|&v| mask & (1 << v) != 0).collect();
        if !g.is_clique(&members) {
            continue;
        }
        let extendable = (0..n as u32)
            .any(|u| mask & (1 << u) == 0 && members.iter().all(|&v| g.has_edge(u, v)));
        if !extendable {
            out.push(members);
        }
    }
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;

    #[test]
    fn complete_graph_single_clique() {
        let g = gen::complete(6);
        let all = all_maximal_cliques(&g);
        assert_eq!(all, vec![vec![0, 1, 2, 3, 4, 5]]);
    }

    #[test]
    fn triangle_free_graphs_cliques_are_edges() {
        for g in [gen::cycle(7), gen::star(6), gen::path(5)] {
            assert_eq!(count_maximal_cliques(&g), g.num_edges() as u64);
        }
    }

    #[test]
    fn moon_moser_count() {
        // Complete 3-partite graph with parts of size 3 (K_{3,3,3}):
        // 3^3 = 27 maximal cliques, the Moon–Moser extremal family.
        let mut edges = Vec::new();
        let part = |v: u32| v / 3;
        for u in 0..9u32 {
            for v in (u + 1)..9 {
                if part(u) != part(v) {
                    edges.push((u, v));
                }
            }
        }
        let g = lazymc_graph::CsrGraph::from_edges(9, &edges);
        assert_eq!(count_maximal_cliques(&g), 27);
        // each maximal clique takes one vertex per part → size 3
        for c in all_maximal_cliques(&g) {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn petersen_graph_fifteen_edges() {
        let outer = [(0u32, 1), (1, 2), (2, 3), (3, 4), (4, 0)];
        let spokes = [(0u32, 5), (1, 6), (2, 7), (3, 8), (4, 9)];
        let inner = [(5u32, 7), (7, 9), (9, 6), (6, 8), (8, 5)];
        let edges: Vec<(u32, u32)> = outer.iter().chain(&spokes).chain(&inner).copied().collect();
        let g = lazymc_graph::CsrGraph::from_edges(10, &edges);
        // triangle-free: maximal cliques = the 15 edges
        assert_eq!(count_maximal_cliques(&g), 15);
    }

    #[test]
    fn isolated_vertices_are_maximal() {
        let g = lazymc_graph::CsrGraph::from_edges(4, &[(0, 1)]);
        let all = all_maximal_cliques(&g);
        assert_eq!(all, vec![vec![0, 1], vec![2], vec![3]]);
    }

    #[test]
    fn empty_graph() {
        let g = lazymc_graph::CsrGraph::empty(0);
        assert_eq!(count_maximal_cliques(&g), 0);
    }

    #[test]
    fn matches_naive_on_small_random() {
        for seed in 0..6 {
            let g = gen::gnp(12, 0.35, seed);
            assert_eq!(
                all_maximal_cliques(&g),
                all_maximal_cliques_naive(&g),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn every_emitted_set_is_a_maximal_clique() {
        let g = gen::planted_clique(60, 0.1, 7, 3);
        for_each_maximal_clique(&g, |c| {
            assert!(g.is_clique(c));
            // no vertex extends it
            let extendable = g
                .vertices()
                .any(|u| !c.contains(&u) && c.iter().all(|&v| g.has_edge(u, v)));
            assert!(!extendable, "clique {c:?} is extendable");
        });
    }

    #[test]
    fn max_clique_is_among_maximal_cliques() {
        let g = gen::planted_clique(80, 0.08, 9, 5);
        let mut biggest = 0usize;
        for_each_maximal_clique(&g, |c| biggest = biggest.max(c.len()));
        assert_eq!(biggest, 9);
    }
}
