//! Observability primitives for the lazymc daemon.
//!
//! Everything in this crate is dependency-free (stdlib + the vendored
//! `parking_lot` shim) and designed to sit on hot paths without
//! serializing them:
//!
//! * [`Histogram`] — a lock-free log₂-bucketed latency histogram over
//!   atomic buckets; snapshots are mergeable and render directly to the
//!   Prometheus text exposition format (`_bucket`/`_sum`/`_count` with
//!   cumulative `le` labels).
//! * [`trace`] — request trace ids: generation without an RNG, and
//!   validation of inbound `X-Request-Id` values.
//! * [`Span`] — a named `[start, start+dur)` interval relative to some
//!   request epoch; a flat `Vec<Span>` is the crate's span "tree" (the
//!   daemon's requests are a pipeline, not a call graph, so offsets are
//!   all the structure anyone needs).
//! * [`SlowLog`] — a bounded keep-the-worst log of completed operations
//!   over an admission threshold.
//! * [`LogSink`] — where structured log lines go: stdout in production,
//!   a capture buffer in tests.

mod hist;
mod sink;
mod slow;
pub mod trace;

pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use sink::LogSink;
pub use slow::SlowLog;

/// One timed interval of a request's life, offsets relative to the
/// moment the request was received (or the solve started — the emitter
/// picks the epoch and says so).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Span {
    /// What the interval covers (`"parse"`, `"queue-wait"`, `"kcore"`, …).
    pub name: &'static str,
    /// Microseconds from the epoch to the interval's start.
    pub start_us: u64,
    /// Interval length in microseconds.
    pub dur_us: u64,
}

impl Span {
    /// A span starting at `start_us` lasting `dur_us`.
    pub fn new(name: &'static str, start_us: u64, dur_us: u64) -> Span {
        Span {
            name,
            start_us,
            dur_us,
        }
    }

    /// Microseconds from the epoch to the interval's end.
    pub fn end_us(&self) -> u64 {
        self.start_us + self.dur_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_end_is_start_plus_duration() {
        let s = Span::new("parse", 10, 25);
        assert_eq!(s.end_us(), 35);
        assert_eq!(s.name, "parse");
    }
}
