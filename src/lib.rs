//! # lazymc — work-avoiding parallel maximum clique search
//!
//! This crate is the facade of a full reproduction of
//! *Less is More: Faster Maximum Clique Search by Work-Avoidance*
//! (H. Vandierendonck, IPDPS 2025). It re-exports every workspace crate under
//! one roof so that applications can depend on a single package:
//!
//! ```
//! use lazymc::graph::gen;
//! use lazymc::core::{LazyMc, Config};
//!
//! // A 200-vertex random graph with a planted 12-clique.
//! let g = gen::planted_clique(200, 0.05, 12, 42);
//! let result = LazyMc::new(Config::default()).solve(&g);
//! assert_eq!(result.size(), 12);
//! ```
//!
//! ## Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | CSR graph storage, builders, IO readers, synthetic generators |
//! | [`hopscotch`] | hopscotch hash set (H = 16, bitmask variant) |
//! | [`intersect`] | early-exit set intersection kernels (paper Algs. 3–4) |
//! | [`order`] | k-core decomposition, peeling orders, counting-sort relabelling |
//! | [`lazygraph`] | the lazy filtered hashed relabelled graph (paper Alg. 2) |
//! | [`solver`] | bitset MC branch-and-bound and k-vertex-cover subgraph solvers |
//! | [`core`] | the LazyMC driver: heuristics, filtering, systematic search |
//! | [`baselines`] | PMC-like, dOmega-like, MC-BRB-like comparators and a naive oracle |
//! | [`mce`] | maximal clique enumeration with early-exit pivot selection |
//! | [`roaring`] | Roaring-style compressed bitmap (alternative set backend) |
//! | [`service`] | concurrent clique-query daemon (HTTP/1.1, graph registry, job queue) |

pub use lazymc_baselines as baselines;
pub use lazymc_core as core;
pub use lazymc_graph as graph;
pub use lazymc_hopscotch as hopscotch;
pub use lazymc_intersect as intersect;
pub use lazymc_lazygraph as lazygraph;
pub use lazymc_mce as mce;
pub use lazymc_order as order;
pub use lazymc_roaring as roaring;
pub use lazymc_service as service;
pub use lazymc_solver as solver;

/// Convenience: solve a graph with default LazyMC settings and return the
/// maximum clique as a vector of vertex ids of the input graph.
pub fn maximum_clique(g: &graph::CsrGraph) -> Vec<u32> {
    lazymc_core::LazyMc::new(lazymc_core::Config::default())
        .solve(g)
        .into_vertices()
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_links_all_crates() {
        // Compile-time smoke check that every re-export resolves.
        let _ = crate::maximum_clique;
    }
}
