//! Live solve progress.
//!
//! A [`SolveProgress`] is a shared cell a long-running caller (the query
//! daemon) hands to [`crate::LazyMc::solve_prepared_observed`]. The
//! solve publishes into it as it runs — current phase, the relaxed work
//! [`Counters`], and the incumbent size — so an observer thread can
//! snapshot a *running* solve without touching the search: every store
//! is a relaxed atomic the search already performs (or a phase marker
//! written six times per solve).

use crate::metrics::{snapshot_counters, Counters, MetricsSnapshot};
use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::Arc;

/// Which top-level phase (paper Alg. 1) a solve is currently in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Phase {
    /// Not started yet (queued).
    Idle = 0,
    /// Degree-based heuristic search (line 3).
    DegreeHeuristic = 1,
    /// Coreness computation (line 4).
    Kcore = 2,
    /// Sort-order determination (line 5).
    Reorder = 3,
    /// Lazy-graph construction + pre-population (line 6).
    Prepopulate = 4,
    /// Coreness-based heuristic search (line 7).
    CorenessHeuristic = 5,
    /// Systematic search (line 8).
    Systematic = 6,
    /// Solve finished.
    Done = 7,
}

impl Phase {
    /// Stable snake-case name (used in progress JSON and span names).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Idle => "idle",
            Phase::DegreeHeuristic => "degree-heuristic",
            Phase::Kcore => "kcore",
            Phase::Reorder => "reorder",
            Phase::Prepopulate => "prepopulate",
            Phase::CorenessHeuristic => "coreness-heuristic",
            Phase::Systematic => "systematic",
            Phase::Done => "done",
        }
    }

    fn from_u8(v: u8) -> Phase {
        match v {
            1 => Phase::DegreeHeuristic,
            2 => Phase::Kcore,
            3 => Phase::Reorder,
            4 => Phase::Prepopulate,
            5 => Phase::CorenessHeuristic,
            6 => Phase::Systematic,
            7 => Phase::Done,
            _ => Phase::Idle,
        }
    }
}

/// Shared live-progress cell for one solve.
///
/// The solve writes; any number of observers read. All loads and stores
/// are relaxed — observers get a *recent* view, not a consistent one,
/// which is exactly what a progress endpoint needs.
#[derive(Default)]
pub struct SolveProgress {
    phase: AtomicU8,
    /// The solve's work counters, updated in place by the search. The
    /// solver kernels also drain sampled node counts here mid-search
    /// (see `lazymc_solver`), so `mc_nodes`/`vc_nodes` tick while a
    /// detailed search is still inside one subgraph.
    pub counters: Counters,
    incumbent: Arc<AtomicUsize>,
}

impl SolveProgress {
    /// Fresh progress cell (phase [`Phase::Idle`], all counters zero).
    pub fn new() -> SolveProgress {
        SolveProgress::default()
    }

    /// Publishes the current phase.
    pub fn set_phase(&self, p: Phase) {
        self.phase.store(p as u8, Ordering::Relaxed);
    }

    /// The most recently published phase.
    pub fn phase(&self) -> Phase {
        Phase::from_u8(self.phase.load(Ordering::Relaxed))
    }

    /// The shared incumbent-size cell (the observed solve's `Incumbent`
    /// is built over this same cell, so it ticks on every improvement).
    pub fn incumbent_cell(&self) -> Arc<AtomicUsize> {
        Arc::clone(&self.incumbent)
    }

    /// Current incumbent size.
    pub fn incumbent_size(&self) -> usize {
        self.incumbent.load(Ordering::Relaxed)
    }

    /// Best-effort snapshot of the work counters so far (phases, graph
    /// shape and heuristic fields of the result are zero — those are
    /// only known when the solve finishes).
    pub fn counters_snapshot(&self) -> MetricsSnapshot {
        snapshot_counters(&self.counters)
    }

    /// Total branch-and-bound nodes expanded so far (MC + k-VC).
    pub fn nodes_expanded(&self) -> u64 {
        self.counters.mc_nodes.load(Ordering::Relaxed)
            + self.counters.vc_nodes.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_roundtrips_through_the_atomic() {
        let p = SolveProgress::new();
        assert_eq!(p.phase(), Phase::Idle);
        for ph in [
            Phase::DegreeHeuristic,
            Phase::Kcore,
            Phase::Reorder,
            Phase::Prepopulate,
            Phase::CorenessHeuristic,
            Phase::Systematic,
            Phase::Done,
        ] {
            p.set_phase(ph);
            assert_eq!(p.phase(), ph);
            assert_eq!(p.phase().name(), ph.name());
        }
    }

    #[test]
    fn snapshot_sees_counter_updates() {
        let p = SolveProgress::new();
        p.counters.add(&p.counters.mc_nodes, 41);
        p.counters.add(&p.counters.vc_nodes, 1);
        assert_eq!(p.nodes_expanded(), 42);
        assert_eq!(p.counters_snapshot().mc_nodes, 41);
    }

    #[test]
    fn incumbent_cell_is_shared() {
        let p = SolveProgress::new();
        let cell = p.incumbent_cell();
        cell.store(9, Ordering::Relaxed);
        assert_eq!(p.incumbent_size(), 9);
    }
}
