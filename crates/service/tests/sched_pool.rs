//! Live-socket tests of the machine-wide scheduler pool behind the
//! service: every solve runs as a root task on one stealable pool, so
//!
//! * `GET /jobs/<id>` live progress must aggregate node counts from
//!   *every* worker executing the job's stolen subtrees (the counts land
//!   in one shared `SolveProgress` cell, whichever thread expands them);
//! * `/metrics` must expose the scheduler series, including the
//!   per-worker `lazymc_sched_thread_efficiency` gauge;
//! * a long-running low-priority solve must not starve easy high-priority
//!   solves — they overtake its subtree tasks in the shared drain order.

mod common;

use common::{bool_field, str_field, u64_field, upload, Client};
use lazymc_core::{Config, LazyMc};
use lazymc_graph::gen;
use lazymc_service::{serve, Json, ServiceConfig, ServiceHandle};
use std::time::{Duration, Instant};

fn start(cfg: ServiceConfig) -> ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind service")
}

/// Polls `GET /jobs/<id>` until `done(status)`, failing after `timeout`.
fn poll_job(client: &mut Client, id: u64, timeout: Duration, done: impl Fn(&str) -> bool) -> Json {
    let t = Instant::now();
    loop {
        let (status, view) = client.get_json(&format!("/jobs/{id}"));
        assert_eq!(status, 200, "job {id} vanished while polling: {view:?}");
        if done(str_field(&view, "status")) {
            return view;
        }
        assert!(
            t.elapsed() < timeout,
            "job {id} stuck in {:?} after {timeout:?}",
            str_field(&view, "status")
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn live_progress_aggregates_stolen_subtrees_and_metrics_expose_sched_series() {
    let handle = start(ServiceConfig {
        solver_workers: 4,
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::gnp(300, 0.5, 7); // seconds-scale in debug builds
    let expected = LazyMc::new(Config::sequential()).solve(&g).size();
    upload(&mut c, "dense", &g);

    let (status, accepted) = c.post_json(
        "/solve?async=1",
        r#"{"graph":"dense","threads":4,"no_cache":true}"#,
    );
    assert_eq!(status, 202, "async submit: {accepted:?}");
    let id = u64_field(&accepted, "job_id");

    // While the job runs, its progress view must show node counts growing
    // — sums over *all* workers expanding its stolen subtrees, not just
    // the thread that popped the job.
    let mut live_samples: Vec<u64> = Vec::new();
    let t = Instant::now();
    loop {
        let (status, view) = c.get_json(&format!("/jobs/{id}"));
        assert_eq!(status, 200);
        match str_field(&view, "status") {
            "running" => {
                if let Some(p) = view.get("progress") {
                    live_samples.push(u64_field(p, "nodes_expanded"));
                }
            }
            "done" => break,
            other => assert_eq!(other, "queued", "unexpected status {other:?}"),
        }
        assert!(
            t.elapsed() < Duration::from_secs(120),
            "solve never finished"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(
        live_samples.iter().any(|&n| n > 0),
        "never observed live node counts while running: {live_samples:?}"
    );
    assert!(
        live_samples.windows(2).all(|w| w[0] <= w[1]),
        "aggregated node counts went backwards: {live_samples:?}"
    );

    let view = poll_job(&mut c, id, Duration::from_secs(5), |s| s == "done");
    let result = view.get("result").expect("retained result");
    assert_eq!(u64_field(result, "omega") as usize, expected);
    assert!(bool_field(result, "exact"));

    // The whole solve ran on the scheduler: a root job executed, the
    // width-4 solve split subtree tasks into the pool, and /metrics
    // carries the scheduler family — including the per-worker
    // thread-efficiency gauge the dashboards key on.
    assert!(c.metric("lazymc_sched_job_runs_total") >= 1);
    assert!(c.metric("lazymc_core_split_tasks_total") > 0);
    assert_eq!(c.metric("lazymc_sched_workers"), 4);
    let (status, _, text) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    for series in [
        "lazymc_sched_thread_efficiency{worker=\"0\"}",
        "lazymc_sched_thread_efficiency{worker=\"3\"}",
        "lazymc_sched_busy_seconds_total{worker=\"0\"}",
        "# TYPE lazymc_sched_steals_total counter",
        "# TYPE lazymc_sched_parks_total counter",
        "# TYPE lazymc_sched_preemptions_total counter",
        "# TYPE lazymc_sched_unit_runs_total counter",
        "# TYPE lazymc_queue_depth_by_priority gauge",
    ] {
        assert!(text.contains(series), "missing {series} in /metrics");
    }
    handle.stop();
}

#[test]
fn high_priority_easy_solves_overtake_a_long_low_priority_job() {
    // Starvation smoke: one long, low-priority solve saturates the pool
    // with subtree tasks; 50 easy high-priority solves submitted while it
    // runs must each drain promptly — their root tasks outrank the long
    // job's tickets, so a worker picks them up at its next claim
    // boundary. The p99 bound is generous (debug build, oversubscribed
    // single-core CI hosts) — the failure mode it guards against is the
    // old per-job-pool behaviour where easy jobs waited for the long
    // solve to *finish*, i.e. tens of seconds.
    let handle = start(ServiceConfig {
        solver_workers: 4,
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let long = gen::gnp(350, 0.5, 11);
    upload(&mut c, "long", &long);
    let easy = gen::planted_clique(60, 0.05, 5, 3);
    let expected_easy = LazyMc::new(Config::sequential()).solve(&easy).size();
    upload(&mut c, "easy", &easy);

    // Low-priority long job, budget-capped so the test always terminates.
    let (status, accepted) = c.post_json(
        "/solve?async=1",
        r#"{"graph":"long","priority":0,"threads":4,"budget_ms":30000,"no_cache":true}"#,
    );
    assert_eq!(status, 202, "long submit: {accepted:?}");
    let long_id = u64_field(&accepted, "job_id");
    poll_job(&mut c, long_id, Duration::from_secs(30), |s| s == "running");

    let mut latencies: Vec<Duration> = Vec::new();
    for _ in 0..50 {
        let t = Instant::now();
        let (status, reply) = c.post_json(
            "/solve",
            r#"{"graph":"easy","priority":9,"threads":1,"no_cache":true}"#,
        );
        latencies.push(t.elapsed());
        assert_eq!(status, 200, "easy solve failed: {reply:?}");
        assert_eq!(u64_field(&reply, "omega") as usize, expected_easy);
    }
    latencies.sort();
    let p99 = latencies[((latencies.len() - 1) as f64 * 0.99) as usize];
    assert!(
        p99 < Duration::from_secs(2),
        "easy-solve p99 {p99:?} starved behind the long job (latencies: {latencies:?})"
    );

    // End the long job promptly rather than riding out its budget.
    let (status, _) = c.delete_json(&format!("/jobs/{long_id}"));
    assert!(status == 200 || status == 409, "cancel long job: {status}");
    poll_job(&mut c, long_id, Duration::from_secs(60), |s| {
        s == "done" || s == "cancelled" || s == "failed"
    });
    handle.stop();
}
