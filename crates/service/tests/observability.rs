//! Live-socket tests of the observability substrate: Prometheus
//! text-format conformance of `/metrics` (one `# HELP`/`# TYPE` per
//! family, no duplicate series, monotone cumulative `le` buckets),
//! `X-Request-Id` handling (valid inbound ids honoured and echoed,
//! invalid or absent ids replaced with generated ones), live progress on
//! a running solve via `GET /jobs/<id>`, the `GET /debug/slow` span
//! trees, structured JSON log capture, and the expired-vs-unknown 404
//! distinction.

mod common;

use common::{str_field, u64_field, upload, Client};
use lazymc_graph::gen;
use lazymc_service::{serve, Json, LogSink, ServiceConfig, ServiceHandle};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

fn start(cfg: ServiceConfig) -> ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind service")
}

/// Series name of a Prometheus sample line (text up to `{` or space).
fn series_name(line: &str) -> &str {
    let end = line.find(['{', ' ']).unwrap_or(line.len());
    &line[..end]
}

#[test]
fn metrics_prometheus_text_format_conformance() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    // Drive at least one solve through so solve histograms are non-empty.
    let g = gen::planted_clique(150, 0.04, 8, 5);
    upload(&mut c, "g", &g);
    let (status, _) = c.post_json("/solve", r#"{"graph":"g"}"#);
    assert_eq!(status, 200);

    let (status, _, text) = c.request("GET", "/metrics", None);
    assert_eq!(status, 200);

    // One # TYPE and at most one # HELP per family; HELP precedes use.
    let mut types: HashMap<String, String> = HashMap::new();
    let mut helps: HashSet<String> = HashSet::new();
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (name, kind) = (it.next().unwrap(), it.next().unwrap());
            assert!(
                types.insert(name.to_string(), kind.to_string()).is_none(),
                "duplicate # TYPE for {name}"
            );
        } else if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().unwrap();
            assert!(
                helps.insert(name.to_string()),
                "duplicate # HELP for {name}"
            );
        }
    }
    for name in types.keys() {
        assert!(helps.contains(name), "{name} has # TYPE but no # HELP");
    }

    // Every sample belongs to a declared family (histograms own their
    // _bucket/_sum/_count series), and no exact series repeats.
    let mut seen: HashSet<&str> = HashSet::new();
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let series = series_name(line);
        let family_ok = types.contains_key(series)
            || ["_bucket", "_sum", "_count"].iter().any(|suffix| {
                series
                    .strip_suffix(suffix)
                    .is_some_and(|base| types.get(base).map(String::as_str) == Some("histogram"))
            });
        assert!(family_ok, "sample {series} has no declared family");
        let key = line.rsplit_once(' ').map(|(k, _)| k).unwrap_or(line);
        assert!(seen.insert(key), "duplicate series {key}");
    }

    // Histogram families: cumulative le buckets are monotone, end at
    // +Inf, and agree with _count — per label set.
    let mut buckets: HashMap<String, Vec<(String, u64)>> = HashMap::new();
    let mut counts: HashMap<String, u64> = HashMap::new();
    for line in text.lines().filter(|l| !l.starts_with('#')) {
        let Some((key, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let series = series_name(line);
        if let Some(base) = series.strip_suffix("_bucket") {
            if types.get(base).map(String::as_str) == Some("histogram") {
                let labels = &key[series.len()..];
                let le_at = labels.find("le=\"").expect("bucket has le");
                let le = labels[le_at + 4..].split('"').next().unwrap().to_string();
                let group = format!("{base}{}", &labels[..le_at]);
                buckets
                    .entry(group)
                    .or_default()
                    .push((le, value.parse().expect("bucket count")));
            }
        } else if let Some(base) = series.strip_suffix("_count") {
            if types.get(base).map(String::as_str) == Some("histogram") {
                counts.insert(key.to_string(), value.parse().expect("count"));
            }
        }
    }
    assert!(!buckets.is_empty(), "no histogram buckets exported");
    for (group, series) in &buckets {
        assert!(
            series.windows(2).all(|w| w[0].1 <= w[1].1),
            "{group}: cumulative buckets must be monotone"
        );
        let (last_le, last_count) = series.last().unwrap();
        assert_eq!(last_le, "+Inf", "{group}: final bucket must be +Inf");
        // Finite le bounds strictly increase.
        let mut prev = f64::NEG_INFINITY;
        for (le, _) in series.iter().filter(|(le, _)| le != "+Inf") {
            let v: f64 = le.parse().expect("numeric le");
            assert!(v > prev, "{group}: le bounds must increase");
            prev = v;
        }
        let count_key = group.replacen("_bucket", "", 1);
        // Reconstruct the _count key: group is "<base><labels-prefix>".
        let base_end = count_key.find('{').unwrap_or(count_key.len());
        let (base, labels) = count_key.split_at(base_end);
        let labels = labels.trim_end_matches(',');
        let count_series = if labels.is_empty() || labels == "{" {
            format!("{base}_count")
        } else {
            format!("{base}_count{labels}}}")
        };
        assert_eq!(
            counts.get(&count_series),
            Some(last_count),
            "{group}: +Inf bucket must equal _count ({count_series})"
        );
    }

    // All four histogram families declared, and the solve path observed
    // at least one sample into each of queue-wait and solve-wall.
    for family in [
        "lazymc_http_request_seconds",
        "lazymc_queue_wait_seconds",
        "lazymc_solve_wall_seconds",
        "lazymc_solve_phase_seconds",
    ] {
        assert_eq!(types.get(family).map(String::as_str), Some("histogram"));
    }
    assert!(c.metric("lazymc_queue_wait_seconds_count") >= 1);
    assert!(c.metric("lazymc_solve_wall_seconds_count") >= 1);

    // Satellite gauges: build identity and uptime.
    assert!(
        text.contains("lazymc_build_info{version=\""),
        "build info gauge missing"
    );
    assert!(types.contains_key("lazymc_uptime_seconds"));
    handle.stop();
}

#[test]
fn request_id_honoured_echoed_or_generated() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());

    let echo_of = |c: &mut Client, req: &str| -> String {
        let (status, headers, _) = c.raw(req);
        assert_eq!(status, 200);
        headers
            .iter()
            .find(|(k, _)| k == "x-request-id")
            .map(|(_, v)| v.clone())
            .expect("every response carries X-Request-Id")
    };

    // A valid inbound id is honoured verbatim.
    let id = echo_of(
        &mut c,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Request-Id: trace-abc_123.z\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(id, "trace-abc_123.z");

    // An invalid inbound id (bad characters) is replaced, not echoed.
    let id = echo_of(
        &mut c,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nX-Request-Id: bad id with spaces\r\nContent-Length: 0\r\n\r\n",
    );
    assert_ne!(id, "bad id with spaces");
    assert!(!id.is_empty());

    // Absent: one is minted, and two requests get distinct ids.
    let a = echo_of(
        &mut c,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    let b = echo_of(
        &mut c,
        "GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert!(!a.is_empty() && !b.is_empty());
    assert_ne!(a, b, "generated trace ids must be unique");
    handle.stop();
}

#[test]
fn running_job_reports_live_progress() {
    let handle = start(ServiceConfig {
        solver_workers: 1,
        workers: 2,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::gnp(300, 0.5, 7); // seconds-scale in debug builds
    upload(&mut c, "slow", &g);
    let (status, accepted) = c.post_json("/solve?async=1", r#"{"graph":"slow","no_cache":true}"#);
    assert_eq!(status, 202, "{accepted:?}");
    let id = u64_field(&accepted, "job_id");

    // Poll until the running job exposes nonzero nodes-expanded progress.
    let nodes_at = |view: &Json| -> Option<u64> {
        view.get("progress")
            .and_then(|p| p.get("nodes_expanded"))
            .and_then(Json::as_u64)
    };
    let t = Instant::now();
    let (first, view) = loop {
        let (status, view) = c.get_json(&format!("/jobs/{id}"));
        assert_eq!(status, 200, "{view:?}");
        let state = str_field(&view, "status").to_string();
        if state == "running" {
            if let Some(n) = nodes_at(&view) {
                if n > 0 {
                    break (n, view);
                }
            }
        }
        assert!(
            state == "queued" || state == "running",
            "job finished before progress was observed; use a slower fixture ({state})"
        );
        assert!(
            t.elapsed() < Duration::from_secs(60),
            "no live progress after 60s"
        );
        std::thread::sleep(Duration::from_millis(20));
    };
    let progress = view.get("progress").expect("running job exposes progress");
    // The phase is one of the published names and elapsed time is sane.
    let phase = str_field(progress, "phase");
    assert!(
        [
            "idle",
            "degree-heuristic",
            "kcore",
            "reorder",
            "prepopulate",
            "coreness-heuristic",
            "systematic",
            "done",
        ]
        .contains(&phase),
        "unexpected phase {phase}"
    );
    assert!(progress
        .get("incumbent_size")
        .and_then(Json::as_u64)
        .is_some());
    assert!(progress.get("elapsed_ms").and_then(Json::as_u64).is_some());

    // Progress must *move* between two polls of the same running solve.
    let t = Instant::now();
    loop {
        let (status, view) = c.get_json(&format!("/jobs/{id}"));
        assert_eq!(status, 200);
        if str_field(&view, "status") != "running" {
            break; // solve finished while we watched: the first poll stands
        }
        if let Some(n) = nodes_at(&view) {
            if n > first {
                break;
            }
        }
        assert!(
            t.elapsed() < Duration::from_secs(60),
            "nodes_expanded never advanced past {first}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let (status, _) = c.delete_json(&format!("/jobs/{id}"));
    assert!(
        status == 200 || status == 409,
        "cancel running job: {status}"
    );
    handle.stop();
}

#[test]
fn debug_slow_serves_span_trees() {
    // Threshold 0: every completed solve is "slow".
    let handle = start(ServiceConfig {
        slow_query_ms: 0,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::planted_clique(150, 0.04, 8, 11);
    upload(&mut c, "g", &g);
    let (status, result) = c.post_json("/solve", r#"{"graph":"g"}"#);
    assert_eq!(status, 200);
    // Every solve result carries its per-phase wall breakdown.
    assert!(result.get("phase_ms").is_some(), "{result:?}");

    let (status, slow) = c.get_json("/debug/slow");
    assert_eq!(status, 200);
    assert_eq!(slow.get("threshold_ms").and_then(Json::as_u64), Some(0));
    assert!(u64_field(&slow, "count") >= 1, "{slow:?}");
    let Some(Json::Arr(entries)) = slow.get("slow") else {
        panic!("slow must be an array: {slow:?}");
    };
    let entry = &entries[0];
    assert_eq!(str_field(entry, "graph"), "g");
    assert!(!str_field(entry, "trace").is_empty());
    let spans = entry.get("spans").expect("span tree");
    assert_eq!(str_field(spans, "name"), "request");
    let Some(Json::Arr(children)) = spans.get("children") else {
        panic!("request span has children: {spans:?}");
    };
    let names: Vec<&str> = children.iter().map(|s| str_field(s, "name")).collect();
    assert_eq!(names, ["parse", "queue-wait", "solve", "serialize"]);
    // Child spans tile the request: each starts where the previous ended.
    let mut at = 0u64;
    for child in children {
        assert_eq!(u64_field(child, "start_us"), at, "{child:?}");
        at += u64_field(child, "dur_us");
    }
    assert_eq!(at, u64_field(spans, "dur_us"));
    handle.stop();
}

#[test]
fn log_json_lines_parse_and_carry_the_trace() {
    let (sink, lines) = LogSink::capture();
    let handle = start(ServiceConfig {
        log_sink: Some(sink),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::planted_clique(150, 0.04, 8, 13);
    upload(&mut c, "g", &g);
    let body = r#"{"graph":"g","no_cache":true}"#;
    let (status, _, _) = c.raw(&format!(
        "POST /solve HTTP/1.1\r\nHost: t\r\nX-Request-Id: smoke-trace-1\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    ));
    assert_eq!(status, 200);

    let lines = lines.lock().clone();
    assert!(!lines.is_empty(), "log sink captured nothing");
    let mut kinds_with_trace: HashSet<String> = HashSet::new();
    for line in &lines {
        let parsed =
            Json::parse(line).unwrap_or_else(|e| panic!("log line is not JSON ({e}): {line}"));
        let kind = str_field(&parsed, "kind").to_string();
        assert!(
            parsed.get("ts_ms").and_then(Json::as_u64).is_some(),
            "{line}"
        );
        assert!(!str_field(&parsed, "trace").is_empty(), "{line}");
        if str_field(&parsed, "trace") == "smoke-trace-1" {
            kinds_with_trace.insert(kind);
        }
    }
    // The submitted trace id flows through both layers: the HTTP access
    // line and the solve line reference the same id.
    assert!(kinds_with_trace.contains("http"), "{lines:?}");
    assert!(kinds_with_trace.contains("solve"), "{lines:?}");
    handle.stop();
}

#[test]
fn missing_job_404_distinguishes_unknown_from_expired() {
    let handle = start(ServiceConfig {
        job_ttl: Duration::from_millis(200),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::planted_clique(150, 0.04, 8, 17);
    upload(&mut c, "g", &g);

    // Never-existed id: "unknown".
    let (status, _, body) = c.request("GET", "/jobs/987654321", None);
    assert_eq!(status, 404);
    assert!(body.contains("unknown"), "{body}");
    assert!(!body.contains("expired"), "{body}");

    // A completed job that aged out: "expired".
    let (status, accepted) = c.post_json("/solve?async=1", r#"{"graph":"g"}"#);
    assert_eq!(status, 202);
    let id = u64_field(&accepted, "job_id");
    let t = Instant::now();
    loop {
        let (status, view) = c.get_json(&format!("/jobs/{id}"));
        if status == 404 {
            break; // TTL hit between polls
        }
        if str_field(&view, "status") == "done" {
            break;
        }
        assert!(t.elapsed() < Duration::from_secs(30), "job never finished");
        std::thread::sleep(Duration::from_millis(10));
    }
    std::thread::sleep(Duration::from_millis(400));
    let (status, _, body) = c.request("GET", &format!("/jobs/{id}"), None);
    assert_eq!(status, 404);
    assert!(body.contains("expired"), "{body}");

    // DELETE on both kinds reports the same reasons.
    let (status, _, body) = c.request("DELETE", "/jobs/987654321", None);
    assert_eq!(status, 404);
    assert!(body.contains("unknown"), "{body}");
    let (status, _, body) = c.request("DELETE", &format!("/jobs/{id}"), None);
    assert_eq!(status, 404);
    assert!(body.contains("expired"), "{body}");
    handle.stop();
}

#[test]
fn stats_reports_queue_wait_percentiles() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    let g = gen::planted_clique(150, 0.04, 8, 19);
    upload(&mut c, "g", &g);
    let (status, _) = c.post_json("/solve", r#"{"graph":"g"}"#);
    assert_eq!(status, 200);

    let (status, stats) = c.get_json("/stats");
    assert_eq!(status, 200);
    assert!(u64_field(&stats, "queue_wait_count") >= 1, "{stats:?}");
    for key in [
        "queue_wait_p50_ms",
        "queue_wait_p90_ms",
        "queue_wait_p99_ms",
    ] {
        assert!(
            stats.get(key).and_then(Json::as_f64).is_some(),
            "missing {key}: {stats:?}"
        );
    }
    handle.stop();
}
