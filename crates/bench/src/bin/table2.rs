//! Table II — end-to-end comparison: LazyMC vs. PMC-like, dOmega-LS/BS and
//! MC-BRB-like, with per-instance speedups and the median-speedup summary.
//!
//! Comparators run in *subprocesses* so a timeout can actually reclaim the
//! CPU (the paper uses a 30-minute budget and reports "T.O."; the default
//! budget here is 120 s standard / 10 s test, override with
//! `--timeout <secs>`).
//!
//! Run: `cargo run -p lazymc-bench --release --bin table2 [--test]`
//!
//! Internal: `table2 --solo <alg> <instance> [--test]` runs one solver and
//! prints `omega <n>` / `secs <t>` on stdout (used by the parent process).

use lazymc_bench::cli::{ratio, secs, CommonArgs};
use lazymc_bench::{median, time_stats, Table};
use lazymc_core::{Config, LazyMc};
use lazymc_graph::suite::Scale;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

const ALGS: [&str; 4] = ["pmc", "domega-ls", "domega-bs", "brb"];

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    if let Some(pos) = argv.iter().position(|a| a == "--solo") {
        solo(&argv[pos + 1], &argv[pos + 2]);
        return;
    }
    parent();
}

/// Child mode: run one comparator on one instance, print machine-readable
/// results, exit.
fn solo(alg: &str, instance: &str) {
    let args = CommonArgs::parse();
    let inst = lazymc_graph::suite::by_name(instance).expect("unknown instance");
    let g = inst.build(args.scale);
    let t = Instant::now();
    let clique = match alg {
        "pmc" => lazymc_baselines::pmc_like(&g),
        "domega-ls" => lazymc_baselines::domega(&g, lazymc_baselines::GapSchedule::Linear),
        "domega-bs" => lazymc_baselines::domega(&g, lazymc_baselines::GapSchedule::Binary),
        "brb" => lazymc_baselines::brb_like(&g),
        other => panic!("unknown algorithm {other:?}"),
    };
    let elapsed = t.elapsed();
    assert!(g.is_clique(&clique), "{alg} returned a non-clique");
    println!("omega {}", clique.len());
    println!("secs {}", elapsed.as_secs_f64());
}

enum SoloOutcome {
    Done { omega: usize, secs: f64 },
    Timeout,
}

/// Runs `table2 --solo` in a subprocess with a kill-on-timeout budget.
fn run_solo(alg: &str, instance: &str, scale: Scale, budget: Duration) -> SoloOutcome {
    let exe = std::env::current_exe().expect("own path");
    let mut cmd = Command::new(exe);
    cmd.arg("--solo").arg(alg).arg(instance);
    if scale == Scale::Test {
        cmd.arg("--test");
    }
    cmd.stdout(Stdio::piped()).stderr(Stdio::null());
    let mut child = cmd.spawn().expect("spawn solo");
    let start = Instant::now();
    loop {
        match child.try_wait().expect("try_wait") {
            Some(status) => {
                if !status.success() {
                    return SoloOutcome::Timeout; // treat crashes as failures
                }
                let mut out = String::new();
                use std::io::Read;
                child
                    .stdout
                    .take()
                    .expect("stdout piped")
                    .read_to_string(&mut out)
                    .expect("read solo output");
                let mut omega = 0usize;
                let mut secs = 0f64;
                for line in out.lines() {
                    if let Some(v) = line.strip_prefix("omega ") {
                        omega = v.trim().parse().unwrap_or(0);
                    }
                    if let Some(v) = line.strip_prefix("secs ") {
                        secs = v.trim().parse().unwrap_or(0.0);
                    }
                }
                return SoloOutcome::Done { omega, secs };
            }
            None => {
                if start.elapsed() > budget {
                    let _ = child.kill();
                    let _ = child.wait();
                    return SoloOutcome::Timeout;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
        }
    }
}

fn parent() {
    let args = CommonArgs::parse();
    let argv: Vec<String> = std::env::args().collect();
    let budget = argv
        .iter()
        .position(|a| a == "--timeout")
        .and_then(|i| argv.get(i + 1))
        .and_then(|s| s.parse::<u64>().ok())
        .map(Duration::from_secs)
        .unwrap_or(if args.scale == Scale::Test {
            Duration::from_secs(10)
        } else {
            Duration::from_secs(120)
        });

    let mut table = Table::new(&[
        "graph", "PMC", "sp", "dOm-LS", "sp", "dOm-BS", "sp", "MC-BRB", "sp", "LazyMC", "dev%",
        "omega",
    ]);
    let mut speedups: Vec<Vec<f64>> = vec![Vec::new(); ALGS.len()];

    for inst in args.instances() {
        let g = inst.build(args.scale);
        // LazyMC measured in-process with repetitions (it is the system
        // under test; the paper reports its deviation too).
        let (result, lazy_mean, dev) =
            time_stats(args.reps, || LazyMc::new(Config::default()).solve(&g));
        let omega = result.size();
        let lazy_secs = lazy_mean.as_secs_f64();

        let mut cells = vec![inst.name.to_string()];
        for (ai, alg) in ALGS.iter().enumerate() {
            match run_solo(alg, inst.name, args.scale, budget) {
                SoloOutcome::Done {
                    omega: base_omega,
                    secs: base_secs,
                } => {
                    assert_eq!(
                        base_omega, omega,
                        "{alg} disagrees with LazyMC on {}",
                        inst.name
                    );
                    let sp = base_secs / lazy_secs.max(1e-9);
                    speedups[ai].push(sp);
                    cells.push(format!("{base_secs:.3}"));
                    cells.push(ratio(sp));
                }
                SoloOutcome::Timeout => {
                    cells.push("T.O.".into());
                    cells.push("x".into());
                }
            }
        }
        cells.push(secs(lazy_mean));
        cells.push(format!("{dev:.1}"));
        cells.push(omega.to_string());
        table.row(cells);
    }

    // Median-speedup summary row (the paper's bottom line).
    let mut med = vec!["median".to_string()];
    for s in &speedups {
        med.push(String::new());
        med.push(if s.is_empty() {
            "x".into()
        } else {
            ratio(median(s))
        });
    }
    med.push(String::new());
    med.push(String::new());
    med.push(String::new());
    table.row(med);

    println!(
        "Table II: end-to-end runtime (seconds) and LazyMC speedups ({:?} scale, {}s timeout)",
        args.scale,
        budget.as_secs()
    );
    println!("{}", table.render());
}
