//! Command-line conventions shared by all experiment binaries.
//!
//! Every binary accepts:
//!
//! * `--test` — run on [`Scale::Test`] instances (seconds, for CI);
//! * `--instance <name>` — restrict to one suite instance;
//! * `--reps <n>` — repetitions for timed measurements (default 3).

use lazymc_graph::suite::{self, Scale, SuiteInstance};

/// Parsed common options.
pub struct CommonArgs {
    /// Selected scale.
    pub scale: Scale,
    /// Instance filter, if any.
    pub instance: Option<String>,
    /// Timing repetitions.
    pub reps: usize,
}

impl CommonArgs {
    /// Parses `std::env::args`, ignoring flags it does not know.
    pub fn parse() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut scale = Scale::Standard;
        let mut instance = None;
        let mut reps = 3usize;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--test" => scale = Scale::Test,
                "--instance" => {
                    i += 1;
                    instance = args.get(i).cloned();
                }
                "--reps" => {
                    i += 1;
                    reps = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or(reps)
                        .max(1);
                }
                _ => {}
            }
            i += 1;
        }
        CommonArgs {
            scale,
            instance,
            reps,
        }
    }

    /// The suite instances selected by the filter.
    pub fn instances(&self) -> Vec<SuiteInstance> {
        match &self.instance {
            Some(name) => suite::by_name(name)
                .map(|i| vec![i])
                .unwrap_or_else(|| panic!("unknown suite instance {name:?}")),
            None => suite::all(),
        }
    }
}

/// Formats a duration in seconds with 3 decimals, like the paper's tables.
pub fn secs(d: std::time::Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats a ratio with 2 decimals.
pub fn ratio(r: f64) -> String {
    format!("{r:.2}")
}

/// Formats a percentage with 1 decimal.
pub fn pct(r: f64) -> String {
    format!("{:.1}%", r * 100.0)
}
