//! Roaring-style compressed bitmap for `u32` vertex ids.
//!
//! The paper's related work (§VI) points at GraphMineSuite \[3\], which
//! explores *compressed bitmaps* alongside hash sets as neighbourhood-set
//! representations for clique mining. This crate provides that alternative
//! so the benchmark harness can compare all three membership backends
//! (hopscotch hash, sorted array + binary search, compressed bitmap) on
//! the same kernels.
//!
//! The layout is the classic two-level Roaring scheme:
//!
//! * keys are split into a 16-bit *chunk* (high bits) and a 16-bit *offset*;
//! * each chunk stores its offsets either as a **sorted array** (sparse:
//!   up to 4096 entries = the break-even point with a bitmap) or as a
//!   **64 KiB-bit bitmap** (dense), converting automatically on insert;
//! * chunks are kept in a sorted vector, found by binary search.
//!
//! ```
//! use lazymc_roaring::RoaringSet;
//!
//! let mut s = RoaringSet::new();
//! s.insert(3);
//! s.insert(70_000); // different chunk
//! assert!(s.contains(3) && s.contains(70_000) && !s.contains(4));
//! assert_eq!(s.len(), 2);
//! assert_eq!(s.iter().collect::<Vec<_>>(), vec![3, 70_000]);
//! ```

use lazymc_intersect::Membership;

/// Array containers convert to bitmaps beyond this cardinality (the classic
/// Roaring break-even: 4096 × 2 bytes = the bitmap's fixed 8 KiB).
const ARRAY_MAX: usize = 4096;

const BITMAP_WORDS: usize = 1024; // 65536 bits

enum Container {
    /// Sorted 16-bit offsets.
    Array(Vec<u16>),
    /// 65536-bit bitmap with an explicit cardinality.
    Bitmap {
        words: Box<[u64; BITMAP_WORDS]>,
        len: u32,
    },
}

impl Container {
    fn contains(&self, off: u16) -> bool {
        match self {
            Container::Array(a) => a.binary_search(&off).is_ok(),
            Container::Bitmap { words, .. } => words[off as usize / 64] & (1u64 << (off % 64)) != 0,
        }
    }

    /// Returns true if newly inserted.
    fn insert(&mut self, off: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&off) {
                Ok(_) => false,
                Err(i) => {
                    a.insert(i, off);
                    if a.len() > ARRAY_MAX {
                        *self = Self::array_to_bitmap(a);
                    }
                    true
                }
            },
            Container::Bitmap { words, len } => {
                let (w, b) = (off as usize / 64, off % 64);
                if words[w] & (1u64 << b) != 0 {
                    false
                } else {
                    words[w] |= 1u64 << b;
                    *len += 1;
                    true
                }
            }
        }
    }

    /// Returns true if removed.
    fn remove(&mut self, off: u16) -> bool {
        match self {
            Container::Array(a) => match a.binary_search(&off) {
                Ok(i) => {
                    a.remove(i);
                    true
                }
                Err(_) => false,
            },
            Container::Bitmap { words, len } => {
                let (w, b) = (off as usize / 64, off % 64);
                if words[w] & (1u64 << b) == 0 {
                    false
                } else {
                    words[w] &= !(1u64 << b);
                    *len -= 1;
                    // Shrink back to an array when worthwhile.
                    if (*len as usize) <= ARRAY_MAX / 2 {
                        *self = Self::bitmap_to_array(words, *len);
                    }
                    true
                }
            }
        }
    }

    fn len(&self) -> usize {
        match self {
            Container::Array(a) => a.len(),
            Container::Bitmap { len, .. } => *len as usize,
        }
    }

    fn array_to_bitmap(a: &[u16]) -> Container {
        let mut words = Box::new([0u64; BITMAP_WORDS]);
        for &off in a {
            words[off as usize / 64] |= 1u64 << (off % 64);
        }
        Container::Bitmap {
            len: a.len() as u32,
            words,
        }
    }

    fn bitmap_to_array(words: &[u64; BITMAP_WORDS], len: u32) -> Container {
        let mut a = Vec::with_capacity(len as usize);
        for (wi, &w) in words.iter().enumerate() {
            let mut w = w;
            while w != 0 {
                let b = w.trailing_zeros();
                a.push((wi * 64 + b as usize) as u16);
                w &= w - 1;
            }
        }
        Container::Array(a)
    }

    fn iter(&self) -> Box<dyn Iterator<Item = u16> + '_> {
        match self {
            Container::Array(a) => Box::new(a.iter().copied()),
            Container::Bitmap { words, .. } => Box::new(
                words
                    .iter()
                    .enumerate()
                    .flat_map(|(wi, &w)| BitIter { w, base: wi * 64 }),
            ),
        }
    }
}

struct BitIter {
    w: u64,
    base: usize,
}

impl Iterator for BitIter {
    type Item = u16;
    fn next(&mut self) -> Option<u16> {
        if self.w == 0 {
            return None;
        }
        let b = self.w.trailing_zeros() as usize;
        self.w &= self.w - 1;
        Some((self.base + b) as u16)
    }
}

/// A Roaring-style compressed set of `u32` keys.
#[derive(Default)]
pub struct RoaringSet {
    /// Sorted (chunk-key, container) pairs.
    chunks: Vec<(u16, Container)>,
    len: usize,
}

impl RoaringSet {
    /// Empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of keys stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of chunk containers (diagnostics).
    pub fn num_containers(&self) -> usize {
        self.chunks.len()
    }

    fn split(key: u32) -> (u16, u16) {
        ((key >> 16) as u16, (key & 0xFFFF) as u16)
    }

    /// Membership test.
    pub fn contains(&self, key: u32) -> bool {
        let (hi, lo) = Self::split(key);
        match self.chunks.binary_search_by_key(&hi, |&(k, _)| k) {
            Ok(i) => self.chunks[i].1.contains(lo),
            Err(_) => false,
        }
    }

    /// Inserts `key`; returns whether it was new.
    pub fn insert(&mut self, key: u32) -> bool {
        let (hi, lo) = Self::split(key);
        let idx = match self.chunks.binary_search_by_key(&hi, |&(k, _)| k) {
            Ok(i) => i,
            Err(i) => {
                self.chunks.insert(i, (hi, Container::Array(Vec::new())));
                i
            }
        };
        let added = self.chunks[idx].1.insert(lo);
        if added {
            self.len += 1;
        }
        added
    }

    /// Removes `key`; returns whether it was present.
    pub fn remove(&mut self, key: u32) -> bool {
        let (hi, lo) = Self::split(key);
        match self.chunks.binary_search_by_key(&hi, |&(k, _)| k) {
            Ok(i) => {
                let removed = self.chunks[i].1.remove(lo);
                if removed {
                    self.len -= 1;
                    if self.chunks[i].1.len() == 0 {
                        self.chunks.remove(i);
                    }
                }
                removed
            }
            Err(_) => false,
        }
    }

    /// Iterates keys in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = u32> + '_ {
        self.chunks.iter().flat_map(|(hi, c)| {
            let base = (*hi as u32) << 16;
            c.iter().map(move |lo| base | lo as u32)
        })
    }

    /// Approximate heap footprint in bytes (diagnostics: the point of the
    /// representation is compression).
    pub fn memory_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        for (_, c) in &self.chunks {
            total += std::mem::size_of::<(u16, Container)>();
            total += match c {
                Container::Array(a) => a.capacity() * 2,
                Container::Bitmap { .. } => BITMAP_WORDS * 8,
            };
        }
        total
    }
}

impl FromIterator<u32> for RoaringSet {
    fn from_iter<T: IntoIterator<Item = u32>>(iter: T) -> Self {
        let mut s = RoaringSet::new();
        for k in iter {
            s.insert(k);
        }
        s
    }
}

impl<'a> FromIterator<&'a u32> for RoaringSet {
    fn from_iter<T: IntoIterator<Item = &'a u32>>(iter: T) -> Self {
        iter.into_iter().copied().collect()
    }
}

impl Membership for RoaringSet {
    #[inline]
    fn contains_key(&self, key: u32) -> bool {
        self.contains(key)
    }
    #[inline]
    fn size(&self) -> usize {
        self.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ops() {
        let mut s = RoaringSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(1 << 20));
        assert_eq!(s.len(), 2);
        assert!(s.contains(5));
        assert!(s.contains(1 << 20));
        assert!(!s.contains(6));
        assert_eq!(s.num_containers(), 2);
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_containers(), 1, "empty chunk dropped");
    }

    #[test]
    fn array_to_bitmap_conversion_roundtrip() {
        let mut s = RoaringSet::new();
        // exceed ARRAY_MAX within one chunk
        for k in 0..(ARRAY_MAX as u32 + 100) {
            s.insert(k * 2); // spaced so they stay in chunk 0 ... 2*4196 < 65536
        }
        assert_eq!(s.len(), ARRAY_MAX + 100);
        assert_eq!(s.num_containers(), 1);
        for k in 0..(ARRAY_MAX as u32 + 100) {
            assert!(s.contains(k * 2));
            assert!(!s.contains(k * 2 + 1));
        }
        // shrink back down: removals trigger bitmap→array conversion
        for k in (0..(ARRAY_MAX as u32 + 100)).rev().take(ARRAY_MAX) {
            assert!(s.remove(k * 2));
        }
        assert_eq!(s.len(), 100);
        for k in 0..100u32 {
            assert!(s.contains(k * 2));
        }
    }

    #[test]
    fn iter_is_sorted_across_chunks() {
        let keys = [0u32, 65_535, 65_536, 1 << 24, 42, 70_000];
        let s: RoaringSet = keys.iter().collect();
        let got: Vec<u32> = s.iter().collect();
        let mut want = keys.to_vec();
        want.sort_unstable();
        assert_eq!(got, want);
    }

    #[test]
    fn dense_chunk_memory_is_bounded() {
        // a full chunk costs 8 KiB as a bitmap, not 128 KiB as an array
        let mut s = RoaringSet::new();
        for k in 0..65_536u32 {
            s.insert(k);
        }
        assert_eq!(s.len(), 65_536);
        assert!(s.memory_bytes() < 16 * 1024, "bitmap container expected");
    }

    #[test]
    fn membership_trait_works_with_kernels() {
        use lazymc_intersect::{intersect_size_gt_bool, intersect_size_gt_val};
        let a: Vec<u32> = (0..100).collect();
        let b: RoaringSet = (50u32..150).collect();
        assert_eq!(intersect_size_gt_val(&a, &b, 10), Some(50));
        assert!(intersect_size_gt_bool(&a, &b, 49, true));
        assert!(!intersect_size_gt_bool(&a, &b, 50, true));
    }
}
