//! Live-socket tests of the asynchronous job lifecycle and batch solves:
//! `POST /solve?async=1` → 202 + job id, `GET /jobs/<id>` polling, TTL
//! expiry of retained results, `DELETE /jobs/<id>` for queued jobs
//! (cancel-before-pop) and running jobs (cancel-mid-solve, which expires
//! the solve's deadline), and `POST /solve-batch` agreement with
//! sequential solves — including the one-registry-reload guarantee when
//! the batch lands on an evicted/restarted graph.

mod common;

use common::{bool_field, str_field, u64_field, upload, Client};
use lazymc_core::{Config, LazyMc};
use lazymc_graph::gen;
use lazymc_service::{serve, Json, ServiceConfig, ServiceHandle};
use std::time::{Duration, Instant};

fn start(cfg: ServiceConfig) -> ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind service")
}

/// Polls `GET /jobs/<id>` until the status satisfies `done`, failing
/// after `timeout`.
fn poll_job(client: &mut Client, id: u64, timeout: Duration, done: impl Fn(&str) -> bool) -> Json {
    let t = Instant::now();
    loop {
        let (status, view) = client.get_json(&format!("/jobs/{id}"));
        assert_eq!(status, 200, "job {id} vanished while polling: {view:?}");
        if done(str_field(&view, "status")) {
            return view;
        }
        assert!(
            t.elapsed() < timeout,
            "job {id} stuck in {:?} after {timeout:?}",
            str_field(&view, "status")
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn async_job_lifecycle_result_and_ttl_expiry() {
    let handle = start(ServiceConfig {
        job_ttl: Duration::from_millis(400),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::planted_clique(200, 0.04, 9, 3);
    let expected = LazyMc::new(Config::default()).solve(&g).size();
    upload(&mut c, "pc", &g);

    // Submit asynchronously: 202 with a pollable job id.
    let (status, accepted) = c.post_json("/solve?async=1", r#"{"graph":"pc"}"#);
    assert_eq!(status, 202, "async submit: {accepted:?}");
    let id = u64_field(&accepted, "job_id");
    assert_eq!(str_field(&accepted, "status"), "queued");
    assert_eq!(str_field(&accepted, "poll"), format!("/jobs/{id}"));

    // Poll to completion; the retained result matches a direct solve.
    let view = poll_job(&mut c, id, Duration::from_secs(30), |s| s == "done");
    let result = view.get("result").expect("retained result");
    assert_eq!(u64_field(result, "omega") as usize, expected);
    assert!(bool_field(result, "exact"));
    assert!(!bool_field(result, "cancelled"));
    assert_eq!(u64_field(result, "job_id"), id);
    assert!(c.metric("lazymc_jobs_async_total") >= 1);

    // Cancelling a finished job is a 409, not a silent no-op.
    let (status, _) = c.delete_json(&format!("/jobs/{id}"));
    assert_eq!(status, 409, "done jobs cannot be cancelled");

    // After the TTL the result is gone — 404, and the eviction is counted.
    std::thread::sleep(Duration::from_millis(600));
    let (status, _) = c.get_json(&format!("/jobs/{id}"));
    assert_eq!(status, 404, "expired job must be unpollable");
    assert!(c.metric("lazymc_jobs_expired_total") >= 1);

    // Unknown ids and junk ids are 404s.
    let (status, _) = c.get_json("/jobs/999999");
    assert_eq!(status, 404);
    let (status, _) = c.get_json("/jobs/not-a-number");
    assert_eq!(status, 404);

    // The async body flag works like the query parameter.
    let (status, accepted) =
        c.post_json("/solve", r#"{"graph":"pc","async":true,"no_cache":true}"#);
    assert_eq!(status, 202, "body async flag: {accepted:?}");
    poll_job(
        &mut c,
        u64_field(&accepted, "job_id"),
        Duration::from_secs(30),
        |s| s == "done",
    );
    handle.stop();
}

#[test]
fn cancel_before_pop_skips_the_queued_job() {
    // One solver worker: job A occupies it, job B sits queued.
    let handle = start(ServiceConfig {
        solver_workers: 1,
        workers: 4,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    let g = gen::gnp(300, 0.5, 7); // seconds-scale in debug builds
    upload(&mut c, "slow", &g);

    let (status, a) = c.post_json("/solve?async=1", r#"{"graph":"slow","no_cache":true}"#);
    assert_eq!(status, 202);
    let a_id = u64_field(&a, "job_id");
    let (status, b) = c.post_json("/solve?async=1", r#"{"graph":"slow","no_cache":true}"#);
    assert_eq!(status, 202);
    let b_id = u64_field(&b, "job_id");

    // B must still be queued (A holds the only solver).
    let (_, view) = c.get_json(&format!("/jobs/{b_id}"));
    assert_eq!(str_field(&view, "status"), "queued", "{view:?}");

    // Cancel it before any worker pops it.
    let (status, cancelled) = c.delete_json(&format!("/jobs/{b_id}"));
    assert_eq!(status, 200, "{cancelled:?}");
    assert!(bool_field(&cancelled, "cancelled"));
    assert_eq!(str_field(&cancelled, "was"), "queued");
    let (_, view) = c.get_json(&format!("/jobs/{b_id}"));
    assert_eq!(str_field(&view, "status"), "cancelled");
    assert_eq!(
        view.get("result"),
        Some(&Json::Null),
        "never ran, no result"
    );

    // Cancelling again is a 409 (already cancelled).
    let (status, _) = c.delete_json(&format!("/jobs/{b_id}"));
    assert_eq!(status, 409);

    // Cancel A too (once it is running) so the test does not wait out
    // the solve; both cancellations are visible in /metrics.
    poll_job(&mut c, a_id, Duration::from_secs(30), |s| s == "running");
    let (status, cancelled) = c.delete_json(&format!("/jobs/{a_id}"));
    assert_eq!(status, 200);
    assert_eq!(str_field(&cancelled, "was"), "running");
    poll_job(&mut c, a_id, Duration::from_secs(30), |s| s == "cancelled");
    assert_eq!(c.metric("lazymc_jobs_cancelled_http_total"), 2);
    // The cancelled-while-queued job is reaped at pop time, never run.
    let t = Instant::now();
    while c.metric("lazymc_jobs_cancelled_total") < 1 {
        assert!(t.elapsed() < Duration::from_secs(30), "B was never reaped");
        std::thread::sleep(Duration::from_millis(20));
    }
    assert_eq!(c.metric("lazymc_solves_total"), 1, "only A ever executed");
    handle.stop();
}

#[test]
fn cancel_mid_solve_interrupts_via_the_deadline() {
    let handle = start(ServiceConfig {
        solver_workers: 1,
        workers: 4,
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    // Unbudgeted and ~seconds even in release: the cancel must be what
    // stops it.
    let g = gen::gnp(350, 0.5, 7);
    upload(&mut c, "hard", &g);

    let (status, a) = c.post_json("/solve?async=1", r#"{"graph":"hard","no_cache":true}"#);
    assert_eq!(status, 202);
    let id = u64_field(&a, "job_id");
    poll_job(&mut c, id, Duration::from_secs(30), |s| s == "running");

    let cancelled_at = Instant::now();
    let (status, response) = c.delete_json(&format!("/jobs/{id}"));
    assert_eq!(status, 200, "{response:?}");
    assert_eq!(str_field(&response, "was"), "running");

    // The deadline trip stops the solve at its next neighbourhood poll —
    // far sooner than the full search would take.
    let view = poll_job(&mut c, id, Duration::from_secs(30), |s| s == "cancelled");
    let interrupted_after = cancelled_at.elapsed();
    let result = view
        .get("result")
        .expect("cancelled jobs keep their partial result");
    assert!(bool_field(result, "cancelled"));
    assert!(
        bool_field(result, "truncated"),
        "an interrupted solve must report truncation: {result:?}"
    );
    assert!(
        interrupted_after < Duration::from_secs(10),
        "cancellation took {interrupted_after:?}"
    );
    assert!(c.metric("lazymc_solves_truncated_total") >= 1);
    handle.stop();
}

#[test]
fn batch_matches_sequential_solves_slot_for_slot() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    let g1 = gen::planted_clique(150, 0.05, 8, 3);
    let g2 = gen::complete(10);
    upload(&mut c, "g1", &g1);
    upload(&mut c, "g2", &g2);

    // Mixed batch: two graphs interleaved, an unknown graph, an invalid
    // slot, and a repeat — slot order must be preserved in the response.
    let batch = r#"{"requests":[
        {"graph":"g1","threads":1,"no_cache":true},
        {"graph":"g2","threads":1,"no_cache":true},
        {"graph":"ghost","threads":1},
        {"graph":"g1","priority":99},
        {"graph":"g1","threads":1,"no_cache":true}
    ]}"#;
    let (status, response) = c.post_json("/solve-batch", batch);
    assert_eq!(status, 200, "batch failed: {response:?}");
    assert_eq!(u64_field(&response, "count"), 5);
    let results = match response.get("results") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("bad results {other:?}"),
    };

    // Sequential reference runs (threads=1 keeps witnesses bit-identical).
    let (_, seq1) = c.post_json("/solve", r#"{"graph":"g1","threads":1,"no_cache":true}"#);
    let (_, seq2) = c.post_json("/solve", r#"{"graph":"g2","threads":1,"no_cache":true}"#);
    for (slot, seq) in [(0usize, &seq1), (1, &seq2), (4, &seq1)] {
        assert_eq!(
            u64_field(&results[slot], "omega"),
            u64_field(seq, "omega"),
            "slot {slot} disagrees with the sequential solve"
        );
        assert_eq!(
            results[slot].get("clique"),
            seq.get("clique"),
            "slot {slot} witness differs from the sequential solve"
        );
        assert!(bool_field(&results[slot], "exact"));
    }
    assert_eq!(
        u64_field(&results[2], "status"),
        404,
        "unknown graph slot: {:?}",
        results[2]
    );
    assert!(results[2].get("error").is_some());
    assert_eq!(u64_field(&results[3], "status"), 400, "invalid slot");

    // Bare-array form, served from cache where possible.
    let (status, response) = c.post_json("/solve-batch", r#"[{"graph":"g2","threads":1}]"#);
    assert_eq!(status, 200);
    assert_eq!(u64_field(&response, "count"), 1);

    // Degenerate bodies.
    let (status, _) = c.post_json("/solve-batch", r#"{"requests":[]}"#);
    assert_eq!(status, 400, "empty batch");
    let (status, _) = c.post_json("/solve-batch", r#"{"requests":"nope"}"#);
    assert_eq!(status, 400);

    assert!(c.metric("lazymc_batches_total") >= 2);
    assert!(c.metric("lazymc_batch_jobs_total") >= 6);
    handle.stop();
}

/// The co-location guarantee: a batch of M requests against a graph that
/// is on disk but not resident triggers exactly ONE snapshot reload, not
/// M — and still agrees with sequential solves.
#[test]
fn batch_on_restarted_graph_reloads_registry_once() {
    let dir = std::env::temp_dir().join(format!("lazymc_batch_reload_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let g = gen::planted_clique(180, 0.05, 9, 11);

    // Daemon #1 uploads durably, then dies.
    {
        let first = start(ServiceConfig {
            data_dir: Some(dir.to_str().unwrap().to_string()),
            ..ServiceConfig::default()
        });
        let mut c = Client::connect(first.addr());
        upload(&mut c, "pc", &g);
        first.stop();
    }

    // Daemon #2: nothing resident; a 6-slot batch must reload once.
    let second = start(ServiceConfig {
        data_dir: Some(dir.to_str().unwrap().to_string()),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(second.addr());
    assert_eq!(c.metric("lazymc_snapshot_lazy_loads_total"), 0);
    let batch = r#"{"requests":[
        {"graph":"pc","threads":1,"no_cache":true},
        {"graph":"pc","threads":1,"no_cache":true},
        {"graph":"pc","threads":1,"no_cache":true},
        {"graph":"pc","threads":1,"no_cache":true},
        {"graph":"pc","threads":1,"no_cache":true},
        {"graph":"pc","threads":1,"no_cache":true}
    ]}"#;
    let (status, response) = c.post_json("/solve-batch", batch);
    assert_eq!(status, 200, "{response:?}");
    let results = match response.get("results") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("bad results {other:?}"),
    };
    assert_eq!(results.len(), 6);
    assert_eq!(
        c.metric("lazymc_snapshot_lazy_loads_total"),
        1,
        "6 batch slots on one graph must decode the snapshot exactly once"
    );
    assert_eq!(c.metric("lazymc_core_computes_total"), 0, "no re-core");

    // And the answers agree with a sequential solve on the same daemon.
    let (_, seq) = c.post_json("/solve", r#"{"graph":"pc","threads":1,"no_cache":true}"#);
    for (slot, r) in results.iter().enumerate() {
        assert_eq!(
            u64_field(r, "omega"),
            u64_field(&seq, "omega"),
            "slot {slot}"
        );
        assert_eq!(r.get("clique"), seq.get("clique"), "slot {slot}");
    }
    second.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
