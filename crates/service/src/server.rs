//! The daemon: configuration, shared state, routing, and the worker
//! pools behind the event-driven I/O path.
//!
//! Three kinds of threads share one [`ServiceState`]:
//!
//! * **Reactor threads** (`--io-threads`, see [`crate::reactor`]) own
//!   every socket: nonblocking accept, incremental request parsing,
//!   buffered writes. Cheap introspection endpoints (`/healthz`,
//!   `/stats`, `/metrics`, `/graphs`, `/jobs/<id>`) are answered *on* the
//!   reactor in microseconds, which is why a saturated solver pool can no
//!   longer make a health probe queue.
//! * **Request workers** (`--workers`) run handlers that parse bodies or
//!   may touch disk (uploads, solve submission with its lazy registry
//!   reload, batch fan-out). They never wait for a solve.
//! * **Scheduler workers** (`--solver-workers` sizes the pool) belong to
//!   one machine-wide [`lazymc_sched::Pool`]. The bounded priority queue
//!   is plugged in as the pool's [`JobSource`]: an idle worker pulls the
//!   most urgent [`SolveJob`] (priority desc, deadline-earliest, FIFO) and
//!   runs the whole solve as a root task; the solve's own subtree scopes
//!   land in the *same* pool, so idle workers steal into a running solve
//!   instead of sitting behind a per-job thread team. Results flow back
//!   through the [`JobStore`](crate::jobs::JobStore): to the waiting
//!   connection (sync), into the store (`?async=1`), or into a batch slot.
//!
//! A solve request therefore costs: parse → registry lookup → result-cache
//! probe → (miss) enqueue with a [`Deadline`] that starts ticking at
//! enqueue → a pool worker takes it, runs `solve_prepared_on` against the
//! shared CSR + coreness → completion. A full queue never blocks anything:
//! the client gets `429` with `Retry-After` and decides for itself.
//!
//! Endpoints: `POST /graphs`, `POST /solve[?async=1]`, `POST /solve-batch`,
//! `GET /graphs`, `GET /stats`, `GET /stats/<name>`, `GET /jobs/<id>`,
//! `DELETE /jobs/<id>`, `DELETE /graphs/<name>`, `GET /healthz`,
//! `GET /readyz` (readiness; 503 while draining), `GET /metrics`
//! (Prometheus text format).

use crate::conn::{Request, Response};
use crate::health::Health;
use crate::jobs::{
    BatchAggregator, CancelOutcome, JobMeta, JobSink, JobState, JobStore, SolveReply,
};
use crate::journal::{Journal, ReplayedJob};
use crate::obs::{phase_micros, ServiceObs, SolveObservation};
use crate::overload::{DrainRate, MemLevel, MemWatermarks, Shedder};
use crate::plock;
use crate::protocol::{Json, LoadRequest, SolveRequest};
use crate::queue::{JobQueue, JobTicket, Popped};
use crate::reactor::{self, ReactorShared, Responder};
use crate::registry::{CachedSolve, GraphEntry, Registry, ResultCache};
use lazymc_core::{Deadline, LazyMc, MetricsSnapshot, PhaseTimes, SolveProgress};
use lazymc_graph::{io as graph_io, suite, CsrGraph, GraphAccess};
use lazymc_obs::LogSink;
use lazymc_sched::{Job as SchedJob, JobSource, Pool as SchedPool, TaskKey, TaskMeta};
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, Weak};
use std::time::{Duration, Instant};

/// Most requests accepted in one `POST /solve-batch` body.
const MAX_BATCH: usize = 256;

/// Tunables of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Listen address, e.g. `127.0.0.1:7171` (port 0 picks a free port).
    pub addr: String,
    /// Reactor (I/O) threads. 0 means 1 — a single epoll loop drives
    /// thousands of connections; add threads only past that.
    pub io_threads: usize,
    /// Size of the request worker pool (body parsing, uploads, solve
    /// submission). 0 means the machine's available parallelism, capped
    /// at 8.
    pub workers: usize,
    /// Size of the solver pool. 0 means "same as `workers`". Fewer solver
    /// threads than request workers turns the job queue into a real
    /// backpressure point (useful under heavy load and in tests).
    pub solver_workers: usize,
    /// Most simultaneously open connections; beyond it, accepts are
    /// answered `503` and closed. 0 means 1024.
    pub conn_limit: usize,
    /// Resident-graph capacity of the registry (LRU beyond that).
    pub max_graphs: usize,
    /// Pending-job capacity; beyond it, `POST /solve` gets 429.
    pub queue_capacity: usize,
    /// Result-cache budget in accounted entry bytes (keys + witnesses).
    pub result_cache_bytes: usize,
    /// Result-cache entry lifetime (`None` = no expiry).
    pub result_cache_ttl: Option<Duration>,
    /// How long a completed async job's result stays pollable.
    pub job_ttl: Duration,
    /// Byte budget for retained async-job results (oldest evicted first).
    pub job_store_bytes: usize,
    /// Largest accepted request body.
    pub max_body_bytes: usize,
    /// Aggregate budget for request bytes buffered in userspace across
    /// ALL connections. Beyond it, connections already holding a
    /// buffer's worth stop reading until the budget frees (they either
    /// resume or hit the 408 progress timeout) — so many concurrent
    /// slow large-body uploads are bounded by this, not by
    /// `conn_limit × max_body_bytes`.
    pub max_buffered_bytes: usize,
    /// Progress timeout per connection: a request that stalls mid-receive
    /// longer than this gets `408`; an idle keep-alive connection is
    /// closed silently.
    pub read_timeout: Duration,
    /// Directory for durable graph snapshots (`.lmcs`). `None` keeps the
    /// registry memory-only (uploads die with the process).
    pub data_dir: Option<String>,
    /// Snapshot size (bytes) at or above which graphs are served zero-copy
    /// from an `mmap` of the snapshot file instead of a heap decode. `0`
    /// maps everything; `u64::MAX` effectively disables mapping.
    pub mmap_threshold_bytes: u64,
    /// Server-side budget cap, milliseconds. Requested budgets are clamped
    /// to it and *unbudgeted* requests default to it, so a single client
    /// cannot pin a solver with an open-ended solve. `None` preserves the
    /// old behaviour (no cap, no default).
    pub max_budget_ms: Option<u64>,
    /// `SO_SNDBUF` request for accepted sockets (`None` = kernel default).
    /// Mostly a test hook: tiny buffers force the partial-write path.
    pub so_sndbuf: Option<usize>,
    /// Emit one structured JSON log line per request and per solve to
    /// stdout (`--log-json`). Superseded by `log_sink` when set.
    pub log_json: bool,
    /// Completed solves whose total (parse + wait + solve + serialize)
    /// reaches this many milliseconds enter the `GET /debug/slow` log.
    pub slow_query_ms: u64,
    /// How many slow solves `GET /debug/slow` retains (keep-the-worst).
    pub slow_log_len: usize,
    /// Explicit log destination; overrides `log_json`. Tests use
    /// `LogSink::capture()` to assert on emitted lines.
    pub log_sink: Option<LogSink>,
    /// Queue-delay target for the CoDel-style shedding controller,
    /// milliseconds. While observed queue waits stay above it for a full
    /// controller interval, lowest-priority admissions are refused with
    /// `503 + Retry-After` (derived from the observed drain rate) instead
    /// of letting every queued job's latency grow without bound. `None`
    /// disables shedding.
    pub queue_delay_target_ms: Option<u64>,
    /// Live-heap budget for the memory watermark controller, bytes.
    /// Above 80 % (soft): uploads are rejected 503 and `/healthz`
    /// degrades. At 100 % (hard): the lowest-priority running solve is
    /// cancelled through the abort machinery. Only effective in binaries
    /// that install the counting allocator (the `lazymc` CLI does);
    /// elsewhere it is reported as untracked and never enforced.
    pub max_memory_bytes: Option<u64>,
    /// How long [`ServiceHandle::wait`] lets a drain run before giving
    /// up on in-flight work. Queued jobs that miss the window stay in the
    /// journal and replay on the next boot — timeout never loses them.
    pub drain_timeout: Duration,
    /// Background integrity-scrubber cadence: every interval, snapshot
    /// checksums are re-verified end-to-end (bit rot is quarantined) and
    /// journal frame CRCs are re-walked. `None` disables; without a
    /// `--data-dir` there is nothing to scrub either way.
    pub scrub_interval: Option<Duration>,
    /// Handle SIGTERM/SIGINT via a signalfd on reactor 0, turning them
    /// into a graceful drain instead of process death. The `lazymc serve`
    /// binary sets this; embedded/test daemons default to leaving process
    /// signal disposition alone.
    pub handle_signals: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            addr: "127.0.0.1:7171".into(),
            io_threads: 0,
            workers: 0,
            solver_workers: 0,
            conn_limit: 0,
            max_graphs: 8,
            queue_capacity: 64,
            result_cache_bytes: 8 << 20,
            result_cache_ttl: Some(Duration::from_secs(3600)),
            job_ttl: Duration::from_secs(600),
            job_store_bytes: 16 << 20,
            max_body_bytes: 64 << 20,
            max_buffered_bytes: 256 << 20,
            read_timeout: Duration::from_secs(30),
            data_dir: None,
            mmap_threshold_bytes: crate::registry::DEFAULT_MMAP_THRESHOLD,
            max_budget_ms: None,
            so_sndbuf: None,
            log_json: false,
            slow_query_ms: 500,
            slow_log_len: 32,
            log_sink: None,
            queue_delay_target_ms: None,
            max_memory_bytes: None,
            drain_timeout: Duration::from_secs(10),
            scrub_interval: Some(Duration::from_secs(60)),
            handle_signals: false,
        }
    }
}

impl ServiceConfig {
    pub(crate) fn effective_workers(&self) -> usize {
        // Request workers parse bodies and touch disk, not CPUs-for-hours;
        // an explicit `--workers` is honored verbatim (the compute-oriented
        // Config::thread_cap clamp applies to *solver* threads only).
        if self.workers > 0 {
            self.workers
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(2)
                .clamp(2, 8)
        }
    }

    pub(crate) fn effective_solver_workers(&self) -> usize {
        if self.solver_workers > 0 {
            // Solver workers are compute threads: the system-wide clamp
            // (Config::thread_cap) applies, same as every other solver
            // thread request — the pool-size and per-job clamps used to
            // disagree.
            lazymc_core::Config::clamp_threads(self.solver_workers).max(1)
        } else {
            self.effective_workers()
                .min(lazymc_core::Config::thread_cap())
        }
    }

    pub(crate) fn effective_io_threads(&self) -> usize {
        self.io_threads.clamp(1, 16).max(1)
    }

    pub(crate) fn effective_conn_limit(&self) -> usize {
        if self.conn_limit > 0 {
            self.conn_limit
        } else {
            1024
        }
    }

    /// Largest intra-solve thread *width* one job may request: the
    /// scheduler pool's capacity. With one machine-wide pool, per-job
    /// widths no longer multiply across solver workers — a width is how
    /// many pool workers a job's scopes may recruit at once, and the pool
    /// itself bounds the total thread count — so the old static share
    /// (cap ÷ pool size) is gone. A lone job on an idle daemon now runs
    /// at the machine's full parallelism; under load, urgency decides who
    /// gets the workers.
    pub fn max_job_threads(&self) -> usize {
        self.effective_solver_workers().max(1)
    }
}

/// One queued solve. Formatting facts (graph name, clamp flag) live in
/// the job's [`JobStore`] record; the payload carries only what the
/// solver needs.
pub(crate) struct SolveJob {
    entry: Arc<GraphEntry>,
    config: lazymc_core::Config,
    /// Started ticking at enqueue: queue wait spends the budget too.
    /// Shared with the job record so `DELETE /jobs/<id>` can expire it
    /// mid-solve.
    deadline: Arc<Deadline>,
    /// `Some(canonical_key)` when the result may be cached afterwards.
    cache_key: Option<String>,
    enqueued: Instant,
}

/// Counters the daemon exports beyond the solver's own.
#[derive(Default)]
pub struct ServiceMetrics {
    pub solves_total: AtomicU64,
    pub solves_truncated_total: AtomicU64,
    pub solver_panics_total: AtomicU64,
    pub requests_total: AtomicU64,
    pub bad_requests_total: AtomicU64,
    // Reactor gauges/counters (`lazymc_http_*` in /metrics).
    pub open_connections: AtomicU64,
    pub conns_accepted_total: AtomicU64,
    pub conns_rejected_total: AtomicU64,
    pub read_stalls_total: AtomicU64,
    pub write_stalls_total: AtomicU64,
    pub request_timeouts_total: AtomicU64,
    /// Request bytes currently buffered in userspace across all
    /// connections (gauge; bounded by `max_buffered_bytes`).
    pub buffered_bytes: AtomicU64,
    // Batch accounting.
    pub batches_total: AtomicU64,
    pub batch_jobs_total: AtomicU64,
    /// Queued jobs reaped at pop because their budget had fully expired
    /// while they waited (dead on arrival; never handed to the solver).
    pub jobs_doa_total: AtomicU64,
    // Background integrity scrubber.
    pub scrub_passes_total: AtomicU64,
    pub scrub_corruptions_total: AtomicU64,
}

/// Everything the worker pools share.
pub struct ServiceState {
    pub registry: Registry,
    pub results: ResultCache,
    pub(crate) queue: JobQueue<SolveJob>,
    pub jobs: JobStore,
    pub metrics: ServiceMetrics,
    /// Histograms, tracing sink and the slow-query log (see [`crate::obs`]).
    pub obs: ServiceObs,
    /// Handle into the machine-wide scheduler pool: job admission
    /// (`notify_source`), capacity queries, and `/metrics` snapshots.
    pub sched: lazymc_core::SchedHandle,
    /// The pool itself, held so shutdown can join its workers. `None`
    /// after [`ServiceHandle::stop`] takes it.
    sched_pool: Mutex<Option<SchedPool>>,
    core_totals: Mutex<MetricsSnapshot>,
    /// Degraded-health registry: non-fatal component failures (snapshot
    /// writes, journal appends) surface here instead of as 500s.
    pub health: Arc<Health>,
    /// Crash-safe job journal (when `--data-dir` is set): admits are
    /// fsynced before a job becomes poppable, completions erase them, and
    /// boot replays whatever is left (see [`crate::journal`]).
    pub journal: Option<Journal>,
    /// Completion-rate estimator; every `Retry-After` the daemon emits
    /// (queue full, shed, connection limit) is derived from it.
    pub drain_rate: DrainRate,
    /// CoDel-style admission shedder on observed queue wait.
    pub shedder: Shedder,
    /// Soft/hard live-heap watermarks (`--max-memory-bytes`).
    pub mem: MemWatermarks,
    /// Set once a drain begins (SIGTERM via signalfd, or
    /// [`ServiceHandle::begin_drain`]): the listener closes, `/readyz`
    /// flips to 503, keep-alive responses carry `Connection: close`, and
    /// in-flight work runs to completion.
    draining: AtomicBool,
    started: Instant,
    pub(crate) next_conn_token: AtomicU64,
}

impl ServiceState {
    /// Builds the shared state; the second return is the journal's list
    /// of jobs admitted before a crash but never completed, which
    /// [`serve`] re-enqueues once the scheduler source is registered.
    fn new(cfg: &ServiceConfig) -> std::io::Result<(ServiceState, Vec<ReplayedJob>)> {
        let health = Arc::new(Health::new());
        let store = match &cfg.data_dir {
            Some(dir) => Some(Arc::new(crate::persist::SnapshotStore::open(dir)?)),
            None => None,
        };
        let (journal, replayed) = match &cfg.data_dir {
            Some(dir) => {
                let (journal, replayed) = Journal::open(std::path::Path::new(dir))?;
                (Some(journal), replayed)
            }
            None => (None, Vec::new()),
        };
        let pool = SchedPool::new(cfg.effective_solver_workers());
        let sched = pool.handle();
        let registry = Registry::with_store_health(cfg.max_graphs, store, Some(health.clone()));
        registry.set_mmap_threshold(cfg.mmap_threshold_bytes);
        let state = ServiceState {
            registry,
            results: ResultCache::new(cfg.result_cache_bytes, cfg.result_cache_ttl),
            queue: JobQueue::new(cfg.queue_capacity),
            jobs: JobStore::new(cfg.job_ttl, cfg.job_store_bytes),
            metrics: ServiceMetrics::default(),
            obs: ServiceObs::new(
                cfg.log_sink.clone().unwrap_or(if cfg.log_json {
                    LogSink::Stdout
                } else {
                    LogSink::Null
                }),
                cfg.slow_query_ms,
                cfg.slow_log_len.max(1),
            ),
            sched,
            sched_pool: Mutex::new(Some(pool)),
            core_totals: Mutex::new(MetricsSnapshot::default()),
            health,
            journal,
            drain_rate: DrainRate::new(),
            shedder: Shedder::new(cfg.queue_delay_target_ms.map(Duration::from_millis)),
            mem: MemWatermarks::new(cfg.max_memory_bytes),
            draining: AtomicBool::new(false),
            started: Instant::now(),
            next_conn_token: AtomicU64::new(reactor::FIRST_CONN_TOKEN),
        };
        Ok((state, replayed))
    }

    /// Flips the daemon into drain mode. Idempotent; callable from any
    /// thread (reactor 0 calls it when the signalfd fires).
    pub fn begin_drain(&self) {
        if !self.draining.swap(true, Ordering::SeqCst) {
            lazymc_chaos::point!("drain.begin");
            eprintln!(
                "lazymc-service: drain started (listener closing; in-flight and journaled work will settle)"
            );
        }
    }

    pub fn is_draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }
}

/// Appends a job-completion record; an append failure disables the
/// journal (memory-only from here) and flips the degraded health state.
fn journal_complete(state: &ServiceState, id: u64) {
    if let Some(journal) = &state.journal {
        if let Err(e) = journal.complete(id) {
            state
                .health
                .degrade("journal", format!("journal append failed: {e}"));
        }
    }
}

/// The scheduler's view of the service job queue: `peek` reports the
/// head's urgency key, `take` pops the job and wraps the whole solve as a
/// root task. A `Weak` back-reference keeps the source from pinning the
/// state alive after shutdown (the pool outlives nothing it feeds).
struct JobFeed {
    state: Weak<ServiceState>,
}

impl JobSource for JobFeed {
    fn peek(&self) -> Option<TaskKey> {
        let state = self.state.upgrade()?;
        let (priority, deadline, seq) = state.queue.peek_key()?;
        Some(TaskKey::new(priority, deadline, seq))
    }

    fn take(&self) -> Option<SchedJob> {
        let state = self.state.upgrade()?;
        let popped = state.queue.try_pop()?;
        let key = TaskKey::new(popped.priority, popped.deadline, popped.seq);
        Some(SchedJob {
            key,
            run: Box::new(move || run_solve_job(&state, popped)),
        })
    }
}

/// A running daemon. Dropping the handle leaves it running; call
/// [`ServiceHandle::stop`] for an orderly shutdown.
pub struct ServiceHandle {
    addr: SocketAddr,
    state: Arc<ServiceState>,
    shutdown: Arc<AtomicBool>,
    reactors: Vec<Arc<ReactorShared>>,
    threads: Vec<std::thread::JoinHandle<()>>,
    drain_timeout: Duration,
}

impl ServiceHandle {
    /// The bound address (resolves port 0 to the actual port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared state, exposed for tests and embedders.
    pub fn state(&self) -> &ServiceState {
        &self.state
    }

    /// Starts a graceful drain programmatically — exactly what SIGTERM
    /// does when `handle_signals` is set: `/readyz` flips to 503, the
    /// listener closes, keep-alive connections get `Connection: close`,
    /// and admitted work keeps running. Follow with [`ServiceHandle::wait`]
    /// then [`ServiceHandle::stop`].
    pub fn begin_drain(&self) {
        self.state.begin_drain();
        for r in &self.reactors {
            r.notify();
        }
    }

    /// Blocks until the daemon should exit: first until a drain begins
    /// (SIGTERM or [`ServiceHandle::begin_drain`]) or `stop` was called
    /// from another handle, then until every admitted job has settled or
    /// `drain_timeout` elapses. Jobs that miss the window are still in
    /// the journal — the next boot replays them, so a timed-out drain
    /// degrades to a crash-consistent exit, never a lossy one.
    pub fn wait(&self) {
        while !self.state.is_draining() && !self.shutdown.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_millis(20));
        }
        let drain_start = Instant::now();
        while (self.state.queue.depth() > 0
            || self.state.jobs.jobs_inflight.load(Ordering::Relaxed) > 0)
            && drain_start.elapsed() < self.drain_timeout
        {
            self.state.sched.notify_source();
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    /// Stops accepting, severs open connections, drains the queue, joins
    /// every worker — including the scheduler pool's.
    pub fn stop(mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.state.queue.close();
        for r in &self.reactors {
            r.notify();
        }
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
        // Drain semantics: jobs admitted before stop still run. Reactors
        // are gone, so nothing new arrives; wait (bounded) for the pool to
        // empty the queue and finish in-flight solves, then join it.
        // `Pool::shutdown` itself waits for whatever is mid-run.
        let drain_start = Instant::now();
        while (self.state.queue.depth() > 0
            || self.state.jobs.jobs_inflight.load(Ordering::Relaxed) > 0)
            && drain_start.elapsed() < Duration::from_secs(10)
        {
            self.state.sched.notify_source();
            std::thread::sleep(Duration::from_millis(2));
        }
        if let Some(mut pool) = plock(&self.state.sched_pool).take() {
            pool.shutdown();
        }
    }
}

/// A parsed request plus the responder owed its answer, in flight to the
/// request worker pool.
pub(crate) struct ReqWork {
    pub request: Request,
    pub responder: Responder,
}

/// How the reactor's router settled a request.
pub(crate) enum Dispatched {
    /// Answer now, on the reactor thread.
    Ready(Response),
    /// Someone else (request worker, solver) owns the responder.
    Pending,
}

/// Binds `cfg.addr` and spawns the daemon's threads. Returns immediately.
pub fn serve(cfg: ServiceConfig) -> std::io::Result<ServiceHandle> {
    let listener = TcpListener::bind(&cfg.addr)?;
    let addr = listener.local_addr()?;

    // SIGTERM/SIGINT → graceful drain: the signals must be blocked
    // BEFORE any thread exists (the scheduler pool inside
    // ServiceState::new, the workers, the housekeeper) — every thread
    // inherits this mask, and one unmasked thread is enough for a
    // delivered SIGTERM to kill the whole process instead of surfacing
    // as readability on the signalfd owned by reactor 0.
    let mut signal = if cfg.handle_signals {
        match lazymc_netio::SignalFd::for_shutdown() {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!(
                    "lazymc-service: signalfd unavailable ({e}); SIGTERM will kill instead of drain"
                );
                None
            }
        }
    } else {
        None
    };

    let (state, replayed) = ServiceState::new(&cfg)?;
    let state = Arc::new(state);
    let shutdown = Arc::new(AtomicBool::new(false));
    let mut threads = Vec::new();

    // Fault injection from the environment (debug builds or the `armed`
    // feature; a no-op constant in plain release builds). Armed here so
    // the real binary honors LAZYMC_CHAOS without CLI plumbing.
    match lazymc_chaos::arm_from_env() {
        Some(Ok(n)) => eprintln!(
            "lazymc-service: chaos armed from ${}: {n} point(s)",
            lazymc_chaos::ENV_VAR
        ),
        Some(Err(e)) => eprintln!("lazymc-service: ignoring ${}: {e}", lazymc_chaos::ENV_VAR),
        None => {}
    }

    // No dedicated solver threads: the machine-wide scheduler pool (built
    // inside ServiceState::new) pulls jobs straight from the queue. The
    // source is registered here because it needs a Weak to the Arc.
    state.sched.set_source(Arc::new(JobFeed {
        state: Arc::downgrade(&state),
    }));

    // Crash recovery: re-enqueue journaled jobs before the reactors start
    // accepting, so recovered work is ahead of new traffic in the queue.
    replay_journal(&state, &cfg, replayed);

    // Request worker pool. The channel's senders live in the reactors;
    // when the reactors exit at shutdown, the channel closes and the
    // workers drain out.
    let (work_tx, work_rx) = mpsc::channel::<ReqWork>();
    let work_rx = Arc::new(Mutex::new(work_rx));
    for i in 0..cfg.effective_workers() {
        let state = state.clone();
        let cfg = cfg.clone();
        let work_rx = work_rx.clone();
        threads.push(
            std::thread::Builder::new()
                .name(format!("lazymc-req-{i}"))
                .spawn(move || loop {
                    let next = { plock(&work_rx).recv() };
                    match next {
                        Ok(work) => {
                            // A panicking handler must not shrink the pool;
                            // the dropped Responder answers its connection
                            // with a 500 (see ResponderInner::drop).
                            let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                                handle_heavy(&state, &cfg, work)
                            }));
                        }
                        Err(_) => break,
                    }
                })?,
        );
    }

    // Housekeeping: memory-watermark enforcement, journal self-heal
    // re-probes and the background integrity scrubber share one
    // low-duty-cycle thread (all three are periodic and none may block
    // the request path).
    {
        let state = state.clone();
        let shutdown = shutdown.clone();
        let scrub_interval = cfg.scrub_interval;
        threads.push(
            std::thread::Builder::new()
                .name("lazymc-keeper".into())
                .spawn(move || housekeeper(&state, &shutdown, scrub_interval))?,
        );
    }

    // Reactors. Reactor 0 owns the listener and hands accepted
    // connections round-robin across the set.
    let io_threads = cfg.effective_io_threads();
    let mut reactors = Vec::with_capacity(io_threads);
    for _ in 0..io_threads {
        reactors.push(Arc::new(ReactorShared::new()?));
    }
    let mut listener = Some(listener);
    for (idx, shared) in reactors.iter().enumerate() {
        let args = reactor::ReactorArgs {
            idx,
            state: state.clone(),
            cfg: cfg.clone(),
            listener: listener.take().filter(|_| idx == 0),
            signal: if idx == 0 { signal.take() } else { None },
            shared: shared.clone(),
            peers: reactors.clone(),
            shutdown: shutdown.clone(),
            work_tx: work_tx.clone(),
        };
        threads.push(
            std::thread::Builder::new()
                .name(format!("lazymc-io-{idx}"))
                .spawn(move || reactor::run_reactor(args))?,
        );
    }
    drop(work_tx);

    Ok(ServiceHandle {
        addr,
        state,
        shutdown,
        reactors,
        threads,
        drain_timeout: cfg.drain_timeout,
    })
}

/// The housekeeping loop: every ~100 ms, enforce the memory watermarks
/// and re-probe a disabled journal; every `scrub_interval`, run one
/// integrity pass over snapshots and the journal. A chaos-injected panic
/// in one tick must not end housekeeping for the process lifetime.
fn housekeeper(state: &Arc<ServiceState>, shutdown: &AtomicBool, scrub_interval: Option<Duration>) {
    let mut next_scrub = scrub_interval.map(|i| Instant::now() + i);
    while !shutdown.load(Ordering::SeqCst) {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            enforce_memory(state);
            if let Some(journal) = &state.journal {
                if journal.try_reenable() {
                    state.health.clear("journal");
                    eprintln!("lazymc-service: journal re-enabled after a successful re-probe");
                }
            }
            if let Some(at) = next_scrub {
                if Instant::now() >= at {
                    scrub_pass(state);
                    next_scrub = scrub_interval.map(|i| Instant::now() + i);
                }
            }
        }));
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// One memory-watermark tick. Soft: flag `/healthz` degraded (uploads are
/// rejected at their endpoint). Hard: additionally cancel the
/// lowest-priority running solve through the normal abort machinery — it
/// finishes its current neighbourhood, reports truncated, and frees its
/// working set.
fn enforce_memory(state: &ServiceState) {
    if !state.mem.enforced() {
        return;
    }
    lazymc_chaos::point!("mem.watermark");
    let live = state.mem.live_bytes();
    match state.mem.classify(live) {
        MemLevel::Ok => state.health.clear("memory"),
        MemLevel::Soft => state.health.degrade(
            "memory",
            format!(
                "live heap {live} bytes over soft watermark {} (max {})",
                state.mem.soft_bytes().unwrap_or(0),
                state.mem.hard_bytes().unwrap_or(0),
            ),
        ),
        MemLevel::Hard => {
            state.health.degrade(
                "memory",
                format!(
                    "live heap {live} bytes at hard watermark {}; cancelling cheapest running solve",
                    state.mem.hard_bytes().unwrap_or(0),
                ),
            );
            if let Some((id, priority)) = state.jobs.cancel_lowest_priority_running() {
                state.mem.hard_cancels.fetch_add(1, Ordering::Relaxed);
                eprintln!(
                    "lazymc-service: hard memory watermark: cancelled running job {id} (priority {priority})"
                );
            }
        }
    }
}

/// One background integrity pass: re-verify every indexed snapshot
/// end-to-end (decode, graph reconstruction, k-core extraction — bit rot
/// quarantines the file so it can never be lazily served) and re-walk the
/// journal's frame CRCs. A clean pass clears the `scrub` degradation.
fn scrub_pass(state: &ServiceState) {
    state
        .metrics
        .scrub_passes_total
        .fetch_add(1, Ordering::Relaxed);
    // Fault point for the pass itself (a scrubber that cannot read the
    // volume), kept outside SnapshotStore::verify so an injected error
    // can never quarantine a healthy file.
    if let Err(e) = lazymc_chaos::raise_io("scrub.snapshot") {
        state
            .health
            .degrade("scrub", format!("scrub pass aborted: {e}"));
        return;
    }
    let mut findings: Vec<String> = Vec::new();
    if let Some(store) = state.registry.store() {
        for name in store.names() {
            if !store.verify(&name) {
                // A mapped entry serves pages of the file just quarantined;
                // drop it so no later solve reads rotted bytes. Heap entries
                // were fully validated at decode and own their arrays — they
                // stay resident.
                let dropped = state.registry.drop_mapped(&name);
                findings.push(format!(
                    "snapshot {name:?} failed verification (quarantined{})",
                    if dropped {
                        "; resident mapping dropped"
                    } else {
                        ""
                    }
                ));
            }
        }
    }
    if let Some(journal) = &state.journal {
        if let Err(e) = journal.scrub() {
            findings.push(format!("journal scrub: {e}"));
        }
    }
    if findings.is_empty() {
        state.health.clear("scrub");
    } else {
        state
            .metrics
            .scrub_corruptions_total
            .fetch_add(findings.len() as u64, Ordering::Relaxed);
        for f in &findings {
            eprintln!("lazymc-service: scrub: {f}");
        }
        state.health.degrade("scrub", findings.join("; "));
    }
}

/// Re-runs jobs the journal recorded as admitted but never completed: a
/// crash (SIGKILL, OOM, power loss) between a job's 202/enqueue and its
/// completion must not silently lose it. Replayed jobs keep their
/// original ids and are retained like `?async=1` submissions, so a
/// client can re-poll the id it was given before the crash. Jobs that
/// can no longer run — graph gone, body unparsable, queue full at
/// recovery — become terminal `failed` records instead of vanishing.
fn replay_journal(state: &Arc<ServiceState>, cfg: &ServiceConfig, replayed: Vec<ReplayedJob>) {
    if replayed.is_empty() {
        return;
    }
    let total = replayed.len();
    let mut requeued = 0usize;
    for job in replayed {
        let id = job.id;
        // Reserve the original id so new submissions allocate past it.
        let ticket = state.queue.ticket_for(id);
        let fail = |reason: String| {
            Json::obj(vec![
                ("error", Json::str(reason)),
                ("replayed", Json::Bool(true)),
            ])
        };
        let request = match Json::parse(&job.body).and_then(|v| SolveRequest::from_json(&v)) {
            Ok(r) => r,
            Err(e) => {
                state.jobs.insert_terminal(
                    ticket,
                    String::new(),
                    JobState::Failed,
                    fail(format!("journal replay: bad admit body: {e}")),
                );
                journal_complete(state, id);
                continue;
            }
        };
        let Some(entry) = state.registry.get(&request.graph) else {
            state.jobs.insert_terminal(
                ticket,
                request.graph.clone(),
                JobState::Failed,
                fail(format!(
                    "journal replay: graph {:?} is no longer loadable",
                    request.graph
                )),
            );
            journal_complete(state, id);
            continue;
        };
        match submit_solve(
            state,
            cfg,
            &request,
            &entry,
            JobSink::Async,
            "replay",
            0,
            Some(&ticket),
        ) {
            Submitted::CacheHit(result) => {
                // An identical solve completed (and was cached) before the
                // crash: record the cached answer as this job's result.
                state
                    .jobs
                    .insert_terminal(ticket, request.graph.clone(), JobState::Done, result);
                journal_complete(state, id);
            }
            Submitted::Enqueued(_) => requeued += 1,
            Submitted::Shed { .. } | Submitted::Draining => {
                unreachable!("replayed jobs bypass the admission gates")
            }
            Submitted::Full { capacity } => {
                state.jobs.insert_terminal(
                    ticket,
                    request.graph.clone(),
                    JobState::Failed,
                    fail(format!(
                        "journal replay: queue full ({capacity}) at recovery"
                    )),
                );
                journal_complete(state, id);
            }
        }
    }
    eprintln!("lazymc-service: journal replay: {requeued}/{total} interrupted job(s) re-enqueued");
}

/// Finishes a job's trace: histograms, slow-log admission and the
/// structured log line are recorded inside `complete()`, *before* the
/// result reaches its sink — a client holding its answer can never
/// catch the metrics unrecorded.
fn complete_observed(
    state: &ServiceState,
    id: u64,
    reply: Result<SolveReply, String>,
    cancelled: bool,
    wait_us: u64,
    solve_us: u64,
    phases_us: [u64; 6],
) {
    let failed = reply.is_err();
    // Every completion — solved, failed, cancelled, reaped — frees a
    // queue slot, which is what the Retry-After estimator measures.
    state.drain_rate.observe_completion();
    state.jobs.complete(id, reply, cancelled, |meta| {
        state.obs.observe_solve(&SolveObservation {
            job_id: id,
            graph: meta.graph,
            trace: meta.trace,
            parse_us: meta.parse_us,
            wait_us,
            solve_us,
            serialize_us: meta.serialize_us,
            phases_us,
            cancelled,
            failed,
        });
    });
    // Terminal — including `failed`: a job that panicked must not be
    // re-run forever by every subsequent boot's replay.
    journal_complete(state, id);
}

/// Runs one popped [`SolveJob`] to completion on a scheduler worker. This
/// is the body of a root task: the solve's own subtree scopes re-enter the
/// same pool (tagged with this job's id/deadline/priority), so any idle
/// worker — including ones that finish *other* jobs mid-solve — steals
/// into it. Node counts from every stolen subtree land in the one shared
/// `SolveProgress` cell, which is what `GET /jobs/<id>` aggregates.
fn run_solve_job(state: &ServiceState, popped: Popped<SolveJob>) {
    let Popped {
        ticket,
        priority,
        deadline: queue_deadline,
        payload: job,
        ..
    } = popped;
    let waited = job.enqueued.elapsed();
    let wait_ms = waited.as_millis() as u64;
    let wait_us = waited.as_micros() as u64;
    if ticket.is_cancelled() {
        // Cancelled while queued: the job store already answered the
        // sink when the cancellation landed. Reaping the carcass still
        // freed a slot, which the drain-rate estimator cares about.
        state.drain_rate.observe_completion();
        return;
    }
    // Feed the shedding controller the wait this job actually endured;
    // one wait at/below target ends shedding, waits above it for a full
    // interval start it.
    state.shedder.observe_wait(waited);
    // Dead on arrival: a budget that was still live at admission fully
    // expired while the job sat in the queue. Running it would charge a
    // solver worker for a zero-work truncated answer — reap it instead
    // (work-avoidance applies to the queue too). Jobs without a budget
    // never expire here, and a deadline already expired *at* admission
    // (`budget_ms: 0`, or a cap of 0) is an explicit request for the
    // best-effort greedy answer, not queue-induced staleness — it runs.
    if job
        .deadline
        .expires_at()
        .is_some_and(|t| t > job.enqueued && Instant::now() >= t)
        && !job.deadline.is_cancelled()
    {
        state.metrics.jobs_doa_total.fetch_add(1, Ordering::Relaxed);
        complete_observed(
            state,
            ticket.id,
            Err(format!(
                "deadline expired in queue (waited {wait_ms} ms); job reaped before solving"
            )),
            false,
            wait_us,
            0,
            [0; 6],
        );
        return;
    }
    // The live-progress cell: the solve publishes into it (phase
    // marks, relaxed counters, incumbent size) and `GET /jobs/<id>`
    // reads it while the job runs.
    let progress = Arc::new(SolveProgress::new());
    state.jobs.mark_running(ticket.id, Arc::clone(&progress));
    state.jobs.jobs_inflight.fetch_add(1, Ordering::Relaxed);
    let meta = TaskMeta {
        job_id: ticket.id,
        deadline: queue_deadline,
        priority,
    };
    let t = Instant::now();
    // A panicking solve must not take the worker thread (and with it,
    // eventually, the whole scheduler pool) down: catch, count, report.
    // First solve against a mapped graph: prefetch the file, then turn
    // readahead off for the random neighbourhood probes (no-op for heap
    // entries and on later solves).
    job.entry.advise_first_solve();
    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        lazymc_chaos::point!("solve.run");
        LazyMc::new(job.config.clone()).solve_prepared_on(
            job.entry.graph.as_ref(),
            Some(job.entry.kcore_view()),
            &job.deadline,
            Some(&progress),
            &state.sched,
            meta,
        )
    }));
    let solved = t.elapsed();
    let solve_ms = solved.as_millis() as u64;
    let solve_us = solved.as_micros() as u64;
    state.jobs.jobs_inflight.fetch_sub(1, Ordering::Relaxed);
    let result = match outcome {
        Ok(result) => result,
        Err(_) => {
            state
                .metrics
                .solver_panics_total
                .fetch_add(1, Ordering::Relaxed);
            complete_observed(
                state,
                ticket.id,
                Err("solver panicked on this input; see /metrics".to_string()),
                ticket.is_cancelled(),
                wait_us,
                solve_us,
                [0; 6],
            );
            return;
        }
    };

    let cancelled = ticket.is_cancelled();
    state.metrics.solves_total.fetch_add(1, Ordering::Relaxed);
    if !result.is_exact() {
        state
            .metrics
            .solves_truncated_total
            .fetch_add(1, Ordering::Relaxed);
    }
    plock(&state.core_totals).accumulate(&result.metrics);

    let mut clique = result.vertices().to_vec();
    clique.sort_unstable();
    // Only exact, uncancelled results are cacheable (a cancel racing
    // completion could otherwise pin a half-meant answer).
    if result.is_exact() && !cancelled {
        if let Some(canonical) = &job.cache_key {
            state.results.put(
                &job.entry.name,
                job.entry.fingerprint,
                canonical.clone(),
                CachedSolve {
                    omega: clique.len(),
                    clique: clique.clone(),
                    solve_ms,
                },
            );
        }
    }
    let phases_us = phase_micros(&result.metrics.phases);
    complete_observed(
        state,
        ticket.id,
        Ok(SolveReply {
            omega: clique.len(),
            clique,
            exact: result.is_exact(),
            cached: false,
            wait_ms,
            solve_ms,
            phases: result.metrics.phases,
        }),
        cancelled,
        wait_us,
        solve_us,
        phases_us,
    );
}

// ---------------------------------------------------------------------------
// Routing
// ---------------------------------------------------------------------------

/// The reactor-side router: answers cheap endpoints inline (microseconds,
/// no locks beyond short-held counters/maps) and forwards anything that
/// parses bodies or may touch disk to the request worker pool.
pub(crate) fn dispatch(
    state: &Arc<ServiceState>,
    cfg: &ServiceConfig,
    req: Request,
    responder: Responder,
    work_tx: &mpsc::Sender<ReqWork>,
) -> Dispatched {
    // Scoped so the path borrow ends before `req` moves to the workers.
    let inline: Option<Response> = {
        let path = req.route_path();
        match (req.method.as_str(), path) {
            ("GET", "/healthz") => Some(healthz(state, cfg)),
            ("GET", "/readyz") => Some(readyz(state)),
            ("GET", "/metrics") => Some(metrics(state)),
            ("GET", "/stats") => Some(global_stats(state, cfg)),
            ("GET", "/graphs") => Some(list_graphs(state)),
            ("GET", "/debug/slow") => Some(Response::json(200, state.obs.slow_json())),
            ("GET", "/debug/chaos") => Some(chaos_status()),
            ("POST", "/debug/chaos") => Some(chaos_control(&req.body)),
            ("GET", p) if p.starts_with("/jobs/") => Some(job_status(state, p)),
            ("DELETE", p) if p.starts_with("/jobs/") => Some(job_cancel(state, p)),
            // Heavier or per-graph routes run off-reactor; unknown GET and
            // DELETE paths fall through to the worker too and 404 there
            // (keeps this match small and the reactor code path short).
            ("POST", "/graphs" | "/solve" | "/solve-batch") | ("GET", _) | ("DELETE", _) => None,
            (method, path) => Some(Response::error(
                405,
                format!("{method} {path} not supported"),
            )),
        }
    };
    match inline {
        Some(response) => {
            // The reactor delivers this directly; settle the responder's
            // debt so its drop backstop stays quiet.
            responder.dismiss();
            Dispatched::Ready(response)
        }
        None => match work_tx.send(ReqWork {
            request: req,
            responder,
        }) {
            Ok(()) => Dispatched::Pending,
            Err(returned) => {
                returned.0.responder.dismiss();
                Dispatched::Ready(Response::error(503, "shutting down"))
            }
        },
    }
}

/// Request-worker-side router for the forwarded routes.
pub(crate) fn handle_heavy(state: &Arc<ServiceState>, cfg: &ServiceConfig, work: ReqWork) {
    let ReqWork { request, responder } = work;
    let path = request.route_path().to_string();
    match (request.method.as_str(), path.as_str()) {
        ("POST", "/graphs") => responder.respond(load_graph(state, &request.body)),
        ("POST", "/solve") => solve_endpoint(state, cfg, &request, responder),
        ("POST", "/solve-batch") => solve_batch(state, cfg, &request, responder),
        ("GET", p) => match p.strip_prefix("/stats/") {
            Some(name) => responder.respond(graph_stats(state, cfg, name)),
            None => responder.respond(Response::error(404, format!("no route {p}"))),
        },
        ("DELETE", p) => match p.strip_prefix("/graphs/") {
            Some(name) if state.registry.remove(name) => responder.respond(Response::json(
                200,
                Json::obj(vec![("removed", Json::str(name))]),
            )),
            Some(name) => {
                responder.respond(Response::error(404, format!("unknown graph {name:?}")))
            }
            None => responder.respond(Response::error(404, format!("no route {p}"))),
        },
        (method, p) => {
            responder.respond(Response::error(405, format!("{method} {p} not supported")))
        }
    }
}

fn fingerprint_hex(fp: u64) -> String {
    format!("{fp:016x}")
}

// ---------------------------------------------------------------------------
// Graph management endpoints
// ---------------------------------------------------------------------------

fn load_graph(state: &ServiceState, body: &str) -> Response {
    if state.is_draining() {
        return draining_response();
    }
    // Memory soft watermark: a graph upload (CSR + coreness + snapshot
    // buffer) is exactly the large allocation the watermark exists to
    // refuse. Solves against already-resident graphs keep running.
    let live = state.mem.live_bytes();
    if state.mem.enforced() && state.mem.classify(live) != MemLevel::Ok {
        state.mem.soft_rejects.fetch_add(1, Ordering::Relaxed);
        state.health.degrade(
            "memory",
            format!(
                "live heap {live} bytes over soft watermark {}; rejecting uploads",
                state.mem.soft_bytes().unwrap_or(0)
            ),
        );
        let mut r = Response::error(
            503,
            format!("memory watermark: {live} live bytes over the soft limit; upload refused"),
        );
        r.retry_after = Some(state.drain_rate.retry_after(state.queue.depth()));
        return r;
    }
    let parsed = match Json::parse(body).and_then(|v| LoadRequest::from_json(&v)) {
        Ok(r) => r,
        Err(e) => return Response::error(400, e),
    };
    let graph: CsrGraph = match parsed.format.as_str() {
        "edgelist" => match graph_io::read_edge_list(parsed.content.as_bytes()) {
            Ok(g) => g,
            Err(e) => return Response::error(400, format!("edge list: {e}")),
        },
        "dimacs" => match graph_io::read_dimacs(parsed.content.as_bytes()) {
            Ok(g) => g,
            Err(e) => return Response::error(400, format!("dimacs: {e}")),
        },
        "mtx" => match graph_io::read_matrix_market(parsed.content.as_bytes()) {
            Ok(g) => g,
            Err(e) => return Response::error(400, format!("matrix market: {e}")),
        },
        "suite" => {
            let Some(instance) = suite::by_name(parsed.content.trim()) else {
                return Response::error(
                    400,
                    format!("unknown suite instance {:?}", parsed.content),
                );
            };
            let scale = match parsed.scale.as_deref() {
                None | Some("test") => suite::Scale::Test,
                Some("standard") => suite::Scale::Standard,
                Some(other) => return Response::error(400, format!("unknown scale {other:?}")),
            };
            instance.build(scale)
        }
        _ => unreachable!("validated by LoadRequest::from_json"),
    };
    let entry = state.registry.insert(&parsed.name, graph);
    Response::json(
        201,
        Json::obj(vec![
            ("name", Json::str(&*entry.name)),
            ("fingerprint", Json::str(fingerprint_hex(entry.fingerprint))),
            ("vertices", Json::num(entry.graph.num_vertices() as f64)),
            ("edges", Json::num(entry.graph.num_edges() as f64)),
            ("degeneracy", Json::num(entry.degeneracy() as f64)),
            (
                "omega_upper_bound",
                Json::num(entry.omega_upper_bound() as f64),
            ),
            ("mapped", Json::Bool(entry.is_mapped())),
            ("prep_ms", Json::num(entry.prep_ms as f64)),
        ]),
    )
}

// ---------------------------------------------------------------------------
// Solve submission (single, async, batch)
// ---------------------------------------------------------------------------

/// How one solve request settled at submission time.
enum Submitted {
    /// Served from the result cache; the formatted result object.
    CacheHit(Json),
    /// Admitted to the queue under this job id.
    Enqueued(u64),
    /// Queue full.
    Full { capacity: usize },
    /// Refused by the overload controller: a standing queue past the
    /// delay target, and this admission would not overtake anything
    /// already waiting.
    Shed { retry_after: u64 },
    /// Refused because the daemon is draining (SIGTERM received): it is
    /// finishing admitted work, not taking more.
    Draining,
}

/// Admits one solve against a resolved registry entry: clamp threads and
/// budget, probe the result cache, register the job record, push. Shared
/// by `POST /solve` and every batch slot, so all paths behave (and
/// cache-key) identically.
/// `replay` carries the pre-allocated ticket of a journal-replayed job:
/// the job keeps its pre-crash id and — being already in the journal —
/// is not re-admitted.
#[allow(clippy::too_many_arguments)]
fn submit_solve(
    state: &ServiceState,
    cfg: &ServiceConfig,
    request: &SolveRequest,
    entry: &Arc<GraphEntry>,
    sink: JobSink,
    trace: &str,
    parse_us: u64,
    replay: Option<&JobTicket>,
) -> Submitted {
    let mut config = request.config();
    // Route the per-job width into the solver, clamped to the scheduler
    // pool's capacity: a width is how many pool workers the job's scopes
    // may recruit at once, so asking for more than the pool has is
    // meaningless. Unspecified (0 = "whatever is idle") must not bypass
    // the clamp either. (`threads` is excluded from the canonical cache
    // key — the width changes cost, never the answer.)
    config.threads = match config.threads {
        0 => cfg.max_job_threads(),
        t => t.min(cfg.max_job_threads()),
    };
    // Server-side budget cap: clamp requested budgets, default unbudgeted
    // requests. Applied *before* the canonical key is computed so the
    // result cache keys on the budget that actually ran.
    let mut budget_clamped = false;
    if let Some(cap_ms) = cfg.max_budget_ms {
        let cap = Duration::from_millis(cap_ms);
        match config.time_budget {
            Some(b) if b > cap => {
                config.time_budget = Some(cap);
                budget_clamped = true;
            }
            None => {
                config.time_budget = Some(cap);
                budget_clamped = true;
            }
            _ => {}
        }
    }
    let canonical = config.canonical_key();

    if !request.no_cache {
        if let Some(hit) = state
            .results
            .get(&entry.name, entry.fingerprint, &canonical)
        {
            let reply = SolveReply {
                omega: hit.omega,
                clique: hit.clique,
                exact: true,
                cached: true,
                wait_ms: 0,
                solve_ms: hit.solve_ms,
                phases: PhaseTimes::default(),
            };
            return Submitted::CacheHit(JobStore::result_json(
                &entry.name,
                None,
                &reply,
                budget_clamped,
                false,
            ));
        }
    }

    // Lifecycle and overload gates, after the cache probe (a cache hit
    // costs nothing and is never refused) and before any record exists.
    // Replayed jobs are exempt from both: they were durably admitted
    // before the restart and the journal owes them an outcome.
    if replay.is_none() {
        if state.is_draining() {
            return Submitted::Draining;
        }
        let best_queued = state.queue.peek_key().map(|(p, _, _)| p);
        if best_queued.is_none() {
            // Queue momentarily empty: no standing queue is possible, and
            // the controller must notice even if no pop happens for a
            // while.
            state.shedder.observe_idle();
        }
        if state.shedder.should_shed(request.priority, best_queued) {
            lazymc_chaos::point!("overload.shed");
            state.shedder.count_shed();
            return Submitted::Shed {
                retry_after: state.drain_rate.retry_after(state.queue.depth()),
            };
        }
    }

    let deadline = Arc::new(Deadline::starting_now(config.time_budget));
    // Stamped here, NOT at push: the journal fsync below can take
    // milliseconds, and the DOA reaper distinguishes "budget live at
    // admission" from "expired by construction" by comparing the
    // deadline against this instant — a stamp taken after the fsync
    // would misclassify small live budgets as already-expired ones.
    let enqueued = Instant::now();
    let ticket = match replay {
        Some(t) => t.clone(),
        None => state.queue.ticket(),
    };
    let id = ticket.id;
    // Record first, push second: the job must be findable (for GET/DELETE
    // and for the worker's completion) before any worker can pop it.
    state.jobs.insert_queued(
        ticket.clone(),
        deadline.clone(),
        sink,
        JobMeta {
            graph: entry.name.clone(),
            budget_clamped,
            trace: trace.to_string(),
            parse_us,
            budget_ms: config.time_budget.map(|b| b.as_millis() as u64),
            priority: request.priority,
        },
    );
    // Durability point: the admit record is fsynced BEFORE the job
    // becomes poppable (and before any acknowledgement can reach the
    // client), so a crash at any later moment replays the job. An append
    // failure degrades to memory-only admission — the job still runs.
    if replay.is_none() {
        if let Some(journal) = &state.journal {
            if let Err(e) = journal.admit(id, &request.to_json().encode()) {
                state
                    .health
                    .degrade("journal", format!("journal append failed: {e}"));
            }
        }
    }
    let expires = deadline.expires_at();
    let job = SolveJob {
        entry: entry.clone(),
        config,
        deadline,
        cache_key: (!request.no_cache).then(|| canonical.clone()),
        enqueued,
    };
    match state
        .queue
        .push_ticketed(request.priority, expires, &ticket, job)
    {
        Ok(()) => {
            // Ring the pool's doorbell: a parked scheduler worker re-scans
            // its sources and finds this job.
            state.sched.notify_source();
            Submitted::Enqueued(id)
        }
        Err(full) => {
            state.jobs.forget(id);
            if replay.is_none() {
                // Neutralize the admit record: a 429'd job must not be
                // resurrected by the next boot's replay.
                journal_complete(state, id);
            }
            Submitted::Full {
                capacity: full.capacity,
            }
        }
    }
}

fn queue_full_response(state: &ServiceState, capacity: usize) -> Response {
    let mut r = Response::error(429, format!("{capacity} pending jobs; try again shortly"));
    // Tell the client when a slot will plausibly exist, from the observed
    // drain rate — not a static guess.
    r.retry_after = Some(state.drain_rate.retry_after(state.queue.depth()));
    r
}

/// 503 for an admission refused by the overload controller.
fn shed_response(retry_after: u64) -> Response {
    let mut r = Response::error(
        503,
        "overloaded: queue wait above target; lowest-priority admissions are shed",
    );
    r.retry_after = Some(retry_after);
    r
}

/// 503 for work refused because the daemon is draining.
fn draining_response() -> Response {
    Response::error(503, "draining: finishing admitted work, not accepting more")
}

/// `POST /solve` (sync) and `POST /solve?async=1` (202 + job id).
fn solve_endpoint(state: &ServiceState, cfg: &ServiceConfig, req: &Request, responder: Responder) {
    let t_parse = Instant::now();
    let parsed = Json::parse(&req.body).and_then(|v| {
        let r = SolveRequest::from_json(&v)?;
        let is_async =
            req.query_flag("async") || v.get("async").and_then(Json::as_bool).unwrap_or(false);
        Ok((r, is_async))
    });
    let parse_us = t_parse.elapsed().as_micros() as u64;
    let (request, is_async) = match parsed {
        Ok(p) => p,
        Err(e) => return responder.respond(Response::error(400, e)),
    };
    let Some(entry) = state.registry.get(&request.graph) else {
        return responder.respond(Response::error(
            404,
            format!("unknown graph {:?}", request.graph),
        ));
    };
    let sink = if is_async {
        JobSink::Async
    } else {
        JobSink::Sync(responder.clone())
    };
    let trace = req.trace.as_deref().unwrap_or("");
    match submit_solve(state, cfg, &request, &entry, sink, trace, parse_us, None) {
        Submitted::CacheHit(result) => responder.respond(Response::json(200, result)),
        Submitted::Enqueued(id) if is_async => {
            // Counted here — after the push succeeded — so 429-rejected
            // submissions never inflate the async metric.
            state.jobs.async_submitted.fetch_add(1, Ordering::Relaxed);
            responder.respond(Response::json(
                202,
                Json::obj(vec![
                    ("job_id", Json::num(id as f64)),
                    ("status", Json::str("queued")),
                    ("poll", Json::str(format!("/jobs/{id}"))),
                ]),
            ))
        }
        Submitted::Enqueued(_) => {} // sync: the job's sink owns the responder
        Submitted::Full { capacity } => responder.respond(queue_full_response(state, capacity)),
        Submitted::Shed { retry_after } => responder.respond(shed_response(retry_after)),
        Submitted::Draining => responder.respond(draining_response()),
    }
}

/// One batch slot's error object (mirrors the HTTP error body plus the
/// status it would have carried standalone).
fn batch_error(status: u16, message: impl Into<String>) -> Json {
    Json::obj(vec![
        ("error", Json::str(message.into())),
        ("status", Json::num(status as f64)),
    ])
}

/// `POST /solve-batch`: `{"requests":[...]}` (or a bare array) of solve
/// bodies, answered as one `{"results":[...]}` array in request order.
///
/// Items are *grouped by graph* before admission: each distinct graph is
/// resolved against the registry exactly once (so a batch against an
/// evicted graph triggers at most one snapshot reload), and its items are
/// pushed back-to-back so the FIFO tie-break keeps same-graph solves
/// adjacent in the queue — consecutive pops run against a warm entry.
fn solve_batch(state: &ServiceState, cfg: &ServiceConfig, req: &Request, responder: Responder) {
    let body = &req.body;
    let t_parse = Instant::now();
    let value = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return responder.respond(Response::error(400, e)),
    };
    let items = match value.get("requests") {
        Some(Json::Arr(items)) => items.as_slice(),
        Some(_) => return responder.respond(Response::error(400, "\"requests\" must be an array")),
        None => match &value {
            Json::Arr(items) => items.as_slice(),
            _ => {
                return responder.respond(Response::error(
                    400,
                    "batch body must be an array or {\"requests\": [...]}",
                ))
            }
        },
    };
    if items.is_empty() {
        return responder.respond(Response::error(400, "empty batch"));
    }
    if items.len() > MAX_BATCH {
        return responder.respond(Response::error(
            400,
            format!(
                "batch of {} exceeds the {MAX_BATCH}-request limit",
                items.len()
            ),
        ));
    }
    state.metrics.batches_total.fetch_add(1, Ordering::Relaxed);
    state
        .metrics
        .batch_jobs_total
        .fetch_add(items.len() as u64, Ordering::Relaxed);

    // Parse every slot up front; per-slot failures become per-slot errors.
    let parsed: Vec<Result<SolveRequest, String>> =
        items.iter().map(SolveRequest::from_json).collect();
    // Every slot shares the batch's trace id; the batch-wide parse cost
    // is attributed to the first slot (charging it to each slot would
    // multi-count it across the histograms).
    let trace = req.trace.clone().unwrap_or_default();
    let parse_us = t_parse.elapsed().as_micros() as u64;
    let mut parse_attributed = false;

    // Resolve each distinct graph once, in first-appearance order. This
    // is the co-location step: one registry lookup (and at most one lazy
    // snapshot reload) per graph, however many slots share it.
    let mut graph_order: Vec<String> = Vec::new();
    let mut entries: std::collections::HashMap<String, Option<Arc<GraphEntry>>> =
        std::collections::HashMap::new();
    for request in parsed.iter().flatten() {
        if !entries.contains_key(&request.graph) {
            graph_order.push(request.graph.clone());
            entries.insert(request.graph.clone(), state.registry.get(&request.graph));
        }
    }

    let agg = BatchAggregator::new(responder, parsed.len());
    // Invalid slots settle immediately...
    for (slot, item) in parsed.iter().enumerate() {
        if let Err(e) = item {
            agg.fill(slot, batch_error(400, e.clone()));
        }
    }
    // ...then each graph's slots are admitted back-to-back.
    for name in &graph_order {
        let entry = &entries[name];
        for (slot, request) in parsed.iter().enumerate() {
            let Ok(request) = request else { continue };
            if &request.graph != name {
                continue;
            }
            let Some(entry) = entry else {
                agg.fill(slot, batch_error(404, format!("unknown graph {name:?}")));
                continue;
            };
            let sink = JobSink::Batch {
                agg: agg.clone(),
                slot,
            };
            let slot_parse_us = if parse_attributed { 0 } else { parse_us };
            parse_attributed = true;
            match submit_solve(
                state,
                cfg,
                request,
                entry,
                sink,
                &trace,
                slot_parse_us,
                None,
            ) {
                Submitted::CacheHit(result) => agg.fill(slot, result),
                Submitted::Enqueued(_) => {}
                Submitted::Full { capacity } => agg.fill(
                    slot,
                    batch_error(429, format!("{capacity} pending jobs; slot shed")),
                ),
                Submitted::Shed { retry_after } => agg.fill(
                    slot,
                    batch_error(
                        503,
                        format!("overloaded; slot shed, retry in ~{retry_after}s"),
                    ),
                ),
                Submitted::Draining => agg.fill(slot, batch_error(503, "draining; slot refused")),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Job endpoints
// ---------------------------------------------------------------------------

fn job_id_from(path: &str) -> Option<u64> {
    path.strip_prefix("/jobs/")?.parse().ok()
}

fn job_status(state: &ServiceState, path: &str) -> Response {
    let Some(id) = job_id_from(path) else {
        return Response::error(404, format!("no route {path}"));
    };
    match state.jobs.view(id) {
        Some(view) => Response::json(200, view),
        None => Response::error(
            404,
            format!("no such job {id} ({})", state.jobs.missing_reason(id)),
        ),
    }
}

fn job_cancel(state: &ServiceState, path: &str) -> Response {
    let Some(id) = job_id_from(path) else {
        return Response::error(404, format!("no route {path}"));
    };
    match state.jobs.cancel(id) {
        CancelOutcome::NotFound => Response::error(
            404,
            format!("no such job {id} ({})", state.jobs.missing_reason(id)),
        ),
        CancelOutcome::AlreadyDone(state) => {
            Response::error(409, format!("job {id} already {}", state.as_str()))
        }
        CancelOutcome::Cancelled { was } => {
            if was == JobState::Queued {
                // A queued cancel answers the sink directly and the worker
                // skips the popped carcass, so the completion that erases
                // the journal's admit record is written here.
                journal_complete(state, id);
            }
            Response::json(
                200,
                Json::obj(vec![
                    ("job_id", Json::num(id as f64)),
                    ("cancelled", Json::Bool(true)),
                    ("was", Json::str(was.as_str())),
                ]),
            )
        }
    }
}

// ---------------------------------------------------------------------------
// Introspection endpoints
// ---------------------------------------------------------------------------

fn graph_stats(state: &ServiceState, cfg: &ServiceConfig, name: &str) -> Response {
    let Some(entry) = state.registry.get(name) else {
        return Response::error(404, format!("unknown graph {name:?}"));
    };
    let g = &entry.graph;
    Response::json(
        200,
        Json::obj(vec![
            ("name", Json::str(&*entry.name)),
            ("fingerprint", Json::str(fingerprint_hex(entry.fingerprint))),
            ("vertices", Json::num(g.num_vertices() as f64)),
            ("edges", Json::num(g.num_edges() as f64)),
            ("max_degree", Json::num(g.max_degree() as f64)),
            ("density", Json::num(g.density())),
            ("degeneracy", Json::num(entry.degeneracy() as f64)),
            (
                "omega_upper_bound",
                Json::num(entry.omega_upper_bound() as f64),
            ),
            ("mapped", Json::Bool(entry.is_mapped())),
            ("mapped_bytes", Json::num(entry.graph.mapped_bytes() as f64)),
            ("queries", Json::num(entry.queries() as f64)),
            (
                "resident_ms",
                Json::num(entry.loaded_at.elapsed().as_millis() as f64),
            ),
            ("lazy_loaded", Json::Bool(entry.lazy_loaded)),
            (
                "max_budget_ms",
                match cfg.max_budget_ms {
                    Some(ms) => Json::num(ms as f64),
                    None => Json::Null,
                },
            ),
            (
                "snapshot_bytes",
                Json::num(
                    state
                        .registry
                        .store()
                        .and_then(|s| s.bytes_of(name))
                        .unwrap_or(0) as f64,
                ),
            ),
        ]),
    )
}

fn list_graphs(state: &ServiceState) -> Response {
    // One registry snapshot for both views, so a graph evicted or loaded
    // mid-request cannot show up in both lists (or neither).
    let resident_entries = state.registry.entries();
    let entries = resident_entries
        .iter()
        .map(|e| {
            Json::obj(vec![
                ("name", Json::str(&*e.name)),
                ("fingerprint", Json::str(fingerprint_hex(e.fingerprint))),
                ("vertices", Json::num(e.graph.num_vertices() as f64)),
                ("edges", Json::num(e.graph.num_edges() as f64)),
                ("mapped", Json::Bool(e.is_mapped())),
                ("queries", Json::num(e.queries() as f64)),
            ])
        })
        .collect();
    // Snapshots present on disk but not resident (post-restart, or LRU
    // victims): solvable on first touch, so the listing must name them.
    let resident: std::collections::HashSet<&str> =
        resident_entries.iter().map(|e| e.name.as_str()).collect();
    let mut on_disk: Vec<String> = state
        .registry
        .store()
        .map(|s| s.names())
        .unwrap_or_default()
        .into_iter()
        .filter(|n| !resident.contains(n.as_str()))
        .collect();
    on_disk.sort_unstable();
    Response::json(
        200,
        Json::obj(vec![
            ("graphs", Json::Arr(entries)),
            (
                "on_disk",
                Json::Arr(on_disk.into_iter().map(Json::str).collect()),
            ),
        ]),
    )
}

/// The service-level gauge set reported identically (same names, same
/// values) by `/healthz`, `/stats`, and — as `lazymc_*` series — by
/// `/metrics`.
fn gauges(state: &ServiceState) -> Vec<(&'static str, Json)> {
    let m = &state.metrics;
    let (jobs_stored, job_store_bytes) = state.jobs.stats();
    // Residency is two different currencies now: heap bytes are memory the
    // daemon actually owns (what eviction frees); mapped bytes are page
    // cache the kernel reclaims on its own.
    let (graphs_mapped, mapped_bytes, snapshot_heap_bytes) =
        state
            .registry
            .entries()
            .iter()
            .fold((0u64, 0u64, 0u64), |(n, mb, hb), e| {
                (
                    n + u64::from(e.is_mapped()),
                    mb + e.graph.mapped_bytes(),
                    hb + e.graph.heap_bytes(),
                )
            });
    vec![
        ("graphs_mapped", Json::num(graphs_mapped as f64)),
        ("mapped_bytes", Json::num(mapped_bytes as f64)),
        ("snapshot_heap_bytes", Json::num(snapshot_heap_bytes as f64)),
        ("queue_depth", Json::num(state.queue.depth() as f64)),
        (
            "jobs_inflight",
            Json::num(state.jobs.jobs_inflight.load(Ordering::Relaxed) as f64),
        ),
        ("jobs_stored", Json::num(jobs_stored as f64)),
        ("job_store_bytes", Json::num(job_store_bytes as f64)),
        (
            "open_connections",
            Json::num(m.open_connections.load(Ordering::Relaxed) as f64),
        ),
        (
            "read_stalls",
            Json::num(m.read_stalls_total.load(Ordering::Relaxed) as f64),
        ),
        (
            "write_stalls",
            Json::num(m.write_stalls_total.load(Ordering::Relaxed) as f64),
        ),
        (
            "buffered_bytes",
            Json::num(m.buffered_bytes.load(Ordering::Relaxed) as f64),
        ),
        (
            "result_cache_bytes",
            Json::num(state.results.bytes() as f64),
        ),
        (
            "result_cache_entries",
            Json::num(state.results.len() as f64),
        ),
    ]
}

/// `GET /debug/chaos`: whether fault injection is compiled in, the
/// active spec, and per-point hit/injection counters.
fn chaos_status() -> Response {
    let points: Vec<Json> = lazymc_chaos::point_stats()
        .into_iter()
        .map(|p| {
            Json::obj(vec![
                ("point", Json::str(p.point)),
                ("fault", Json::str(p.fault)),
                ("trigger", Json::str(p.trigger)),
                ("hits", Json::num(p.hits as f64)),
                ("injected", Json::num(p.injected as f64)),
            ])
        })
        .collect();
    Response::json(
        200,
        Json::obj(vec![
            ("compiled_in", Json::Bool(lazymc_chaos::COMPILED_IN)),
            (
                "spec",
                match lazymc_chaos::active_spec() {
                    Some(s) => Json::str(s),
                    None => Json::Null,
                },
            ),
            (
                "injections_total",
                Json::num(lazymc_chaos::injections_total() as f64),
            ),
            ("points", Json::Arr(points)),
        ]),
    )
}

/// `POST /debug/chaos`: `{"spec": "point=fault[@trigger],..."}` arms,
/// `{"disarm": true}` (or an empty spec) disarms. 501 when the harness is
/// compiled out (plain release build without the `armed` feature).
fn chaos_control(body: &str) -> Response {
    if !lazymc_chaos::COMPILED_IN {
        return Response::error(
            501,
            "fault injection is compiled out of this build (release without the chaos `armed` feature)",
        );
    }
    let parsed = match Json::parse(body) {
        Ok(v) => v,
        Err(e) => return Response::error(400, e),
    };
    if parsed
        .get("disarm")
        .and_then(Json::as_bool)
        .unwrap_or(false)
    {
        lazymc_chaos::disarm();
        return Response::json(200, Json::obj(vec![("armed", Json::Bool(false))]));
    }
    let Some(spec) = parsed.get("spec").and_then(Json::as_str) else {
        return Response::error(
            400,
            "body must be {\"spec\": \"point=fault[@trigger],...\"} or {\"disarm\": true}",
        );
    };
    if spec.trim().is_empty() {
        lazymc_chaos::disarm();
        return Response::json(200, Json::obj(vec![("armed", Json::Bool(false))]));
    }
    match lazymc_chaos::arm(spec) {
        Ok(n) => Response::json(
            200,
            Json::obj(vec![
                ("armed", Json::Bool(true)),
                ("points", Json::num(n as f64)),
            ]),
        ),
        Err(e) => Response::error(400, format!("bad chaos spec: {e}")),
    }
}

/// `GET /readyz` — readiness, deliberately distinct from `/healthz`
/// liveness: a draining daemon is perfectly healthy (it is finishing
/// admitted work) but must receive no new traffic, so load balancers
/// watch this endpoint and see the 503 *before* the listener closes.
fn readyz(state: &ServiceState) -> Response {
    if state.is_draining() {
        return Response::error(503, "draining");
    }
    Response::json(200, Json::obj(vec![("ready", Json::Bool(true))]))
}

fn healthz(state: &ServiceState, cfg: &ServiceConfig) -> Response {
    let degraded = state.health.is_degraded();
    let mut fields = vec![
        // Liveness ("status") is deliberately separate from component
        // health ("state"): a degraded daemon still answers requests.
        ("status", Json::str("ok")),
        ("state", Json::str(if degraded { "degraded" } else { "ok" })),
        (
            "degraded_reasons",
            Json::Arr(
                state
                    .health
                    .reasons()
                    .into_iter()
                    .map(|(component, reason)| {
                        Json::obj(vec![
                            ("component", Json::str(component)),
                            ("reason", Json::str(reason)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "journal",
            match &state.journal {
                Some(j) => Json::str(if j.is_enabled() {
                    "enabled"
                } else {
                    "disabled"
                }),
                None => Json::Null,
            },
        ),
        (
            "journal_pending",
            Json::num(state.journal.as_ref().map_or(0, |j| j.pending_len()) as f64),
        ),
        // Lifecycle: liveness stays 200 through a drain (/readyz is the
        // endpoint that flips), but operators can see the phase here.
        ("draining", Json::Bool(state.is_draining())),
        ("shedding", Json::Bool(state.shedder.is_shedding())),
        (
            "memory",
            Json::obj(vec![
                ("tracked", Json::Bool(state.mem.tracked())),
                ("enforced", Json::Bool(state.mem.enforced())),
                ("live_bytes", Json::num(state.mem.live_bytes() as f64)),
                (
                    "level",
                    Json::str(match state.mem.level() {
                        MemLevel::Ok => "ok",
                        MemLevel::Soft => "soft",
                        MemLevel::Hard => "hard",
                    }),
                ),
            ]),
        ),
        (
            "scrub_passes",
            Json::num(state.metrics.scrub_passes_total.load(Ordering::Relaxed) as f64),
        ),
        (
            "scrub_corruptions",
            Json::num(
                state
                    .metrics
                    .scrub_corruptions_total
                    .load(Ordering::Relaxed) as f64,
            ),
        ),
        (
            "max_budget_ms",
            match cfg.max_budget_ms {
                Some(ms) => Json::num(ms as f64),
                None => Json::Null,
            },
        ),
        (
            "uptime_ms",
            Json::num(state.started.elapsed().as_millis() as f64),
        ),
        ("graphs", Json::num(state.registry.len() as f64)),
        ("durable", Json::Bool(state.registry.store().is_some())),
        (
            "snapshots",
            Json::num(state.registry.store().map_or(0, |s| s.len()) as f64),
        ),
        (
            "snapshot_disk_bytes",
            Json::num(state.registry.store().map_or(0, |s| s.total_bytes()) as f64),
        ),
    ];
    fields.extend(gauges(state));
    Response::json(
        200,
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ),
    )
}

/// `GET /stats` — server-wide counters and configuration (the per-graph
/// variant lives at `/stats/<name>`).
fn global_stats(state: &ServiceState, cfg: &ServiceConfig) -> Response {
    let mut fields = vec![
        (
            "uptime_ms",
            Json::num(state.started.elapsed().as_millis() as f64),
        ),
        ("graphs", Json::num(state.registry.len() as f64)),
        (
            "on_disk",
            Json::num(state.registry.store().map_or(0, |s| s.len()) as f64),
        ),
        ("queue_capacity", Json::num(cfg.queue_capacity as f64)),
        ("io_threads", Json::num(cfg.effective_io_threads() as f64)),
        ("workers", Json::num(cfg.effective_workers() as f64)),
        (
            "solver_workers",
            Json::num(cfg.effective_solver_workers() as f64),
        ),
        ("conn_limit", Json::num(cfg.effective_conn_limit() as f64)),
        ("job_ttl_ms", Json::num(cfg.job_ttl.as_millis() as f64)),
        (
            "max_budget_ms",
            match cfg.max_budget_ms {
                Some(ms) => Json::num(ms as f64),
                None => Json::Null,
            },
        ),
        (
            "requests_total",
            Json::num(state.metrics.requests_total.load(Ordering::Relaxed) as f64),
        ),
        (
            "solves_total",
            Json::num(state.metrics.solves_total.load(Ordering::Relaxed) as f64),
        ),
        (
            "result_cache_hits",
            Json::num(state.results.hits.load(Ordering::Relaxed) as f64),
        ),
        (
            "result_cache_misses",
            Json::num(state.results.misses.load(Ordering::Relaxed) as f64),
        ),
    ];
    // Queue wait as a first-class stat: the histogram the solver loop
    // feeds, summarized as quantiles (log2 buckets: within 2x).
    let qw = state.obs.queue_wait.snapshot();
    let q = |q: f64| match qw.quantile_us(q) {
        Some(us) => Json::num(us as f64 / 1e3),
        None => Json::Null,
    };
    fields.push(("queue_wait_count", Json::num(qw.count() as f64)));
    fields.push(("queue_wait_p50_ms", q(0.50)));
    fields.push(("queue_wait_p90_ms", q(0.90)));
    fields.push(("queue_wait_p99_ms", q(0.99)));
    fields.extend(gauges(state));
    Response::json(
        200,
        Json::Obj(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        ),
    )
}

fn metrics(state: &ServiceState) -> Response {
    let m = &state.metrics;
    let totals = plock(&state.core_totals).clone();
    let mut out = String::new();
    let mut counter = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} counter\n{name} {value}\n"
        ));
    };
    counter(
        "lazymc_requests_total",
        "HTTP requests handled",
        m.requests_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_bad_requests_total",
        "Requests answered with a 4xx/5xx status",
        m.bad_requests_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_http_conns_accepted_total",
        "TCP connections accepted by the reactor",
        m.conns_accepted_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_http_conns_rejected_total",
        "Connections refused with 503 at the connection limit",
        m.conns_rejected_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_http_read_stalls_total",
        "Reads that returned WouldBlock mid-request (partial receive)",
        m.read_stalls_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_http_write_stalls_total",
        "Writes that left response bytes buffered (partial send)",
        m.write_stalls_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_http_request_timeouts_total",
        "Requests answered 408 after stalling past the read timeout",
        m.request_timeouts_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_solves_total",
        "Solve jobs executed (cache hits excluded)",
        m.solves_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_solves_truncated_total",
        "Solves cut short by their budget",
        m.solves_truncated_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_solver_panics_total",
        "Solve jobs that panicked in the solver",
        m.solver_panics_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_jobs_async_total",
        "Solve jobs submitted with ?async=1",
        state.jobs.async_submitted.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_jobs_cancelled_http_total",
        "Jobs cancelled via DELETE /jobs/<id>",
        state.jobs.cancelled_http.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_jobs_expired_total",
        "Completed async jobs evicted by TTL",
        state.jobs.expired.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_batches_total",
        "POST /solve-batch requests accepted",
        m.batches_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_batch_jobs_total",
        "Individual solve slots carried by batches",
        m.batch_jobs_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_result_cache_hits_total",
        "Solve requests answered from the result cache",
        state.results.hits.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_result_cache_misses_total",
        "Solve requests that missed the result cache",
        state.results.misses.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_result_cache_ttl_evictions_total",
        "Result-cache entries dropped by TTL expiry",
        state.results.ttl_evictions.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_result_cache_size_evictions_total",
        "Result-cache entries dropped by the byte budget",
        state.results.size_evictions.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_graph_lookup_hits_total",
        "Registry lookups that found the graph",
        state.registry.hits.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_graph_lookup_misses_total",
        "Registry lookups for unknown graphs",
        state.registry.misses.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_graphs_evicted_total",
        "Graphs evicted by the registry LRU",
        state.registry.evictions.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_jobs_rejected_total",
        "Solve jobs rejected with 429 (queue full)",
        state.queue.rejected.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_jobs_cancelled_total",
        "Queued jobs reaped after cancellation",
        state.queue.cancelled.load(Ordering::Relaxed),
    );
    // Persistence: the restart-survival story in four counters. A reload
    // after reboot shows up as a lazy load with core_computes flat — the
    // observable proof that preprocessing was reused, not redone.
    counter(
        "lazymc_core_computes_total",
        "k-core decompositions computed in-process (uploads; lazy reloads deserialize instead)",
        state.registry.core_computes.load(Ordering::Relaxed),
    );
    let store = state.registry.store();
    counter(
        "lazymc_snapshot_lazy_loads_total",
        "Graphs reloaded from disk snapshots on first use",
        store.map_or(0, |s| s.lazy_loads.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_snapshot_mmap_total",
        "Graphs mapped zero-copy from disk snapshots (no heap decode)",
        store.map_or(0, |s| s.mmap_loads.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_snapshot_writes_total",
        "Snapshots durably written (uploads and replacements)",
        store.map_or(0, |s| s.writes.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_snapshot_write_errors_total",
        "Snapshot writes that failed (graph resident but not durable)",
        store.map_or(0, |s| s.write_errors.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_snapshots_quarantined_total",
        "Snapshot files renamed aside after failing validation",
        store.map_or(0, |s| s.quarantined.load(Ordering::Relaxed)),
    );
    // Aggregated lazymc_core counters across all completed solves.
    counter(
        "lazymc_core_retained_coreness_total",
        "Neighbourhoods passing the coreness precondition",
        totals.retained_coreness,
    );
    counter(
        "lazymc_core_retained_f1_total",
        "Neighbourhoods surviving filter 1",
        totals.retained_f1,
    );
    counter(
        "lazymc_core_retained_f2_total",
        "Neighbourhoods surviving filter 2",
        totals.retained_f2,
    );
    counter(
        "lazymc_core_retained_f3_total",
        "Neighbourhoods surviving filter 3",
        totals.retained_f3,
    );
    counter(
        "lazymc_core_searched_mc_total",
        "Detailed searches dispatched to the MC solver",
        totals.searched_mc,
    );
    counter(
        "lazymc_core_searched_kvc_total",
        "Detailed searches dispatched to the k-VC solver",
        totals.searched_kvc,
    );
    counter(
        "lazymc_core_mc_nodes_total",
        "Branch-and-bound nodes expanded by the MC solver",
        totals.mc_nodes,
    );
    counter(
        "lazymc_core_vc_nodes_total",
        "Branch-and-bound nodes expanded by the k-VC solver",
        totals.vc_nodes,
    );
    counter(
        "lazymc_core_reduced_vertices_total",
        "Vertices removed by the subgraph reduction pass before detailed searches",
        totals.reduced_vertices,
    );
    counter(
        "lazymc_core_vc_reductions_total",
        "Vertices removed or forced by the k-VC kernelization rules",
        totals.vc_reductions,
    );
    counter(
        "lazymc_core_split_tasks_total",
        "Subtree tasks generated by intra-solve work splitting",
        totals.split_tasks,
    );
    counter(
        "lazymc_core_steals_total",
        "Split tasks executed by a worker other than their generator",
        totals.steals,
    );
    counter(
        "lazymc_core_incumbent_broadcasts_total",
        "Incumbent/early-stop broadcasts between parallel solve workers",
        totals.incumbent_broadcasts,
    );
    counter(
        "lazymc_core_filter_micros_total",
        "Thread-time spent filtering, microseconds",
        totals.filter_time.as_micros() as u64,
    );
    counter(
        "lazymc_core_mc_micros_total",
        "Thread-time in the MC subgraph solver, microseconds",
        totals.mc_time.as_micros() as u64,
    );
    counter(
        "lazymc_core_kvc_micros_total",
        "Thread-time in the k-VC subgraph solver, microseconds",
        totals.kvc_time.as_micros() as u64,
    );
    // Machine-wide scheduler pool: the counters behind the "one stealable
    // pool for all solves" design. Steals and preemptions say how work
    // moved; parks say how often workers ran dry.
    let sched_metrics = state.sched.metrics();
    counter(
        "lazymc_sched_steals_total",
        "Scope tickets taken from another scheduler worker's deque",
        sched_metrics.steals,
    );
    counter(
        "lazymc_sched_parks_total",
        "Times a scheduler worker parked on its doorbell",
        sched_metrics.parks,
    );
    counter(
        "lazymc_sched_preemptions_total",
        "Times a helper re-queued its ticket for more urgent work",
        sched_metrics.preemptions,
    );
    counter(
        "lazymc_sched_unit_runs_total",
        "Scope work units executed by the scheduler",
        sched_metrics.unit_runs,
    );
    counter(
        "lazymc_sched_job_runs_total",
        "Root solve jobs executed by the scheduler",
        sched_metrics.job_runs,
    );
    // Robustness: supervision, fault injection, the job journal and the
    // degraded-health state (see docs/robustness.md).
    counter(
        "lazymc_sched_worker_panics_total",
        "Panics caught inside scheduler workers (task units, jobs, or the worker loop)",
        sched_metrics.worker_panics,
    );
    counter(
        "lazymc_sched_worker_respawns_total",
        "Scheduler worker loops restarted by their supervisor after a panic",
        sched_metrics.worker_respawns,
    );
    counter(
        "lazymc_chaos_injections_total",
        "Faults injected by the chaos harness (0 unless armed)",
        lazymc_chaos::injections_total(),
    );
    let jrnl = state.journal.as_ref();
    counter(
        "lazymc_journal_appends_total",
        "Records appended to the job journal",
        jrnl.map_or(0, |j| j.appends.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_journal_append_errors_total",
        "Journal appends that failed (journal disabled, service degraded)",
        jrnl.map_or(0, |j| j.append_errors.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_journal_rotations_total",
        "Journal segment rotations",
        jrnl.map_or(0, |j| j.rotations.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_jobs_replayed_total",
        "Jobs recovered from the journal at boot",
        jrnl.map_or(0, |j| j.replayed.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_degraded_events_total",
        "Times a component entered the degraded state",
        state.health.degraded_events.load(Ordering::Relaxed),
    );
    // Overload control, lifecycle and the integrity scrubber.
    counter(
        "lazymc_overload_shed_total",
        "Admissions refused 503 by the queue-delay shedding controller",
        state.shedder.shed_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_jobs_doa_total",
        "Queued jobs reaped dead-on-arrival (budget expired before the solve started)",
        m.jobs_doa_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_mem_soft_rejects_total",
        "Uploads rejected 503 at the soft memory watermark",
        state.mem.soft_rejects.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_mem_hard_cancels_total",
        "Running solves cancelled at the hard memory watermark",
        state.mem.hard_cancels.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_journal_reenabled_total",
        "Times the journal self-heal re-probe brought a disabled journal back",
        jrnl.map_or(0, |j| j.reenabled.load(Ordering::Relaxed)),
    );
    counter(
        "lazymc_scrub_passes_total",
        "Background integrity-scrub passes completed",
        m.scrub_passes_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_scrub_corruptions_total",
        "Corruptions found by the scrubber (snapshots quarantined, journal CRC failures)",
        m.scrub_corruptions_total.load(Ordering::Relaxed),
    );
    counter(
        "lazymc_drain_completions_observed_total",
        "Job completions observed by the Retry-After drain-rate estimator",
        state.drain_rate.observed_total.load(Ordering::Relaxed),
    );
    let mut gauge = |name: &str, help: &str, value: u64| {
        out.push_str(&format!(
            "# HELP {name} {help}\n# TYPE {name} gauge\n{name} {value}\n"
        ));
    };
    gauge(
        "lazymc_queue_depth",
        "Pending solve jobs",
        state.queue.depth() as u64,
    );
    gauge(
        "lazymc_jobs_inflight",
        "Solve jobs currently executing in solver workers",
        state.jobs.jobs_inflight.load(Ordering::Relaxed),
    );
    let (jobs_stored, job_store_bytes) = state.jobs.stats();
    gauge(
        "lazymc_jobs_stored",
        "Job records tracked (queued, running, retained results)",
        jobs_stored as u64,
    );
    gauge(
        "lazymc_job_store_bytes",
        "Accounted bytes of retained async-job results",
        job_store_bytes as u64,
    );
    gauge(
        "lazymc_http_open_connections",
        "Connections currently registered with the reactors",
        m.open_connections.load(Ordering::Relaxed),
    );
    gauge(
        "lazymc_http_buffered_bytes",
        "Request bytes buffered in userspace across all connections",
        m.buffered_bytes.load(Ordering::Relaxed),
    );
    gauge(
        "lazymc_result_cache_bytes",
        "Accounted bytes held by the result cache",
        state.results.bytes() as u64,
    );
    gauge(
        "lazymc_result_cache_entries",
        "Entries held by the result cache",
        state.results.len() as u64,
    );
    gauge(
        "lazymc_graphs_resident",
        "Graphs currently resident",
        state.registry.len() as u64,
    );
    let (graphs_mapped, mapped_bytes) = state
        .registry
        .entries()
        .iter()
        .fold((0u64, 0u64), |(n, b), e| {
            (n + u64::from(e.is_mapped()), b + e.graph.mapped_bytes())
        });
    gauge(
        "lazymc_graphs_mapped",
        "Resident graphs served zero-copy from a snapshot mapping",
        graphs_mapped,
    );
    gauge(
        "lazymc_mapped_bytes",
        "Bytes of snapshot files currently mapped (page-cache-backed, not daemon heap)",
        mapped_bytes,
    );
    gauge(
        "lazymc_snapshots_on_disk",
        "Snapshot files indexed in the data dir",
        store.map_or(0, |s| s.len()) as u64,
    );
    gauge(
        "lazymc_snapshot_disk_bytes",
        "Total bytes of indexed snapshots",
        store.map_or(0, |s| s.total_bytes()),
    );
    gauge(
        "lazymc_uptime_seconds",
        "Seconds since the daemon started",
        state.started.elapsed().as_secs(),
    );
    gauge(
        "lazymc_degraded",
        "1 when any component is degraded (reasons in /healthz)",
        u64::from(state.health.is_degraded()),
    );
    gauge(
        "lazymc_journal_pending",
        "Admitted-but-not-completed jobs tracked by the journal",
        jrnl.map_or(0, |j| j.pending_len()) as u64,
    );
    gauge(
        "lazymc_draining",
        "1 while the daemon is draining (listener closed, /readyz answers 503)",
        u64::from(state.is_draining()),
    );
    gauge(
        "lazymc_overload_shedding",
        "1 while the queue-delay controller is shedding lowest-priority admissions",
        u64::from(state.shedder.is_shedding()),
    );
    gauge(
        "lazymc_retry_after_seconds",
        "Retry-After the daemon would attach to a backpressure response right now",
        state.drain_rate.retry_after(state.queue.depth()),
    );
    gauge(
        "lazymc_mem_live_bytes",
        "Live heap bytes per the counting allocator (0 when untracked)",
        state.mem.live_bytes(),
    );
    gauge(
        "lazymc_mem_soft_limit_bytes",
        "Soft memory watermark (80% of --max-memory-bytes; 0 when unset)",
        state.mem.soft_bytes().unwrap_or(0),
    );
    gauge(
        "lazymc_mem_hard_limit_bytes",
        "Hard memory watermark (--max-memory-bytes; 0 when unset)",
        state.mem.hard_bytes().unwrap_or(0),
    );
    gauge(
        "lazymc_mem_tracked",
        "1 when this process routes allocations through the counting allocator",
        u64::from(state.mem.tracked()),
    );
    gauge(
        "lazymc_sched_workers",
        "Worker threads in the machine-wide scheduler pool",
        sched_metrics.workers.len() as u64,
    );
    // Per-worker scheduler series (labeled, so hand-rendered): cumulative
    // busy seconds and the per-scrape-window thread-efficiency gauge.
    let busy_ns: Vec<u64> = sched_metrics.workers.iter().map(|w| w.busy_ns).collect();
    let efficiency = state.obs.sched_window.efficiency(&busy_ns);
    out.push_str(
        "# HELP lazymc_sched_busy_seconds_total Seconds each scheduler worker spent executing task bodies\n\
         # TYPE lazymc_sched_busy_seconds_total counter\n",
    );
    for (i, b) in busy_ns.iter().enumerate() {
        out.push_str(&format!(
            "lazymc_sched_busy_seconds_total{{worker=\"{i}\"}} {:.6}\n",
            *b as f64 / 1e9
        ));
    }
    out.push_str(
        "# HELP lazymc_sched_thread_efficiency Busy fraction of each scheduler worker over the last scrape window\n\
         # TYPE lazymc_sched_thread_efficiency gauge\n",
    );
    for (i, e) in efficiency.iter().enumerate() {
        out.push_str(&format!(
            "lazymc_sched_thread_efficiency{{worker=\"{i}\"}} {e:.6}\n"
        ));
    }
    out.push_str(&format!(
        "# HELP lazymc_drain_rate_per_sec Observed job completions per second (10s window)\n\
         # TYPE lazymc_drain_rate_per_sec gauge\n\
         lazymc_drain_rate_per_sec {:.3}\n",
        state.drain_rate.per_sec()
    ));
    out.push_str(
        "# HELP lazymc_queue_depth_by_priority Pending solve jobs per priority level\n\
         # TYPE lazymc_queue_depth_by_priority gauge\n",
    );
    for (p, n) in state.queue.depth_by_priority() {
        out.push_str(&format!(
            "lazymc_queue_depth_by_priority{{priority=\"{p}\"}} {n}\n"
        ));
    }
    // Build identity as the conventional constant-1 info gauge.
    out.push_str("# HELP lazymc_build_info Build identity of the running daemon\n");
    out.push_str("# TYPE lazymc_build_info gauge\n");
    out.push_str(&format!(
        "lazymc_build_info{{version=\"{}\",git_sha=\"{}\"}} 1\n",
        env!("CARGO_PKG_VERSION"),
        option_env!("LAZYMC_GIT_SHA").unwrap_or("unknown"),
    ));
    // Latency histograms (HTTP per route, queue wait, solve wall,
    // per-phase solve): proper Prometheus histogram families.
    state.obs.render_prometheus(&mut out);
    Response::text(200, "text/plain; version=0.0.4", out)
}
