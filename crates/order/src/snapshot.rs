//! Serialization of [`KCore`] into `.lmcs` snapshot sections.
//!
//! The coreness array and the sequential peel order are the artifacts the
//! service's registry precomputes once per graph; embedding them in the
//! graph's snapshot means a daemon restart reloads them instead of paying
//! the O(n + m) peeling again. The degeneracy is not stored — it is the
//! maximum of the coreness array and is recomputed in O(n) on extract,
//! which doubles as a consistency check surface.

use crate::kcore::KCore;
use lazymc_graph::snapshot::{SectionData, Snapshot, SEC_CORENESS, SEC_PEEL_ORDER};
use lazymc_graph::VertexId;

/// Writes `kc` into `snap` as coreness + peel-order sections. The peel
/// order section is omitted when the decomposition has none (parallel
/// variants produce an empty order).
pub fn embed_kcore(snap: &mut Snapshot, kc: &KCore) {
    snap.push_section(SEC_CORENESS, SectionData::U32(kc.coreness.clone()));
    if !kc.peel_order.is_empty() {
        snap.push_section(SEC_PEEL_ORDER, SectionData::U32(kc.peel_order.clone()));
    }
}

/// Reconstructs a [`KCore`] from snapshot sections, validating shape: the
/// coreness length must match the vertex count, and a present peel order
/// must be a permutation of the vertices. Returns `Err` on any mismatch
/// rather than handing the solver a decomposition it cannot trust.
pub fn extract_kcore(snap: &Snapshot) -> Result<KCore, String> {
    let n = snap.n as usize;
    let coreness = snap
        .u32_section(SEC_CORENESS)
        .ok_or("snapshot has no coreness section")?
        .to_vec();
    if coreness.len() != n {
        return Err(format!(
            "coreness section has {} entries for {} vertices",
            coreness.len(),
            n
        ));
    }
    let peel_order: Vec<VertexId> = match snap.u32_section(SEC_PEEL_ORDER) {
        None => Vec::new(),
        Some(order) => {
            if order.len() != n {
                return Err(format!(
                    "peel order has {} entries for {} vertices",
                    order.len(),
                    n
                ));
            }
            let mut seen = vec![false; n];
            for &v in order {
                let Some(slot) = seen.get_mut(v as usize) else {
                    return Err(format!("peel order names out-of-range vertex {v}"));
                };
                if std::mem::replace(slot, true) {
                    return Err(format!("peel order repeats vertex {v}"));
                }
            }
            order.to_vec()
        }
    };
    let degeneracy = coreness.iter().copied().max().unwrap_or(0);
    Ok(KCore {
        coreness,
        degeneracy,
        peel_order,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::{kcore_parallel, kcore_sequential};
    use lazymc_graph::gen;

    #[test]
    fn kcore_round_trips_through_snapshot_bytes() {
        for seed in 0..3 {
            let g = gen::planted_clique(120, 0.06, 8, seed);
            let kc = kcore_sequential(&g);
            let mut snap = Snapshot::from_graph(&g);
            embed_kcore(&mut snap, &kc);
            let back = Snapshot::decode(&snap.encode()).unwrap();
            assert_eq!(back.graph().unwrap(), g);
            let kc2 = extract_kcore(&back).unwrap();
            assert_eq!(kc2, kc, "seed {seed}");
        }
    }

    #[test]
    fn parallel_kcore_without_peel_order_round_trips() {
        let g = gen::gnp(100, 0.08, 5);
        let kc = kcore_parallel(&g);
        assert!(kc.peel_order.is_empty());
        let mut snap = Snapshot::from_graph(&g);
        embed_kcore(&mut snap, &kc);
        let back = Snapshot::decode(&snap.encode()).unwrap();
        assert_eq!(extract_kcore(&back).unwrap(), kc);
    }

    #[test]
    fn empty_graph_round_trips() {
        let g = lazymc_graph::CsrGraph::empty(0);
        let kc = kcore_sequential(&g);
        let mut snap = Snapshot::from_graph(&g);
        embed_kcore(&mut snap, &kc);
        let kc2 = extract_kcore(&Snapshot::decode(&snap.encode()).unwrap()).unwrap();
        assert_eq!(kc2, kc);
    }

    #[test]
    fn extract_rejects_malformed_sections() {
        let g = gen::complete(5);
        let kc = kcore_sequential(&g);
        // Missing coreness.
        let snap = Snapshot::from_graph(&g);
        assert!(extract_kcore(&snap).is_err());
        // Wrong coreness length.
        let mut snap = Snapshot::from_graph(&g);
        snap.push_section(SEC_CORENESS, SectionData::U32(vec![1, 2]));
        assert!(extract_kcore(&snap).is_err());
        // Peel order with a repeated vertex.
        let mut snap = Snapshot::from_graph(&g);
        embed_kcore(&mut snap, &kc);
        snap.push_section(SEC_PEEL_ORDER, SectionData::U32(vec![0, 0, 1, 2, 3]));
        assert!(extract_kcore(&snap).is_err());
        // Peel order with an out-of-range vertex.
        let mut snap = Snapshot::from_graph(&g);
        embed_kcore(&mut snap, &kc);
        snap.push_section(SEC_PEEL_ORDER, SectionData::U32(vec![0, 1, 2, 3, 99]));
        assert!(extract_kcore(&snap).is_err());
        // Degeneracy is recomputed, not trusted.
        let mut snap = Snapshot::from_graph(&g);
        embed_kcore(&mut snap, &kc);
        let kc2 = extract_kcore(&snap).unwrap();
        assert_eq!(kc2.degeneracy, 4);
    }
}
