//! k-vertex-cover branch-and-bound — the paper's algorithmic-choice solver.
//!
//! Filtered neighbourhoods are often extremely dense (paper §III-D), which
//! makes direct MC search expensive; their *complements* are sparse, and a
//! clique of size `s` in `G[N]` is exactly an independent set of size `s` in
//! the complement, i.e. a vertex cover of size `|N| - s`. The paper solves
//! such subgraphs by a per-neighbourhood binary search over k-VC decisions
//! (§IV-E), with a solver implementing:
//!
//! * the Buss kernel (vertices of degree > k are forced into the cover);
//! * kernelization of degree-0/1/2 vertices — only the non-merging degree-2
//!   case, as in the paper;
//! * a polynomial path/cycle solver once the maximum degree drops to 2;
//! * branching on a highest-degree vertex otherwise.

use crate::bitset::{BitMatrix, Bitset};

/// Search statistics for work accounting.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VcStats {
    /// Branch-and-bound tree nodes expanded.
    pub nodes: u64,
}

/// Decides whether `adj` (restricted to `alive`) has a vertex cover of size
/// at most `k`; on success returns the cover.
pub fn vertex_cover_decision_within(
    adj: &BitMatrix,
    alive: &Bitset,
    k: usize,
    stats: Option<&mut VcStats>,
) -> Option<Vec<u32>> {
    let mut solver = VcSolver {
        adj,
        stats: VcStats::default(),
    };
    let mut cover = Vec::new();
    let ok = solver.solve(alive.clone(), k as i64, &mut cover);
    if let Some(out) = stats {
        out.nodes += solver.stats.nodes;
    }
    ok.then_some(cover)
}

/// Decides whether the whole graph has a vertex cover of size ≤ `k`.
pub fn vertex_cover_decision(
    adj: &BitMatrix,
    k: usize,
    stats: Option<&mut VcStats>,
) -> Option<Vec<u32>> {
    vertex_cover_decision_within(adj, &Bitset::full(adj.len()), k, stats)
}

/// Exact minimum vertex cover via binary search over the decision problem,
/// bracketed by a maximal-matching lower bound and a greedy upper bound.
pub fn min_vertex_cover(adj: &BitMatrix, stats: Option<&mut VcStats>) -> Vec<u32> {
    let n = adj.len();
    let alive = Bitset::full(n);
    let lb = matching_lower_bound(adj, &alive);
    let greedy = greedy_cover(adj, &alive);
    let mut best = greedy.clone();
    let (mut lo, mut hi) = (lb, greedy.len());
    let mut local = VcStats::default();
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match vertex_cover_decision(adj, mid, Some(&mut local)) {
            Some(c) => {
                hi = c.len().min(mid);
                best = c;
            }
            None => lo = mid + 1,
        }
    }
    if let Some(out) = stats {
        out.nodes += local.nodes;
    }
    best
}

/// Maximum clique of `adj` via minimum vertex cover of the complement.
///
/// Returns `Some(clique)` with `clique.len() = ω > lb`, or `None` when
/// `ω <= lb`. This is the paper's per-neighbourhood algorithmic choice: the
/// initial decision call alone discharges most neighbourhoods; only when a
/// better clique exists does the binary search refine to the exact optimum.
pub fn max_clique_via_vc(
    adj: &BitMatrix,
    lb: usize,
    stats: Option<&mut VcStats>,
) -> Option<Vec<u32>> {
    let n = adj.len();
    if n == 0 || n <= lb {
        return None;
    }
    let comp = adj.complement();
    let mut local = VcStats::default();
    // ω > lb ⟺ minVC(complement) <= n - lb - 1.
    let k0 = n - lb - 1;
    let first = vertex_cover_decision(&comp, k0, Some(&mut local))?;
    // Refine: binary search down to the true minimum to maximize the clique.
    let alive = Bitset::full(n);
    let mut best_cover = first;
    let (mut lo, mut hi) = (matching_lower_bound(&comp, &alive), best_cover.len());
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        match vertex_cover_decision(&comp, mid, Some(&mut local)) {
            Some(c) => {
                hi = c.len().min(mid);
                best_cover = c;
            }
            None => lo = mid + 1,
        }
    }
    if let Some(out) = stats {
        out.nodes += local.nodes;
    }
    let mut in_cover = vec![false; n];
    for &v in &best_cover {
        in_cover[v as usize] = true;
    }
    let clique: Vec<u32> = (0..n as u32).filter(|&v| !in_cover[v as usize]).collect();
    debug_assert!(adj.is_clique(&clique));
    Some(clique)
}

/// Lower bound: size of a greedily-built maximal matching (every cover must
/// contain at least one endpoint of each matched edge).
pub fn matching_lower_bound(adj: &BitMatrix, alive: &Bitset) -> usize {
    let mut avail = alive.clone();
    let mut matched = 0usize;
    let mut row = Bitset::new(alive.capacity());
    while let Some(v) = avail.first() {
        avail.remove(v);
        avail.intersection_into(adj.row(v), &mut row);
        if let Some(u) = row.first() {
            avail.remove(u);
            matched += 1;
        }
    }
    matched
}

/// Greedy 2-ish-approximation: repeatedly add a maximum-degree vertex.
pub fn greedy_cover(adj: &BitMatrix, alive: &Bitset) -> Vec<u32> {
    let mut alive = alive.clone();
    let mut cover = Vec::new();
    loop {
        let mut best_v = usize::MAX;
        let mut best_d = 0usize;
        for v in alive.iter() {
            let d = adj.degree_within(v, &alive);
            if d > best_d {
                best_d = d;
                best_v = v;
            }
        }
        if best_d == 0 {
            return cover;
        }
        cover.push(best_v as u32);
        alive.remove(best_v);
    }
}

struct VcSolver<'a> {
    adj: &'a BitMatrix,
    stats: VcStats,
}

/// Outcome of a kernelization fixpoint.
struct Kernelized {
    /// Undirected edges remaining.
    m: usize,
    /// A maximum-degree alive vertex (valid when `m > 0`).
    max_v: usize,
    /// Its degree.
    max_d: usize,
}

impl<'a> VcSolver<'a> {
    /// Decision: cover of size ≤ k for the alive subgraph. On success the
    /// chosen vertices are appended to `cover`; on failure `cover` is
    /// restored to its length at entry.
    fn solve(&mut self, mut alive: Bitset, mut k: i64, cover: &mut Vec<u32>) -> bool {
        self.stats.nodes += 1;
        let frame_mark = cover.len();
        // --- Kernelization fixpoint (pushes forced picks onto cover) ----
        let Some(kern) = self.kernelize(&mut alive, &mut k, cover) else {
            cover.truncate(frame_mark);
            return false;
        };
        if kern.m == 0 {
            return true; // kernel picks cover everything
        }
        if k <= 0 {
            cover.truncate(frame_mark);
            return false;
        }
        // Buss counting bound: max degree ≤ k after kernelization, so k
        // vertices cover at most k·max_d edges.
        if kern.m > (k as usize) * kern.max_d {
            cover.truncate(frame_mark);
            return false;
        }
        // --- Polynomial tail: paths and cycles --------------------------
        if kern.max_d <= 2 {
            if self.solve_paths_cycles(&alive, k, cover) {
                return true;
            }
            cover.truncate(frame_mark);
            return false;
        }
        // --- Branch on a maximum-degree vertex --------------------------
        let v = kern.max_v;
        // Option A: v joins the cover.
        let branch_mark = cover.len();
        {
            let mut alive_a = alive.clone();
            alive_a.remove(v);
            cover.push(v as u32);
            if self.solve(alive_a, k - 1, cover) {
                return true;
            }
            cover.truncate(branch_mark);
        }
        // Option B: all of v's alive neighbors join the cover.
        {
            let mut alive_b = alive.clone();
            let mut taken = 0i64;
            let mut row = Bitset::new(alive.capacity());
            alive.intersection_into(self.adj.row(v), &mut row);
            for u in row.iter() {
                cover.push(u as u32);
                alive_b.remove(u);
                taken += 1;
            }
            alive_b.remove(v);
            if self.solve(alive_b, k - taken, cover) {
                return true;
            }
        }
        cover.truncate(frame_mark);
        false
    }

    /// Applies the degree-0/1/2 and Buss rules to a fixpoint. Returns
    /// `None` when the budget `k` is exhausted mid-kernelization, otherwise
    /// the residual edge count and a maximum-degree vertex.
    fn kernelize(
        &self,
        alive: &mut Bitset,
        k: &mut i64,
        cover: &mut Vec<u32>,
    ) -> Option<Kernelized> {
        loop {
            if *k < 0 {
                return None;
            }
            let mut changed = false;
            let mut m2 = 0usize; // sum of degrees over the sweep
            let mut max_v = usize::MAX;
            let mut max_d = 0usize;
            let verts: Vec<usize> = alive.iter().collect();
            for v in verts {
                if !alive.contains(v) {
                    continue; // removed earlier in this sweep
                }
                let d = self.adj.degree_within(v, alive);
                if d == 0 {
                    alive.remove(v); // isolated: never needed in a cover
                    changed = true;
                } else if d as i64 > *k {
                    // Buss rule: more than k incident edges ⇒ v is forced.
                    cover.push(v as u32);
                    alive.remove(v);
                    *k -= 1;
                    changed = true;
                    if *k < 0 {
                        return None;
                    }
                } else if d == 1 {
                    // Take the single neighbor: always at least as good.
                    let u = self.neighbor_within(v, alive).expect("degree 1");
                    cover.push(u as u32);
                    alive.remove(u);
                    alive.remove(v);
                    *k -= 1;
                    changed = true;
                } else if d == 2 {
                    // Non-merging degree-2 rule (the paper implements only
                    // this case): if v's two neighbors are adjacent, taking
                    // both dominates any cover containing v.
                    let (a, b) = self.two_neighbors_within(v, alive);
                    if self.adj.has_edge(a, b) {
                        cover.push(a as u32);
                        cover.push(b as u32);
                        alive.remove(a);
                        alive.remove(b);
                        alive.remove(v);
                        *k -= 2;
                        changed = true;
                    } else {
                        m2 += d;
                        if d > max_d {
                            max_d = d;
                            max_v = v;
                        }
                    }
                } else {
                    m2 += d;
                    if d > max_d {
                        max_d = d;
                        max_v = v;
                    }
                }
            }
            if !changed {
                // Nothing moved this sweep, so m2/max_d describe the whole
                // alive subgraph consistently.
                return Some(Kernelized {
                    m: m2 / 2,
                    max_v,
                    max_d,
                });
            }
        }
    }

    fn neighbor_within(&self, v: usize, alive: &Bitset) -> Option<usize> {
        let mut row = Bitset::new(alive.capacity());
        alive.intersection_into(self.adj.row(v), &mut row);
        row.first()
    }

    fn two_neighbors_within(&self, v: usize, alive: &Bitset) -> (usize, usize) {
        let mut row = Bitset::new(alive.capacity());
        alive.intersection_into(self.adj.row(v), &mut row);
        let a = row.first().expect("degree 2");
        row.remove(a);
        let b = row.first().expect("degree 2");
        (a, b)
    }

    /// All alive vertices have degree ≤ 2: disjoint paths and cycles.
    /// Optimal covers are closed-form; returns whether they fit in `k`.
    /// On failure the caller restores `cover`.
    fn solve_paths_cycles(&mut self, alive: &Bitset, mut k: i64, cover: &mut Vec<u32>) -> bool {
        let mut seen = Bitset::new(alive.capacity());
        let verts: Vec<usize> = alive.iter().collect();
        // Paths first: start walks from endpoints (degree ≤ 1).
        for &v in &verts {
            if seen.contains(v) || self.adj.degree_within(v, alive) > 1 {
                continue;
            }
            // walk the path, taking every second vertex (odd positions)
            let mut prev = usize::MAX;
            let mut cur = v;
            let mut idx = 0usize;
            loop {
                seen.insert(cur);
                if idx % 2 == 1 {
                    cover.push(cur as u32);
                    k -= 1;
                }
                let mut row = Bitset::new(alive.capacity());
                alive.intersection_into(self.adj.row(cur), &mut row);
                if prev != usize::MAX {
                    row.remove(prev);
                }
                // skip already-seen (handles single vertices)
                let next = row.iter().find(|&u| !seen.contains(u));
                match next {
                    Some(nx) => {
                        prev = cur;
                        cur = nx;
                        idx += 1;
                    }
                    None => break,
                }
            }
            if k < 0 {
                return false;
            }
        }
        // Remaining unseen vertices with degree 2 form cycles.
        for &v in &verts {
            if seen.contains(v) {
                continue;
            }
            let mut cycle = Vec::new();
            let mut prev = usize::MAX;
            let mut cur = v;
            loop {
                seen.insert(cur);
                cycle.push(cur);
                let mut row = Bitset::new(alive.capacity());
                alive.intersection_into(self.adj.row(cur), &mut row);
                if prev != usize::MAX {
                    row.remove(prev);
                }
                let next = row.iter().find(|&u| !seen.contains(u));
                match next {
                    Some(nx) => {
                        prev = cur;
                        cur = nx;
                    }
                    None => break,
                }
            }
            // Cycle of length L needs ceil(L/2): odd positions, plus the
            // last vertex when L is odd.
            let l = cycle.len();
            for (i, &u) in cycle.iter().enumerate() {
                if i % 2 == 1 {
                    cover.push(u as u32);
                    k -= 1;
                }
            }
            if l % 2 == 1 && l > 1 {
                cover.push(cycle[l - 1] as u32);
                k -= 1;
            }
            if k < 0 {
                return false;
            }
        }
        true
    }
}

/// Verifies `cover` touches every edge of the alive subgraph (tests).
pub fn is_vertex_cover(adj: &BitMatrix, alive: &Bitset, cover: &[u32]) -> bool {
    let mut covered = vec![false; adj.len()];
    for &v in cover {
        covered[v as usize] = true;
    }
    for u in alive.iter() {
        for w in 0..adj.len() {
            if alive.contains(w) && adj.has_edge(u, w) && !covered[u] && !covered[w] {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn from_edges(n: usize, edges: &[(usize, usize)]) -> BitMatrix {
        let mut m = BitMatrix::new(n);
        for &(u, v) in edges {
            m.add_edge(u, v);
        }
        m
    }

    #[test]
    fn single_edge_needs_one() {
        let m = from_edges(2, &[(0, 1)]);
        assert!(vertex_cover_decision(&m, 1, None).is_some());
        assert!(vertex_cover_decision(&m, 0, None).is_none());
    }

    #[test]
    fn triangle_needs_two() {
        let m = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(vertex_cover_decision(&m, 1, None).is_none());
        let c = vertex_cover_decision(&m, 2, None).unwrap();
        assert!(is_vertex_cover(&m, &Bitset::full(3), &c));
        assert!(c.len() <= 2);
    }

    #[test]
    fn star_needs_one() {
        let m = from_edges(6, &[(0, 1), (0, 2), (0, 3), (0, 4), (0, 5)]);
        let c = vertex_cover_decision(&m, 1, None).unwrap();
        assert_eq!(c, vec![0]);
    }

    #[test]
    fn path_cover_sizes() {
        // P_n needs floor(n/2)
        for n in 2..10usize {
            let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            let m = from_edges(n, &edges);
            let mvc = min_vertex_cover(&m, None);
            assert_eq!(mvc.len(), n / 2, "path n={n}");
            assert!(is_vertex_cover(&m, &Bitset::full(n), &mvc));
        }
    }

    #[test]
    fn cycle_cover_sizes() {
        // C_n needs ceil(n/2)
        for n in 3..10usize {
            let mut edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
            edges.push((n - 1, 0));
            let m = from_edges(n, &edges);
            let mvc = min_vertex_cover(&m, None);
            assert_eq!(mvc.len(), n.div_ceil(2), "cycle n={n}");
            assert!(is_vertex_cover(&m, &Bitset::full(n), &mvc));
        }
    }

    #[test]
    fn complete_graph_cover_is_n_minus_one() {
        for n in 2..8usize {
            let mut edges = Vec::new();
            for u in 0..n {
                for v in u + 1..n {
                    edges.push((u, v));
                }
            }
            let m = from_edges(n, &edges);
            assert_eq!(min_vertex_cover(&m, None).len(), n - 1, "K{n}");
        }
    }

    #[test]
    fn empty_graph_cover_is_empty() {
        let m = BitMatrix::new(5);
        assert!(min_vertex_cover(&m, None).is_empty());
        assert!(vertex_cover_decision(&m, 0, None).is_some());
    }

    #[test]
    fn clique_via_vc_matches_direct() {
        use crate::mc::max_clique_exact;
        // assorted small graphs
        let graphs = vec![
            from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)]),
            from_edges(5, &[(0, 1), (0, 2), (0, 3), (0, 4), (1, 2), (3, 4)]),
            from_edges(4, &[]),
        ];
        for m in graphs {
            let direct = max_clique_exact(&m);
            let via = max_clique_via_vc(&m, 0, None).unwrap_or_default();
            // edgeless graphs: ω = 1 > lb = 0, both should find a vertex
            assert_eq!(direct.len(), via.len().max(direct.len().min(via.len())));
            assert_eq!(direct.len(), via.len());
            assert!(m.is_clique(&via));
        }
    }

    #[test]
    fn clique_via_vc_respects_lower_bound() {
        let m = from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        assert!(max_clique_via_vc(&m, 3, None).is_none());
        assert_eq!(max_clique_via_vc(&m, 2, None).unwrap().len(), 3);
    }

    #[test]
    fn matching_bound_is_a_lower_bound() {
        let m = from_edges(6, &[(0, 1), (2, 3), (4, 5), (1, 2), (3, 4)]);
        let alive = Bitset::full(6);
        let lb = matching_lower_bound(&m, &alive);
        let mvc = min_vertex_cover(&m, None).len();
        assert!(lb <= mvc);
    }

    #[test]
    fn stats_accumulate() {
        let m = from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)]);
        let mut st = VcStats::default();
        let _ = min_vertex_cover(&m, Some(&mut st));
        assert!(st.nodes > 0);
    }
}
