//! Request trace ids.
//!
//! Ids must be unique enough to correlate log lines, cheap to mint on
//! the reactor thread, and safe to echo back into an HTTP header. No
//! RNG: a per-process seed (wall clock + pid, mixed through
//! SplitMix64) plus a monotone counter gives `seed-counter` ids like
//! `a3f91c2e5b7d0486-0000002a` that never collide within a process and
//! practically never across daemon restarts.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;

/// Longest inbound `X-Request-Id` the daemon will honour; anything
/// longer (or containing unsafe bytes) gets a generated id instead.
pub const MAX_TRACE_ID_LEN: usize = 64;

static SEQ: AtomicU64 = AtomicU64::new(0);
static SEED: OnceLock<u64> = OnceLock::new();

/// SplitMix64 finalizer — enough mixing to keep restart seeds distinct.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seed() -> u64 {
    *SEED.get_or_init(|| {
        let now = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0);
        mix(now ^ (std::process::id() as u64).rotate_left(32))
    })
}

/// Mints a fresh trace id: `"{seed:016x}-{counter:08x}"`.
pub fn generate() -> String {
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    format!("{:016x}-{n:08x}", seed())
}

/// Whether an inbound `X-Request-Id` value is safe to adopt and echo:
/// non-empty, bounded, and made of header-safe characters (alphanumeric
/// plus `-`, `_`, `.`). Everything else is rejected so a client cannot
/// smuggle header-splitting bytes or unbounded data into responses and
/// log lines.
pub fn valid(id: &str) -> bool {
    !id.is_empty()
        && id.len() <= MAX_TRACE_ID_LEN
        && id
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.')
}

/// Adopts a valid inbound id or mints a fresh one.
pub fn adopt_or_generate(inbound: Option<&str>) -> String {
    match inbound {
        Some(id) if valid(id) => id.to_string(),
        _ => generate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generated_ids_are_unique_and_valid() {
        let a = generate();
        let b = generate();
        assert_ne!(a, b);
        assert!(valid(&a), "{a}");
        assert!(valid(&b), "{b}");
        assert_eq!(a.len(), 16 + 1 + 8);
    }

    #[test]
    fn validation_rejects_unsafe_ids() {
        assert!(valid("abc-123_x.y"));
        assert!(!valid(""));
        assert!(!valid("has space"));
        assert!(!valid("newline\r\ninjection"));
        assert!(!valid("null\0byte"));
        assert!(!valid(&"x".repeat(MAX_TRACE_ID_LEN + 1)));
        assert!(valid(&"x".repeat(MAX_TRACE_ID_LEN)));
    }

    #[test]
    fn adoption_prefers_valid_inbound() {
        assert_eq!(adopt_or_generate(Some("client-id-7")), "client-id-7");
        let minted = adopt_or_generate(Some("bad id"));
        assert_ne!(minted, "bad id");
        assert!(valid(&minted));
        assert!(valid(&adopt_or_generate(None)));
    }

    #[test]
    fn concurrent_generation_never_collides() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let local: Vec<String> = (0..1000).map(|_| generate()).collect();
                    let mut seen = seen.lock().unwrap();
                    for id in local {
                        assert!(seen.insert(id));
                    }
                });
            }
        });
        assert_eq!(seen.into_inner().unwrap().len(), 4000);
    }
}
