//! k-core decomposition and vertex ordering.
//!
//! Vertex ordering is the single most impactful knob in branch-and-bound
//! maximum clique search (paper §IV-F): ordering by *increasing coreness*
//! bounds every right-neighbourhood by the vertex's coreness, which keeps
//! all subproblems small.
//!
//! This crate provides:
//!
//! * [`kcore::kcore_sequential`] — Matula–Beck bucket peeling, O(n+m), also
//!   yielding the *peeling order*;
//! * [`kcore::kcore_parallel`] — round-based parallel peeling (rayon); no
//!   unique peel order exists here, which is exactly why the paper sorts by
//!   (coreness, degree) instead;
//! * [`kcore::kcore_with_floor`] — the paper's `KCore(G, |C*|)`: exact
//!   coreness only for vertices that can matter given the incumbent;
//! * [`sort::par_counting_sort_by_key`] — a parallel stable counting sort
//!   standing in for SAPCo sort \[25\] (see DESIGN.md §7);
//! * [`relabel::VertexOrder`] — the (coreness asc, degree asc) relabelling
//!   used throughout LazyMC;
//! * [`snapshot`] — [`KCore`] serialization into `.lmcs` snapshot sections,
//!   so a persisted graph reloads its decomposition instead of re-peeling.
//!
//! ```
//! use lazymc_graph::gen;
//! use lazymc_order::{kcore_sequential, coreness_degree_order};
//!
//! let g = gen::planted_clique(100, 0.03, 8, 1);
//! let kc = kcore_sequential(&g);
//! assert!(kc.degeneracy >= 7); // the planted 8-clique forces a 7-core
//! assert!(kc.omega_upper_bound() >= 8);
//! let order = coreness_degree_order(&g, &kc.coreness);
//! // highest relabelled id belongs to a deepest-core vertex
//! let top = order.to_original((g.num_vertices() - 1) as u32);
//! assert_eq!(kc.coreness[top as usize], kc.degeneracy);
//! ```

pub mod kcore;
pub mod relabel;
pub mod snapshot;
pub mod sort;

pub use kcore::{kcore_parallel, kcore_sequential, kcore_with_floor, KCore, KCoreView};
pub use relabel::{coreness_degree_order, VertexOrder};
pub use snapshot::{embed_kcore, extract_kcore};
pub use sort::par_counting_sort_by_key;
