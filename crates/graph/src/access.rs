//! One read-only access surface over every graph representation.
//!
//! The solver pipeline (k-core peeling, degree heuristics, lazy
//! neighbourhood extraction) only ever needs three primitives from a
//! graph: vertex count, edge count, and a sorted neighbour slice. This
//! trait captures exactly those, so the same kernels run unchanged over
//! a heap [`CsrGraph`] and a zero-copy [`MappedSnapshot`] whose CSR
//! arrays live in a page-cache-backed `mmap`.
//!
//! The trait is deliberately dyn-safe: pipeline entry points take
//! `&dyn GraphAccess` and rely on implicit unsize coercion from
//! `&CsrGraph` / `&GraphStore`, so call sites needed no churn and there
//! is no monomorphization bloat. The virtual call shows up once per
//! vertex in the peeling loops and once per memoized neighbourhood
//! build in `LazyGraph` — amortized to noise against the work behind it.
//!
//! [`MappedSnapshot`]: crate::mmap::MappedSnapshot

use crate::csr::CsrGraph;
use crate::VertexId;

/// Read-only view of an undirected graph with sorted adjacency lists.
///
/// `Sync` is a supertrait because every consumer shares the graph across
/// rayon worker threads (parallel peeling, heuristic scans, prepopulate).
pub trait GraphAccess: Sync {
    /// Number of vertices.
    fn num_vertices(&self) -> usize;

    /// Number of undirected edges.
    fn num_edges(&self) -> usize;

    /// Sorted, deduplicated neighbours of `v`.
    fn neighbors(&self, v: VertexId) -> &[VertexId];

    /// Degree of vertex `v`.
    fn degree(&self, v: VertexId) -> usize {
        self.neighbors(v).len()
    }

    /// Degrees of all vertices, in vertex order (as `u32`, matching
    /// [`CsrGraph::degrees`] — a degree always fits a `VertexId`).
    fn degrees(&self) -> Vec<u32> {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId) as u32)
            .collect()
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(v as VertexId))
            .max()
            .unwrap_or(0)
    }

    /// Edge density m / (n choose 2).
    fn density(&self) -> f64 {
        let n = self.num_vertices();
        if n < 2 {
            return 0.0;
        }
        let possible = n as f64 * (n as f64 - 1.0) / 2.0;
        self.num_edges() as f64 / possible
    }

    /// Whether edge {u, v} exists (binary search in the sorted list).
    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// Whether `verts` (distinct vertices) form a clique.
    fn is_clique(&self, verts: &[VertexId]) -> bool {
        for (i, &u) in verts.iter().enumerate() {
            for &v in &verts[i + 1..] {
                if !self.has_edge(u, v) {
                    return false;
                }
            }
        }
        true
    }

    /// Extracts the subgraph induced by `verts` into a fresh heap CSR.
    ///
    /// Returns the subgraph (vertices relabelled `0..verts.len()` in the
    /// order given) plus the mapping from new id back to original id.
    /// Panics on duplicate or out-of-range vertices, matching
    /// [`CsrGraph::induced_subgraph`].
    fn induced_subgraph(&self, verts: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
        let n = self.num_vertices();
        let mut new_id = vec![crate::NO_VERTEX; n];
        for (i, &v) in verts.iter().enumerate() {
            assert!((v as usize) < n, "induced_subgraph: vertex out of range");
            assert!(
                new_id[v as usize] == crate::NO_VERTEX,
                "induced_subgraph: duplicate vertex"
            );
            new_id[v as usize] = i as VertexId;
        }
        let mut offsets = Vec::with_capacity(verts.len() + 1);
        offsets.push(0usize);
        let mut targets = Vec::new();
        for &v in verts {
            for &w in self.neighbors(v) {
                let nw = new_id[w as usize];
                if nw != crate::NO_VERTEX {
                    targets.push(nw);
                }
            }
            // Neighbour lists are sorted by original id; relabelling may
            // break that order, so re-sort this row.
            let row_start = *offsets.last().unwrap_or(&0);
            targets[row_start..].sort_unstable();
            offsets.push(targets.len());
        }
        (CsrGraph::from_parts(offsets, targets), verts.to_vec())
    }
}

impl GraphAccess for CsrGraph {
    fn num_vertices(&self) -> usize {
        CsrGraph::num_vertices(self)
    }

    fn num_edges(&self) -> usize {
        CsrGraph::num_edges(self)
    }

    fn neighbors(&self, v: VertexId) -> &[VertexId] {
        CsrGraph::neighbors(self, v)
    }

    // Delegate to the tuned inherent implementations rather than the
    // generic defaults where CsrGraph has something better.
    fn degree(&self, v: VertexId) -> usize {
        CsrGraph::degree(self, v)
    }

    fn degrees(&self) -> Vec<u32> {
        CsrGraph::degrees(self)
    }

    fn max_degree(&self) -> usize {
        CsrGraph::max_degree(self)
    }

    fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        CsrGraph::has_edge(self, u, v)
    }

    fn is_clique(&self, verts: &[VertexId]) -> bool {
        CsrGraph::is_clique(self, verts)
    }

    fn induced_subgraph(&self, verts: &[VertexId]) -> (CsrGraph, Vec<VertexId>) {
        CsrGraph::induced_subgraph(self, verts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dyn_access_matches_inherent_csr() {
        let g = gen::gnp(200, 0.05, 7);
        let d: &dyn GraphAccess = &g;
        assert_eq!(d.num_vertices(), g.num_vertices());
        assert_eq!(d.num_edges(), g.num_edges());
        assert_eq!(d.degrees(), g.degrees());
        assert_eq!(d.max_degree(), g.max_degree());
        assert!((d.density() - g.density()).abs() < 1e-12);
        for v in 0..g.num_vertices() as VertexId {
            assert_eq!(d.neighbors(v), g.neighbors(v));
            assert_eq!(d.degree(v), g.degree(v));
        }
    }

    #[test]
    fn default_induced_subgraph_matches_csr() {
        let g = gen::gnp(120, 0.1, 3);
        let verts: Vec<VertexId> = (0..60).map(|i| i * 2).collect();
        let (a, map_a) = CsrGraph::induced_subgraph(&g, &verts);
        // Force the *default* trait implementation through a shim type.
        struct Shim<'a>(&'a CsrGraph);
        impl GraphAccess for Shim<'_> {
            fn num_vertices(&self) -> usize {
                self.0.num_vertices()
            }
            fn num_edges(&self) -> usize {
                self.0.num_edges()
            }
            fn neighbors(&self, v: VertexId) -> &[VertexId] {
                self.0.neighbors(v)
            }
        }
        let (b, map_b) = GraphAccess::induced_subgraph(&Shim(&g), &verts);
        assert_eq!(map_a, map_b);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }
}
