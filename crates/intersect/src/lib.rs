//! Early-exit set intersection kernels — the paper's §IV-B contribution.
//!
//! Graph-mining time is dominated by set intersections whose results are
//! only *useful* when they are large enough: a candidate set only matters
//! if it can still produce a clique larger than the incumbent. The paper
//! introduces three operations that abandon work as soon as the outcome is
//! decided:
//!
//! * [`intersect_gt`] (paper Alg. 3) — materializes `A ∩ B` only if its
//!   size exceeds θ; used by the heuristic searches.
//! * [`intersect_size_gt_val`] — returns `|A ∩ B|` if it exceeds θ; used to
//!   find maximum-degree vertices.
//! * [`intersect_size_gt_bool`] (paper Alg. 4) — decides `|A ∩ B| > θ` with
//!   *two* early exits: a failure exit (too many misses) and a success exit
//!   (enough hits are guaranteed even if everything remaining misses);
//!   used by the advance filters.
//!
//! `A` is always a sorted slice; `B` is anything implementing
//! [`Membership`] — a hopscotch hash set on the hot path, or a sorted slice
//! when the lazy graph only has the array representation. Plain (no-exit)
//! variants back the paper's Fig. 5 ablation, and sorted–sorted merge and
//! galloping kernels serve the baselines.
//!
//! ```
//! use lazymc_hopscotch::HopscotchSet;
//! use lazymc_intersect::{intersect_gt, intersect_size_gt_bool};
//!
//! let a = [1u32, 3, 5, 7, 9];
//! let b: HopscotchSet = [3u32, 5, 7, 11].into_iter().collect();
//! // |A ∩ B| = 3 > 2, so the intersection is materialized…
//! let mut out = Vec::new();
//! assert_eq!(intersect_gt(&a, &b, &mut out, 2), Some(3));
//! assert_eq!(out, vec![3, 5, 7]);
//! // …but a threshold of 3 lets the kernel abandon the work early.
//! assert_eq!(intersect_gt(&a, &b, &mut out, 3), None);
//! assert!(intersect_size_gt_bool(&a, &b, 2, true));
//! ```

use lazymc_hopscotch::HopscotchSet;

/// Anything that can answer membership queries for `u32` keys.
///
/// The kernels are generic (and monomorphized) over this trait so the same
/// algorithm runs against a hash set or a sorted array, mirroring the lazy
/// graph's "work with either representation" contexts (paper §IV-A).
pub trait Membership {
    /// Does the set contain `key`?
    fn contains_key(&self, key: u32) -> bool;
    /// Number of elements.
    fn size(&self) -> usize;
}

impl Membership for HopscotchSet {
    #[inline(always)]
    fn contains_key(&self, key: u32) -> bool {
        self.contains(key)
    }
    #[inline(always)]
    fn size(&self) -> usize {
        self.len()
    }
}

/// A sorted `u32` slice answering membership by binary search.
#[derive(Clone, Copy, Debug)]
pub struct SortedSlice<'a>(pub &'a [u32]);

impl Membership for SortedSlice<'_> {
    #[inline(always)]
    fn contains_key(&self, key: u32) -> bool {
        self.0.binary_search(&key).is_ok()
    }
    #[inline(always)]
    fn size(&self) -> usize {
        self.0.len()
    }
}

/// Paper Algorithm 3, `intersect-gt`: writes `A ∩ B` into `out` and returns
/// `Some(|A ∩ B|)` unless it can prove `|A ∩ B| <= theta` first, in which
/// case it returns `None` (leaving `out` with a partial prefix).
///
/// Guarantee: whenever `|A ∩ B| > theta` the result is `Some` with the full
/// sorted intersection in `out`. A `Some` with size `<= theta` is possible
/// only in the boundary case `|A| == theta` (the paper tolerates the same).
pub fn intersect_gt<M: Membership>(
    a: &[u32],
    b: &M,
    out: &mut Vec<u32>,
    theta: usize,
) -> Option<usize> {
    out.clear();
    let n = a.len();
    if n < theta || b.size() < theta {
        return None;
    }
    // Number of misses we may still tolerate while keeping |A∩B| > theta.
    let mut h = (n - theta) as i64;
    for &x in a {
        if !b.contains_key(x) {
            h -= 1;
            if h <= 0 {
                return None;
            }
        } else {
            out.push(x);
        }
    }
    Some(out.len())
}

/// `intersect-size-gt-val`: like [`intersect_gt`] but only counts.
/// Returns `Some(|A ∩ B|)` when the size exceeds `theta` (or completes at
/// the `|A| == theta` boundary), `None` as soon as the bound is violated.
pub fn intersect_size_gt_val<M: Membership>(a: &[u32], b: &M, theta: usize) -> Option<usize> {
    let n = a.len();
    if n < theta || b.size() < theta {
        return None;
    }
    let mut h = (n - theta) as i64;
    let mut hits = 0usize;
    for &x in a {
        if !b.contains_key(x) {
            h -= 1;
            if h <= 0 {
                return None;
            }
        } else {
            hits += 1;
        }
    }
    Some(hits)
}

/// Paper Algorithm 4, `intersect-size-gt-bool`: decides `|A ∩ B| > theta`.
///
/// Two early exits: the *failure* exit fires when so many elements of `A`
/// missed that θ+1 hits are impossible; the *success* exit (`second_exit`)
/// fires when the hits already banked guarantee success even if every
/// remaining element misses. Disabling `second_exit` reproduces the paper's
/// Fig. 5 ablation.
pub fn intersect_size_gt_bool<M: Membership>(
    a: &[u32],
    b: &M,
    theta: usize,
    second_exit: bool,
) -> bool {
    let n = a.len();
    if n <= theta || b.size() <= theta {
        return false;
    }
    let mut h = (n - theta) as i64;
    for (i, &x) in a.iter().enumerate() {
        if !b.contains_key(x) {
            h -= 1;
            if h <= 0 {
                return false; // cannot reach theta+1 hits any more
            }
        } else if second_exit && h > (n - i - 1) as i64 {
            return true; // success even if all remaining elements miss
        }
    }
    h > 0
}

/// Plain full intersection (no early exit): `out = A ∩ B`, returns the size.
/// Baseline for the Fig. 5 ablation.
pub fn intersect_plain<M: Membership>(a: &[u32], b: &M, out: &mut Vec<u32>) -> usize {
    out.clear();
    for &x in a {
        if b.contains_key(x) {
            out.push(x);
        }
    }
    out.len()
}

/// Plain intersection size (no early exit).
pub fn intersect_size_plain<M: Membership>(a: &[u32], b: &M) -> usize {
    let mut hits = 0usize;
    for &x in a {
        if b.contains_key(x) {
            hits += 1;
        }
    }
    hits
}

/// Sorted–sorted merge intersection, the classic two-pointer kernel used by
/// the eager baselines (PMC works off sorted adjacency arrays).
pub fn intersect_sorted(a: &[u32], b: &[u32], out: &mut Vec<u32>) -> usize {
    out.clear();
    let (mut i, mut j) = (0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.len()
}

/// Galloping (exponential-search) intersection for strongly skewed sizes;
/// `a` should be the smaller side. O(|a| · log |b|).
pub fn intersect_gallop(a: &[u32], b: &[u32], out: &mut Vec<u32>) -> usize {
    out.clear();
    let mut lo = 0usize;
    for &x in a {
        if lo >= b.len() {
            break;
        }
        // Exponential probe for an upper bound with b[lo+bound] >= x, then
        // binary search the bracket [lo, lo+bound].
        let mut bound = 1usize;
        while lo + bound < b.len() && b[lo + bound] < x {
            bound <<= 1;
        }
        let end = (lo + bound + 1).min(b.len());
        match b[lo..end].binary_search(&x) {
            Ok(off) => {
                out.push(x);
                lo += off + 1;
            }
            Err(off) => lo += off,
        }
    }
    out.len()
}

/// Merge-based intersection *size* without materializing.
pub fn intersect_size_sorted(a: &[u32], b: &[u32]) -> usize {
    let (mut i, mut j, mut c) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                c += 1;
                i += 1;
                j += 1;
            }
        }
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hset(keys: &[u32]) -> HopscotchSet {
        keys.iter().collect()
    }

    fn naive(a: &[u32], b: &[u32]) -> Vec<u32> {
        a.iter().copied().filter(|x| b.contains(x)).collect()
    }

    #[test]
    fn intersect_gt_materializes_when_above_threshold() {
        let a = [1u32, 3, 5, 7, 9];
        let b = hset(&[3, 5, 7, 11]);
        let mut out = Vec::new();
        let r = intersect_gt(&a, &b, &mut out, 2);
        assert_eq!(r, Some(3));
        assert_eq!(out, vec![3, 5, 7]);
    }

    #[test]
    fn intersect_gt_exits_early_when_below() {
        let a = [1u32, 2, 3, 4, 5];
        let b = hset(&[100, 200, 300]);
        let mut out = Vec::new();
        assert_eq!(intersect_gt(&a, &b, &mut out, 3), None);
    }

    #[test]
    fn intersect_gt_rejects_small_inputs_immediately() {
        let a = [1u32, 2];
        let b = hset(&[1, 2]);
        let mut out = Vec::new();
        // n < theta → cannot possibly exceed theta
        assert_eq!(intersect_gt(&a, &b, &mut out, 3), None);
    }

    #[test]
    fn intersect_gt_boundary_full_containment() {
        // |A| == theta and A ⊆ B: the kernel completes and reports theta,
        // matching the paper's "may return -1 when the size is θ or less".
        let a = [2u32, 4, 6];
        let b = hset(&[2, 4, 6, 8]);
        let mut out = Vec::new();
        assert_eq!(intersect_gt(&a, &b, &mut out, 3), Some(3));
    }

    #[test]
    fn intersect_gt_theta_zero_all_misses() {
        let a = [1u32, 2, 3];
        let b = hset(&[10, 20]);
        let mut out = Vec::new();
        // theta = 0: an empty intersection is not > 0, so None is correct.
        assert_eq!(intersect_gt(&a, &b, &mut out, 0), None);
    }

    #[test]
    fn size_gt_val_matches_gt() {
        let a = [1u32, 3, 5, 7, 9, 11];
        let b = hset(&[1, 5, 9, 11, 13]);
        assert_eq!(intersect_size_gt_val(&a, &b, 3), Some(4));
        assert_eq!(intersect_size_gt_val(&a, &b, 4), None);
    }

    #[test]
    fn size_gt_bool_failure_exit() {
        let a = [1u32, 2, 3, 4];
        let b = hset(&[1]);
        assert!(!intersect_size_gt_bool(&a, &b, 1, true));
        assert!(!intersect_size_gt_bool(&a, &b, 1, false));
    }

    #[test]
    fn size_gt_bool_thresholds_on_full_overlap() {
        let a: Vec<u32> = (0..100).collect();
        let b: HopscotchSet = (0u32..100).collect();
        for theta in [0usize, 1, 50, 98, 99, 100, 150] {
            let expect = 100 > theta; // |A∩B| = 100
            assert_eq!(
                intersect_size_gt_bool(&a, &b, theta, true),
                expect,
                "theta={theta} second=true"
            );
            assert_eq!(
                intersect_size_gt_bool(&a, &b, theta, false),
                expect,
                "theta={theta} second=false"
            );
        }
    }

    #[test]
    fn size_gt_bool_empty_inputs() {
        let b = hset(&[]);
        assert!(!intersect_size_gt_bool(&[], &b, 0, true));
        let b2 = hset(&[1, 2, 3]);
        assert!(!intersect_size_gt_bool(&[], &b2, 0, true));
    }

    #[test]
    fn plain_variants_match_naive() {
        let a = [1u32, 4, 9, 16, 25];
        let bs = [4u32, 9, 10, 25, 30];
        let b = hset(&bs);
        let mut out = Vec::new();
        assert_eq!(intersect_plain(&a, &b, &mut out), 3);
        assert_eq!(out, naive(&a, &bs));
        assert_eq!(intersect_size_plain(&a, &b), 3);
    }

    #[test]
    fn sorted_and_gallop_match_naive() {
        let a = [1u32, 4, 9, 16, 25, 36];
        let b = [2u32, 4, 8, 16, 32, 36, 40, 50];
        let want = naive(&a, &b);
        let mut out = Vec::new();
        assert_eq!(intersect_sorted(&a, &b, &mut out), want.len());
        assert_eq!(out, want);
        assert_eq!(intersect_gallop(&a, &b, &mut out), want.len());
        assert_eq!(out, want);
        assert_eq!(intersect_size_sorted(&a, &b), want.len());
    }

    #[test]
    fn gallop_handles_disjoint_and_empty() {
        let mut out = Vec::new();
        assert_eq!(intersect_gallop(&[], &[1, 2, 3], &mut out), 0);
        assert_eq!(intersect_gallop(&[1, 2, 3], &[], &mut out), 0);
        assert_eq!(intersect_gallop(&[1, 3], &[2, 4], &mut out), 0);
        assert_eq!(intersect_gallop(&[5, 6, 7], &[1, 2, 3], &mut out), 0);
    }

    #[test]
    fn sorted_slice_membership_backend() {
        let a = [1u32, 3, 5, 7];
        let b = [3u32, 7, 8];
        let m = SortedSlice(&b);
        assert_eq!(intersect_size_gt_val(&a, &m, 1), Some(2));
        assert!(intersect_size_gt_bool(&a, &m, 1, true));
        assert!(!intersect_size_gt_bool(&a, &m, 2, true));
    }
}
