//! Integration tests for the ablation matrix: every configuration the
//! experiment harness exercises (Figs. 4–7) must return the same ω on
//! every suite instance. Work-avoidance may only change *cost*, never the
//! answer.

use lazymc::core::{Config, LazyMc, OrderKind, PrePopulate};
use lazymc::graph::suite::{all, Scale};

fn ablation_matrix() -> Vec<(&'static str, Config)> {
    vec![
        ("default", Config::default()),
        (
            "no-early-exit",
            Config {
                early_exit: false,
                second_exit: false,
                ..Config::default()
            },
        ),
        (
            "no-second-exit",
            Config {
                second_exit: false,
                ..Config::default()
            },
        ),
        (
            "prepopulate-all",
            Config {
                prepopulate: PrePopulate::All,
                ..Config::default()
            },
        ),
        (
            "prepopulate-none",
            Config {
                prepopulate: PrePopulate::None,
                ..Config::default()
            },
        ),
        ("phi-0", Config::default().with_density_threshold(0.0)),
        ("phi-1", Config::default().with_density_threshold(1.0)),
        ("sequential", Config::sequential()),
        ("two-threads", Config::default().with_threads(2)),
        (
            "no-probes",
            Config {
                low_core_probes: false,
                ..Config::default()
            },
        ),
        (
            "exact-kcore",
            Config {
                kcore_floor: false,
                ..Config::default()
            },
        ),
        (
            "one-filter-round",
            Config {
                filter_rounds: 1,
                ..Config::default()
            },
        ),
        (
            "four-filter-rounds",
            Config {
                filter_rounds: 4,
                ..Config::default()
            },
        ),
        (
            "peel-order",
            Config {
                order: OrderKind::Peeling,
                ..Config::default()
            },
        ),
        (
            "subgraph-reduction",
            Config {
                subgraph_reduction: true,
                ..Config::default()
            },
        ),
        ("kitchen-sink-off", Config::no_work_avoidance()),
    ]
}

#[test]
fn every_ablation_agrees_on_every_suite_instance() {
    for inst in all() {
        let g = inst.build(Scale::Test);
        let expected = LazyMc::new(Config::default()).solve(&g).size();
        for (label, cfg) in ablation_matrix() {
            let r = LazyMc::new(cfg).solve(&g);
            assert_eq!(
                r.size(),
                expected,
                "instance {} under config {label}",
                inst.name
            );
            assert!(
                g.is_clique(r.vertices()),
                "{}/{label}: non-clique",
                inst.name
            );
        }
    }
}

#[test]
fn metrics_reflect_ablation_choices() {
    let inst = lazymc::graph::suite::by_name("bio-dense").expect("instance");
    let g = inst.build(Scale::Test);

    // prepopulate=All must materialize a sorted neighbourhood per vertex
    // (this implementation pre-builds the representation its filters
    // consume; see lazygraph docs).
    let r = LazyMc::new(Config {
        prepopulate: PrePopulate::All,
        ..Config::default()
    })
    .solve(&g);
    assert_eq!(r.metrics.lazy_built.1, g.num_vertices());

    // prepopulate=None must build strictly lazily (only what was queried).
    let r2 = LazyMc::new(Config {
        prepopulate: PrePopulate::None,
        ..Config::default()
    })
    .solve(&g);
    assert!(r2.metrics.lazy_built.1 <= r.metrics.lazy_built.1);

    // phi extremes route detailed searches to exactly one engine.
    let r3 = LazyMc::new(Config::default().with_density_threshold(0.0)).solve(&g);
    assert_eq!(r3.metrics.searched_mc, 0);
    let r4 = LazyMc::new(Config::default().with_density_threshold(1.0)).solve(&g);
    assert_eq!(r4.metrics.searched_kvc, 0);
}
