//! LazyMC — work-avoiding parallel maximum clique search.
//!
//! The paper's primary contribution (Algorithm 1), assembled from the
//! workspace substrates:
//!
//! ```text
//! LazyMC(G):
//!   1. degree-based heuristic search           (heuristic::degree_heuristic)
//!   2. coreness with incumbent floor           (lazymc_order::kcore_with_floor)
//!   3. (coreness, degree) sort order           (lazymc_order::coreness_degree_order)
//!   4. lazy filtered hashed relabelled graph   (lazymc_lazygraph::LazyGraph)
//!   5. coreness-based heuristic search         (heuristic::coreness_heuristic)
//!   6. systematic search                       (systematic::systematic_search)
//! ```
//!
//! # Example
//!
//! ```
//! use lazymc_core::{Config, LazyMc};
//! use lazymc_graph::gen;
//!
//! let g = gen::planted_clique(300, 0.03, 11, 7);
//! let result = LazyMc::new(Config::default()).solve(&g);
//! assert_eq!(result.size(), 11);
//! assert!(g.is_clique(result.vertices()));
//! ```

pub mod config;
pub mod heuristic;
pub mod incumbent;
pub mod metrics;
pub mod progress;
pub mod systematic;
pub mod zone;

pub use config::{Config, OrderKind, PrePopulate};
pub use incumbent::Incumbent;
pub use metrics::{MetricsSnapshot, PhaseTimes};
pub use progress::{Phase, SolveProgress};
pub use zone::{zone_analysis, ZoneStats};

use lazymc_graph::{GraphAccess, VertexId};
use lazymc_lazygraph::LazyGraph;
use lazymc_order::relabel::level_ranges;
use lazymc_order::{
    coreness_degree_order, kcore_sequential, kcore_with_floor, KCoreView, VertexOrder,
};
pub use lazymc_sched::{Pool as SchedPool, SchedHandle, SchedMetrics, TaskMeta};
use std::time::Instant;
pub use systematic::{Deadline, JobSched};

/// Result of a [`LazyMc::solve`] run.
#[derive(Debug, Clone)]
pub struct SolveResult {
    clique: Vec<VertexId>,
    exact: bool,
    /// Everything measured during the run.
    pub metrics: MetricsSnapshot,
}

impl SolveResult {
    /// ω(G) when [`SolveResult::is_exact`]; otherwise the best clique size
    /// found before the time budget expired (a lower bound on ω).
    pub fn size(&self) -> usize {
        self.clique.len()
    }

    /// Whether the search completed (always true without a time budget).
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// The witness clique, in original vertex ids.
    pub fn vertices(&self) -> &[VertexId] {
        &self.clique
    }

    /// Consumes the result, yielding the witness clique.
    pub fn into_vertices(self) -> Vec<VertexId> {
        self.clique
    }
}

/// The LazyMC solver.
#[derive(Debug, Clone, Default)]
pub struct LazyMc {
    config: Config,
}

impl LazyMc {
    /// Creates a solver with the given configuration.
    pub fn new(config: Config) -> Self {
        LazyMc { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// Finds a maximum clique of `g`. The returned witness is in original
    /// vertex ids; its size is deterministic, its identity need not be.
    pub fn solve(&self, g: &dyn GraphAccess) -> SolveResult {
        let deadline = Deadline::starting_now(self.config.time_budget);
        self.solve_prepared(g, None, &deadline)
    }

    /// [`LazyMc::solve`] for long-running callers that amortize work across
    /// queries: an exact precomputed k-core decomposition of `g` (e.g.
    /// shared by a graph registry) skips the per-solve coreness phase, and
    /// the externally owned [`Deadline`] lets a job budget start ticking at
    /// *enqueue* time rather than solve time. Pass a fresh `Deadline` per
    /// call — `truncated` is sticky.
    ///
    /// `kcore` must come from [`lazymc_order::kcore_sequential`] on this
    /// exact graph; a decomposition without a peel order is recomputed when
    /// the configured order requires one.
    pub fn solve_prepared(
        &self,
        g: &dyn GraphAccess,
        kcore: Option<KCoreView<'_>>,
        deadline: &Deadline,
    ) -> SolveResult {
        self.solve_prepared_observed(g, kcore, deadline, None)
    }

    /// [`LazyMc::solve_prepared`] with live introspection: the solve
    /// publishes its current phase, work counters and incumbent size
    /// into `progress` as it runs, so an observer thread can report on
    /// a solve that has not finished. Passing `None` costs nothing.
    pub fn solve_prepared_observed(
        &self,
        g: &dyn GraphAccess,
        kcore: Option<KCoreView<'_>>,
        deadline: &Deadline,
        progress: Option<&SolveProgress>,
    ) -> SolveResult {
        let result = if self.config.threads > 0 {
            let pool = rayon::ThreadPoolBuilder::new()
                .num_threads(self.config.threads)
                .build()
                .expect("failed to build rayon pool");
            pool.install(|| self.solve_inner(g, kcore, deadline, progress, None))
        } else {
            self.solve_inner(g, kcore, deadline, progress, None)
        };
        if let Some(p) = progress {
            p.set_phase(Phase::Done);
        }
        result
    }

    /// [`LazyMc::solve_prepared_observed`] running on the machine-wide
    /// scheduler instead of a job-scoped thread team: the systematic
    /// sweep and every intra-solve subtree split become stealable tasks
    /// stamped with `meta` (job id, deadline, priority) on the pool
    /// behind `handle`. No thread pool is built — the caller's thread
    /// drives the solve and recruits pool workers through scopes, so a
    /// `threads = 1` config touches the scheduler not at all and stays
    /// bit-identical to the sequential kernels.
    pub fn solve_prepared_on(
        &self,
        g: &dyn GraphAccess,
        kcore: Option<KCoreView<'_>>,
        deadline: &Deadline,
        progress: Option<&SolveProgress>,
        handle: &SchedHandle,
        meta: TaskMeta,
    ) -> SolveResult {
        let sched = JobSched {
            handle: handle.clone(),
            meta,
            width: self.config.sched_width(handle.workers()),
        };
        let result = self.solve_inner(g, kcore, deadline, progress, Some(&sched));
        if let Some(p) = progress {
            p.set_phase(Phase::Done);
        }
        result
    }

    fn solve_inner(
        &self,
        g: &dyn GraphAccess,
        pre: Option<KCoreView<'_>>,
        deadline: &Deadline,
        progress: Option<&SolveProgress>,
        sched: Option<&JobSched>,
    ) -> SolveResult {
        let cfg = &self.config;
        let mut phases = PhaseTimes::default();
        // Observed solves share the incumbent-size cell and the work
        // counters with their progress cell; the search itself is
        // identical either way (same relaxed atomics, same layout).
        let (inc, counters_owned);
        let counters: &metrics::Counters = match progress {
            Some(p) => {
                inc = Incumbent::with_size_cell(p.incumbent_cell());
                &p.counters
            }
            None => {
                inc = Incumbent::new();
                counters_owned = metrics::Counters::default();
                &counters_owned
            }
        };
        let mark = |ph: Phase| {
            if let Some(p) = progress {
                p.set_phase(ph);
            }
        };

        if g.num_vertices() == 0 {
            return SolveResult {
                clique: Vec::new(),
                exact: true,
                metrics: MetricsSnapshot::default(),
            };
        }

        // 1. Degree-based heuristic search (Alg. 1 line 3).
        mark(Phase::DegreeHeuristic);
        let t = Instant::now();
        heuristic::degree_heuristic(g, cfg, &inc);
        phases.degree_heuristic = t.elapsed();
        let omega_degree = inc.size();

        // 2. Coreness, floored at the incumbent (line 4): vertices the
        //    heuristic already rules out never get an exact coreness.
        //    The peeling order requires the exact sequential computation.
        //    A caller-provided exact decomposition (registry amortization)
        //    replaces the whole phase; the floor optimization only avoids
        //    work while *computing* coreness, so exact values are always a
        //    valid substitute.
        mark(Phase::Kcore);
        let t = Instant::now();
        let kc_owned;
        let kc: KCoreView<'_> = match pre {
            Some(kc) if cfg.order != config::OrderKind::Peeling || !kc.peel_order.is_empty() => kc,
            _ => {
                kc_owned = match cfg.order {
                    config::OrderKind::Peeling => kcore_sequential(g),
                    config::OrderKind::CorenessDegree if cfg.kcore_floor => {
                        kcore_with_floor(g, omega_degree as u32)
                    }
                    config::OrderKind::CorenessDegree => kcore_sequential(g),
                };
                kc_owned.view()
            }
        };
        phases.kcore = t.elapsed();

        // 3. Vertex order (line 5): (coreness, degree) counting sort, or
        //    the peeling order itself (paper §IV-F: sequential solvers get
        //    it for free, and it bounds right-neighbourhoods by coreness).
        mark(Phase::Reorder);
        let t = Instant::now();
        let order = match cfg.order {
            config::OrderKind::CorenessDegree => coreness_degree_order(g, kc.coreness),
            config::OrderKind::Peeling => VertexOrder::from_listing(kc.peel_order.to_vec()),
        };
        let levels = level_ranges(&order, kc.coreness, kc.degeneracy);
        phases.reorder = t.elapsed();

        // 4. Lazy graph + pre-population of the must subgraph (line 6).
        mark(Phase::Prepopulate);
        let t = Instant::now();
        let lg = LazyGraph::new(g, &order, kc.coreness, inc.size_cell());
        lg.prepopulate(cfg.prepopulate, omega_degree);
        phases.prepopulate = t.elapsed();

        // 5. Coreness-based heuristic search (line 7).
        mark(Phase::CorenessHeuristic);
        let t = Instant::now();
        heuristic::coreness_heuristic(&lg, &levels, cfg, &inc);
        phases.coreness_heuristic = t.elapsed();
        let omega_coreness = inc.size();

        // 6. Systematic search (line 8).
        mark(Phase::Systematic);
        let t = Instant::now();
        systematic::systematic_search_on(
            &lg,
            &levels,
            kc.degeneracy,
            cfg,
            &inc,
            counters,
            deadline,
            sched,
        );
        phases.systematic = t.elapsed();

        let mut snapshot = metrics::snapshot_counters(counters);
        snapshot.phases = phases;
        snapshot.omega_degree_heuristic = omega_degree;
        snapshot.omega_coreness_heuristic = omega_coreness;
        snapshot.degeneracy = kc.degeneracy;
        snapshot.n = g.num_vertices();
        snapshot.m = g.num_edges();
        snapshot.lazy_built = lg.built_counts();

        let clique = inc.clique();
        debug_assert!(g.is_clique(&clique));
        SolveResult {
            clique,
            exact: !deadline.truncated(),
            metrics: snapshot,
        }
    }
}

/// Convenience: solve with the default configuration.
pub fn solve(g: &dyn GraphAccess) -> SolveResult {
    LazyMc::default().solve(g)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::{gen, CsrGraph};

    #[test]
    fn solves_known_graphs() {
        let cases: Vec<(CsrGraph, usize)> = vec![
            (gen::complete(10), 10),
            (gen::path(20), 2),
            (gen::cycle(9), 2),
            (gen::star(15), 2),
            (gen::triangulated_grid(8, 6), 4),
            (gen::caveman(6, 5, 0.0, 1), 5),
            (CsrGraph::empty(5), 1),
            (CsrGraph::empty(0), 0),
        ];
        for (g, omega) in cases {
            let r = solve(&g);
            assert_eq!(r.size(), omega, "graph {g:?}");
            assert!(g.is_clique(r.vertices()));
        }
    }

    #[test]
    fn planted_clique_recovered() {
        let g = gen::planted_clique(400, 0.02, 14, 99);
        let r = solve(&g);
        assert_eq!(r.size(), 14);
    }

    #[test]
    fn phases_and_heuristics_recorded() {
        let g = gen::planted_clique(200, 0.04, 10, 3);
        let r = solve(&g);
        assert!(r.metrics.omega_degree_heuristic >= 1);
        assert!(r.metrics.omega_coreness_heuristic >= r.metrics.omega_degree_heuristic);
        assert_eq!(r.metrics.n, 200);
        assert!(r.metrics.degeneracy >= 9);
    }

    #[test]
    fn all_ablation_configs_agree() {
        let g = gen::planted_clique(150, 0.05, 9, 21);
        let expected = solve(&g).size();
        let configs = vec![
            Config::no_work_avoidance(),
            Config::sequential(),
            Config {
                early_exit: false,
                ..Config::default()
            },
            Config {
                second_exit: false,
                ..Config::default()
            },
            Config {
                prepopulate: PrePopulate::None,
                ..Config::default()
            },
            Config {
                prepopulate: PrePopulate::All,
                ..Config::default()
            },
            Config::default().with_density_threshold(0.0),
            Config::default().with_density_threshold(1.0),
            Config {
                low_core_probes: false,
                ..Config::default()
            },
            Config {
                kcore_floor: false,
                ..Config::default()
            },
            Config {
                top_k: 1,
                ..Config::default()
            },
        ];
        for cfg in configs {
            let r = LazyMc::new(cfg.clone()).solve(&g);
            assert_eq!(r.size(), expected, "config {cfg:?}");
            assert!(g.is_clique(r.vertices()));
        }
    }

    #[test]
    fn extension_configs_agree() {
        let g = gen::planted_clique(200, 0.04, 11, 31);
        let expected = solve(&g).size();
        let configs = vec![
            Config {
                filter_rounds: 1,
                ..Config::default()
            },
            Config {
                filter_rounds: 3,
                ..Config::default()
            },
            Config {
                filter_rounds: 4,
                ..Config::default()
            },
            Config {
                order: OrderKind::Peeling,
                ..Config::default()
            },
            Config {
                subgraph_reduction: true,
                ..Config::default()
            },
            Config {
                order: OrderKind::Peeling,
                subgraph_reduction: true,
                filter_rounds: 1,
                ..Config::default()
            },
        ];
        for cfg in configs {
            let r = LazyMc::new(cfg.clone()).solve(&g);
            assert_eq!(r.size(), expected, "config {cfg:?}");
            assert!(r.is_exact());
            assert!(g.is_clique(r.vertices()));
        }
    }

    #[test]
    fn zero_time_budget_yields_inexact_lower_bound() {
        // A budget that expires immediately: the systematic phase is
        // skipped, the heuristic incumbent is returned, flagged inexact
        // (unless the heuristics happened to prove nothing was skipped).
        let g = gen::dense_overlap(200, 25, 8, 16, 0.1, 7);
        let exact = solve(&g);
        let budgeted = LazyMc::new(Config {
            time_budget: Some(std::time::Duration::ZERO),
            ..Config::default()
        })
        .solve(&g);
        assert!(budgeted.size() <= exact.size());
        assert!(g.is_clique(budgeted.vertices()));
        // the systematic phase was cut short, so the result is not exact
        assert!(!budgeted.is_exact());
    }

    #[test]
    fn generous_time_budget_stays_exact() {
        let g = gen::planted_clique(150, 0.04, 9, 8);
        let r = LazyMc::new(Config {
            time_budget: Some(std::time::Duration::from_secs(600)),
            ..Config::default()
        })
        .solve(&g);
        assert!(r.is_exact());
        assert_eq!(r.size(), 9);
    }

    #[test]
    fn prepared_solve_matches_plain_solve() {
        let g = gen::dense_overlap(200, 25, 8, 16, 0.1, 5);
        let expected = solve(&g);
        let kc = kcore_sequential(&g);
        for cfg in [
            Config::default(),
            Config {
                order: OrderKind::Peeling,
                ..Config::default()
            },
        ] {
            let solver = LazyMc::new(cfg.clone());
            let deadline = Deadline::none();
            let r = solver.solve_prepared(&g, Some(kc.view()), &deadline);
            assert_eq!(r.size(), expected.size(), "config {cfg:?}");
            assert!(r.is_exact());
            assert!(g.is_clique(r.vertices()));
            // The shared decomposition makes the per-solve phase ~free.
            assert_eq!(r.metrics.degeneracy, kc.degeneracy);
        }
    }

    #[test]
    fn prepared_solve_honours_external_deadline() {
        let g = gen::dense_overlap(200, 25, 8, 16, 0.1, 7);
        let kc = kcore_sequential(&g);
        // A deadline that expired before the solve even started (job sat in
        // a queue past its budget): the result is a sound lower bound
        // flagged inexact.
        let deadline = Deadline::starting_now(Some(std::time::Duration::ZERO));
        let r = LazyMc::default().solve_prepared(&g, Some(kc.view()), &deadline);
        assert!(!r.is_exact());
        assert!(g.is_clique(r.vertices()));
    }

    #[test]
    fn observed_solve_publishes_progress_and_matches_plain() {
        let g = gen::planted_clique(200, 0.04, 10, 3);
        let progress = SolveProgress::new();
        let deadline = Deadline::none();
        let r = LazyMc::default().solve_prepared_observed(&g, None, &deadline, Some(&progress));
        assert_eq!(r.size(), 10);
        assert_eq!(progress.phase(), Phase::Done);
        // The incumbent cell and the counters are the solve's own.
        assert_eq!(progress.incumbent_size(), r.size());
        let live = progress.counters_snapshot();
        assert_eq!(live.mc_nodes, r.metrics.mc_nodes);
        assert_eq!(live.retained_coreness, r.metrics.retained_coreness);
    }

    #[test]
    fn sched_solve_matches_plain_solve() {
        let g = gen::dense_overlap(150, 20, 8, 16, 0.1, 12);
        let expected = LazyMc::new(Config::sequential()).solve(&g).size();
        let pool = SchedPool::new(3);
        for t in [2, 4] {
            let deadline = Deadline::none();
            let r = LazyMc::new(Config::default().with_threads(t)).solve_prepared_on(
                &g,
                None,
                &deadline,
                None,
                &pool.handle(),
                TaskMeta::adhoc(),
            );
            assert_eq!(r.size(), expected, "sched width {t}");
            assert!(r.is_exact());
            assert!(g.is_clique(r.vertices()));
        }
    }

    #[test]
    fn sched_solve_at_width_one_is_bit_identical_to_sequential() {
        // threads = 1 on the pool must not merely agree on ω — it must run
        // the very same deterministic kernels: identical node counts.
        let g = gen::gnp(90, 0.5, 13);
        let seq = LazyMc::new(Config::sequential()).solve(&g);
        let pool = SchedPool::new(2);
        let deadline = Deadline::none();
        let r = LazyMc::new(Config::sequential()).solve_prepared_on(
            &g,
            None,
            &deadline,
            None,
            &pool.handle(),
            TaskMeta::adhoc(),
        );
        assert_eq!(r.size(), seq.size());
        assert_eq!(r.metrics.mc_nodes, seq.metrics.mc_nodes);
        assert_eq!(r.metrics.vc_nodes, seq.metrics.vc_nodes);
        assert_eq!(r.metrics.split_tasks, 0);
        assert_eq!(r.metrics.steals, 0);
    }

    #[test]
    fn sched_solve_observed_aggregates_stolen_subtree_nodes() {
        // GET /jobs/<id> live progress must count nodes from *every*
        // worker executing the job's stolen subtrees: the progress cell's
        // counters are the solve's own, so the final live total equals the
        // result's total even though pool workers did part of the work.
        let g = gen::gnp(100, 0.6, 21);
        let pool = SchedPool::new(3);
        let progress = SolveProgress::new();
        let deadline = Deadline::none();
        let r = LazyMc::new(Config::default().with_threads(4)).solve_prepared_on(
            &g,
            None,
            &deadline,
            Some(&progress),
            &pool.handle(),
            TaskMeta::adhoc(),
        );
        assert!(r.metrics.split_tasks > 0, "must exercise stolen subtrees");
        assert_eq!(
            progress.nodes_expanded(),
            r.metrics.mc_nodes + r.metrics.vc_nodes,
            "live progress must aggregate node counts across all workers"
        );
        assert_eq!(progress.incumbent_size(), r.size());
    }

    #[test]
    fn thread_counts_agree() {
        let g = gen::dense_overlap(150, 20, 8, 16, 0.1, 12);
        let expected = LazyMc::new(Config::sequential()).solve(&g).size();
        for t in [2, 4] {
            let r = LazyMc::new(Config::default().with_threads(t)).solve(&g);
            assert_eq!(r.size(), expected, "threads {t}");
        }
    }
}
