//! Live-socket proof of the massive-registry régime: a daemon booted
//! over 200 pre-seeded snapshots with `mmap_threshold_bytes = 0` serves
//! stats and solves on every one of them with ZERO heap decodes and
//! ZERO k-core recomputations — each first touch is an mmap, counted by
//! `lazymc_snapshot_mmap_total`, and mapped graphs never pressure the
//! `max_graphs` eviction capacity.

mod common;

use common::{bool_field, u64_field, Client};
use lazymc_graph::snapshot::{write_file_atomic, Snapshot};
use lazymc_graph::{gen, CsrGraph};
use lazymc_order::{embed_kcore, kcore_sequential};
use lazymc_service::{serve, ServiceConfig};
use std::path::{Path, PathBuf};

const SNAPSHOTS: usize = 200;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lazymc_svc_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn seed_snapshot(dir: &Path, name: &str, g: &CsrGraph) {
    let kc = kcore_sequential(g);
    let mut snap = Snapshot::from_graph(g);
    embed_kcore(&mut snap, &kc);
    write_file_atomic(&dir.join(format!("{name}.lmcs")), &snap.encode()).expect("seed snapshot");
}

#[test]
fn cold_boot_200_snapshots_without_a_single_decode() {
    let dir = tmp_dir("mmapboot");
    std::fs::create_dir_all(&dir).expect("mkdir");
    // One graph with a known planted clique (solved below), 199 fillers.
    let planted = gen::planted_clique(300, 0.03, 11, 7);
    seed_snapshot(&dir, "boot-000", &planted);
    for i in 1..SNAPSHOTS {
        seed_snapshot(
            &dir,
            &format!("boot-{i:03}"),
            &gen::gnp(120, 0.08, i as u64),
        );
    }

    // max_graphs far below the snapshot count: if mapped entries counted
    // toward eviction capacity, touching all 200 would thrash.
    let handle = serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        max_graphs: 4,
        mmap_threshold_bytes: 0,
        data_dir: Some(dir.to_str().expect("utf8 dir").to_string()),
        scrub_interval: None,
        ..ServiceConfig::default()
    })
    .expect("bind service");
    let mut c = Client::connect(handle.addr());

    // Lazy boot: everything on disk, nothing resident.
    let (_, health) = c.get_json("/healthz");
    assert_eq!(u64_field(&health, "graphs"), 0);
    assert_eq!(u64_field(&health, "snapshots"), SNAPSHOTS as u64);

    // Touch all 200. Each first touch must be an mmap, not a decode.
    for i in 0..SNAPSHOTS {
        let (status, stats) = c.get_json(&format!("/stats/boot-{i:03}"));
        assert_eq!(status, 200, "stats on boot-{i:03}");
        assert!(bool_field(&stats, "mapped"), "boot-{i:03} not mapped");
        assert!(u64_field(&stats, "mapped_bytes") > 0);
    }

    // A solve through a mapping gives the exact planted answer.
    let (status, solved) = c.post_json("/solve", r#"{"graph":"boot-000","threads":1}"#);
    assert_eq!(status, 200);
    assert!(bool_field(&solved, "exact"));
    assert_eq!(u64_field(&solved, "omega"), 11);

    // The régime, proven by the daemon's own counters: zero decodes,
    // zero re-peels, 200 mmaps, all 200 resident as mappings despite
    // max_graphs = 4 — at page-cache cost, not heap cost.
    assert_eq!(c.metric("lazymc_core_computes_total"), 0);
    assert_eq!(c.metric("lazymc_snapshot_lazy_loads_total"), 0);
    assert_eq!(c.metric("lazymc_snapshot_mmap_total"), SNAPSHOTS as u64);
    assert_eq!(c.metric("lazymc_graphs_mapped"), SNAPSHOTS as u64);
    assert!(c.metric("lazymc_mapped_bytes") > 0);
    assert_eq!(c.metric("lazymc_graphs_evicted_total"), 0);

    let (_, health) = c.get_json("/healthz");
    assert_eq!(u64_field(&health, "graphs"), SNAPSHOTS as u64);
    assert_eq!(u64_field(&health, "graphs_mapped"), SNAPSHOTS as u64);
    assert!(u64_field(&health, "mapped_bytes") > 0);
    assert_eq!(
        u64_field(&health, "snapshot_heap_bytes"),
        0,
        "mapped graphs must cost zero resident heap"
    );

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// The threshold splits the registry: small snapshots decode onto the
/// heap (dense-kernel fast path), large ones map. `u64::MAX` disables
/// mapping entirely.
#[test]
fn threshold_splits_heap_and_mapped() {
    let dir = tmp_dir("mmapthresh");
    std::fs::create_dir_all(&dir).expect("mkdir");
    let small = gen::gnp(60, 0.1, 1); // ~KB-scale snapshot
    let large = gen::gnp(4_000, 0.01, 2); // comfortably past 64 KiB
    seed_snapshot(&dir, "small", &small);
    seed_snapshot(&dir, "large", &large);

    let handle = serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        mmap_threshold_bytes: 64 << 10,
        data_dir: Some(dir.to_str().expect("utf8 dir").to_string()),
        scrub_interval: None,
        ..ServiceConfig::default()
    })
    .expect("bind service");
    let mut c = Client::connect(handle.addr());

    let (_, s) = c.get_json("/stats/small");
    assert!(!bool_field(&s, "mapped"), "below threshold stays heap");
    let (_, l) = c.get_json("/stats/large");
    assert!(bool_field(&l, "mapped"), "above threshold must map");
    // The heap reload decoded and counted as a lazy load; the mapped
    // one counted as an mmap. Neither recomputed a k-core.
    assert_eq!(c.metric("lazymc_snapshot_lazy_loads_total"), 1);
    assert_eq!(c.metric("lazymc_snapshot_mmap_total"), 1);
    assert_eq!(c.metric("lazymc_core_computes_total"), 0);

    handle.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
