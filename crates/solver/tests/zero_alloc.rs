//! Proof that the solver hot paths are allocation-free after warm-up.
//!
//! A counting `GlobalAlloc` (installed only in this test binary) tallies
//! allocations per thread; the tests warm a scratch arena on a fixed dense
//! subgraph, then re-run the identical search and assert the steady-state
//! run performed **zero** heap allocations — the contract the `McScratch` /
//! `VcSolveScratch` arenas and the `ColorScratch` word loops exist to keep.
//!
//! Counters are thread-local so concurrently running tests cannot pollute
//! each other's tallies.

use lazymc_solver::{
    max_clique_dense_scratch, max_clique_dense_subtree, max_clique_via_vc_scratch,
    min_vertex_cover, reduce_candidates, vertex_cover_decision_abortable, Bitset, ColorScratch,
    McScratch, SearchAbort, SharedBest, VcScratch, VcSolveScratch,
};
use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

mod common;
use common::pseudo_graph as dense_graph;

thread_local! {
    static THREAD_ALLOCS: Cell<u64> = const { Cell::new(0) };
}

struct ThreadCountingAlloc;

// SAFETY: delegates to `System`; bookkeeping is a const-initialized
// thread-local `Cell` (no allocation on access), read via `try_with` so
// accesses during TLS teardown degrade to "not counted" instead of
// aborting.
unsafe impl GlobalAlloc for ThreadCountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let _ = THREAD_ALLOCS.try_with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: ThreadCountingAlloc = ThreadCountingAlloc;

fn thread_allocs() -> u64 {
    THREAD_ALLOCS.with(|c| c.get())
}

#[test]
fn dense_mc_search_is_allocation_free_after_warmup() {
    let adj = dense_graph(120, 550, 42);
    let within = Bitset::full(adj.len());
    let mut scratch = McScratch::new();
    let mut out = Vec::new();

    // Warm-up: grows every per-depth buffer to this instance's size.
    let found_warm = max_clique_dense_scratch(&adj, &within, 0, None, &mut scratch, &mut out);
    assert!(found_warm);
    let omega = out.len();
    assert!(omega >= 3, "graph must be non-trivial, got omega {omega}");

    // Steady state: the identical search must not touch the heap.
    let before = thread_allocs();
    let found = max_clique_dense_scratch(&adj, &within, 0, None, &mut scratch, &mut out);
    let allocs = thread_allocs() - before;
    assert!(found);
    assert_eq!(out.len(), omega);
    assert_eq!(
        allocs, 0,
        "dense MC search allocated {allocs} times after warm-up"
    );
}

#[test]
fn color_order_is_allocation_free_after_warmup() {
    let adj = dense_graph(130, 600, 7);
    let cand = Bitset::full(adj.len());
    let mut scratch = ColorScratch::new();
    let (mut order, mut bound) = (Vec::new(), Vec::new());

    lazymc_solver::color_order_scratch(&adj, &cand, &mut order, &mut bound, &mut scratch);
    let colors_warm = *bound.last().unwrap();

    let before = thread_allocs();
    lazymc_solver::color_order_scratch(&adj, &cand, &mut order, &mut bound, &mut scratch);
    let allocs = thread_allocs() - before;
    assert_eq!(*bound.last().unwrap(), colors_warm);
    assert_eq!(
        allocs, 0,
        "color_order allocated {allocs} times after warm-up"
    );
}

#[test]
fn clique_via_vc_pipeline_is_allocation_free_after_warmup() {
    // Dense enough that the complement (where the VC search runs) is
    // sparse — the pipeline the systematic search uses for dense
    // neighbourhoods, complement construction included.
    let adj = dense_graph(100, 820, 99);
    let mut scratch = VcSolveScratch::new();
    let mut out = Vec::new();

    assert!(max_clique_via_vc_scratch(
        &adj,
        0,
        None,
        &mut scratch,
        &mut out
    ));
    let omega = out.len();

    let before = thread_allocs();
    assert!(max_clique_via_vc_scratch(
        &adj,
        0,
        None,
        &mut scratch,
        &mut out
    ));
    let allocs = thread_allocs() - before;
    assert_eq!(out.len(), omega);
    assert_eq!(
        allocs, 0,
        "clique-via-VC pipeline allocated {allocs} times after warm-up"
    );
}

#[test]
fn parallel_mc_worker_is_allocation_free_after_warmup() {
    // The body of a parallel MC worker is `max_clique_dense_subtree`: a
    // branch-prefix task run against a shared incumbent. After one warm-up
    // run, a worker's steady state — node expansions, bound refreshes from
    // the shared atomic, *and* incumbent publications (the witness buffer
    // is pre-reserved, as the split driver does) — must not touch the
    // heap.
    let adj = dense_graph(120, 550, 42);
    let cand = Bitset::full(adj.len());
    let mut scratch = McScratch::new();

    // Warm-up: grows the arena and establishes ω in a first incumbent.
    let warm = SharedBest::with_floor(0);
    warm.reserve(adj.len());
    max_clique_dense_subtree(&adj, &cand, &[], &warm, None, &mut scratch);
    let omega = warm.size();
    assert!(omega >= 3, "graph must be non-trivial, got omega {omega}");

    // Steady state 1: a fresh shared incumbent (pre-reserved) makes the
    // worker re-find and re-publish every improvement — still zero allocs.
    let shared = SharedBest::with_floor(0);
    shared.reserve(adj.len());
    let before = thread_allocs();
    max_clique_dense_subtree(&adj, &cand, &[], &shared, None, &mut scratch);
    let allocs = thread_allocs() - before;
    assert_eq!(shared.size(), omega);
    assert!(
        shared.broadcasts() > 0,
        "improvements must have been published"
    );
    assert_eq!(
        allocs, 0,
        "parallel MC worker allocated {allocs} times after warm-up"
    );

    // Steady state 2: a saturated incumbent (everything prunes) — the
    // prune-heavy regime a worker spends most of its life in.
    let before = thread_allocs();
    max_clique_dense_subtree(&adj, &cand, &[], &shared, None, &mut scratch);
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "pruned MC worker allocated {allocs} times after warm-up"
    );
}

#[test]
fn parallel_vc_worker_is_allocation_free_after_warmup() {
    // The body of a parallel k-VC decision worker is
    // `vertex_cover_decision_abortable`; with a warm arena, polling the
    // abort flag and the full kernelize/branch/path-cycle machinery must
    // not allocate.
    let adj = dense_graph(90, 250, 17);
    let alive = Bitset::full(adj.len());
    let mvc = min_vertex_cover(&adj, None).len();
    let abort = SearchAbort::new();
    let mut scratch = VcScratch::new();
    let mut cover = Vec::new();

    // Warm-up at the optimum (success path) and one below (failure path).
    assert!(vertex_cover_decision_abortable(
        &adj,
        &alive,
        mvc,
        &abort,
        None,
        &mut scratch,
        &mut cover
    ));
    assert!(!vertex_cover_decision_abortable(
        &adj,
        &alive,
        mvc - 1,
        &abort,
        None,
        &mut scratch,
        &mut cover
    ));

    let before = thread_allocs();
    assert!(vertex_cover_decision_abortable(
        &adj,
        &alive,
        mvc,
        &abort,
        None,
        &mut scratch,
        &mut cover
    ));
    assert!(!vertex_cover_decision_abortable(
        &adj,
        &alive,
        mvc - 1,
        &abort,
        None,
        &mut scratch,
        &mut cover
    ));
    let allocs = thread_allocs() - before;
    assert_eq!(
        allocs, 0,
        "parallel k-VC worker allocated {allocs} times after warm-up"
    );
}

#[test]
fn sched_task_body_is_allocation_free_after_warmup() {
    // A scheduler unit body runs a subtree through the same thread-local
    // worker arenas (`MC_WORKER` / `VC_WORKER`) that the width-1 driver
    // path uses — so driving the sched entry points at width 1 on this
    // thread exercises exactly the steady-state body: pooled task
    // buffers, arena take/put-back, shared-incumbent reads. After one
    // warm-up, none of it may touch the heap.
    use lazymc_sched::TaskMeta;
    use lazymc_solver::{max_clique_dense_sched, vertex_cover_decision_sched};

    let pool = lazymc_sched::Pool::new(2);
    let handle = pool.handle();
    let adj = dense_graph(120, 550, 42);
    let within = Bitset::full(adj.len());
    let mut out = Vec::new();

    // Warm-up grows the thread-local worker arena.
    assert!(max_clique_dense_sched(
        &adj,
        &within,
        0,
        &handle,
        TaskMeta::adhoc(),
        1,
        None,
        None,
        &mut out,
    ));
    let omega = out.len();

    let before = thread_allocs();
    assert!(max_clique_dense_sched(
        &adj,
        &within,
        0,
        &handle,
        TaskMeta::adhoc(),
        1,
        None,
        None,
        &mut out,
    ));
    let allocs = thread_allocs() - before;
    assert_eq!(out.len(), omega);
    assert_eq!(
        allocs, 0,
        "sched MC task body allocated {allocs} times after warm-up"
    );

    // Same for the k-VC decision body.
    let sparse = dense_graph(90, 250, 17);
    let alive = Bitset::full(sparse.len());
    let mvc = min_vertex_cover(&sparse, None).len();
    let mut cover = Vec::new();
    let d = vertex_cover_decision_sched(
        &sparse,
        &alive,
        mvc,
        &handle,
        TaskMeta::adhoc(),
        1,
        None,
        None,
        &mut cover,
    );
    assert!(d.found);

    let before = thread_allocs();
    let d = vertex_cover_decision_sched(
        &sparse,
        &alive,
        mvc,
        &handle,
        TaskMeta::adhoc(),
        1,
        None,
        None,
        &mut cover,
    );
    let allocs = thread_allocs() - before;
    assert!(d.found);
    assert_eq!(
        allocs, 0,
        "sched k-VC task body allocated {allocs} times after warm-up"
    );
}

#[test]
fn reduce_candidates_is_allocation_free() {
    let adj = dense_graph(110, 300, 17);
    let mut within = Bitset::full(adj.len());
    let before = thread_allocs();
    let removed = reduce_candidates(&adj, &mut within, 34);
    let allocs = thread_allocs() - before;
    assert!(removed > 0, "lb 34 must strip something from a p=0.3 graph");
    assert_eq!(
        allocs, 0,
        "reduce_candidates allocated {allocs} times (it never should)"
    );
}
