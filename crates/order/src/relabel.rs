//! Vertex relabelling by (coreness asc, degree asc) — the paper's §IV-F.
//!
//! A parallel k-core computation yields no unique peeling order, so LazyMC
//! sorts vertices by increasing coreness with ties broken by increasing
//! degree: two stable counting-sort passes, degree first (the SAPCo phase)
//! then coreness. The relabelled id space has two properties the solver
//! exploits:
//!
//! * coreness levels occupy *contiguous* ranges of relabelled ids, so the
//!   systematic search can sweep levels without an index;
//! * the highest-numbered vertex of any candidate set has maximal coreness
//!   (used by the coreness-based heuristic, paper Alg. 6).

use crate::sort::par_counting_sort_by_key;
use lazymc_graph::{GraphAccess, VertexId};

/// A bijection between original and relabelled vertex ids.
#[derive(Debug, Clone)]
pub struct VertexOrder {
    /// `rank[orig] = relabelled`
    pub rank: Vec<VertexId>,
    /// `orig[relabelled] = original`
    pub orig: Vec<VertexId>,
}

impl VertexOrder {
    /// Builds the order from a relabelled-to-original listing.
    pub fn from_listing(orig: Vec<VertexId>) -> Self {
        let mut rank = vec![0 as VertexId; orig.len()];
        for (new_id, &o) in orig.iter().enumerate() {
            rank[o as usize] = new_id as VertexId;
        }
        VertexOrder { rank, orig }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.orig.len()
    }

    /// Whether the order is empty.
    pub fn is_empty(&self) -> bool {
        self.orig.is_empty()
    }

    /// Maps an original id to its relabelled id.
    #[inline]
    pub fn to_relabelled(&self, orig: VertexId) -> VertexId {
        self.rank[orig as usize]
    }

    /// Maps a relabelled id back to the original id.
    #[inline]
    pub fn to_original(&self, relabelled: VertexId) -> VertexId {
        self.orig[relabelled as usize]
    }

    /// Checks the permutation is a bijection (tests).
    pub fn validate(&self) -> Result<(), String> {
        let n = self.orig.len();
        if self.rank.len() != n {
            return Err("rank/orig length mismatch".into());
        }
        let mut seen = vec![false; n];
        for &o in &self.orig {
            if o as usize >= n || seen[o as usize] {
                return Err(format!("orig listing not a permutation at {o}"));
            }
            seen[o as usize] = true;
        }
        for v in 0..n {
            if self.orig[self.rank[v] as usize] as usize != v {
                return Err(format!("rank/orig not inverse at {v}"));
            }
        }
        Ok(())
    }
}

/// Sorts vertices by (coreness asc, degree asc, id asc) with two stable
/// counting-sort passes and returns the resulting [`VertexOrder`].
///
/// `coreness` may come from [`crate::kcore_with_floor`]; capped values only
/// affect the ordering among vertices the search will never visit.
pub fn coreness_degree_order(g: &dyn GraphAccess, coreness: &[u32]) -> VertexOrder {
    let n = g.num_vertices();
    assert_eq!(coreness.len(), n);
    if n == 0 {
        return VertexOrder {
            rank: Vec::new(),
            orig: Vec::new(),
        };
    }
    let ids: Vec<VertexId> = (0..n as VertexId).collect();
    // Pass 1 (minor key): degree. Identity input order makes ties resolve
    // by id, giving a fully deterministic order.
    let max_deg = g.max_degree() as u32;
    let by_degree = par_counting_sort_by_key(&ids, max_deg, |v| g.degree(v) as u32);
    // Pass 2 (major key): coreness; stability preserves the degree order.
    let max_core = coreness.iter().copied().max().unwrap_or(0);
    let listing = par_counting_sort_by_key(&by_degree, max_core, |v| coreness[v as usize]);
    VertexOrder::from_listing(listing)
}

/// Contiguous relabelled-id range `[start, end)` per coreness level:
/// `ranges[k]` covers all vertices with coreness `k`. Relies on the
/// coreness-major relabelling.
pub fn level_ranges(order: &VertexOrder, coreness: &[u32], degeneracy: u32) -> Vec<(u32, u32)> {
    let n = order.len() as u32;
    let mut ranges = vec![(0u32, 0u32); degeneracy as usize + 1];
    let mut start = 0u32;
    for k in 0..=degeneracy {
        let mut end = start;
        while end < n && coreness[order.to_original(end) as usize] == k {
            end += 1;
        }
        ranges[k as usize] = (start, end);
        start = end;
    }
    debug_assert_eq!(start, n, "coreness levels must partition the id space");
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kcore::kcore_sequential;
    use lazymc_graph::gen;

    #[test]
    fn order_is_bijective_and_sorted() {
        let g = gen::planted_clique(200, 0.05, 10, 5);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        ord.validate().unwrap();
        // non-decreasing (coreness, degree) along relabelled ids
        for w in 0..g.num_vertices() - 1 {
            let a = ord.to_original(w as u32);
            let b = ord.to_original(w as u32 + 1);
            let ka = (kc.coreness[a as usize], g.degree(a));
            let kb = (kc.coreness[b as usize], g.degree(b));
            assert!(ka <= kb, "order violated at {w}: {ka:?} > {kb:?}");
        }
    }

    #[test]
    fn right_neighborhoods_bounded_by_coreness() {
        // The property the paper relies on: under a coreness-ascending
        // order, |N+(v)| <= c(v) does NOT hold in general (only the peel
        // order guarantees it), but N+(v) only contains vertices of
        // coreness >= c(v). Verify the containment property we rely on.
        let g = gen::gnp(150, 0.07, 2);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        for v in g.vertices() {
            let rv = ord.to_relabelled(v);
            for &u in g.neighbors(v) {
                if ord.to_relabelled(u) > rv {
                    assert!(
                        kc.coreness[u as usize] >= kc.coreness[v as usize]
                            || (kc.coreness[u as usize] == kc.coreness[v as usize]),
                        "right neighbor with smaller coreness"
                    );
                    assert!(kc.coreness[u as usize] >= kc.coreness[v as usize]);
                }
            }
        }
    }

    #[test]
    fn level_ranges_partition_ids() {
        let g = gen::caveman(10, 5, 0.05, 4);
        let kc = kcore_sequential(&g);
        let ord = coreness_degree_order(&g, &kc.coreness);
        let ranges = level_ranges(&ord, &kc.coreness, kc.degeneracy);
        let mut covered = 0u32;
        for (k, &(s, e)) in ranges.iter().enumerate() {
            assert_eq!(s, covered, "level {k} not contiguous");
            for id in s..e {
                assert_eq!(
                    kc.coreness[ord.to_original(id) as usize] as usize,
                    k,
                    "wrong level member"
                );
            }
            covered = e;
        }
        assert_eq!(covered as usize, g.num_vertices());
    }

    #[test]
    fn empty_graph_order() {
        let g = lazymc_graph::CsrGraph::empty(0);
        let ord = coreness_degree_order(&g, &[]);
        assert!(ord.is_empty());
        ord.validate().unwrap();
    }

    #[test]
    fn from_listing_roundtrip() {
        let ord = VertexOrder::from_listing(vec![2, 0, 3, 1]);
        ord.validate().unwrap();
        assert_eq!(ord.to_relabelled(2), 0);
        assert_eq!(ord.to_original(0), 2);
        assert_eq!(ord.to_relabelled(1), 3);
    }
}
