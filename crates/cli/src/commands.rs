//! Subcommand implementations.

use crate::args::Parsed;
use lazymc_core::{Config, LazyMc, PrePopulate};
use lazymc_graph::{connected_components, io, suite, triangle_count, CsrGraph, GraphStats};
use lazymc_order::kcore_sequential;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Top-level usage text.
pub const USAGE: &str = "\
lazymc — work-avoiding maximum clique search

USAGE:
  lazymc solve <file> [--threads N] [--budget SECS] [--phi F] [--top-k K]
               [--filter-rounds R] [--no-early-exit] [--no-second-exit]
               [--prepopulate none|must|all] [--reduction] [--quiet]
  lazymc bench --suite quick|dense|sparse|service|sparse-massive
               [--out FILE] [--reps N] [--threads N] [--write-graphs DIR]
               [--dir DIR]
               (service: requests/sec + healthz-under-load latency against
               an in-process daemon; sparse-massive: 10M+-edge power-law
               graphs solved through zero-copy mmap snapshots plus a
               100-snapshot cold-boot — fetched corpora in --dir join in,
               otherwise the suite is synthetic-only)
  lazymc bench --check-json FILE               (validate a bench report)
  lazymc bench --compare OLD.json NEW.json     (speedup table; exits 1 on
               >10% median wall-time regression)
  lazymc stats <file>
  lazymc mce <file> [--histogram]
  lazymc compare <file> [--skip ALG[,ALG...]]   (algs: pmc, domega-ls, domega-bs, brb)
  lazymc gen <instance> <out-file> [--test]     (see `lazymc gen list`)
  lazymc fetch [<name>...] [--dir DIR] [--list] [--timeout-ms MS]
               (download real sparse corpora for the sparse-massive
               bench; exits 8 with a hint when the network is down)
  lazymc serve [<addr>] [--io-threads I] [--workers N] [--solver-workers S]
               [--conn-limit C] [--max-graphs M] [--queue-cap Q]
               [--data-dir DIR] [--max-budget-ms MS] [--job-ttl-ms MS]
               [--result-cache-bytes B] [--log-json] [--slow-query-ms MS]
               [--queue-delay-target-ms MS] [--max-memory-bytes B]
               [--drain-timeout-ms MS] [--scrub-interval-ms MS]
               [--mmap-threshold-bytes B] [--check]
               (default addr 127.0.0.1:7171)
  lazymc snapshot <graph-file> <out.lmcs>
  lazymc restore <file.lmcs> [<out-graph-file>]
  lazymc help

Input formats by extension: .clq/.col/.dimacs (DIMACS), .mtx (MatrixMarket),
anything else is read as a whitespace edge list.

The serve daemon keeps uploaded graphs resident (fingerprinted, coreness
precomputed, LRU-bounded by --max-graphs) and answers clique queries over
HTTP/1.1 on an epoll reactor (--io-threads event loops, --conn-limit open
sockets): POST /graphs, POST /solve (add ?async=1 for 202 + job id),
POST /solve-batch, GET /graphs, GET /stats[/name], GET /jobs/<id>,
DELETE /jobs/<id>, DELETE /graphs/<name>, GET /healthz, GET /metrics,
GET /debug/slow. Introspection answers on the reactor in microseconds
even with every solver busy.

Every request carries a trace id (a valid inbound X-Request-Id is
honoured, otherwise one is minted) echoed in the response and threaded
through the solve. --log-json emits one JSON log line per request and
per solve to stdout; /metrics exports per-route, queue-wait, solve-wall
and per-phase latency histograms; GET /jobs/<id> on a running job
reports live progress (phase, nodes expanded, incumbent size); solves
slower than --slow-query-ms (default 500) land in GET /debug/slow with
a span-tree timing breakdown. Repeated identical queries are served from a byte-bounded
result cache (--result-cache-bytes); completed async jobs stay pollable
for --job-ttl-ms; a full job queue (--queue-cap) answers 429 with a
Retry-After derived from the observed drain rate. --check binds, prints
the address, and exits immediately.

Overload and lifecycle: with --queue-delay-target-ms, sustained queue
waits above the target shed lowest-priority admissions with 503 +
Retry-After (CoDel-style; bursts are not overload). --max-memory-bytes
arms soft/hard live-heap watermarks: above 80% uploads are refused and
/healthz degrades, at 100% the cheapest running solve is cancelled.
Queued jobs whose budget expires before a solver frees up are reaped
dead-on-arrival instead of run. SIGTERM/SIGINT drain gracefully: GET
/readyz flips to 503 (liveness /healthz stays 200), the listener
closes, in-flight and journaled work settles (bounded by
--drain-timeout-ms, default 10000), then the process exits 0 — jobs
that miss the window replay from the journal on the next boot. With a
--data-dir, a background scrubber re-verifies snapshot checksums and
journal CRCs every --scrub-interval-ms (default 60000; 0 disables),
quarantining bit rot before it can ever be served.

With --data-dir, every upload is also written as a checksummed .lmcs
snapshot (CSR + coreness, atomic rename); after a restart graphs reload
lazily on first use — no re-upload, no k-core recomputation. Snapshots
at least --mmap-threshold-bytes large (default 4 MiB; 0 maps everything)
skip the heap decode entirely: the file is mmap'd after checksum
validation and the solver reads CSR arrays and coreness straight out of
the page cache, so a reload costs microseconds regardless of graph size
and mapped graphs do not count against --max-graphs. `snapshot`
precomputes such a file offline from any graph file; `restore` verifies
one and prints (or re-exports) its contents. Drop .lmcs files into the
data dir before boot to pre-seed a daemon.
";

fn load(path: &str) -> Result<CsrGraph, String> {
    io::read_path(path).map_err(|e| format!("cannot read {path}: {e}"))
}

fn fail(msg: &str) -> i32 {
    eprintln!("error: {msg}");
    1
}

/// `lazymc solve`
pub fn solve(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let Some(path) = p.positional(0) else {
        return fail("solve needs a graph file");
    };
    let mut cfg = Config::default();
    macro_rules! set {
        ($field:ident, $flag:literal) => {
            match p.value($flag) {
                Ok(Some(v)) => cfg.$field = v,
                Ok(None) => {}
                Err(e) => return fail(&e),
            }
        };
    }
    set!(threads, "--threads");
    set!(density_threshold, "--phi");
    set!(top_k, "--top-k");
    set!(filter_rounds, "--filter-rounds");
    // One clamp for the whole system (see Config::thread_cap).
    cfg.threads = Config::clamp_threads(cfg.threads);
    match p.value::<f64>("--budget") {
        Ok(Some(secs)) => cfg.time_budget = Some(Duration::from_secs_f64(secs)),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    if p.has("--no-early-exit") {
        cfg.early_exit = false;
        cfg.second_exit = false;
    }
    if p.has("--no-second-exit") {
        cfg.second_exit = false;
    }
    if p.has("--reduction") {
        cfg.subgraph_reduction = true;
    }
    match p.raw("--prepopulate") {
        Some("none") => cfg.prepopulate = PrePopulate::None,
        Some("must") => cfg.prepopulate = PrePopulate::Must,
        Some("all") => cfg.prepopulate = PrePopulate::All,
        Some(other) => return fail(&format!("unknown prepopulate policy {other:?}")),
        None => {}
    }

    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let t = Instant::now();
    let r = LazyMc::new(cfg).solve(&g);
    let elapsed = t.elapsed();

    if r.is_exact() {
        println!("omega {}", r.size());
    } else {
        println!(
            "omega >= {} (budget expired before the proof finished)",
            r.size()
        );
    }
    let mut witness = r.vertices().to_vec();
    witness.sort_unstable();
    println!("clique {witness:?}");
    if !p.has("--quiet") {
        let m = &r.metrics;
        println!("time   {elapsed:?}");
        println!(
            "phases degree-heur {:?} | kcore {:?} | reorder {:?} | prepopulate {:?} | core-heur {:?} | systematic {:?}",
            m.phases.degree_heuristic,
            m.phases.kcore,
            m.phases.reorder,
            m.phases.prepopulate,
            m.phases.coreness_heuristic,
            m.phases.systematic,
        );
        println!(
            "search heuristics {}→{} | searched {} MC + {} k-VC of {} neighbourhoods considered",
            m.omega_degree_heuristic,
            m.omega_coreness_heuristic,
            m.searched_mc,
            m.searched_kvc,
            m.retained_coreness,
        );
    }
    0
}

/// `lazymc bench` — the reproducible perf harness (see docs/perf.md).
///
/// Runs a synthetic suite, prints a per-case table, and (with `--out`)
/// writes the `lazymc-bench/v1` JSON report. `--write-graphs DIR` also
/// exports every case's graph as DIMACS so *other* binaries (e.g. a
/// pre-change build) can be timed on byte-identical inputs.
/// `--check-json FILE` validates a previously written report against the
/// schema and exits.
pub fn bench(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    if let Some(path) = p.raw("--check-json") {
        return bench_check_json(path);
    }
    if let Some(old_path) = p.raw("--compare") {
        let Some(new_path) = p.positional(0) else {
            return fail("--compare needs two reports: --compare OLD.json NEW.json");
        };
        return bench_compare(old_path, new_path);
    }
    let Some(suite_name) = p.raw("--suite") else {
        return fail(
            "bench needs --suite quick|dense|sparse|service|sparse-massive (or --check-json / --compare)",
        );
    };
    let reps_arg = match p.value::<usize>("--reps") {
        Ok(r) => r,
        Err(e) => return fail(&e),
    };
    if suite_name == "service" {
        // HTTP-level suite: drives an in-process daemon over live
        // sockets instead of calling the solver directly.
        return bench_service(reps_arg.unwrap_or(3).max(1), p.raw("--out"));
    }
    if suite_name == "sparse-massive" {
        // Zero-copy régime: 10M+-edge graphs solved through mmap'd
        // snapshots, plus a cold-boot case over a live daemon. Built on
        // demand (an eager case list would cost minutes of generation).
        let threads = match p.value::<usize>("--threads") {
            Ok(t) => t.unwrap_or(0),
            Err(e) => return fail(&e),
        };
        return bench_sparse_massive(
            reps_arg.unwrap_or(1).max(1),
            p.raw("--out"),
            threads,
            p.raw("--dir").unwrap_or("datasets"),
        );
    }
    let Some(cases) = lazymc_bench::perf::suite(suite_name) else {
        return fail(&format!(
            "unknown suite {suite_name:?} (use quick, dense, sparse, service or sparse-massive)"
        ));
    };
    // The &'static suite name is needed by the report struct.
    let suite_name = lazymc_bench::perf::SUITES
        .iter()
        .find(|s| **s == suite_name)
        .expect("suite() accepted it");
    let reps = match p.value::<usize>("--reps") {
        Ok(r) => r.unwrap_or(3).max(1),
        Err(e) => return fail(&e),
    };
    // 0 = ambient pool; anything else is clamped by the unified cap
    // inside run_suite and recorded as the report's effective threads.
    let threads = match p.value::<usize>("--threads") {
        Ok(t) => t.unwrap_or(0),
        Err(e) => return fail(&e),
    };
    if let Some(dir) = p.raw("--write-graphs") {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return fail(&format!("cannot create {dir}: {e}"));
        }
        for c in &cases {
            let path = format!("{dir}/{}.clq", c.name);
            let file = match std::fs::File::create(&path) {
                Ok(f) => f,
                Err(e) => return fail(&format!("cannot create {path}: {e}")),
            };
            if let Err(e) = io::write_dimacs(&c.graph, std::io::BufWriter::new(file)) {
                return fail(&format!("write failed: {e}"));
            }
        }
        println!("wrote {} graphs to {dir}", cases.len());
    }
    println!(
        "{:<18} {:>7} {:>9} {:>6} {:>11} {:>11} {:>10} {:>12}",
        "case", "n", "m", "omega", "wall-ms", "mc-nodes", "vc-nodes", "allocs"
    );
    let result = lazymc_bench::perf::run_suite(suite_name, &cases, reps, threads, |c| {
        println!(
            "{:<18} {:>7} {:>9} {:>6} {:>11.3} {:>11} {:>10} {:>12}",
            c.name, c.n, c.m, c.omega, c.wall_ms_median, c.mc_nodes, c.vc_nodes, c.alloc_count
        );
    });
    println!(
        "total {:.3} ms over {} cases ({} reps, {} thread(s), alloc tracking {})",
        result.total_wall_ms(),
        result.cases.len(),
        reps,
        result.threads,
        if result.alloc_tracked { "on" } else { "off" },
    );
    if let Some(out) = p.raw("--out") {
        let json = lazymc_bench::perf::to_json(&result);
        if let Err(e) = std::fs::write(out, &json) {
            return fail(&format!("cannot write {out}: {e}"));
        }
        println!("report written to {out}");
    }
    0
}

/// Minimal blocking HTTP/1.1 client for the service bench (keep-alive,
/// single connection, Nagle off so request fragments cannot add phantom
/// delayed-ACK latency to the measurements).
struct BenchClient {
    stream: std::net::TcpStream,
    reader: std::io::BufReader<std::net::TcpStream>,
}

impl BenchClient {
    fn connect(addr: std::net::SocketAddr) -> std::io::Result<BenchClient> {
        let stream = std::net::TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = std::io::BufReader::new(stream.try_clone()?);
        Ok(BenchClient { stream, reader })
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> std::io::Result<(u16, String)> {
        use std::io::{BufRead, Read, Write};
        let raw = format!(
            "{method} {path} HTTP/1.1\r\nHost: bench\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(raw.as_bytes())?;
        let mut status_line = String::new();
        self.reader.read_line(&mut status_line)?;
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| std::io::Error::other(format!("bad status line {status_line:?}")))?;
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line)?;
            if line.trim_end().is_empty() {
                break;
            }
            if let Some((k, v)) = line.trim_end().split_once(':') {
                if k.trim().eq_ignore_ascii_case("content-length") {
                    content_length = v.trim().parse().unwrap_or(0);
                }
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body)?;
        Ok((status, String::from_utf8_lossy(&body).into_owned()))
    }
}

/// `lazymc bench --suite service`: three HTTP-level cases against an
/// in-process daemon — cached-solve throughput, `/healthz` latency under
/// a saturated solver pool, and batch amortization — reported in the
/// `lazymc-bench/v1` schema with additive `requests_per_sec` /
/// `healthz_p50_ms` / `healthz_p99_ms` fields.
fn bench_service(reps: usize, out: Option<&str>) -> i32 {
    use lazymc_bench::perf::{CaseResult, ServiceCaseStats, SuiteResult};
    use lazymc_graph::gen;

    let percentile = |sorted: &[f64], p: f64| -> f64 {
        sorted[((sorted.len() as f64 * p) as usize).min(sorted.len() - 1)]
    };
    let run = || -> std::io::Result<Vec<CaseResult>> {
        let handle = lazymc_service::serve(lazymc_service::ServiceConfig {
            addr: "127.0.0.1:0".into(),
            solver_workers: 2,
            workers: 4,
            ..lazymc_service::ServiceConfig::default()
        })?;
        let addr = handle.addr();
        let mut c = BenchClient::connect(addr)?;

        // Shared fixture: a planted instance with a real clique.
        let g = gen::planted_clique(300, 0.03, 11, 7);
        let (n, m) = (g.num_vertices(), g.num_edges());
        let mut text = Vec::new();
        io::write_edge_list(&g, &mut text).map_err(std::io::Error::other)?;
        let upload = lazymc_service::Json::obj(vec![
            ("name", lazymc_service::Json::str("bench")),
            ("format", lazymc_service::Json::str("edgelist")),
            (
                "content",
                lazymc_service::Json::str(String::from_utf8_lossy(&text).into_owned()),
            ),
        ])
        .encode();
        let (status, _) = c.request("POST", "/graphs", &upload)?;
        assert_eq!(status, 201, "bench upload failed");
        let (status, warm) = c.request("POST", "/solve", r#"{"graph":"bench","threads":1}"#)?;
        assert_eq!(status, 200, "warm-up solve failed");
        let omega = lazymc_service::Json::parse(&warm)
            .ok()
            .and_then(|v| v.get("omega").and_then(lazymc_service::Json::as_u64))
            .unwrap_or(0) as usize;
        let mut cases = Vec::new();
        let case = |name: &'static str,
                    omega: usize,
                    wall_ms: f64,
                    requests: usize,
                    p50: f64,
                    p99: f64| CaseResult {
            name,
            n,
            m,
            omega,
            reps: 1,
            wall_ms_median: wall_ms,
            wall_ms_min: wall_ms,
            wall_p50_ms: wall_ms,
            wall_p90_ms: wall_ms,
            wall_p99_ms: wall_ms,
            mc_nodes: 0,
            vc_nodes: 0,
            searched_mc: 0,
            searched_kvc: 0,
            reduced_vertices: 0,
            vc_reductions: 0,
            split_tasks: 0,
            steals: 0,
            incumbent_broadcasts: 0,
            alloc_count: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
            service: Some(ServiceCaseStats {
                requests_per_sec: requests as f64 / (wall_ms / 1e3).max(1e-9),
                healthz_p50_ms: p50,
                healthz_p99_ms: p99,
            }),
        };

        // Case 1: cached-solve throughput over one keep-alive connection.
        const SOLVES: usize = 500;
        let t = Instant::now();
        for _ in 0..SOLVES {
            let (status, _) = c.request("POST", "/solve", r#"{"graph":"bench","threads":1}"#)?;
            assert_eq!(status, 200);
        }
        let wall = t.elapsed().as_secs_f64() * 1e3;
        cases.push(case("solve-cached-rps", omega, wall, SOLVES, 0.0, 0.0));

        // Case 2: /healthz latency while both solver workers are pinned.
        let hard = gen::gnp(300, 0.5, 7);
        let mut text = Vec::new();
        io::write_edge_list(&hard, &mut text).map_err(std::io::Error::other)?;
        let upload = lazymc_service::Json::obj(vec![
            ("name", lazymc_service::Json::str("hard")),
            ("format", lazymc_service::Json::str("edgelist")),
            (
                "content",
                lazymc_service::Json::str(String::from_utf8_lossy(&text).into_owned()),
            ),
        ])
        .encode();
        let (status, _) = c.request("POST", "/graphs", &upload)?;
        assert_eq!(status, 201);
        let mut job_ids = Vec::new();
        for _ in 0..4 {
            let (status, body) = c.request(
                "POST",
                "/solve?async=1",
                r#"{"graph":"hard","no_cache":true}"#,
            )?;
            assert_eq!(status, 202, "saturation submit failed: {body}");
            let id = lazymc_service::Json::parse(&body)
                .ok()
                .and_then(|v| v.get("job_id").and_then(lazymc_service::Json::as_u64))
                .unwrap_or(0);
            job_ids.push(id);
        }
        const PROBES: usize = 300;
        let mut lat = Vec::with_capacity(PROBES);
        let t = Instant::now();
        for _ in 0..PROBES {
            let p = Instant::now();
            let (status, _) = c.request("GET", "/healthz", "")?;
            lat.push(p.elapsed().as_secs_f64() * 1e3);
            assert_eq!(status, 200);
        }
        let wall = t.elapsed().as_secs_f64() * 1e3;
        lat.sort_by(|a, b| a.total_cmp(b));
        cases.push(case(
            "healthz-under-load",
            omega,
            wall,
            PROBES,
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
        ));
        for id in job_ids {
            let _ = c.request("DELETE", &format!("/jobs/{id}"), "");
        }

        // Case 3: batch amortization — 64 cached solves in one request.
        const SLOTS: usize = 64;
        let slots = vec![r#"{"graph":"bench","threads":1}"#; SLOTS].join(",");
        let t = Instant::now();
        let (status, body) = c.request("POST", "/solve-batch", &format!("[{slots}]"))?;
        let wall = t.elapsed().as_secs_f64() * 1e3;
        assert_eq!(status, 200, "batch failed: {body}");
        cases.push(case("batch-64-cached", omega, wall, SLOTS, 0.0, 0.0));

        handle.stop();
        Ok(cases)
    };

    // Median across repetitions, per case by name.
    let mut runs = Vec::with_capacity(reps);
    for _ in 0..reps {
        match run() {
            Ok(cases) => runs.push(cases),
            Err(e) => return fail(&format!("service bench failed: {e}")),
        }
    }
    let mut cases: Vec<lazymc_bench::perf::CaseResult> = Vec::new();
    for i in 0..runs[0].len() {
        let mut walls: Vec<f64> = runs.iter().map(|r| r[i].wall_ms_median).collect();
        walls.sort_by(|a, b| a.total_cmp(b));
        let median_idx = runs
            .iter()
            .position(|r| r[i].wall_ms_median == walls[walls.len() / 2])
            .unwrap_or(0);
        let mut chosen = runs[median_idx][i].clone();
        chosen.reps = reps;
        chosen.wall_ms_min = walls[0];
        // Percentiles across repetitions (nearest rank over sorted walls).
        let pct = |q: f64| walls[((q * walls.len() as f64).ceil() as usize).max(1) - 1];
        chosen.wall_p50_ms = pct(0.50);
        chosen.wall_p90_ms = pct(0.90);
        chosen.wall_p99_ms = pct(0.99);
        cases.push(chosen);
    }
    let (host_cores, host_mem_bytes) = lazymc_bench::perf::host_facts();
    let result = SuiteResult {
        suite: "service",
        threads: 2,
        reps,
        alloc_tracked: lazymc_bench::alloc::tracking_enabled(),
        host_cores,
        host_mem_bytes,
        cases,
    };
    println!(
        "{:<20} {:>11} {:>12} {:>12} {:>12}",
        "case", "wall-ms", "req/s", "hz-p50-ms", "hz-p99-ms"
    );
    for c in &result.cases {
        let s = c.service.expect("service cases carry stats");
        println!(
            "{:<20} {:>11.3} {:>12.1} {:>12.3} {:>12.3}",
            c.name, c.wall_ms_median, s.requests_per_sec, s.healthz_p50_ms, s.healthz_p99_ms
        );
    }
    if let Some(out) = out {
        let json = lazymc_bench::perf::to_json(&result);
        if let Err(e) = std::fs::write(out, &json) {
            return fail(&format!("cannot write {out}: {e}"));
        }
        println!("report written to {out}");
    }
    0
}

/// `lazymc bench --suite sparse-massive`: the zero-copy mmap régime.
/// Each solve case snapshots a 10M+-edge synthetic power-law graph to
/// disk once, then times map→solve through [`MappedSnapshot`] — the heap
/// decode never happens; coreness is read straight out of the mapping.
/// A final case cold-boots an in-process daemon over 100 pre-seeded
/// snapshots with `--mmap-threshold-bytes 0` and proves through
/// `/metrics` that not one of them was decoded or re-peeled. Corpora
/// fetched by `lazymc fetch` into `--dir` join the suite; when none are
/// present the suite runs synthetic-only (with a note).
fn bench_sparse_massive(reps: usize, out: Option<&str>, threads: usize, datasets_dir: &str) -> i32 {
    use lazymc_bench::perf::{CaseResult, ServiceCaseStats, SuiteResult};
    use lazymc_core::Deadline;
    use lazymc_graph::{gen, MappedSnapshot};
    use lazymc_order::KCoreView;

    let tmp = std::env::temp_dir().join(format!("lazymc-bench-mmap-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&tmp) {
        return fail(&format!("cannot create {}: {e}", tmp.display()));
    }
    let threads = Config::clamp_threads(threads);
    let mut config = Config::default();
    if threads > 0 {
        config.threads = threads;
    }

    // Real corpora first (when fetched), then the synthetic backbone.
    let mut inputs: Vec<(&'static str, CsrGraph)> = Vec::new();
    let mut fetched = 0usize;
    for d in FETCH_CATALOG {
        let path = format!("{datasets_dir}/{}", d.file);
        if std::path::Path::new(&path).exists() {
            match load(&path) {
                Ok(g) => {
                    inputs.push((d.name, g));
                    fetched += 1;
                }
                Err(e) => eprintln!("note: skipping fetched corpus {path}: {e}"),
            }
        }
    }
    if fetched == 0 {
        println!(
            "note: no fetched corpora in {datasets_dir}/ — running synthetic-only \
             (run `lazymc fetch` to add real SNAP/DIMACS inputs)"
        );
    }
    inputs.push(("ba-650k-16-mmap", gen::barabasi_albert(650_000, 16, 29)));

    println!(
        "{:<22} {:>8} {:>10} {:>6} {:>10} {:>11}",
        "case", "n", "m", "omega", "map-us", "wall-ms"
    );
    let mut cases: Vec<CaseResult> = Vec::new();
    for (name, g) in &inputs {
        // Snapshot once; every repetition then starts from the file, the
        // way a daemon reload would.
        let kc = kcore_sequential(g);
        let mut snap = lazymc_graph::snapshot::Snapshot::from_graph(g);
        lazymc_order::embed_kcore(&mut snap, &kc);
        let bytes = snap.encode();
        let path = tmp.join(format!("{name}.lmcs"));
        if let Err(e) = lazymc_graph::snapshot::write_file_atomic(&path, &bytes) {
            return fail(&format!("cannot write {}: {e}", path.display()));
        }
        drop(bytes);
        drop(snap);
        drop(kc);
        let mut walls = Vec::with_capacity(reps);
        let mut map_us = 0.0;
        let mut last = None;
        for _ in 0..reps {
            let t = Instant::now();
            let m = match MappedSnapshot::map(&path) {
                Ok(m) => m,
                Err(e) => return fail(&format!("cannot map {}: {e}", path.display())),
            };
            map_us = t.elapsed().as_secs_f64() * 1e6;
            m.advise_willneed();
            let view = KCoreView {
                coreness: m.coreness().expect("bench snapshots embed coreness"),
                degeneracy: m.degeneracy(),
                peel_order: m.peel_order(),
            };
            let deadline = Deadline::starting_now(None);
            let r = LazyMc::new(config.clone()).solve_prepared(&m, Some(view), &deadline);
            walls.push(t.elapsed().as_secs_f64() * 1e3);
            last = Some(r);
        }
        let r = last.expect("reps >= 1");
        walls.sort_by(|a, b| a.total_cmp(b));
        let pct = |q: f64| walls[((q * walls.len() as f64).ceil() as usize).max(1) - 1];
        let case = CaseResult {
            name,
            n: g.num_vertices(),
            m: g.num_edges(),
            omega: r.size(),
            reps,
            wall_ms_median: walls[walls.len() / 2],
            wall_ms_min: walls[0],
            wall_p50_ms: pct(0.50),
            wall_p90_ms: pct(0.90),
            wall_p99_ms: pct(0.99),
            mc_nodes: r.metrics.mc_nodes,
            vc_nodes: r.metrics.vc_nodes,
            searched_mc: r.metrics.searched_mc,
            searched_kvc: r.metrics.searched_kvc,
            reduced_vertices: r.metrics.reduced_vertices,
            vc_reductions: r.metrics.vc_reductions,
            split_tasks: r.metrics.split_tasks,
            steals: r.metrics.steals,
            incumbent_broadcasts: r.metrics.incumbent_broadcasts,
            alloc_count: 0,
            alloc_bytes: 0,
            peak_bytes: 0,
            service: None,
        };
        println!(
            "{:<22} {:>8} {:>10} {:>6} {:>10.1} {:>11.3}",
            case.name, case.n, case.m, case.omega, map_us, case.wall_ms_median
        );
        cases.push(case);
    }

    // Cold boot: 100 snapshots pre-seeded into a data dir; a fresh
    // daemon must answer /stats on every one without a single heap
    // decode or re-peel — proven through its own /metrics, not assumed.
    const BOOT_SNAPSHOTS: usize = 100;
    let coldboot = || -> std::io::Result<(f64, usize, usize)> {
        let data_dir = tmp.join("coldboot");
        std::fs::create_dir_all(&data_dir)?;
        let (mut total_n, mut total_m) = (0usize, 0usize);
        for i in 0..BOOT_SNAPSHOTS {
            let g = gen::gnp(400, 0.05, i as u64);
            total_n += g.num_vertices();
            total_m += g.num_edges();
            let kc = kcore_sequential(&g);
            let mut snap = lazymc_graph::snapshot::Snapshot::from_graph(&g);
            lazymc_order::embed_kcore(&mut snap, &kc);
            lazymc_graph::snapshot::write_file_atomic(
                &data_dir.join(format!("boot-{i:03}.lmcs")),
                &snap.encode(),
            )?;
        }
        let t = Instant::now();
        let handle = lazymc_service::serve(lazymc_service::ServiceConfig {
            addr: "127.0.0.1:0".into(),
            data_dir: Some(data_dir.to_string_lossy().into_owned()),
            mmap_threshold_bytes: 0,
            scrub_interval: None,
            ..lazymc_service::ServiceConfig::default()
        })?;
        let mut c = BenchClient::connect(handle.addr())?;
        for i in 0..BOOT_SNAPSHOTS {
            let (status, body) = c.request("GET", &format!("/stats/boot-{i:03}"), "")?;
            assert_eq!(status, 200, "cold stats failed: {body}");
        }
        let wall = t.elapsed().as_secs_f64() * 1e3;
        let (status, metrics) = c.request("GET", "/metrics", "")?;
        assert_eq!(status, 200);
        let counter = |name: &str| -> f64 {
            metrics
                .lines()
                .find(|l| !l.starts_with('#') && l.starts_with(name))
                .and_then(|l| l.split_whitespace().last())
                .and_then(|v| v.parse().ok())
                .unwrap_or(-1.0)
        };
        assert_eq!(
            counter("lazymc_core_computes_total"),
            0.0,
            "cold boot re-peeled a k-core; the zero-copy path regressed"
        );
        assert!(
            counter("lazymc_snapshot_mmap_total") >= BOOT_SNAPSHOTS as f64,
            "cold boot decoded snapshots instead of mapping them"
        );
        handle.stop();
        Ok((wall, total_n, total_m))
    };
    let mut walls = Vec::with_capacity(reps);
    let (mut total_n, mut total_m) = (0usize, 0usize);
    for _ in 0..reps {
        match coldboot() {
            Ok((wall, n, m)) => {
                walls.push(wall);
                total_n = n;
                total_m = m;
            }
            Err(e) => return fail(&format!("cold-boot case failed: {e}")),
        }
    }
    walls.sort_by(|a, b| a.total_cmp(b));
    let pct = |q: f64| walls[((q * walls.len() as f64).ceil() as usize).max(1) - 1];
    let median = walls[walls.len() / 2];
    let case = CaseResult {
        name: "coldboot-100-snapshots",
        n: total_n,
        m: total_m,
        omega: 0,
        reps,
        wall_ms_median: median,
        wall_ms_min: walls[0],
        wall_p50_ms: pct(0.50),
        wall_p90_ms: pct(0.90),
        wall_p99_ms: pct(0.99),
        mc_nodes: 0,
        vc_nodes: 0,
        searched_mc: 0,
        searched_kvc: 0,
        reduced_vertices: 0,
        vc_reductions: 0,
        split_tasks: 0,
        steals: 0,
        incumbent_broadcasts: 0,
        alloc_count: 0,
        alloc_bytes: 0,
        peak_bytes: 0,
        service: Some(ServiceCaseStats {
            requests_per_sec: BOOT_SNAPSHOTS as f64 / (median / 1e3).max(1e-9),
            healthz_p50_ms: 0.0,
            healthz_p99_ms: 0.0,
        }),
    };
    println!(
        "{:<22} {:>8} {:>10} {:>6} {:>10} {:>11.3}",
        case.name, case.n, case.m, "-", "-", case.wall_ms_median
    );
    cases.push(case);
    let _ = std::fs::remove_dir_all(&tmp);

    let (host_cores, host_mem_bytes) = lazymc_bench::perf::host_facts();
    let result = SuiteResult {
        suite: "sparse-massive",
        threads: if threads > 0 {
            threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        },
        reps,
        alloc_tracked: lazymc_bench::alloc::tracking_enabled(),
        host_cores,
        host_mem_bytes,
        cases,
    };
    println!(
        "total {:.3} ms over {} cases ({} reps)",
        result.total_wall_ms(),
        result.cases.len(),
        reps
    );
    if let Some(out) = out {
        let json = lazymc_bench::perf::to_json(&result);
        if let Err(e) = std::fs::write(out, &json) {
            return fail(&format!("cannot write {out}: {e}"));
        }
        println!("report written to {out}");
    }
    0
}

/// One fetchable real-world corpus: a plain (uncompressed) text mirror
/// the dependency-free HTTP client can pull, named after the instance
/// the sparse-massive bench will pick it up as.
struct FetchSource {
    name: &'static str,
    /// File name under `--dir`; the extension picks the parser.
    file: &'static str,
    url: &'static str,
}

/// Corpora `lazymc fetch` knows how to retrieve. DIMACS ascii mirrors
/// are preferred over SNAP archives because the latter only ship
/// gzip-compressed and the workspace bakes in no decompressor.
const FETCH_CATALOG: &[FetchSource] = &[
    FetchSource {
        name: "brock800-4",
        file: "brock800-4.clq",
        url: "http://iridia.ulb.ac.be/~fmascia/files/DIMACS/brock800_4.clq",
    },
    FetchSource {
        name: "p-hat1500-1",
        file: "p-hat1500-1.clq",
        url: "http://iridia.ulb.ac.be/~fmascia/files/DIMACS/p_hat1500-1.clq",
    },
    FetchSource {
        name: "c2000-5",
        file: "c2000-5.clq",
        url: "http://iridia.ulb.ac.be/~fmascia/files/DIMACS/C2000.5.clq",
    },
];

/// Exit code for "nothing fetched because the network is unreachable":
/// distinct from argument errors (1) so scripts can tell *skipped*
/// (fall back to synthetic benches) from *broken*.
const FETCH_OFFLINE_EXIT: i32 = 8;

/// A fetch failure, split by whether retrying later could help.
enum FetchError {
    /// DNS, connect or socket-level failure — typically offline.
    Network(String),
    /// The mirror answered but unusably (bad status, https redirect).
    Other(String),
}

/// Minimal HTTP/1.0 GET (`Connection: close`, so the body is simply
/// everything after the headers — no chunked decoding needed). Follows
/// up to `redirects` same-scheme redirects; a redirect to https is
/// reported as unusable since the fetcher is TLS-free by design.
fn http_get(url: &str, timeout: Duration, redirects: usize) -> Result<Vec<u8>, FetchError> {
    use std::io::{Read, Write};
    use std::net::{TcpStream, ToSocketAddrs};
    let rest = url.strip_prefix("http://").ok_or_else(|| {
        FetchError::Other(format!(
            "{url}: only plain http is supported (no TLS in the workspace); download manually"
        ))
    })?;
    let (hostport, path) = match rest.split_once('/') {
        Some((h, p)) => (h, format!("/{p}")),
        None => (rest, "/".to_string()),
    };
    let (host, port) = match hostport.split_once(':') {
        Some((h, p)) => (
            h,
            p.parse::<u16>()
                .map_err(|_| FetchError::Other(format!("{url}: bad port")))?,
        ),
        None => (hostport, 80),
    };
    let addr = (host, port)
        .to_socket_addrs()
        .map_err(|e| FetchError::Network(format!("cannot resolve {host}: {e}")))?
        .next()
        .ok_or_else(|| FetchError::Network(format!("cannot resolve {host}: no address")))?;
    let stream = TcpStream::connect_timeout(&addr, timeout)
        .map_err(|e| FetchError::Network(format!("cannot connect to {host}:{port}: {e}")))?;
    stream
        .set_read_timeout(Some(timeout))
        .and_then(|()| stream.set_write_timeout(Some(timeout)))
        .map_err(|e| FetchError::Network(e.to_string()))?;
    let mut stream = stream;
    stream
        .write_all(
            format!(
                "GET {path} HTTP/1.0\r\nHost: {host}\r\nUser-Agent: lazymc-fetch\r\nConnection: close\r\n\r\n"
            )
            .as_bytes(),
        )
        .map_err(|e| FetchError::Network(format!("send to {host} failed: {e}")))?;
    let mut raw = Vec::new();
    stream
        .read_to_end(&mut raw)
        .map_err(|e| FetchError::Network(format!("read from {host} failed: {e}")))?;
    let header_end = raw
        .windows(4)
        .position(|w| w == b"\r\n\r\n")
        .ok_or_else(|| FetchError::Other(format!("{host}: malformed HTTP response")))?;
    let head = String::from_utf8_lossy(&raw[..header_end]).into_owned();
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| FetchError::Other(format!("{host}: bad status line")))?;
    match status {
        200 => Ok(raw[header_end + 4..].to_vec()),
        301 | 302 | 307 | 308 if redirects > 0 => {
            let location = head
                .lines()
                .find_map(|l| {
                    let (k, v) = l.split_once(':')?;
                    k.trim()
                        .eq_ignore_ascii_case("location")
                        .then(|| v.trim().to_string())
                })
                .ok_or_else(|| FetchError::Other(format!("{host}: redirect without Location")))?;
            http_get(&location, timeout, redirects - 1)
        }
        _ => Err(FetchError::Other(format!("{url}: HTTP {status}"))),
    }
}

/// `lazymc fetch` — download the cataloged real-world corpora into
/// `--dir` (default `datasets/`) for `bench --suite sparse-massive`.
/// Each file's FNV-1a checksum is printed and recorded next to it
/// (`<file>.fnv`); a re-download that disagrees with the recorded sum
/// is rejected instead of silently replacing the corpus. Being offline
/// is a *skip*, not a failure of the pipeline: the bench falls back to
/// synthetic graphs — but the command exits 8 (not 0, not 1) so
/// scripts can tell skipped from fetched from broken.
pub fn fetch(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    if p.has("--list") {
        for d in FETCH_CATALOG {
            println!("{:<14} {:<22} {}", d.name, d.file, d.url);
        }
        return 0;
    }
    let dir = p.raw("--dir").unwrap_or("datasets");
    let timeout = match p.value::<u64>("--timeout-ms") {
        Ok(ms) => Duration::from_millis(ms.unwrap_or(10_000).max(1)),
        Err(e) => return fail(&e),
    };
    let mut wanted: Vec<&FetchSource> = Vec::new();
    let mut i = 0;
    while let Some(name) = p.positional(i) {
        match FETCH_CATALOG.iter().find(|d| d.name == name) {
            Some(d) => wanted.push(d),
            None => {
                return fail(&format!(
                    "unknown corpus {name:?} (see `lazymc fetch --list`)"
                ))
            }
        }
        i += 1;
    }
    if wanted.is_empty() {
        wanted = FETCH_CATALOG.iter().collect();
    }
    if let Err(e) = std::fs::create_dir_all(dir) {
        return fail(&format!("cannot create {dir}: {e}"));
    }
    let (mut fetched, mut network_down) = (0usize, false);
    for d in wanted {
        let dest = format!("{dir}/{}", d.file);
        if std::path::Path::new(&dest).exists() {
            println!("{:<14} already present ({dest})", d.name);
            fetched += 1;
            continue;
        }
        match http_get(d.url, timeout, 2) {
            Ok(body) => {
                let sum = fnv1a(&body);
                let fnv_path = format!("{dest}.fnv");
                if let Ok(recorded) = std::fs::read_to_string(&fnv_path) {
                    if recorded.trim() != format!("{sum:016x}") {
                        eprintln!(
                            "error: {}: checksum {sum:016x} disagrees with recorded {}; \
                             refusing to replace the corpus",
                            d.name,
                            recorded.trim()
                        );
                        continue;
                    }
                }
                if let Err(e) = std::fs::write(&dest, &body) {
                    return fail(&format!("cannot write {dest}: {e}"));
                }
                if let Err(e) = std::fs::write(&fnv_path, format!("{sum:016x}\n")) {
                    return fail(&format!("cannot write {fnv_path}: {e}"));
                }
                println!(
                    "{:<14} {} bytes, fnv1a {sum:016x} -> {dest}",
                    d.name,
                    body.len()
                );
                fetched += 1;
            }
            Err(FetchError::Network(e)) => {
                eprintln!("{:<14} skipped: {e}", d.name);
                network_down = true;
            }
            Err(FetchError::Other(e)) => {
                eprintln!("{:<14} skipped: {e}", d.name);
            }
        }
    }
    if network_down {
        eprintln!(
            "fetch: network unreachable — nothing lost: `bench --suite sparse-massive` \
             falls back to synthetic graphs.\n       Re-run `lazymc fetch` when online, or \
             drop files into {dir}/ by hand (`lazymc fetch --list` shows names and URLs)."
        );
        return FETCH_OFFLINE_EXIT;
    }
    if fetched == 0 {
        return fail("no corpus could be fetched (mirrors unusable; see messages above)");
    }
    0
}

/// FNV-1a over a byte slice — the same checksum family the snapshot
/// format uses, so recorded sums are comparable across tooling.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Validates a bench report against the `lazymc-bench/v1` schema.
fn bench_check_json(path: &str) -> i32 {
    use lazymc_service::Json;
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let v = match Json::parse(&text) {
        Ok(v) => v,
        Err(e) => return fail(&format!("{path}: invalid JSON: {e}")),
    };
    let mut problems: Vec<String> = Vec::new();
    let mut expect = |ok: bool, what: &str| {
        if !ok {
            problems.push(what.to_string());
        }
    };
    expect(
        v.get("schema").and_then(Json::as_str) == Some("lazymc-bench/v1"),
        "schema must be \"lazymc-bench/v1\"",
    );
    expect(
        v.get("suite")
            .and_then(Json::as_str)
            .is_some_and(|s| lazymc_bench::perf::SUITES.contains(&s)),
        "suite must be quick|dense|sparse|service|sparse-massive",
    );
    // Additive host facts: integers when present, absence accepted so
    // reports recorded before host stamping stay valid.
    for field in lazymc_bench::perf::TOP_OPT_INT_FIELDS {
        if let Some(x) = v.get(field) {
            expect(
                x.as_u64().is_some(),
                &format!("{field} must be an integer if present"),
            );
        }
    }
    expect(
        v.get("threads")
            .and_then(Json::as_u64)
            .is_some_and(|x| x >= 1),
        "threads must be an integer >= 1",
    );
    expect(
        v.get("reps").and_then(Json::as_u64).is_some_and(|x| x >= 1),
        "reps must be an integer >= 1",
    );
    expect(
        v.get("alloc_tracked").and_then(Json::as_bool).is_some(),
        "alloc_tracked must be a boolean",
    );
    expect(
        v.get("total_wall_ms").and_then(Json::as_f64).is_some(),
        "total_wall_ms must be a number",
    );
    match v.get("cases") {
        Some(Json::Arr(cases)) if !cases.is_empty() => {
            for (i, c) in cases.iter().enumerate() {
                if c.get("name").and_then(Json::as_str).is_none() {
                    problems.push(format!("cases[{i}].name must be a string"));
                }
                for field in ["wall_ms_median", "wall_ms_min"] {
                    if c.get(field).and_then(Json::as_f64).is_none() {
                        problems.push(format!("cases[{i}].{field} must be a number"));
                    }
                }
                for field in lazymc_bench::perf::CASE_INT_FIELDS {
                    if c.get(field).and_then(|x| x.as_u64()).is_none() {
                        problems.push(format!("cases[{i}].{field} must be an integer"));
                    }
                }
                // Additive parallelism fields: type-checked when present,
                // absence accepted (pre-parallelism reports stay valid).
                for field in lazymc_bench::perf::CASE_OPT_INT_FIELDS {
                    if let Some(x) = c.get(field) {
                        if x.as_u64().is_none() {
                            problems
                                .push(format!("cases[{i}].{field} must be an integer if present"));
                        }
                    }
                }
                // Additive service fields (requests/sec, healthz latency):
                // likewise optional, numeric when present.
                for field in lazymc_bench::perf::CASE_OPT_FLOAT_FIELDS {
                    if let Some(x) = c.get(field) {
                        if x.as_f64().is_none() {
                            problems
                                .push(format!("cases[{i}].{field} must be a number if present"));
                        }
                    }
                }
            }
        }
        _ => problems.push("cases must be a non-empty array".into()),
    }
    if problems.is_empty() {
        println!("{path}: valid lazymc-bench/v1 report");
        0
    } else {
        for p in &problems {
            eprintln!("error: {p}");
        }
        1
    }
}

/// Tolerated median wall-time growth before `--compare` fails the run.
const COMPARE_REGRESSION_TOLERANCE: f64 = 1.10;

/// The comparison of two bench reports: the rendered table plus the
/// regression verdict (median of per-case `new/old` wall ratios).
struct BenchComparison {
    table: String,
    median_ratio: f64,
    regressed: bool,
}

/// Compares two parsed `lazymc-bench/v1` reports case-by-case (matched by
/// name, in the old report's order). Speedup is `old/new` median wall
/// time; the regression gate is the *median* of `new/old` ratios, so one
/// noisy case cannot fail (or excuse) a run.
fn compare_reports(
    old: &lazymc_service::Json,
    new: &lazymc_service::Json,
) -> Result<BenchComparison, String> {
    use lazymc_service::Json;
    type CaseRow = (String, f64, u64);
    let rows = |v: &Json, which: &str| -> Result<Vec<CaseRow>, String> {
        let Some(Json::Arr(cases)) = v.get("cases") else {
            return Err(format!("{which} report has no cases array"));
        };
        cases
            .iter()
            .enumerate()
            .map(|(i, c)| {
                let name = c
                    .get("name")
                    .and_then(Json::as_str)
                    .ok_or_else(|| format!("{which} cases[{i}] has no name"))?;
                let wall = c
                    .get("wall_ms_median")
                    .and_then(Json::as_f64)
                    .ok_or_else(|| format!("{which} cases[{i}] has no wall_ms_median"))?;
                let nodes = c.get("mc_nodes").and_then(Json::as_u64).unwrap_or(0)
                    + c.get("vc_nodes").and_then(Json::as_u64).unwrap_or(0);
                Ok((name.to_string(), wall, nodes))
            })
            .collect()
    };
    let old_rows = rows(old, "old")?;
    let new_rows = rows(new, "new")?;
    let mut table = format!(
        "{:<18} {:>11} {:>11} {:>8} {:>12} {:>12} {:>8}\n",
        "case", "old-ms", "new-ms", "speedup", "old-nodes", "new-nodes", "nodes-x"
    );
    let mut ratios = Vec::new();
    let (mut old_total, mut new_total) = (0.0f64, 0.0f64);
    for (name, old_wall, old_nodes) in &old_rows {
        let Some((_, new_wall, new_nodes)) = new_rows.iter().find(|(n, _, _)| n == name) else {
            continue; // suites diverged; compare the intersection
        };
        let speedup = old_wall / new_wall.max(1e-9);
        let node_ratio = *old_nodes as f64 / (*new_nodes).max(1) as f64;
        let _ = writeln!(
            table,
            "{name:<18} {old_wall:>11.3} {new_wall:>11.3} {speedup:>7.2}x {old_nodes:>12} {new_nodes:>12} {node_ratio:>7.2}x",
        );
        ratios.push(new_wall / old_wall.max(1e-9));
        old_total += old_wall;
        new_total += *new_wall;
    }
    if ratios.is_empty() {
        return Err("the two reports share no case names".into());
    }
    ratios.sort_by(|a, b| a.total_cmp(b));
    let median_ratio = ratios[ratios.len() / 2];
    let _ = writeln!(
        table,
        "total {old_total:.3} ms -> {new_total:.3} ms ({:.2}x); median per-case ratio {median_ratio:.3}",
        old_total / new_total.max(1e-9),
    );
    Ok(BenchComparison {
        table,
        median_ratio,
        regressed: median_ratio > COMPARE_REGRESSION_TOLERANCE,
    })
}

/// `lazymc bench --compare OLD.json NEW.json`
fn bench_compare(old_path: &str, new_path: &str) -> i32 {
    use lazymc_service::Json;
    let load = |path: &str| -> Result<Json, String> {
        let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        Json::parse(&text).map_err(|e| format!("{path}: invalid JSON: {e}"))
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => return fail(&e),
    };
    match compare_reports(&old, &new) {
        Ok(cmp) => {
            print!("{}", cmp.table);
            if cmp.regressed {
                eprintln!(
                    "error: median wall-time regression {:.1}% exceeds the {:.0}% tolerance",
                    (cmp.median_ratio - 1.0) * 100.0,
                    (COMPARE_REGRESSION_TOLERANCE - 1.0) * 100.0,
                );
                1
            } else {
                0
            }
        }
        Err(e) => fail(&e),
    }
}

/// `lazymc stats`
pub fn stats(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let Some(path) = p.positional(0) else {
        return fail("stats needs a graph file");
    };
    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let s = GraphStats::of(&g);
    let kc = kcore_sequential(&g);
    let (components, _) = connected_components(&g);
    println!("vertices    {}", s.n);
    println!("edges       {}", s.m);
    println!("max degree  {}", s.max_degree);
    println!("avg degree  {:.2}", s.avg_degree);
    println!("density     {:.6}", s.density);
    println!("isolated    {}", s.isolated);
    println!("components  {components}");
    println!("degeneracy  {}", kc.degeneracy);
    println!("omega <=    {}", kc.omega_upper_bound());
    println!("triangles   {}", triangle_count(&g));
    0
}

/// `lazymc mce`
pub fn mce(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let Some(path) = p.positional(0) else {
        return fail("mce needs a graph file");
    };
    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let t = Instant::now();
    if p.has("--histogram") {
        let mut hist: Vec<u64> = Vec::new();
        let stats = lazymc_mce::for_each_maximal_clique(&g, |c| {
            if hist.len() <= c.len() {
                hist.resize(c.len() + 1, 0);
            }
            hist[c.len()] += 1;
        });
        println!("maximal cliques {}", stats.cliques);
        for (size, count) in hist.iter().enumerate().filter(|(_, &c)| c > 0) {
            println!("  size {size:>3}: {count}");
        }
    } else {
        println!("maximal cliques {}", lazymc_mce::count_maximal_cliques(&g));
    }
    println!("time {:?}", t.elapsed());
    0
}

/// `lazymc compare`
pub fn compare(argv: &[String]) -> i32 {
    use lazymc_baselines as bl;
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let Some(path) = p.positional(0) else {
        return fail("compare needs a graph file");
    };
    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let skip: Vec<&str> = p
        .raw("--skip")
        .map(|s| s.split(',').collect())
        .unwrap_or_default();

    let t = Instant::now();
    let lazy = LazyMc::new(Config::default()).solve(&g);
    let lazy_time = t.elapsed();
    println!(
        "{:<10} omega {:<5} time {:>12?}",
        "lazymc",
        lazy.size(),
        lazy_time
    );

    type Baseline = Box<dyn Fn(&CsrGraph) -> Vec<u32>>;
    let runs: Vec<(&str, Baseline)> = vec![
        ("pmc", Box::new(bl::pmc_like)),
        (
            "domega-ls",
            Box::new(|g: &CsrGraph| bl::domega(g, bl::GapSchedule::Linear)),
        ),
        (
            "domega-bs",
            Box::new(|g: &CsrGraph| bl::domega(g, bl::GapSchedule::Binary)),
        ),
        ("brb", Box::new(bl::brb_like)),
    ];
    for (name, f) in runs {
        if skip.contains(&name) {
            println!("{name:<10} skipped");
            continue;
        }
        let t = Instant::now();
        let c = f(&g);
        let elapsed = t.elapsed();
        let verdict = if c.len() == lazy.size() {
            ""
        } else {
            "  << DISAGREES"
        };
        println!(
            "{:<10} omega {:<5} time {:>12?}  speedup {:>6.2}x{verdict}",
            name,
            c.len(),
            elapsed,
            elapsed.as_secs_f64() / lazy_time.as_secs_f64().max(1e-9),
        );
        if c.len() != lazy.size() {
            return fail("solver disagreement");
        }
    }
    0
}

/// `lazymc serve`
pub fn serve(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let mut cfg = lazymc_service::ServiceConfig {
        addr: p.positional(0).unwrap_or("127.0.0.1:7171").to_string(),
        ..lazymc_service::ServiceConfig::default()
    };
    macro_rules! set {
        ($field:ident, $flag:literal) => {
            match p.value($flag) {
                Ok(Some(v)) => cfg.$field = v,
                Ok(None) => {}
                Err(e) => return fail(&e),
            }
        };
    }
    set!(workers, "--workers");
    set!(solver_workers, "--solver-workers");
    set!(io_threads, "--io-threads");
    set!(conn_limit, "--conn-limit");
    set!(max_graphs, "--max-graphs");
    set!(queue_capacity, "--queue-cap");
    cfg.data_dir = p.raw("--data-dir").map(str::to_string);
    match p.value::<u64>("--max-budget-ms") {
        Ok(Some(ms)) => cfg.max_budget_ms = Some(ms),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    match p.value::<u64>("--job-ttl-ms") {
        Ok(Some(ms)) => cfg.job_ttl = Duration::from_millis(ms),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    match p.value::<u64>("--result-cache-bytes") {
        Ok(Some(bytes)) => cfg.result_cache_bytes = bytes as usize,
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    cfg.log_json = p.has("--log-json");
    match p.value::<u64>("--slow-query-ms") {
        Ok(Some(ms)) => cfg.slow_query_ms = ms,
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    match p.value::<u64>("--queue-delay-target-ms") {
        Ok(Some(ms)) => cfg.queue_delay_target_ms = Some(ms),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    match p.value::<u64>("--max-memory-bytes") {
        Ok(Some(bytes)) => cfg.max_memory_bytes = Some(bytes),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    match p.value::<u64>("--drain-timeout-ms") {
        Ok(Some(ms)) => cfg.drain_timeout = Duration::from_millis(ms),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    // 0 maps every snapshot, u64::MAX decodes everything onto the heap.
    match p.value::<u64>("--mmap-threshold-bytes") {
        Ok(Some(bytes)) => cfg.mmap_threshold_bytes = bytes,
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    // 0 disables the scrubber; anything else overrides the 60s default.
    match p.value::<u64>("--scrub-interval-ms") {
        Ok(Some(0)) => cfg.scrub_interval = None,
        Ok(Some(ms)) => cfg.scrub_interval = Some(Duration::from_millis(ms)),
        Ok(None) => {}
        Err(e) => return fail(&e),
    }
    // The real daemon turns SIGTERM/SIGINT into a graceful drain
    // (--check exits on its own and must not block signals).
    cfg.handle_signals = !p.has("--check");

    let data_dir = cfg.data_dir.clone();
    // With --log-json, stdout is reserved for structured log lines (one
    // JSON object per line, machine-parseable); the human banner moves to
    // stderr so `lazymc serve --log-json > log.jsonl` stays clean.
    let log_json = cfg.log_json;
    macro_rules! banner {
        ($($t:tt)*) => {
            if log_json { eprintln!($($t)*) } else { println!($($t)*) }
        };
    }
    let handle = match lazymc_service::serve(cfg) {
        Ok(h) => h,
        Err(e) => return fail(&format!("cannot start daemon: {e}")),
    };
    let addr = handle.addr();
    banner!("lazymc-service listening on http://{addr}");
    banner!("  POST /graphs       upload a graph   (name, format, content)");
    banner!("  POST /solve        query a clique   (graph, budget_ms, priority, ...)");
    banner!("  POST /solve?async=1  202 + job id; poll GET /jobs/<id>, DELETE cancels");
    banner!("  POST /solve-batch  array of solve bodies, grouped by graph");
    banner!("  GET  /stats[/name] | /graphs | /jobs/<id> | /healthz | /readyz | /metrics");
    banner!("  GET  /debug/slow   slowest solves with span trees (--slow-query-ms)");
    if let Some(dir) = data_dir {
        let snapshots = handle.state().registry.store().map_or(0, |s| s.len());
        banner!("  durable: {snapshots} snapshot(s) indexed in {dir}");
    }
    if p.has("--check") {
        handle.stop();
        return 0;
    }
    // Block until SIGTERM/SIGINT starts a drain, let admitted work settle
    // (bounded by --drain-timeout-ms), then shut down and exit 0 — queued
    // jobs that missed the window are still journaled and replay on the
    // next boot, so nothing admitted is ever lost.
    handle.wait();
    banner!("lazymc-service drained; exiting");
    handle.stop();
    0
}

/// `lazymc snapshot` — precompute a durable `.lmcs` snapshot (CSR +
/// fingerprint + exact coreness) from any readable graph file, written
/// atomically. The output can pre-seed a daemon's `--data-dir`.
pub fn snapshot(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let (Some(path), Some(out)) = (p.positional(0), p.positional(1)) else {
        return fail("snapshot needs a graph file and an output .lmcs path");
    };
    let g = match load(path) {
        Ok(g) => g,
        Err(e) => return fail(&e),
    };
    let t = Instant::now();
    let kc = kcore_sequential(&g);
    let mut snap = lazymc_graph::snapshot::Snapshot::from_graph(&g);
    lazymc_order::embed_kcore(&mut snap, &kc);
    let bytes = snap.encode();
    if let Err(e) = lazymc_graph::snapshot::write_file_atomic(std::path::Path::new(out), &bytes) {
        return fail(&format!("cannot write {out}: {e}"));
    }
    println!(
        "wrote {out}: {} vertices, {} edges, degeneracy {}, fingerprint {:016x}, {} bytes in {:?}",
        g.num_vertices(),
        g.num_edges(),
        kc.degeneracy,
        snap.fingerprint,
        bytes.len(),
        t.elapsed()
    );
    0
}

/// `lazymc restore` — verify an `.lmcs` snapshot (checksum, structure,
/// fingerprint, coreness shape) and print its summary; with a second
/// positional, re-export the graph to an ordinary graph file.
pub fn restore(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let Some(path) = p.positional(0) else {
        return fail("restore needs an .lmcs file");
    };
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => return fail(&format!("cannot read {path}: {e}")),
    };
    let snap = match lazymc_graph::snapshot::Snapshot::decode(&bytes) {
        Ok(s) => s,
        Err(e) => return fail(&format!("corrupt snapshot {path}: {e}")),
    };
    let g = match snap.graph() {
        Ok(g) => g,
        Err(e) => return fail(&format!("corrupt snapshot {path}: {e}")),
    };
    let kc = match lazymc_order::extract_kcore(&snap) {
        Ok(kc) => kc,
        Err(e) => return fail(&format!("corrupt snapshot {path}: {e}")),
    };
    println!("snapshot    {path} ({} bytes, checksum ok)", bytes.len());
    println!("vertices    {}", g.num_vertices());
    println!("edges       {}", g.num_edges());
    println!("fingerprint {:016x}", snap.fingerprint);
    println!("degeneracy  {}", kc.degeneracy);
    println!("omega <=    {}", kc.omega_upper_bound());
    println!(
        "peel order  {}",
        if kc.peel_order.is_empty() {
            "absent"
        } else {
            "present"
        }
    );
    if let Some(out) = p.positional(1) {
        let file = match std::fs::File::create(out) {
            Ok(f) => f,
            Err(e) => return fail(&format!("cannot create {out}: {e}")),
        };
        let writer = std::io::BufWriter::new(file);
        let result = if out.ends_with(".clq") || out.ends_with(".col") || out.ends_with(".dimacs") {
            io::write_dimacs(&g, writer)
        } else {
            io::write_edge_list(&g, writer)
        };
        if let Err(e) = result {
            return fail(&format!("write failed: {e}"));
        }
        println!("restored    {out}");
    }
    0
}

/// `lazymc gen`
pub fn gen(argv: &[String]) -> i32 {
    let p = match Parsed::parse(argv) {
        Ok(p) => p,
        Err(e) => return fail(&e),
    };
    let Some(name) = p.positional(0) else {
        return fail("gen needs an instance name (or `list`)");
    };
    if name == "list" {
        for inst in suite::all() {
            println!("{:<14} mirrors {}", inst.name, inst.mirrors);
        }
        return 0;
    }
    let Some(out) = p.positional(1) else {
        return fail("gen needs an output file");
    };
    let Some(inst) = suite::by_name(name) else {
        return fail(&format!(
            "unknown instance {name:?} (try `lazymc gen list`)"
        ));
    };
    let scale = if p.has("--test") {
        suite::Scale::Test
    } else {
        suite::Scale::Standard
    };
    let g = inst.build(scale);
    let file = match std::fs::File::create(out) {
        Ok(f) => f,
        Err(e) => return fail(&format!("cannot create {out}: {e}")),
    };
    let writer = std::io::BufWriter::new(file);
    let result = if out.ends_with(".clq") || out.ends_with(".col") || out.ends_with(".dimacs") {
        io::write_dimacs(&g, writer)
    } else {
        io::write_edge_list(&g, writer)
    };
    if let Err(e) = result {
        return fail(&format!("write failed: {e}"));
    }
    println!(
        "wrote {} ({} vertices, {} edges) to {out}",
        inst.name,
        g.num_vertices(),
        g.num_edges()
    );
    0
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use lazymc_service::Json;

    fn report(cases: &[(&str, f64, u64)]) -> Json {
        let body: Vec<String> = cases
            .iter()
            .map(|(name, wall, nodes)| {
                format!(
                    "{{\"name\":\"{name}\",\"wall_ms_median\":{wall},\"mc_nodes\":{nodes},\"vc_nodes\":0}}"
                )
            })
            .collect();
        Json::parse(&format!("{{\"cases\":[{}]}}", body.join(","))).unwrap()
    }

    #[test]
    fn compare_flags_median_regression_only() {
        let old = report(&[("a", 100.0, 10), ("b", 100.0, 10), ("c", 100.0, 10)]);
        // One case 3× slower but the median is flat: not a regression.
        let noisy = report(&[("a", 300.0, 10), ("b", 100.0, 10), ("c", 100.0, 10)]);
        let cmp = compare_reports(&old, &noisy).unwrap();
        assert!(!cmp.regressed, "median gate must ignore one outlier");
        // Every case 20% slower: regression.
        let slow = report(&[("a", 120.0, 10), ("b", 120.0, 10), ("c", 120.0, 10)]);
        let cmp = compare_reports(&old, &slow).unwrap();
        assert!(cmp.regressed);
        assert!((cmp.median_ratio - 1.2).abs() < 1e-9);
        // Uniform speedup: fine, and the table carries the ratio.
        let fast = report(&[("a", 50.0, 5), ("b", 50.0, 5), ("c", 50.0, 5)]);
        let cmp = compare_reports(&old, &fast).unwrap();
        assert!(!cmp.regressed);
        assert!(cmp.table.contains("2.00x"));
    }

    #[test]
    fn compare_matches_cases_by_name() {
        let old = report(&[("a", 100.0, 10), ("gone", 50.0, 5)]);
        let new = report(&[("added", 70.0, 7), ("a", 100.0, 10)]);
        let cmp = compare_reports(&old, &new).unwrap();
        assert!(!cmp.regressed);
        assert!(cmp.table.contains('a'));
        assert!(!cmp.table.contains("gone"));
        // Disjoint reports are an error, not a silent pass.
        let other = report(&[("z", 1.0, 1)]);
        assert!(compare_reports(&old, &other).is_err());
    }
}
