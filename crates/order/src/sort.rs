//! Parallel stable counting sort.
//!
//! The paper orders vertices with SAPCo sort \[25\] (a parallel counting sort
//! specialized for power-law degree arrays) followed by a stable counting
//! sort on coreness. This module provides the general primitive both phases
//! use: a parallel, *stable* counting sort of `u32` items by a small
//! integer key (degree or coreness, both bounded by the max degree).
//!
//! Parallelization is the textbook scheme: chunk the input, build one
//! histogram per chunk, exclusive-scan histograms in key-major order (so
//! lower chunks of the same key precede higher chunks — that is what makes
//! the sort stable), then scatter each chunk independently.

use rayon::prelude::*;

/// Sequential stable counting sort used for small inputs and as the test
/// oracle for the parallel version.
pub fn counting_sort_by_key<K>(items: &[u32], max_key: u32, key: K) -> Vec<u32>
where
    K: Fn(u32) -> u32,
{
    let mut hist = vec![0usize; max_key as usize + 2];
    for &x in items {
        let k = key(x);
        debug_assert!(k <= max_key);
        hist[k as usize + 1] += 1;
    }
    for i in 0..=max_key as usize {
        hist[i + 1] += hist[i];
    }
    let mut out = vec![0u32; items.len()];
    for &x in items {
        let k = key(x) as usize;
        out[hist[k]] = x;
        hist[k] += 1;
    }
    out
}

/// Parallel stable counting sort of `items` by `key(item) <= max_key`.
///
/// Falls back to the sequential kernel when the input is small or the key
/// universe is large relative to the input (histogram cost would dominate).
pub fn par_counting_sort_by_key<K>(items: &[u32], max_key: u32, key: K) -> Vec<u32>
where
    K: Fn(u32) -> u32 + Sync,
{
    const SEQ_CUTOFF: usize = 1 << 14;
    if items.len() < SEQ_CUTOFF {
        return counting_sort_by_key(items, max_key, key);
    }
    let threads = rayon::current_num_threads().max(1);
    let chunk_size = items.len().div_ceil(threads);
    let chunks: Vec<&[u32]> = items.chunks(chunk_size).collect();
    let buckets = max_key as usize + 1;

    // Per-chunk histograms.
    let hists: Vec<Vec<usize>> = chunks
        .par_iter()
        .map(|chunk| {
            let mut h = vec![0usize; buckets];
            for &x in *chunk {
                let k = key(x);
                debug_assert!(k <= max_key);
                h[k as usize] += 1;
            }
            h
        })
        .collect();

    // Exclusive scan in (key, chunk) order: for key k, chunk t starts at
    // (total of all keys < k) + (count of key k in chunks < t).
    let mut offsets = vec![vec![0usize; buckets]; chunks.len()];
    let mut running = 0usize;
    for k in 0..buckets {
        for (t, h) in hists.iter().enumerate() {
            offsets[t][k] = running;
            running += h[k];
        }
    }

    // Scatter each chunk independently into disjoint slots.
    let mut out = vec![0u32; items.len()];
    let out_ptr = SyncPtr(out.as_mut_ptr());
    chunks
        .par_iter()
        .zip(offsets.into_par_iter())
        .for_each(|(chunk, mut cursor)| {
            for &x in *chunk {
                let k = key(x) as usize;
                // SAFETY: the (key, chunk) exclusive scan assigns each
                // (chunk, key) pair a disjoint range of `out`; every write
                // lands in this chunk's own range.
                unsafe {
                    *out_ptr.get().add(cursor[k]) = x;
                }
                cursor[k] += 1;
            }
        });
    out
}

/// Tiny wrapper making a raw pointer `Sync` for the disjoint-scatter above.
/// The accessor method (rather than direct field access) makes closures
/// capture the whole wrapper, not the bare pointer.
struct SyncPtr(*mut u32);
unsafe impl Sync for SyncPtr {}
unsafe impl Send for SyncPtr {}
impl SyncPtr {
    fn get(&self) -> *mut u32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorts_by_key() {
        let items = vec![5u32, 3, 9, 1, 7, 3];
        let sorted = counting_sort_by_key(&items, 9, |x| x);
        assert_eq!(sorted, vec![1, 3, 3, 5, 7, 9]);
    }

    #[test]
    fn stability_preserves_input_order_within_key() {
        // Sort ids by (id % 4): equal keys must keep input order.
        let items: Vec<u32> = vec![8, 4, 0, 9, 5, 1, 2, 6];
        let sorted = counting_sort_by_key(&items, 3, |x| x % 4);
        // key 0: 8,4,0 in input order; key 1: 9,5,1; key 2: 2,6.
        assert_eq!(sorted, vec![8, 4, 0, 9, 5, 1, 2, 6]);
    }

    #[test]
    fn empty_input() {
        assert!(counting_sort_by_key(&[], 10, |x| x).is_empty());
        assert!(par_counting_sort_by_key(&[], 10, |x| x).is_empty());
    }

    #[test]
    fn parallel_matches_sequential_large() {
        // Big enough to cross the parallel cutoff.
        let items: Vec<u32> = (0..100_000u32)
            .map(|i| i.wrapping_mul(2_654_435_761) % 50_000)
            .collect();
        let key = |x: u32| x % 97;
        let seq = counting_sort_by_key(&items, 96, key);
        let par = par_counting_sort_by_key(&items, 96, key);
        assert_eq!(seq, par);
    }

    #[test]
    fn parallel_stability_large() {
        // Items tagged with their original index in the low bits; after
        // sorting by high-bit key, same-key items must remain index-ordered.
        let items: Vec<u32> = (0..60_000u32).map(|i| ((i % 7) << 20) | i).collect();
        let key = |x: u32| x >> 20;
        let sorted = par_counting_sort_by_key(&items, 6, key);
        for w in sorted.windows(2) {
            let (ka, kb) = (key(w[0]), key(w[1]));
            assert!(ka <= kb);
            if ka == kb {
                assert!(w[0] & 0xFFFFF < w[1] & 0xFFFFF, "stability violated");
            }
        }
    }

    #[test]
    fn single_key_bucket() {
        let items = vec![3u32, 1, 2];
        let sorted = counting_sort_by_key(&items, 0, |_| 0);
        assert_eq!(sorted, items); // stable → original order
    }
}
