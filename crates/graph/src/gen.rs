//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on 28 real-world graphs (SNAP, LAW, Network
//! Repository) which are not redistributable and mostly exceed laptop
//! memory. Each generator here targets one *régime* from the paper's
//! Table I — the degree/coreness/clique structure that drives LazyMC's
//! behaviour — so the evaluation harness can reproduce the *shape* of every
//! result. All generators are deterministic in their `seed`.

use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Complete graph `K_n` (ω = n, degeneracy = n-1, gap 0).
pub fn complete(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity(n, n * (n - 1) / 2);
    for u in 0..n as VertexId {
        for v in (u + 1)..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Path graph on `n` vertices.
pub fn path(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Cycle graph on `n` vertices (`n >= 3`).
pub fn cycle(n: usize) -> CsrGraph {
    assert!(n >= 3, "cycle needs at least 3 vertices");
    let mut b = GraphBuilder::new(n);
    for v in 0..n as VertexId {
        b.add_edge(v, ((v as usize + 1) % n) as VertexId);
    }
    b.build()
}

/// Star graph: vertex 0 joined to `n-1` leaves.
pub fn star(n: usize) -> CsrGraph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(0, v);
    }
    b.build()
}

/// Erdős–Rényi `G(n, p)` via geometric edge skipping, O(m) expected time.
pub fn gnp(n: usize, p: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
    let mut b = GraphBuilder::new(n);
    if p <= 0.0 || n < 2 {
        return b.build();
    }
    if p >= 1.0 {
        return complete(n);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let log_q = (1.0 - p).ln();
    // Walk the upper triangle in row-major order, skipping a geometric
    // number of non-edges at each step (Batagelj–Brandes).
    let (mut u, mut v) = (0usize, 0usize);
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log_q).floor() as usize + 1;
        v += skip;
        while v >= n {
            u += 1;
            v = u + 1 + (v - n);
            if u >= n - 1 {
                return b.build();
            }
        }
        b.add_edge(u as VertexId, v as VertexId);
    }
}

/// `G(n, p)` plus a clique planted on `k` distinct random vertices.
/// Guarantees ω ≥ k; for small `p` this pins ω = k exactly.
pub fn planted_clique(n: usize, p: f64, k: usize, seed: u64) -> CsrGraph {
    assert!(k <= n, "cannot plant a {k}-clique in {n} vertices");
    let g = gnp(n, p, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut ids: Vec<VertexId> = (0..n as VertexId).collect();
    ids.shuffle(&mut rng);
    ids.truncate(k);
    let mut b = GraphBuilder::with_capacity(n, g.num_edges() + k * (k - 1) / 2);
    b.extend_edges(g.edges());
    for (i, &u) in ids.iter().enumerate() {
        for &v in &ids[i + 1..] {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_per` existing vertices chosen proportionally to degree.
/// Produces heavy-tailed degree distributions with small degeneracy
/// (web-crawl-like régime).
pub fn barabasi_albert(n: usize, m_per: usize, seed: u64) -> CsrGraph {
    assert!(m_per >= 1 && n > m_per, "need n > m_per >= 1");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, n * m_per);
    // Endpoint pool: each edge contributes both endpoints, so sampling
    // uniformly from the pool is degree-proportional sampling.
    let mut pool: Vec<VertexId> = Vec::with_capacity(2 * n * m_per);
    // Seed graph: clique on the first m_per+1 vertices.
    for u in 0..=(m_per as VertexId) {
        for v in (u + 1)..=(m_per as VertexId) {
            b.add_edge(u, v);
            pool.push(u);
            pool.push(v);
        }
    }
    for v in (m_per + 1)..n {
        let v = v as VertexId;
        let mut chosen = Vec::with_capacity(m_per);
        while chosen.len() < m_per {
            let t = pool[rng.gen_range(0..pool.len())];
            if t != v && !chosen.contains(&t) {
                chosen.push(t);
            }
        }
        for &t in &chosen {
            b.add_edge(v, t);
            pool.push(v);
            pool.push(t);
        }
    }
    b.build()
}

/// R-MAT recursive-quadrant sampler (social-network-like: skewed degrees,
/// large clique-core gap). `scale` is log2 of the vertex count; `avg_deg`
/// the target average degree; `(a, b, c)` the quadrant probabilities with
/// `d = 1 - a - b - c`.
pub fn rmat(scale: u32, avg_deg: usize, a: f64, b_: f64, c: f64, seed: u64) -> CsrGraph {
    assert!(scale <= 26, "scale {scale} too large for a laptop run");
    let d = 1.0 - a - b_ - c;
    assert!(d >= 0.0 && a >= 0.0 && b_ >= 0.0 && c >= 0.0);
    let n = 1usize << scale;
    let m = n * avg_deg / 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n, m);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            // Mild noise on the quadrant probabilities avoids exact
            // self-similarity artifacts (standard R-MAT practice).
            let noise = rng.gen_range(0.95..1.05);
            let r: f64 = rng.gen::<f64>();
            if r < a * noise {
                // top-left
            } else if r < (a + b_) * noise {
                v |= 1;
            } else if r < (a + b_ + c) * noise {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        builder.add_edge(u as VertexId, v as VertexId);
    }
    builder.build()
}

/// Relaxed caveman graph: `l` communities of size `k`, each initially a
/// clique, with every intra-community edge rewired to a random outside
/// vertex with probability `p_rewire`. With small `p_rewire`, ω = k and the
/// clique-core gap is 0 (collaboration-network régime).
pub fn caveman(l: usize, k: usize, p_rewire: f64, seed: u64) -> CsrGraph {
    assert!(k >= 2 && l >= 1);
    let n = l * k;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n, l * k * (k - 1) / 2);
    for c in 0..l {
        let base = (c * k) as VertexId;
        for i in 0..k as VertexId {
            for j in (i + 1)..k as VertexId {
                let (u, v) = (base + i, base + j);
                if l > 1 && rng.gen_bool(p_rewire) {
                    // Rewire v-endpoint to a uniformly random vertex outside
                    // the community.
                    let mut t = rng.gen_range(0..n as VertexId);
                    while t >= base && t < base + k as VertexId {
                        t = rng.gen_range(0..n as VertexId);
                    }
                    b.add_edge(u, t);
                } else {
                    b.add_edge(u, v);
                }
            }
        }
    }
    // Keep one community intact so ω = k deterministically.
    b.build()
}

/// Dense overlap graph mimicking gene-correlation networks: `n` vertices,
/// `cliques` planted cliques with sizes in `[size_lo, size_hi]` drawn on a
/// *biased* vertex pool (so cliques overlap heavily), plus `G(n, p_bg)`
/// background noise. Density lands in the 0.05–0.5 range with degeneracy
/// far above ω — the large clique-core-gap régime of the `bio-*` datasets.
pub fn dense_overlap(
    n: usize,
    cliques: usize,
    size_lo: usize,
    size_hi: usize,
    p_bg: f64,
    seed: u64,
) -> CsrGraph {
    assert!(size_lo <= size_hi && size_hi <= n);
    let mut rng = StdRng::seed_from_u64(seed);
    let bg = gnp(n, p_bg, seed ^ 0xdead_beef);
    let mut b = GraphBuilder::with_capacity(n, bg.num_edges());
    b.extend_edges(bg.edges());
    for _ in 0..cliques {
        let size = rng.gen_range(size_lo..=size_hi);
        // Bias member choice towards low ids: quadratic rejection keeps
        // roughly the first third of the id space in most cliques, which is
        // what makes the planted cliques overlap.
        let mut members = Vec::with_capacity(size);
        while members.len() < size {
            let r: f64 = rng.gen();
            let v = ((r * r) * n as f64) as usize;
            let v = v.min(n - 1) as VertexId;
            if !members.contains(&v) {
                members.push(v);
            }
        }
        for (i, &u) in members.iter().enumerate() {
            for &v in &members[i + 1..] {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Hamming graph `H(bits, d)` in the DIMACS clique-benchmark sense:
/// vertices are all `2^bits` binary words, adjacent iff their Hamming
/// distance is **at least** `d`. For `d = 2` the maximum clique is known:
/// ω = 2^(bits-1) (a binary code with minimum distance 2, e.g. all words
/// of even parity).
pub fn hamming(bits: u32, d: u32) -> CsrGraph {
    assert!(
        (1..=12).contains(&bits),
        "hamming graphs limited to 2^12 vertices"
    );
    let n = 1usize << bits;
    let mut b = GraphBuilder::new(n);
    for u in 0..n as u32 {
        for v in (u + 1)..n as u32 {
            if (u ^ v).count_ones() >= d {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

/// Paley graph of prime order `q ≡ 1 (mod 4)`: vertices `Z_q`, adjacent
/// iff the difference is a nonzero quadratic residue. Self-complementary,
/// strongly regular, with small ω — classic hard instances for clique
/// bounds.
pub fn paley(q: u32) -> CsrGraph {
    assert!(q % 4 == 1, "Paley graphs need q ≡ 1 (mod 4)");
    assert!(is_prime(q), "Paley graphs need prime q");
    let mut is_qr = vec![false; q as usize];
    for x in 1..q as u64 {
        is_qr[((x * x) % q as u64) as usize] = true;
    }
    let mut b = GraphBuilder::new(q as usize);
    for u in 0..q {
        for v in (u + 1)..q {
            if is_qr[(v - u) as usize] {
                b.add_edge(u, v);
            }
        }
    }
    b.build()
}

fn is_prime(n: u32) -> bool {
    if n < 2 {
        return false;
    }
    let mut d = 2u32;
    while d * d <= n {
        if n.is_multiple_of(d) {
            return false;
        }
        d += 1;
    }
    true
}

/// Random Apollonian network: start from `K4` and repeatedly subdivide a
/// random triangular face with a new vertex joined to its three corners.
/// A planar 3-tree: ω = 4, degeneracy = 3, clique-core gap **0** — the
/// exact régime of the paper's road networks (USAroad: d = 3, ω = 4).
pub fn apollonian(insertions: usize, seed: u64) -> CsrGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = 4 + insertions;
    let mut b = GraphBuilder::with_capacity(n, 6 + 3 * insertions);
    // K4 with faces; track the face list (each face = triangle).
    for u in 0..4u32 {
        for v in (u + 1)..4u32 {
            b.add_edge(u, v);
        }
    }
    let mut faces: Vec<[VertexId; 3]> = vec![[0, 1, 2], [0, 1, 3], [0, 2, 3], [1, 2, 3]];
    for i in 0..insertions {
        let v = (4 + i) as VertexId;
        let fi = rng.gen_range(0..faces.len());
        let [a, bb, c] = faces[fi];
        b.add_edge(v, a);
        b.add_edge(v, bb);
        b.add_edge(v, c);
        // replace the chosen face with the three new ones
        faces[fi] = [a, bb, v];
        faces.push([a, c, v]);
        faces.push([bb, c, v]);
    }
    b.build()
}

/// Triangulated grid: `w × h` lattice with both diagonals per cell, so each
/// unit cell is a `K4`. Road-network régime: ω = 4, tiny max degree,
/// clique-core gap 0.
pub fn triangulated_grid(w: usize, h: usize) -> CsrGraph {
    assert!(w >= 2 && h >= 2);
    let id = |x: usize, y: usize| (y * w + x) as VertexId;
    let mut b = GraphBuilder::with_capacity(w * h, 4 * w * h);
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1));
            }
            if x + 1 < w && y + 1 < h {
                b.add_edge(id(x, y), id(x + 1, y + 1)); // main diagonal
                b.add_edge(id(x + 1, y), id(x, y + 1)); // anti diagonal
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_graph_counts() {
        let g = complete(6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_clique(&[0, 1, 2, 3, 4, 5]));
    }

    #[test]
    fn path_cycle_star_shapes() {
        assert_eq!(path(5).num_edges(), 4);
        assert_eq!(cycle(5).num_edges(), 5);
        assert_eq!(star(5).num_edges(), 4);
        assert_eq!(star(5).degree(0), 4);
    }

    #[test]
    fn gnp_determinism_and_bounds() {
        let a = gnp(200, 0.05, 7);
        let b = gnp(200, 0.05, 7);
        assert_eq!(a, b);
        let c = gnp(200, 0.05, 8);
        assert_ne!(a, c, "different seeds should differ");
        assert!(a.validate().is_ok());
    }

    #[test]
    fn gnp_edge_count_near_expectation() {
        let n = 500;
        let p = 0.1;
        let g = gnp(n, p, 123);
        let expected = p * (n * (n - 1) / 2) as f64;
        let got = g.num_edges() as f64;
        assert!(
            (got - expected).abs() < 0.15 * expected,
            "edge count {got} too far from expectation {expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 1).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 1).num_edges(), 45);
        assert_eq!(gnp(1, 0.5, 1).num_edges(), 0);
        assert_eq!(gnp(0, 0.5, 1).num_vertices(), 0);
    }

    #[test]
    fn planted_clique_is_present() {
        let g = planted_clique(100, 0.02, 8, 99);
        // find it: the generator is deterministic, so re-derive the ids
        let mut rng = StdRng::seed_from_u64(99 ^ 0x9e37_79b9_7f4a_7c15);
        let mut ids: Vec<VertexId> = (0..100).collect();
        ids.shuffle(&mut rng);
        ids.truncate(8);
        assert!(g.is_clique(&ids));
    }

    #[test]
    fn barabasi_albert_structure() {
        let g = barabasi_albert(300, 3, 5);
        assert_eq!(g.num_vertices(), 300);
        assert!(g.validate().is_ok());
        // each vertex beyond the seed contributes m_per edges (some merge)
        assert!(g.num_edges() >= 3 * (300 - 4) / 2);
        // heavy tail: max degree far above average
        assert!(g.max_degree() > 3 * (2 * g.num_edges() / 300));
    }

    #[test]
    fn rmat_basic() {
        let g = rmat(10, 8, 0.57, 0.19, 0.19, 3);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.validate().is_ok());
        assert!(g.num_edges() > 1024); // dedup loses some but not most
    }

    #[test]
    fn caveman_max_clique_is_community() {
        let g = caveman(10, 6, 0.1, 17);
        assert_eq!(g.num_vertices(), 60);
        assert!(g.validate().is_ok());
        // at least one community survives intact (p_rewire keeps most edges)
        assert!(g.max_degree() >= 5);
    }

    #[test]
    fn caveman_zero_rewire_is_disjoint_cliques() {
        let g = caveman(4, 5, 0.0, 1);
        assert_eq!(g.num_edges(), 4 * 10);
        for c in 0..4u32 {
            let ids: Vec<VertexId> = (c * 5..(c + 1) * 5).collect();
            assert!(g.is_clique(&ids));
        }
    }

    #[test]
    fn dense_overlap_is_dense() {
        let g = dense_overlap(300, 40, 10, 25, 0.05, 11);
        assert!(g.density() > 0.05);
        assert!(g.validate().is_ok());
    }

    #[test]
    fn hamming_distance_two_structure() {
        let g = hamming(4, 2);
        assert_eq!(g.num_vertices(), 16);
        assert!(g.validate().is_ok());
        // complement of H(n,2) is the hypercube: degree n there, so here
        // degree = 2^n - 1 - n
        for v in g.vertices() {
            assert_eq!(g.degree(v), 16 - 1 - 4);
        }
        // the even-parity words form a clique of size 2^(n-1)
        let evens: Vec<u32> = (0..16u32).filter(|x| x.count_ones() % 2 == 0).collect();
        assert_eq!(evens.len(), 8);
        assert!(g.is_clique(&evens));
    }

    #[test]
    fn hamming_distance_n_is_perfect_matching() {
        // distance >= bits: only complements are adjacent
        let g = hamming(5, 5);
        assert_eq!(g.num_edges(), 16);
        for v in g.vertices() {
            assert_eq!(g.neighbors(v), &[v ^ 0b11111]);
        }
    }

    #[test]
    fn paley_is_self_complementary_sized() {
        // Paley(q) has exactly q(q-1)/4 edges
        for q in [5u32, 13, 17, 29] {
            let g = paley(q);
            assert!(g.validate().is_ok());
            assert_eq!(g.num_edges(), (q as usize * (q as usize - 1)) / 4, "q={q}");
            // strongly regular: every vertex has degree (q-1)/2
            for v in g.vertices() {
                assert_eq!(g.degree(v), (q as usize - 1) / 2);
            }
        }
    }

    #[test]
    fn paley_five_is_c5() {
        let g = paley(5);
        assert_eq!(g.num_edges(), 5);
        assert!(g.has_edge(0, 1) && g.has_edge(0, 4));
    }

    #[test]
    #[should_panic(expected = "prime")]
    fn paley_rejects_composite() {
        let _ = paley(9);
    }

    #[test]
    fn apollonian_structure() {
        let g = apollonian(200, 3);
        assert_eq!(g.num_vertices(), 204);
        assert_eq!(g.num_edges(), 6 + 3 * 200);
        assert!(g.validate().is_ok());
        // the seed K4 is intact
        assert!(g.is_clique(&[0, 1, 2, 3]));
        // deterministic
        assert_eq!(apollonian(200, 3), apollonian(200, 3));
    }

    #[test]
    fn apollonian_every_insertion_forms_k4() {
        let g = apollonian(50, 9);
        // every vertex beyond the seed has exactly its 3 face corners as
        // the initial neighbours; together they form a K4
        for v in 4..54u32 {
            let first3: Vec<u32> = g.neighbors(v).iter().copied().filter(|&u| u < v).collect();
            assert_eq!(first3.len(), 3, "vertex {v}");
            let mut quad = first3.clone();
            quad.push(v);
            assert!(g.is_clique(&quad), "vertex {v} quad not a clique");
        }
    }

    #[test]
    fn triangulated_grid_contains_k4_only() {
        let g = triangulated_grid(6, 4);
        assert_eq!(g.num_vertices(), 24);
        assert!(g.validate().is_ok());
        // each unit cell is a K4
        assert!(g.is_clique(&[0, 1, 6, 7]));
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(barabasi_albert(100, 2, 9), barabasi_albert(100, 2, 9));
        assert_eq!(
            rmat(8, 4, 0.45, 0.25, 0.15, 2),
            rmat(8, 4, 0.45, 0.25, 0.15, 2)
        );
        assert_eq!(caveman(5, 4, 0.05, 3), caveman(5, 4, 0.05, 3));
        assert_eq!(
            dense_overlap(100, 10, 5, 10, 0.02, 4),
            dense_overlap(100, 10, 5, 10, 0.02, 4)
        );
    }
}
