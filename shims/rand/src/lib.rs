//! Offline stand-in for the subset of `rand` this workspace uses:
//! `StdRng::seed_from_u64`, `gen`, `gen_range`, `gen_bool` and slice
//! `shuffle`. The generator is xoshiro256**, seeded through splitmix64 —
//! deterministic in the seed, which is the only property the synthetic
//! graph generators rely on (they promise determinism, not any particular
//! stream, and re-derive their structure through the same shim).

use std::ops::{Range, RangeInclusive};

/// Seeding trait (subset: `seed_from_u64`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range type, used by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample(self, rng: &mut dyn RngCore) -> T;
}

/// Types generable by [`Rng::gen`] from the "standard" distribution.
pub trait Standard: Sized {
    fn standard(rng: &mut dyn RngCore) -> Self;
}

/// Core entropy source: 64 uniformly random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// User-facing methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore + Sized {
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        f64::standard(self) < p
    }
}

impl<R: RngCore + Sized> Rng for R {}

fn unit_f64(bits: u64) -> f64 {
    // 53 high bits → uniform in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl Standard for f64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for bool {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard(rng: &mut dyn RngCore) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Lemire-style bounded sampling without modulo bias for the integer
/// widths the generators use.
fn bounded(rng: &mut dyn RngCore, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    // Rejection sampling on the top bits: zone is the largest multiple of
    // `bound` not exceeding 2^64.
    let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
    loop {
        let v = rng.next_u64();
        if v <= zone {
            return v % bound;
        }
    }
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample(self, rng: &mut dyn RngCore) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return lo + rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_ranges!(u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample(self, rng: &mut dyn RngCore) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let v = self.start + unit_f64(rng.next_u64()) * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

/// Shuffling for slices (subset of rand's `SliceRandom`).
pub trait SliceRandom {
    fn shuffle<R: Rng>(&mut self, rng: &mut R);
}

impl<T> SliceRandom for [T] {
    fn shuffle<R: Rng>(&mut self, rng: &mut R) {
        // Fisher–Yates.
        for i in (1..self.len()).rev() {
            let j = rng.gen_range(0..=i);
            self.swap(i, j);
        }
    }
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256** seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_in_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let x: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: u32 = rng.gen_range(0..=5);
            assert!(y <= 5);
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = [0u32; 10];
        for _ in 0..100_000 {
            counts[rng.gen_range(0..10usize)] += 1;
        }
        for &c in &counts {
            assert!((8_000..12_000).contains(&c), "skewed bucket: {counts:?}");
        }
    }

    #[test]
    fn gen_bool_tracks_p() {
        let mut rng = StdRng::seed_from_u64(3);
        let heads = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((25_000..35_000).contains(&heads));
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0)); // unit_f64 < 1.0 always, so p=1.0 is sure
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
