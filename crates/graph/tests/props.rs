//! Property tests for the graph substrate: builder normalization, CSR
//! invariants, relabelling, complement, induced subgraphs, and IO
//! round-trips on arbitrary edge soups.

use lazymc_graph::{gen, io, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn arb_edges() -> impl Strategy<Value = Vec<(u32, u32)>> {
    proptest::collection::vec((0u32..60, 0u32..60), 0..300)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Whatever mess goes in, a valid simple undirected graph comes out.
    #[test]
    fn builder_normalizes_arbitrary_edge_soup(edges in arb_edges()) {
        let mut b = GraphBuilder::new(0);
        for &(u, v) in &edges {
            b.add_edge(u, v);
        }
        let g = b.build();
        g.validate().unwrap();
        // every non-loop input edge is present
        for &(u, v) in &edges {
            if u != v {
                prop_assert!(g.has_edge(u, v));
                prop_assert!(g.has_edge(v, u));
            }
        }
        // no unexpected edges: count unique non-loop undirected pairs
        let mut uniq: Vec<(u32, u32)> = edges
            .iter()
            .filter(|&&(u, v)| u != v)
            .map(|&(u, v)| if u < v { (u, v) } else { (v, u) })
            .collect();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(g.num_edges(), uniq.len());
    }

    #[test]
    fn relabel_preserves_structure(edges in arb_edges(), seed in 0u64..100) {
        let g = CsrGraph::from_edges(0, &edges);
        let n = g.num_vertices();
        if n == 0 {
            return Ok(());
        }
        // pseudo-random permutation from the seed
        let mut perm: Vec<u32> = (0..n as u32).collect();
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        for i in (1..n).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            perm.swap(i, (x as usize) % (i + 1));
        }
        let r = g.relabel(&perm);
        r.validate().unwrap();
        prop_assert_eq!(r.num_edges(), g.num_edges());
        for u in 0..n as u32 {
            for &v in g.neighbors(u) {
                prop_assert!(r.has_edge(perm[u as usize], perm[v as usize]));
            }
        }
    }

    #[test]
    fn complement_degree_identity(n in 2usize..40, p in 0.0f64..1.0, seed in 0u64..100) {
        let g = gen::gnp(n, p, seed);
        let c = g.complement();
        c.validate().unwrap();
        for v in g.vertices() {
            prop_assert_eq!(g.degree(v) + c.degree(v), n - 1);
        }
        prop_assert_eq!(g.num_edges() + c.num_edges(), n * (n - 1) / 2);
    }

    #[test]
    fn induced_subgraph_edges_match(edges in arb_edges(), keep_mod in 2u32..5) {
        let g = CsrGraph::from_edges(0, &edges);
        let verts: Vec<u32> = g.vertices().filter(|v| v % keep_mod == 0).collect();
        let (sub, map) = g.induced_subgraph(&verts);
        sub.validate().unwrap();
        for i in 0..sub.num_vertices() as u32 {
            for j in 0..sub.num_vertices() as u32 {
                if i != j {
                    prop_assert_eq!(
                        sub.has_edge(i, j),
                        g.has_edge(map[i as usize], map[j as usize])
                    );
                }
            }
        }
    }

    #[test]
    fn io_roundtrips(edges in arb_edges()) {
        let g = CsrGraph::from_edges(0, &edges);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        prop_assert_eq!(io::read_edge_list(&buf[..]).unwrap(), g.clone());
        let mut buf2 = Vec::new();
        io::write_dimacs(&g, &mut buf2).unwrap();
        prop_assert_eq!(io::read_dimacs(&buf2[..]).unwrap(), g);
    }
}
