//! Design-choice ablations beyond the paper's figures (DESIGN.md §6):
//!
//! * **filter rounds** — the paper fixes two induced-degree rounds; sweep
//!   1–4 to show the knee;
//! * **vertex order** — (coreness, degree) counting sort vs. the exact
//!   peeling order (free for sequential solvers, paper §IV-F);
//! * **subgraph reduction** — the MC-BRB-style in-subgraph reduction the
//!   paper names as an easy extension (§V-A).
//!
//! Run: `cargo run -p lazymc-bench --release --bin ablation_design [--test]`

use lazymc_bench::cli::{ratio, CommonArgs};
use lazymc_bench::{time_stats, Table};
use lazymc_core::{Config, LazyMc, OrderKind};

fn main() {
    let args = CommonArgs::parse();

    println!(
        "Ablation A: induced-degree filter rounds ({:?} scale)",
        args.scale
    );
    let mut t1 = Table::new(&[
        "graph",
        "rounds=1",
        "rounds=2*",
        "rounds=3",
        "rounds=4",
        "f3-kept@2",
    ]);
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let mut cells = vec![inst.name.to_string()];
        let mut base = None;
        let mut omega = None;
        let mut kept = 0u64;
        for rounds in 1..=4usize {
            let cfg = Config {
                filter_rounds: rounds,
                ..Config::default()
            };
            let (r, mean, _) = time_stats(args.reps, || LazyMc::new(cfg.clone()).solve(&g));
            match omega {
                None => omega = Some(r.size()),
                Some(o) => assert_eq!(o, r.size(), "{}: rounds changed omega", inst.name),
            }
            if rounds == 2 {
                base = Some(mean.as_secs_f64());
                kept = r.metrics.retained_f3;
            }
            cells.push(format!("{:.3}", mean.as_secs_f64()));
        }
        // normalize against the default (rounds = 2)
        let b = base.unwrap().max(1e-9);
        for c in cells.iter_mut().skip(1) {
            let v: f64 = c.parse().unwrap();
            *c = ratio(v / b);
        }
        cells.push(kept.to_string());
        t1.row(cells);
    }
    println!("{}", t1.render());

    println!(
        "Ablation B: vertex order and subgraph reduction ({:?} scale)",
        args.scale
    );
    let mut t2 = Table::new(&["graph", "coreness-deg*", "peeling", "with-reduction"]);
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let run = |cfg: Config| {
            let (r, mean, _) = time_stats(args.reps, || LazyMc::new(cfg.clone()).solve(&g));
            (r.size(), mean.as_secs_f64())
        };
        let (omega, base) = run(Config::default());
        let (o_peel, t_peel) = run(Config {
            order: OrderKind::Peeling,
            ..Config::default()
        });
        let (o_red, t_red) = run(Config {
            subgraph_reduction: true,
            ..Config::default()
        });
        assert_eq!(omega, o_peel, "{}: order changed omega", inst.name);
        assert_eq!(omega, o_red, "{}: reduction changed omega", inst.name);
        t2.row(vec![
            inst.name.to_string(),
            "1.00".into(),
            ratio(t_peel / base.max(1e-9)),
            ratio(t_red / base.max(1e-9)),
        ]);
    }
    println!("{}", t2.render());
    println!("(* = default configuration; values are relative runtime)");
}
