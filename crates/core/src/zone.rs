//! Must/may zone analysis — paper §III-A and Fig. 1.
//!
//! Post-hoc characterization of the zone of interest once ω is known:
//!
//! * **must** vertices have coreness > ω − 1: even after the maximum clique
//!   is found, these must be inspected to rule out a larger one;
//! * **may** vertices have coreness ≥ ω − 1: the superset that could have
//!   been touched on the way to finding the maximum clique;
//! * **attached** edges have at least one endpoint in the may set — the
//!   neighbourhood storage an unfiltered representation would carry.

use lazymc_graph::CsrGraph;

/// Fractions of the graph inside each zone (all in `[0, 1]`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct ZoneStats {
    /// Fraction of vertices with coreness > ω−1.
    pub must_vertices: f64,
    /// Fraction of vertices with coreness ≥ ω−1.
    pub may_vertices: f64,
    /// Fraction of edges with both endpoints in the must set.
    pub must_edges: f64,
    /// Fraction of edges with both endpoints in the may set.
    pub may_edges: f64,
    /// Fraction of edges with at least one endpoint in the may set.
    pub attached_edges: f64,
    /// The clique-core gap g = d + 1 − ω.
    pub clique_core_gap: i64,
}

/// Computes the zone statistics for a graph with known coreness and ω.
pub fn zone_analysis(g: &CsrGraph, coreness: &[u32], omega: usize) -> ZoneStats {
    let n = g.num_vertices();
    assert_eq!(coreness.len(), n);
    if n == 0 {
        return ZoneStats::default();
    }
    let omega = omega as i64;
    let must = |v: usize| (coreness[v] as i64) > omega - 1;
    let may = |v: usize| (coreness[v] as i64) >= omega - 1;

    let must_v = (0..n).filter(|&v| must(v)).count();
    let may_v = (0..n).filter(|&v| may(v)).count();

    let mut must_e = 0usize;
    let mut may_e = 0usize;
    let mut attached_e = 0usize;
    let mut total_e = 0usize;
    for (u, v) in g.edges() {
        total_e += 1;
        let (u, v) = (u as usize, v as usize);
        if must(u) && must(v) {
            must_e += 1;
        }
        if may(u) && may(v) {
            may_e += 1;
        }
        if may(u) || may(v) {
            attached_e += 1;
        }
    }
    let degeneracy = coreness.iter().copied().max().unwrap_or(0) as i64;
    let te = total_e.max(1) as f64;
    ZoneStats {
        must_vertices: must_v as f64 / n as f64,
        may_vertices: may_v as f64 / n as f64,
        must_edges: must_e as f64 / te,
        may_edges: may_e as f64 / te,
        attached_edges: attached_e as f64 / te,
        clique_core_gap: degeneracy + 1 - omega,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;
    use lazymc_order::kcore_sequential;

    #[test]
    fn zero_gap_graph_has_empty_must_set() {
        // K6: coreness 5 everywhere, ω = 6 → must needs coreness > 5: none.
        let g = gen::complete(6);
        let kc = kcore_sequential(&g);
        let z = zone_analysis(&g, &kc.coreness, 6);
        assert_eq!(z.clique_core_gap, 0);
        assert_eq!(z.must_vertices, 0.0);
        assert_eq!(z.must_edges, 0.0);
        assert_eq!(z.may_vertices, 1.0);
        assert_eq!(z.may_edges, 1.0);
    }

    #[test]
    fn containment_invariants() {
        let g = gen::planted_clique(150, 0.05, 10, 4);
        let kc = kcore_sequential(&g);
        let z = zone_analysis(&g, &kc.coreness, 10);
        assert!(z.must_vertices <= z.may_vertices);
        assert!(z.must_edges <= z.may_edges);
        assert!(z.may_edges <= z.attached_edges);
        assert!(z.attached_edges <= 1.0);
    }

    #[test]
    fn gap_heavy_graph_has_nonempty_must() {
        // dense overlap graphs have degeneracy far above ω
        let g = gen::dense_overlap(150, 20, 8, 15, 0.1, 6);
        let kc = kcore_sequential(&g);
        // use a deliberately small "omega" to stress the must set
        let z = zone_analysis(&g, &kc.coreness, 5);
        assert!(z.clique_core_gap > 0);
        assert!(z.must_vertices > 0.0);
    }

    #[test]
    fn empty_graph_zone() {
        let g = lazymc_graph::CsrGraph::empty(0);
        let z = zone_analysis(&g, &[], 0);
        assert_eq!(z, ZoneStats::default());
    }
}
