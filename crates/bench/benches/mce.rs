//! Criterion micro-benchmark: maximal clique enumeration throughput, with
//! the early-exit pivot selection that motivated the paper's kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazymc_graph::gen;
use lazymc_mce::count_maximal_cliques;
use std::hint::black_box;

fn bench_mce(c: &mut Criterion) {
    let mut group = c.benchmark_group("mce");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let sparse = gen::gnp(2_000, 0.01, 3);
    let community = gen::caveman(100, 8, 0.05, 5);
    let skewed = gen::barabasi_albert(2_000, 4, 9);
    for (name, g) in [
        ("gnp2000", &sparse),
        ("caveman800", &community),
        ("ba2000", &skewed),
    ] {
        group.bench_with_input(BenchmarkId::new("count", name), &g, |b, g| {
            b.iter(|| black_box(count_maximal_cliques(g)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_mce);
criterion_main!(benches);
