//! Overload control: the daemon's answer to *too much success*.
//!
//! PR 8 made faults survivable; this module makes sustained over-capacity
//! traffic survivable, in the paper's work-avoidance spirit — the cheapest
//! job is the one never run:
//!
//! * [`DrainRate`] — a sliding-window estimator of how fast the solve
//!   pipeline completes jobs. Every `Retry-After` the daemon emits (queue
//!   full, connection limit, shed) is derived from it: `backlog ÷ rate`,
//!   so clients are told when capacity will plausibly exist instead of a
//!   static "1".
//! * [`Shedder`] — a CoDel-style controller on queue wait. While the
//!   *observed* queue wait of popped jobs stays above
//!   `--queue-delay-target-ms` for a full interval, the daemon sheds
//!   lowest-priority admissions with `503 + Retry-After` rather than
//!   letting every queued job's latency grow without bound. One wait
//!   observation below target (or an empty queue) exits shedding — the
//!   controller reacts to *standing* queues, not bursts.
//! * [`MemWatermarks`] — soft/hard thresholds over the counting
//!   allocator's live-byte gauge (`--max-memory-bytes`). Above soft
//!   (80 %): uploads are rejected 503 and `/healthz` degrades. Above
//!   hard (100 %): the lowest-priority *running* solve is cancelled
//!   through the existing abort machinery.

use crate::plock;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// How far back completions count toward the drain rate.
const DRAIN_WINDOW: Duration = Duration::from_secs(10);
/// Retry-After bounds: never 0 (clients would hammer), never absurd.
const RETRY_AFTER_MIN: u64 = 1;
const RETRY_AFTER_MAX: u64 = 60;

/// Sliding-window completions-per-second estimator shared by every
/// backpressure response.
pub struct DrainRate {
    completions: Mutex<VecDeque<Instant>>,
    /// Lifetime completions observed (monotonic, for /metrics).
    pub observed_total: AtomicU64,
}

impl Default for DrainRate {
    fn default() -> DrainRate {
        DrainRate::new()
    }
}

impl DrainRate {
    pub fn new() -> DrainRate {
        DrainRate {
            completions: Mutex::new(VecDeque::new()),
            observed_total: AtomicU64::new(0),
        }
    }

    /// Records one finished job (solved, failed, cancelled or reaped —
    /// each frees a queue slot, which is what a waiting client cares
    /// about).
    pub fn observe_completion(&self) {
        self.observed_total.fetch_add(1, Ordering::Relaxed);
        let now = Instant::now();
        let mut window = plock(&self.completions);
        window.push_back(now);
        while window
            .front()
            .is_some_and(|&t| now.duration_since(t) > DRAIN_WINDOW)
        {
            window.pop_front();
        }
    }

    /// Completions per second over the window; 0.0 while nothing has
    /// finished recently.
    pub fn per_sec(&self) -> f64 {
        let now = Instant::now();
        let mut window = plock(&self.completions);
        while window
            .front()
            .is_some_and(|&t| now.duration_since(t) > DRAIN_WINDOW)
        {
            window.pop_front();
        }
        window.len() as f64 / DRAIN_WINDOW.as_secs_f64()
    }

    /// Seconds until `backlog` jobs plausibly drained, clamped to
    /// `[1, 60]`. With no observed drain (cold start, wedged pool) the
    /// answer is the cap — "come back much later" is the honest estimate.
    pub fn retry_after(&self, backlog: usize) -> u64 {
        let rate = self.per_sec();
        if rate <= f64::EPSILON {
            return if backlog == 0 {
                RETRY_AFTER_MIN
            } else {
                RETRY_AFTER_MAX
            };
        }
        let secs = (backlog as f64 / rate).ceil() as u64;
        secs.clamp(RETRY_AFTER_MIN, RETRY_AFTER_MAX)
    }
}

struct ShedState {
    /// When observed waits first exceeded the target without relief.
    above_since: Option<Instant>,
}

/// CoDel-style shedding controller on observed queue wait.
pub struct Shedder {
    /// Queue-delay target; `None` disables shedding entirely.
    target: Option<Duration>,
    state: Mutex<ShedState>,
    shedding: AtomicBool,
    /// Admissions rejected by the controller.
    pub shed_total: AtomicU64,
}

impl Shedder {
    pub fn new(target: Option<Duration>) -> Shedder {
        Shedder {
            target,
            state: Mutex::new(ShedState { above_since: None }),
            shedding: AtomicBool::new(false),
            shed_total: AtomicU64::new(0),
        }
    }

    /// The controller's reaction interval: waits must stay above target
    /// for this long before shedding starts (CoDel's "standing queue"
    /// criterion — a single burst above target is not overload).
    fn interval(&self, target: Duration) -> Duration {
        target.max(Duration::from_millis(100))
    }

    /// Feeds one measured queue wait (recorded at job pop). Also the exit
    /// path: any wait at/below target immediately ends shedding.
    pub fn observe_wait(&self, wait: Duration) {
        let Some(target) = self.target else { return };
        let mut state = plock(&self.state);
        if wait <= target {
            state.above_since = None;
            self.shedding.store(false, Ordering::Relaxed);
            return;
        }
        let now = Instant::now();
        let since = *state.above_since.get_or_insert(now);
        if now.duration_since(since) >= self.interval(target) {
            self.shedding.store(true, Ordering::Relaxed);
        }
    }

    /// An empty queue cannot have a standing-queue problem; called when
    /// the queue drains so shedding ends even if no further pop happens.
    pub fn observe_idle(&self) {
        if self.target.is_none() {
            return;
        }
        plock(&self.state).above_since = None;
        self.shedding.store(false, Ordering::Relaxed);
    }

    pub fn is_shedding(&self) -> bool {
        self.shedding.load(Ordering::Relaxed)
    }

    /// Whether an admission at `priority` should be shed right now.
    /// Only the lowest-priority admissions are shed: a job that would
    /// overtake something already waiting (`priority` strictly above the
    /// best queued priority) is still accepted — overload must not lock
    /// out urgent work.
    pub fn should_shed(&self, priority: u8, best_queued_priority: Option<u8>) -> bool {
        if !self.is_shedding() {
            return false;
        }
        match best_queued_priority {
            Some(best) => priority <= best,
            // Queue momentarily empty: nothing is standing, admit.
            None => false,
        }
    }

    /// Counts one shed admission.
    pub fn count_shed(&self) {
        self.shed_total.fetch_add(1, Ordering::Relaxed);
    }
}

/// Memory pressure classification against `--max-memory-bytes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemLevel {
    /// Below the soft watermark (or tracking unavailable / no limit set).
    Ok,
    /// Above soft (80 % of max): reject large new work, degrade health.
    Soft,
    /// Above hard (100 % of max): actively cancel the cheapest running
    /// solve to get back under.
    Hard,
}

/// Soft/hard watermarks over the counting allocator's live-byte gauge.
pub struct MemWatermarks {
    max_bytes: Option<u64>,
    /// Whether this process actually routes allocations through the
    /// counting allocator (the `lazymc` binary does; library test
    /// binaries do not — watermarks are inert there, reported as
    /// untracked rather than pretending zero bytes are live).
    tracked: bool,
    /// Uploads rejected at the soft watermark.
    pub soft_rejects: AtomicU64,
    /// Running solves cancelled at the hard watermark.
    pub hard_cancels: AtomicU64,
}

impl MemWatermarks {
    pub fn new(max_bytes: Option<u64>) -> MemWatermarks {
        MemWatermarks {
            max_bytes,
            tracked: lazymc_bench::alloc::tracking_enabled(),
            soft_rejects: AtomicU64::new(0),
            hard_cancels: AtomicU64::new(0),
        }
    }

    /// Whether watermark enforcement is live (a limit is set *and* the
    /// allocator is counting).
    pub fn enforced(&self) -> bool {
        self.max_bytes.is_some() && self.tracked
    }

    pub fn tracked(&self) -> bool {
        self.tracked
    }

    pub fn live_bytes(&self) -> u64 {
        lazymc_bench::alloc::live_bytes()
    }

    /// Soft watermark: 80 % of the configured maximum.
    pub fn soft_bytes(&self) -> Option<u64> {
        self.max_bytes.map(|max| max / 5 * 4)
    }

    pub fn hard_bytes(&self) -> Option<u64> {
        self.max_bytes
    }

    pub fn level(&self) -> MemLevel {
        if !self.enforced() {
            return MemLevel::Ok;
        }
        self.classify(self.live_bytes())
    }

    /// Pure classification, separated so tests can drive it with
    /// synthetic live-byte readings regardless of which allocator the
    /// test binary installed.
    pub fn classify(&self, live: u64) -> MemLevel {
        let (Some(soft), Some(hard)) = (self.soft_bytes(), self.hard_bytes()) else {
            return MemLevel::Ok;
        };
        if live >= hard {
            MemLevel::Hard
        } else if live >= soft {
            MemLevel::Soft
        } else {
            MemLevel::Ok
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn retry_after_tracks_drain_rate() {
        let d = DrainRate::new();
        // Nothing drained yet: empty backlog says come back soon, real
        // backlog says come back late.
        assert_eq!(d.retry_after(0), RETRY_AFTER_MIN);
        assert_eq!(d.retry_after(10), RETRY_AFTER_MAX);
        for _ in 0..50 {
            d.observe_completion();
        }
        // 50 completions in a 10s window → 5/s → 20 jobs ≈ 4s.
        let eta = d.retry_after(20);
        assert!((3..=5).contains(&eta), "eta {eta}");
        assert_eq!(d.retry_after(1), RETRY_AFTER_MIN);
        assert_eq!(d.retry_after(10_000), RETRY_AFTER_MAX);
        assert_eq!(d.observed_total.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn shedder_requires_a_standing_queue() {
        let target = Duration::from_millis(1);
        let s = Shedder::new(Some(target));
        assert!(!s.is_shedding());
        // One bad wait is a burst, not overload.
        s.observe_wait(Duration::from_millis(50));
        assert!(!s.is_shedding());
        // Waits still above target a full interval later: shed.
        std::thread::sleep(s.interval(target) + Duration::from_millis(10));
        s.observe_wait(Duration::from_millis(50));
        assert!(s.is_shedding());
        // Only lowest-priority admissions are refused.
        assert!(s.should_shed(0, Some(0)));
        assert!(s.should_shed(1, Some(2)));
        assert!(!s.should_shed(3, Some(2)), "overtaking work still admitted");
        assert!(!s.should_shed(0, None), "empty queue admits");
        // A single good wait exits immediately.
        s.observe_wait(Duration::from_micros(100));
        assert!(!s.is_shedding());
        // And an idle queue also exits.
        std::thread::sleep(s.interval(target) + Duration::from_millis(10));
        s.observe_wait(Duration::from_millis(50));
        std::thread::sleep(s.interval(target) + Duration::from_millis(10));
        s.observe_wait(Duration::from_millis(50));
        assert!(s.is_shedding());
        s.observe_idle();
        assert!(!s.is_shedding());
    }

    #[test]
    fn shedder_disabled_without_target() {
        let s = Shedder::new(None);
        s.observe_wait(Duration::from_secs(10));
        s.observe_wait(Duration::from_secs(10));
        assert!(!s.is_shedding());
        assert!(!s.should_shed(0, Some(0)));
    }

    #[test]
    fn mem_levels_classify_against_soft_and_hard() {
        let m = MemWatermarks::new(Some(1000));
        assert_eq!(m.soft_bytes(), Some(800));
        assert_eq!(m.hard_bytes(), Some(1000));
        assert_eq!(m.classify(0), MemLevel::Ok);
        assert_eq!(m.classify(799), MemLevel::Ok);
        assert_eq!(m.classify(800), MemLevel::Soft);
        assert_eq!(m.classify(999), MemLevel::Soft);
        assert_eq!(m.classify(1000), MemLevel::Hard);
        let unlimited = MemWatermarks::new(None);
        assert_eq!(unlimited.classify(u64::MAX), MemLevel::Ok);
        assert!(!unlimited.enforced());
    }
}
