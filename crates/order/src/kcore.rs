//! k-core decomposition.
//!
//! The coreness of a vertex upper-bounds the cliques it can join: coreness
//! `k` admits at most a `(k+1)`-clique, so the graph's degeneracy `d` gives
//! `ω(G) <= d + 1` and the *clique-core gap* `g = d + 1 - ω` (paper §II).
//! LazyMC leans on coreness for the vertex order, for all three advance
//! filters, and for the must/may zone analysis.

use lazymc_graph::{GraphAccess, VertexId};
use rayon::prelude::*;

/// Result of a k-core decomposition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KCore {
    /// Exact coreness per vertex (see [`kcore_with_floor`] for the capped
    /// variant's semantics).
    pub coreness: Vec<u32>,
    /// Maximum coreness — the graph's degeneracy.
    pub degeneracy: u32,
    /// The order vertices were peeled in, when the algorithm defines one
    /// (sequential peeling only; empty for the parallel variants).
    pub peel_order: Vec<VertexId>,
}

impl KCore {
    /// Upper bound on the maximum clique size: degeneracy + 1.
    pub fn omega_upper_bound(&self) -> usize {
        if self.coreness.is_empty() {
            0
        } else {
            self.degeneracy as usize + 1
        }
    }

    /// Borrowed view of this decomposition.
    pub fn view(&self) -> KCoreView<'_> {
        KCoreView {
            coreness: &self.coreness,
            degeneracy: self.degeneracy,
            peel_order: &self.peel_order,
        }
    }
}

/// Borrowed k-core decomposition — the shape the solver pipeline
/// actually consumes. Owning [`KCore`]s view into their `Vec`s;
/// zero-copy mapped snapshots view straight into the file mapping, so a
/// precomputed decomposition never has to be copied to be used.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KCoreView<'a> {
    /// Exact coreness per vertex.
    pub coreness: &'a [u32],
    /// Maximum coreness — the graph's degeneracy.
    pub degeneracy: u32,
    /// Sequential peel order; empty when the decomposition has none.
    pub peel_order: &'a [VertexId],
}

impl KCoreView<'_> {
    /// Upper bound on the maximum clique size: degeneracy + 1.
    pub fn omega_upper_bound(&self) -> usize {
        if self.coreness.is_empty() {
            0
        } else {
            self.degeneracy as usize + 1
        }
    }
}

/// Sequential Matula–Beck bucket peeling: O(n + m).
///
/// Repeatedly removes a minimum-degree vertex; the degree at removal time
/// (monotonically clamped) is the vertex's coreness, and the removal order
/// is the *peeling order* whose right-neighbourhoods are bounded by
/// coreness.
pub fn kcore_sequential(g: &dyn GraphAccess) -> KCore {
    let n = g.num_vertices();
    if n == 0 {
        return KCore {
            coreness: Vec::new(),
            degeneracy: 0,
            peel_order: Vec::new(),
        };
    }
    let mut degree: Vec<u32> = g.degrees();
    let max_deg = *degree.iter().max().unwrap() as usize;

    // Bucket queue: vertices grouped by current degree, with per-vertex
    // positions so we can move a vertex between buckets in O(1).
    let mut bucket_start = vec![0usize; max_deg + 2];
    for &d in &degree {
        bucket_start[d as usize + 1] += 1;
    }
    for i in 0..=max_deg {
        bucket_start[i + 1] += bucket_start[i];
    }
    let mut vert = vec![0 as VertexId; n]; // vertices sorted by current degree
    let mut pos = vec![0usize; n]; // position of each vertex in `vert`
    {
        let mut cursor = bucket_start.clone();
        for v in 0..n {
            let d = degree[v] as usize;
            vert[cursor[d]] = v as VertexId;
            pos[v] = cursor[d];
            cursor[d] += 1;
        }
    }
    // bucket_start[d] = index of first vertex with degree >= d as peeling
    // proceeds (classic BZ array layout).
    let mut coreness = vec![0u32; n];
    let mut peel_order = Vec::with_capacity(n);
    let mut degeneracy = 0u32;
    for i in 0..n {
        let v = vert[i];
        let dv = degree[v as usize];
        degeneracy = degeneracy.max(dv);
        coreness[v as usize] = degeneracy; // degrees are clamped below, so dv never drops
        peel_order.push(v);
        // "Remove" v: decrement the degree of each not-yet-peeled neighbor
        // with degree > dv, moving it one bucket down.
        for &u in g.neighbors(v) {
            let du = degree[u as usize];
            if du > dv {
                // Swap u to the front of its bucket, then shrink the bucket.
                let bstart = bucket_start[du as usize];
                let w = vert[bstart];
                let pu = pos[u as usize];
                vert.swap(bstart, pu);
                pos[w as usize] = pu;
                pos[u as usize] = bstart;
                bucket_start[du as usize] += 1;
                degree[u as usize] = du - 1;
            }
        }
    }
    KCore {
        coreness,
        degeneracy,
        peel_order,
    }
}

/// Parallel round-based peeling.
///
/// For k = 0, 1, 2, … repeatedly strip (in parallel rounds) every remaining
/// vertex with residual degree ≤ k, assigning it coreness k. Produces the
/// exact coreness but, as the paper notes, no unique peeling order.
pub fn kcore_parallel(g: &dyn GraphAccess) -> KCore {
    use std::sync::atomic::{AtomicI64, Ordering};

    let n = g.num_vertices();
    if n == 0 {
        return KCore {
            coreness: Vec::new(),
            degeneracy: 0,
            peel_order: Vec::new(),
        };
    }
    let degree: Vec<AtomicI64> = g
        .degrees()
        .into_iter()
        .map(|d| AtomicI64::new(d as i64))
        .collect();
    let coreness: Vec<AtomicI64> = (0..n).map(|_| AtomicI64::new(-1)).collect();
    let mut alive = n;
    let mut k: i64 = 0;
    // Start the frontier from the current global minimum degree each epoch.
    while alive > 0 {
        // Collect the initial frontier for this k.
        let mut frontier: Vec<VertexId> = (0..n as u32)
            .into_par_iter()
            .filter(|&v| {
                coreness[v as usize].load(Ordering::Relaxed) < 0
                    && degree[v as usize].load(Ordering::Relaxed) <= k
            })
            .collect();
        if frontier.is_empty() {
            k += 1;
            continue;
        }
        while !frontier.is_empty() {
            alive -= frontier.len();
            frontier
                .par_iter()
                .for_each(|&v| coreness[v as usize].store(k, Ordering::Relaxed));
            // Decrement neighbors; a neighbor whose degree crosses the k
            // threshold joins the next round. Degrees fall by 1 per atomic
            // fetch_sub and the returned old values are distinct, so exactly
            // one decrementer observes the `old - 1 == k` crossing: each
            // vertex enters the frontier exactly once.
            frontier = frontier
                .par_iter()
                .flat_map_iter(|&v| {
                    g.neighbors(v).iter().copied().filter(|&u| {
                        if coreness[u as usize].load(Ordering::Relaxed) >= 0 {
                            return false;
                        }
                        let old = degree[u as usize].fetch_sub(1, Ordering::Relaxed);
                        old - 1 == k
                    })
                })
                .collect();
        }
        // Some vertices may now have residual degree < current k (bulk
        // decrements); the epoch rescan at the top catches them because we
        // do not advance k until a full empty scan.
        let any_below: bool = (0..n as u32).into_par_iter().any(|v| {
            coreness[v as usize].load(Ordering::Relaxed) < 0
                && degree[v as usize].load(Ordering::Relaxed) <= k
        });
        if !any_below {
            k += 1;
        }
    }
    let coreness: Vec<u32> = coreness
        .into_iter()
        .map(|c| c.into_inner().max(0) as u32)
        .collect();
    let degeneracy = coreness.par_iter().copied().max().unwrap_or(0);
    KCore {
        coreness,
        degeneracy,
        peel_order: Vec::new(),
    }
}

/// The paper's `KCore(G, |C*|)` (Alg. 1 line 4): coreness restricted to the
/// zone of interest.
///
/// Vertices that cannot belong to a clique larger than `floor` — i.e. whose
/// coreness is `< floor` — receive the *capped* value
/// `min(degree, floor.saturating_sub(1))`; vertices inside the `floor`-core
/// receive their exact coreness. This keeps the expensive exact computation
/// confined to the subgraph that can still matter, exactly the
/// work-avoidance the paper describes.
///
/// Guarantees, for every vertex `v` with true coreness `c*(v)`:
/// * `coreness[v] >= floor` ⟺ `c*(v) >= floor`;
/// * if `c*(v) >= floor` then `coreness[v] == c*(v)`.
pub fn kcore_with_floor(g: &dyn GraphAccess, floor: u32) -> KCore {
    let n = g.num_vertices();
    if floor == 0 {
        return kcore_sequential(g);
    }
    // Phase 1: iteratively strip vertices with residual degree < floor.
    // What remains is exactly the floor-core.
    let mut degree: Vec<i64> = g.degrees().into_iter().map(|d| d as i64).collect();
    let mut removed = vec![false; n];
    let mut frontier: Vec<VertexId> = (0..n as u32)
        .filter(|&v| degree[v as usize] < floor as i64)
        .collect();
    for &v in &frontier {
        removed[v as usize] = true;
    }
    while let Some(v) = frontier.pop() {
        for &u in g.neighbors(v) {
            if !removed[u as usize] {
                degree[u as usize] -= 1;
                if degree[u as usize] < floor as i64 {
                    removed[u as usize] = true;
                    frontier.push(u);
                }
            }
        }
    }
    // Phase 2: exact peeling of the floor-core subgraph.
    let survivors: Vec<VertexId> = (0..n as u32).filter(|&v| !removed[v as usize]).collect();
    let (sub, back) = g.induced_subgraph(&survivors);
    let sub_core = kcore_sequential(&sub);

    let mut coreness = vec![0u32; n];
    let mut degeneracy = 0u32;
    for v in 0..n {
        if removed[v] {
            // Capped value; only its being < floor matters downstream, the
            // degree tie-break keeps the sort order sensible.
            coreness[v] = (g.degree(v as VertexId) as u32).min(floor - 1);
        }
    }
    for (i, &orig) in back.iter().enumerate() {
        // Coreness within the floor-core equals coreness in G for vertices
        // whose true coreness is >= floor (peeling below floor removes the
        // same set regardless of order).
        coreness[orig as usize] = sub_core.coreness[i];
        degeneracy = degeneracy.max(sub_core.coreness[i]);
    }
    // Degeneracy of the whole graph can exceed the floor-core degeneracy
    // only if it is < floor; report the true max over our (capped) values.
    let degeneracy = coreness.iter().copied().max().unwrap_or(0).max(degeneracy);
    KCore {
        coreness,
        degeneracy,
        peel_order: Vec::new(),
    }
}

/// Naive reference implementation straight from the definition (repeatedly
/// delete all vertices of degree < k). O(n·m); used by tests only.
pub fn kcore_naive(g: &dyn GraphAccess) -> Vec<u32> {
    let n = g.num_vertices();
    let mut coreness = vec![0u32; n];
    let mut k = 1u32;
    let mut present: Vec<bool> = (0..n).map(|v| g.degree(v as u32) > 0).collect();
    // Vertices with degree 0 have coreness 0.
    loop {
        if !present.iter().any(|&p| p) {
            break;
        }
        // compute k-core: repeatedly remove degree < k
        let mut cur = present.clone();
        loop {
            let mut changed = false;
            for v in 0..n {
                if cur[v] {
                    let d = g
                        .neighbors(v as u32)
                        .iter()
                        .filter(|&&u| cur[u as usize])
                        .count();
                    if (d as u32) < k {
                        cur[v] = false;
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        for v in 0..n {
            if cur[v] {
                coreness[v] = k;
            }
        }
        if !cur.iter().any(|&p| p) {
            break;
        }
        present = cur;
        k += 1;
    }
    coreness
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::{gen, CsrGraph};

    #[test]
    fn complete_graph_coreness() {
        let g = gen::complete(6);
        let kc = kcore_sequential(&g);
        assert_eq!(kc.degeneracy, 5);
        assert!(kc.coreness.iter().all(|&c| c == 5));
        assert_eq!(kc.omega_upper_bound(), 6);
    }

    #[test]
    fn path_coreness_is_one() {
        let g = gen::path(10);
        let kc = kcore_sequential(&g);
        assert_eq!(kc.degeneracy, 1);
        assert!(kc.coreness.iter().all(|&c| c == 1));
    }

    #[test]
    fn cycle_coreness_is_two() {
        let g = gen::cycle(8);
        let kc = kcore_sequential(&g);
        assert_eq!(kc.degeneracy, 2);
        assert!(kc.coreness.iter().all(|&c| c == 2));
    }

    #[test]
    fn star_center_and_leaves() {
        let g = gen::star(10);
        let kc = kcore_sequential(&g);
        assert_eq!(kc.degeneracy, 1);
        assert!(kc.coreness.iter().all(|&c| c == 1));
    }

    #[test]
    fn isolated_vertices_have_coreness_zero() {
        let g = CsrGraph::from_edges(5, &[(0, 1)]);
        let kc = kcore_sequential(&g);
        assert_eq!(kc.coreness[2], 0);
        assert_eq!(kc.coreness[0], 1);
    }

    #[test]
    fn empty_graph() {
        let g = CsrGraph::empty(0);
        let kc = kcore_sequential(&g);
        assert_eq!(kc.degeneracy, 0);
        assert_eq!(kc.omega_upper_bound(), 0);
        let kp = kcore_parallel(&g);
        assert_eq!(kp.coreness, kc.coreness);
    }

    #[test]
    fn sequential_matches_naive_on_random_graphs() {
        for seed in 0..5 {
            let g = gen::gnp(60, 0.15, seed);
            let kc = kcore_sequential(&g);
            assert_eq!(kc.coreness, kcore_naive(&g), "seed {seed}");
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        for seed in 0..5 {
            let g = gen::gnp(200, 0.05, seed);
            let seq = kcore_sequential(&g);
            let par = kcore_parallel(&g);
            assert_eq!(seq.coreness, par.coreness, "seed {seed}");
            assert_eq!(seq.degeneracy, par.degeneracy);
        }
    }

    #[test]
    fn peel_order_right_neighborhood_bound() {
        // The defining property of the peeling order: at peel time, each
        // vertex's not-yet-peeled neighbourhood is no larger than its
        // coreness... and therefore every right-neighbourhood under the
        // peel-order relabelling is bounded by the coreness.
        let g = gen::gnp(150, 0.08, 3);
        let kc = kcore_sequential(&g);
        let mut rank = vec![0u32; g.num_vertices()];
        for (i, &v) in kc.peel_order.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        for v in g.vertices() {
            let right = g
                .neighbors(v)
                .iter()
                .filter(|&&u| rank[u as usize] > rank[v as usize])
                .count();
            assert!(
                right <= kc.coreness[v as usize] as usize,
                "vertex {v}: right-degree {right} > coreness {}",
                kc.coreness[v as usize]
            );
        }
    }

    #[test]
    fn floored_kcore_agrees_above_floor() {
        for seed in 0..4 {
            let g = gen::planted_clique(120, 0.06, 9, seed);
            let exact = kcore_sequential(&g);
            for floor in [0u32, 2, 5, 8, 12] {
                let capped = kcore_with_floor(&g, floor);
                for v in 0..g.num_vertices() {
                    let (e, c) = (exact.coreness[v], capped.coreness[v]);
                    assert_eq!(
                        e >= floor,
                        c >= floor,
                        "seed {seed} floor {floor} v {v}: exact {e} capped {c}"
                    );
                    if e >= floor {
                        assert_eq!(e, c, "seed {seed} floor {floor} v {v}");
                    } else {
                        assert!(c < floor.max(1));
                    }
                }
            }
        }
    }

    #[test]
    fn floored_kcore_floor_zero_is_exact() {
        let g = gen::gnp(80, 0.1, 9);
        assert_eq!(
            kcore_with_floor(&g, 0).coreness,
            kcore_sequential(&g).coreness
        );
    }
}
