//! Table III — efficacy of the advance filters.
//!
//! For each instance: the number of right-neighbourhoods that survive the
//! coreness precondition, filter 1, filter 2 and filter 3, normalized per
//! thousand vertices (the paper's measure). Graphs whose heuristic finds a
//! zero-gap maximum clique evaluate no neighbourhoods at all — the 0-rows.
//!
//! Run: `cargo run -p lazymc-bench --release --bin table3 [--test]`

use lazymc_bench::cli::CommonArgs;
use lazymc_bench::Table;
use lazymc_core::{Config, LazyMc};

fn main() {
    let args = CommonArgs::parse();
    let mut table = Table::new(&["graph", "coreness", "filter 1", "filter 2", "filter 3"]);
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let r = LazyMc::new(Config::default()).solve(&g);
        let [c, f1, f2, f3] = r.metrics.retention_per_mille();
        table.row(vec![
            inst.name.to_string(),
            format!("{c:.3}"),
            format!("{f1:.3}"),
            format!("{f2:.3}"),
            format!("{f3:.3}"),
        ]);
    }
    println!(
        "Table III: right-neighbourhoods retained after each filter step,\n\
         normalized per thousand vertices ({:?} scale)",
        args.scale
    );
    println!("{}", table.render());
}
