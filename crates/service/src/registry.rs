//! Named graph store and result cache.
//!
//! The registry is where the daemon amortizes work across queries: a graph
//! is parsed, fingerprinted and k-core-decomposed **once** at upload, then
//! every solve shares the `Arc`'d CSR arrays and exact coreness (handed to
//! [`lazymc_core::LazyMc::solve_prepared`], which skips its per-solve
//! k-core phase). Resident graphs are bounded with LRU eviction.
//!
//! The result cache keys completed solves by
//! `(graph name, content fingerprint, Config::canonical_key())`: the
//! fingerprint invalidates entries when a name is re-uploaded with
//! different content, and keeps them when identical content is re-uploaded.
//! Only exact results are cached — a truncated answer depends on budget
//! and machine load, not just the query.

use lazymc_graph::CsrGraph;
use lazymc_order::{kcore_sequential, KCore};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A resident graph with everything precomputed at load time.
pub struct GraphEntry {
    pub name: String,
    pub graph: Arc<CsrGraph>,
    /// Exact decomposition (with peel order) shared by every query.
    pub kcore: Arc<KCore>,
    pub fingerprint: u64,
    pub loaded_at: Instant,
    /// Milliseconds spent parsing + fingerprinting + decomposing at load.
    pub prep_ms: u64,
    queries: AtomicU64,
    last_used: AtomicU64,
}

impl GraphEntry {
    pub fn queries(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }
}

/// Bounded, thread-safe store of named graphs.
pub struct Registry {
    graphs: Mutex<HashMap<String, Arc<GraphEntry>>>,
    capacity: usize,
    clock: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
    pub evictions: AtomicU64,
}

impl Registry {
    /// A registry holding at most `capacity` graphs (≥ 1).
    pub fn new(capacity: usize) -> Registry {
        Registry {
            graphs: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Registers `graph` under `name`, computing fingerprint and k-core
    /// once. Replaces any same-named graph; evicts the least-recently-used
    /// entry when over capacity. Returns the shared entry.
    pub fn insert(&self, name: &str, graph: CsrGraph) -> Arc<GraphEntry> {
        let t = Instant::now();
        let fingerprint = graph.fingerprint();
        let kcore = kcore_sequential(&graph);
        let entry = Arc::new(GraphEntry {
            name: name.to_string(),
            graph: Arc::new(graph),
            kcore: Arc::new(kcore),
            fingerprint,
            loaded_at: Instant::now(),
            prep_ms: t.elapsed().as_millis() as u64,
            queries: AtomicU64::new(0),
            last_used: AtomicU64::new(self.tick()),
        });
        let mut map = self.graphs.lock().unwrap();
        map.insert(name.to_string(), entry.clone());
        while map.len() > self.capacity {
            // Evict the stalest entry that is not the one just inserted.
            let victim = map
                .iter()
                .filter(|(k, _)| k.as_str() != name)
                .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
                None => break,
            }
        }
        entry
    }

    /// Looks up a graph, bumping its LRU stamp and query count.
    pub fn get(&self, name: &str) -> Option<Arc<GraphEntry>> {
        let map = self.graphs.lock().unwrap();
        match map.get(name) {
            Some(e) => {
                e.last_used.store(self.tick(), Ordering::Relaxed);
                e.queries.fetch_add(1, Ordering::Relaxed);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Drops a graph by name.
    pub fn remove(&self, name: &str) -> bool {
        self.graphs.lock().unwrap().remove(name).is_some()
    }

    pub fn len(&self) -> usize {
        self.graphs.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of resident entries, stalest first.
    pub fn entries(&self) -> Vec<Arc<GraphEntry>> {
        let map = self.graphs.lock().unwrap();
        let mut v: Vec<Arc<GraphEntry>> = map.values().cloned().collect();
        v.sort_by_key(|e| e.last_used.load(Ordering::Relaxed));
        v
    }
}

/// A cached exact solve.
#[derive(Debug, Clone)]
pub struct CachedSolve {
    pub omega: usize,
    pub clique: Vec<u32>,
    /// Milliseconds the original (uncached) solve took.
    pub solve_ms: u64,
}

/// LRU cache of exact solve results keyed by
/// `(graph name, content fingerprint, canonical config)`.
///
/// The fingerprint makes re-uploading identical content under the same
/// name keep its cache entries while changed content invalidates them.
/// The *name* is in the key because the fingerprint alone is a 64-bit
/// non-cryptographic hash: an adversarial upload could collide it and a
/// hit would then return another graph's clique. With the name included,
/// a collision requires replacing that very graph, which already hands
/// the uploader control of its answers.
pub struct ResultCache {
    #[allow(clippy::type_complexity)]
    map: Mutex<HashMap<(String, u64, String), (u64, CachedSolve)>>,
    capacity: usize,
    clock: AtomicU64,
    pub hits: AtomicU64,
    pub misses: AtomicU64,
}

impl ResultCache {
    pub fn new(capacity: usize) -> ResultCache {
        ResultCache {
            map: Mutex::new(HashMap::new()),
            capacity: capacity.max(1),
            clock: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    pub fn get(&self, name: &str, fingerprint: u64, canonical: &str) -> Option<CachedSolve> {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.map.lock().unwrap();
        match map.get_mut(&(name.to_string(), fingerprint, canonical.to_string())) {
            Some((used, hit)) => {
                *used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(hit.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    pub fn put(&self, name: &str, fingerprint: u64, canonical: String, result: CachedSolve) {
        let stamp = self.clock.fetch_add(1, Ordering::Relaxed) + 1;
        let mut map = self.map.lock().unwrap();
        map.insert((name.to_string(), fingerprint, canonical), (stamp, result));
        while map.len() > self.capacity {
            let victim = map
                .iter()
                .min_by_key(|(_, (used, _))| *used)
                .map(|(k, _)| k.clone());
            match victim {
                Some(k) => {
                    map.remove(&k);
                }
                None => break,
            }
        }
    }

    pub fn len(&self) -> usize {
        self.map.lock().unwrap().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;

    #[test]
    fn insert_precomputes_and_get_bumps_counters() {
        let reg = Registry::new(4);
        let g = gen::planted_clique(100, 0.05, 8, 3);
        let fp = g.fingerprint();
        let e = reg.insert("g1", g);
        assert_eq!(e.fingerprint, fp);
        assert!(e.kcore.degeneracy >= 7);
        assert!(!e.kcore.peel_order.is_empty(), "exact peel order expected");

        assert!(reg.get("nope").is_none());
        let e2 = reg.get("g1").unwrap();
        assert_eq!(e2.fingerprint, fp);
        assert_eq!(e2.queries(), 1);
        assert_eq!(reg.hits.load(Ordering::Relaxed), 1);
        assert_eq!(reg.misses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn lru_eviction_keeps_recently_used() {
        let reg = Registry::new(2);
        reg.insert("a", gen::complete(5));
        reg.insert("b", gen::complete(6));
        reg.get("a"); // a is now fresher than b
        reg.insert("c", gen::complete(7));
        assert_eq!(reg.len(), 2);
        assert!(reg.get("a").is_some());
        assert!(reg.get("b").is_none(), "stalest entry should be evicted");
        assert!(reg.get("c").is_some());
        assert_eq!(reg.evictions.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn replacing_same_name_does_not_evict_others() {
        let reg = Registry::new(2);
        reg.insert("a", gen::complete(5));
        reg.insert("b", gen::complete(6));
        reg.insert("a", gen::complete(9));
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.get("a").unwrap().graph.num_vertices(), 9);
        assert!(reg.get("b").is_some());
    }

    #[test]
    fn result_cache_hits_and_evicts() {
        let cache = ResultCache::new(2);
        let r = CachedSolve {
            omega: 4,
            clique: vec![1, 2, 3, 4],
            solve_ms: 12,
        };
        assert!(cache.get("g", 7, "k1").is_none());
        cache.put("g", 7, "k1".into(), r.clone());
        let hit = cache.get("g", 7, "k1").unwrap();
        assert_eq!(hit.omega, 4);
        assert_eq!(hit.clique, vec![1, 2, 3, 4]);
        // Same config on different content misses; so does a fingerprint
        // collision under a different name.
        assert!(cache.get("g", 8, "k1").is_none());
        assert!(cache.get("other", 7, "k1").is_none());
        cache.put("g", 8, "k1".into(), r.clone());
        cache.get("g", 7, "k1"); // freshen (g, 7, k1)
        cache.put("g", 9, "k1".into(), r);
        assert_eq!(cache.len(), 2);
        assert!(
            cache.get("g", 7, "k1").is_some(),
            "freshened entry survives"
        );
        assert!(cache.get("g", 8, "k1").is_none(), "stalest entry evicted");
    }
}
