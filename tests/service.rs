//! End-to-end tests of the clique-query daemon over a live socket:
//! concurrent clients, result-cache behaviour, budget truncation, queue
//! backpressure, LRU eviction, and the error surface.

use lazymc::core::{Config, LazyMc};
use lazymc::graph::{gen, io};
use lazymc::service::{serve, Json, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Minimal HTTP/1.1 client speaking keep-alive to one connection.
struct Client {
    stream: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Client {
    fn connect(addr: std::net::SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(stream.try_clone().expect("clone"));
        Client { stream, reader }
    }

    fn request(
        &mut self,
        method: &str,
        path: &str,
        body: Option<&str>,
    ) -> (u16, Vec<(String, String)>, String) {
        let body = body.unwrap_or("");
        write!(
            self.stream,
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("write request");
        self.stream.flush().unwrap();

        let mut status_line = String::new();
        self.reader
            .read_line(&mut status_line)
            .expect("status line");
        let status: u16 = status_line
            .split_whitespace()
            .nth(1)
            .expect("status code")
            .parse()
            .expect("numeric status");
        let mut headers = Vec::new();
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            self.reader.read_line(&mut line).expect("header line");
            let line = line.trim_end().to_string();
            if line.is_empty() {
                break;
            }
            if let Some((k, v)) = line.split_once(':') {
                let (k, v) = (k.trim().to_ascii_lowercase(), v.trim().to_string());
                if k == "content-length" {
                    content_length = v.parse().expect("content-length");
                }
                headers.push((k, v));
            }
        }
        let mut body = vec![0u8; content_length];
        self.reader.read_exact(&mut body).expect("body");
        (status, headers, String::from_utf8(body).expect("utf8 body"))
    }

    fn post_json(&mut self, path: &str, body: &str) -> (u16, Json) {
        let (status, _, body) = self.request("POST", path, Some(body));
        (status, Json::parse(&body).expect("json body"))
    }

    fn get_json(&mut self, path: &str) -> (u16, Json) {
        let (status, _, body) = self.request("GET", path, None);
        (status, Json::parse(&body).expect("json body"))
    }
}

fn start_service(cfg: ServiceConfig) -> lazymc::service::ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind service")
}

fn upload_edge_list(client: &mut Client, name: &str, g: &lazymc::graph::CsrGraph) -> Json {
    let mut text = Vec::new();
    io::write_edge_list(g, &mut text).unwrap();
    let body = Json::obj(vec![
        ("name", Json::str(name)),
        ("format", Json::str("edgelist")),
        ("content", Json::str(String::from_utf8(text).unwrap())),
    ])
    .encode();
    let (status, response) = client.post_json("/graphs", &body);
    assert_eq!(status, 201, "upload failed: {response:?}");
    response
}

fn u64_field(v: &Json, key: &str) -> u64 {
    v.get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("missing numeric {key:?} in {v:?}"))
}

fn bool_field(v: &Json, key: &str) -> bool {
    v.get(key)
        .and_then(Json::as_bool)
        .unwrap_or_else(|| panic!("missing bool {key:?} in {v:?}"))
}

/// Scrapes one counter out of the Prometheus text format.
fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find(|l| l.starts_with(name) && l.as_bytes().get(name.len()) == Some(&b' '))
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} not found"))
}

#[test]
fn concurrent_clients_agree_and_cache_serves_repeats() {
    let handle = start_service(ServiceConfig {
        workers: 6,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();

    let g = gen::planted_clique(300, 0.03, 11, 7);
    let expected = LazyMc::new(Config::default()).solve(&g).size();

    let mut setup = Client::connect(addr);
    let info = upload_edge_list(&mut setup, "pc", &g);
    assert_eq!(u64_field(&info, "vertices"), 300);

    // ≥4 clients, each its own keep-alive connection, racing the same
    // query plus a per-client no_cache variant.
    let mut clients = Vec::new();
    for c in 0..5usize {
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            for round in 0..3 {
                let no_cache = round == 0 && c % 2 == 0;
                let body = format!(
                    r#"{{"graph":"pc","priority":{},"no_cache":{}}}"#,
                    c % 10,
                    no_cache
                );
                let (status, response) = client.post_json("/solve", &body);
                assert_eq!(status, 200, "solve failed: {response:?}");
                assert_eq!(
                    u64_field(&response, "omega") as usize,
                    expected,
                    "daemon disagrees with LazyMc::solve: {response:?}"
                );
                assert!(bool_field(&response, "exact"));
            }
        }));
    }
    for c in clients {
        c.join().expect("client thread");
    }

    // A repeat of the identical query must now be served from the cache.
    let (status, response) = setup.post_json("/solve", r#"{"graph":"pc"}"#);
    assert_eq!(status, 200);
    assert_eq!(u64_field(&response, "omega") as usize, expected);
    assert!(
        bool_field(&response, "cached"),
        "expected a result-cache hit"
    );
    let clique = match response.get("clique") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|v| v.as_u64().unwrap() as u32)
            .collect::<Vec<_>>(),
        other => panic!("bad clique field {other:?}"),
    };
    assert_eq!(clique.len(), expected);
    assert!(g.is_clique(&clique), "cached witness must be a real clique");

    // The cache hit is visible in /metrics.
    let (status, _, text) = setup.request("GET", "/metrics", None);
    assert_eq!(status, 200);
    assert!(metric(&text, "lazymc_result_cache_hits_total") >= 1);
    assert!(metric(&text, "lazymc_solves_total") >= 1);
    assert_eq!(metric(&text, "lazymc_jobs_rejected_total"), 0);

    handle.stop();
}

#[test]
fn tiny_budget_reports_truncated_not_blocked() {
    let handle = start_service(ServiceConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr);

    // Dense graph with a real systematic phase, so a zero budget provably
    // skips work.
    let g = gen::dense_overlap(220, 30, 8, 18, 0.1, 9);
    let exact = LazyMc::new(Config::default()).solve(&g).size();
    upload_edge_list(&mut client, "dense", &g);

    let (status, response) = client.post_json("/solve", r#"{"graph":"dense","budget_ms":0}"#);
    assert_eq!(status, 200, "a blown budget is an answer, not an error");
    assert!(bool_field(&response, "truncated"));
    assert!(!bool_field(&response, "exact"));
    assert!(u64_field(&response, "omega") as usize <= exact);

    // Truncated results are never cached: the same query re-runs.
    let (_, again) = client.post_json("/solve", r#"{"graph":"dense","budget_ms":0}"#);
    assert!(!bool_field(&again, "cached"));

    // An unbudgeted query on the same graph is exact and correct.
    let (_, full) = client.post_json("/solve", r#"{"graph":"dense"}"#);
    assert_eq!(u64_field(&full, "omega") as usize, exact);
    assert!(bool_field(&full, "exact"));

    let (_, _, text) = client.request("GET", "/metrics", None);
    assert!(metric(&text, "lazymc_solves_truncated_total") >= 2);

    handle.stop();
}

#[test]
fn server_budget_cap_clamps_and_defaults() {
    // A 0 ms server-side cap: every solve — budgeted over the cap or not
    // budgeted at all — is forced under it, so no request can pin a solver
    // indefinitely. The clamp must be visible in the response and the cap
    // in the introspection endpoints.
    let handle = start_service(ServiceConfig {
        max_budget_ms: Some(0),
        ..ServiceConfig::default()
    });
    let addr = handle.addr();
    let mut client = Client::connect(addr);

    let g = gen::dense_overlap(220, 30, 8, 18, 0.1, 9);
    upload_edge_list(&mut client, "dense", &g);

    // Unbudgeted request: defaults to the cap, runs truncated.
    let (status, response) = client.post_json("/solve", r#"{"graph":"dense"}"#);
    assert_eq!(status, 200);
    assert!(bool_field(&response, "budget_clamped"));
    assert!(bool_field(&response, "truncated"));

    // Over-cap request: clamped down.
    let (_, over) = client.post_json("/solve", r#"{"graph":"dense","budget_ms":3600000}"#);
    assert!(bool_field(&over, "budget_clamped"));
    assert!(bool_field(&over, "truncated"));

    // The cap is visible in /healthz and /stats.
    let (_, health) = client.get_json("/healthz");
    assert_eq!(u64_field(&health, "max_budget_ms"), 0);
    let (_, stats) = client.get_json("/stats/dense");
    assert_eq!(u64_field(&stats, "max_budget_ms"), 0);

    handle.stop();

    // Without a cap, an unbudgeted solve stays exact and unclamped.
    let handle = start_service(ServiceConfig::default());
    let mut client = Client::connect(handle.addr());
    upload_edge_list(&mut client, "dense", &g);
    let (_, free) = client.post_json("/solve", r#"{"graph":"dense"}"#);
    assert!(!bool_field(&free, "budget_clamped"));
    assert!(bool_field(&free, "exact"));
    let (_, health) = client.get_json("/healthz");
    assert_eq!(health.get("max_budget_ms"), Some(&Json::Null));
    handle.stop();
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // One solver thread, one queue slot, many HTTP workers: concurrent
    // burst must overflow into 429s rather than block or queue unboundedly.
    let handle = start_service(ServiceConfig {
        workers: 8,
        solver_workers: 1,
        queue_capacity: 1,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();

    let mut setup = Client::connect(addr);
    let body = Json::obj(vec![
        ("name", Json::str("busy")),
        ("format", Json::str("suite")),
        ("content", Json::str("gene-hard")),
        ("scale", Json::str("test")),
    ])
    .encode();
    let (status, info) = setup.post_json("/graphs", &body);
    assert_eq!(status, 201, "suite upload failed: {info:?}");

    let mut clients = Vec::new();
    for _ in 0..8 {
        clients.push(std::thread::spawn(move || {
            let mut client = Client::connect(addr);
            // no_cache so every request is real solver work.
            let (status, headers, body) = client.request(
                "POST",
                "/solve",
                Some(r#"{"graph":"busy","no_cache":true}"#),
            );
            let retry_after = headers.iter().any(|(k, _)| k == "retry-after");
            (status, retry_after, body)
        }));
    }
    let results: Vec<(u16, bool, String)> =
        clients.into_iter().map(|c| c.join().unwrap()).collect();
    let ok = results.iter().filter(|(s, _, _)| *s == 200).count();
    let rejected = results.iter().filter(|(s, _, _)| *s == 429).count();
    assert_eq!(ok + rejected, 8, "unexpected statuses: {results:?}");
    assert!(ok >= 1, "at least the first job must run");
    assert!(rejected >= 1, "queue cap 1 must shed an 8-request burst");
    assert!(
        results.iter().all(|(s, retry, _)| *s != 429 || *retry),
        "429s must carry Retry-After"
    );

    // Shed load is visible in /metrics, and the service still answers.
    let (_, _, text) = setup.request("GET", "/metrics", None);
    assert!(metric(&text, "lazymc_jobs_rejected_total") >= 1);
    let (status, _) = setup.get_json("/healthz");
    assert_eq!(status, 200);

    handle.stop();
}

#[test]
fn registry_lru_evicts_over_http() {
    let handle = start_service(ServiceConfig {
        max_graphs: 2,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();
    let mut client = Client::connect(addr);

    upload_edge_list(&mut client, "a", &gen::complete(5));
    upload_edge_list(&mut client, "b", &gen::complete(6));
    // Touch "a" so "b" is the LRU victim.
    let (status, _) = client.get_json("/stats/a");
    assert_eq!(status, 200);
    upload_edge_list(&mut client, "c", &gen::complete(7));

    let (status, _) = client.get_json("/stats/b");
    assert_eq!(status, 404, "LRU victim should be gone");
    let (status, _) = client.get_json("/stats/a");
    assert_eq!(status, 200);
    let (_, listing) = client.get_json("/graphs");
    let names: Vec<&str> = match listing.get("graphs") {
        Some(Json::Arr(items)) => items
            .iter()
            .map(|g| g.get("name").and_then(Json::as_str).unwrap())
            .collect(),
        other => panic!("bad listing {other:?}"),
    };
    assert_eq!(names.len(), 2);
    assert!(names.contains(&"a") && names.contains(&"c"));

    let (_, _, text) = client.request("GET", "/metrics", None);
    assert!(metric(&text, "lazymc_graphs_evicted_total") >= 1);

    handle.stop();
}

#[test]
fn error_surface_and_introspection() {
    let handle = start_service(ServiceConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr);

    // Solve for a graph that was never uploaded.
    let (status, response) = client.post_json("/solve", r#"{"graph":"ghost"}"#);
    assert_eq!(status, 404);
    assert!(response.get("error").is_some());

    // Malformed JSON, bad fields, bad routes, bad methods.
    let (status, _) = client.post_json("/solve", "{not json");
    assert_eq!(status, 400);
    let (status, _) = client.post_json("/solve", r#"{"graph":"g","priority":99}"#);
    assert_eq!(status, 400);
    let (status, _) = client.post_json("/graphs", r#"{"name":"x y","content":"0 1"}"#);
    assert_eq!(status, 400);
    let (status, _, _) = client.request("GET", "/nope", None);
    assert_eq!(status, 404);
    let (status, _, _) = client.request("PUT", "/solve", Some("{}"));
    assert_eq!(status, 405);

    // DIMACS upload + stats fields, then DELETE.
    let g = gen::planted_clique(80, 0.05, 7, 1);
    let mut text = Vec::new();
    io::write_dimacs(&g, &mut text).unwrap();
    let body = Json::obj(vec![
        ("name", Json::str("dim")),
        ("format", Json::str("dimacs")),
        ("content", Json::str(String::from_utf8(text).unwrap())),
    ])
    .encode();
    let (status, info) = client.post_json("/graphs", &body);
    assert_eq!(status, 201);
    let fingerprint = info
        .get("fingerprint")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();
    assert_eq!(fingerprint.len(), 16, "fingerprint is 16 hex chars");

    let (status, stats) = client.get_json("/stats/dim");
    assert_eq!(status, 200);
    assert_eq!(u64_field(&stats, "vertices"), 80);
    assert_eq!(
        stats.get("fingerprint").and_then(Json::as_str),
        Some(fingerprint.as_str())
    );
    assert!(u64_field(&stats, "omega_upper_bound") >= 7);

    let (status, _, _) = client.request("DELETE", "/graphs/dim", None);
    assert_eq!(status, 200);
    let (status, _) = client.get_json("/stats/dim");
    assert_eq!(status, 404);

    // healthz still fine after the abuse above.
    let (status, health) = client.get_json("/healthz");
    assert_eq!(status, 200);
    assert_eq!(health.get("status").and_then(Json::as_str), Some("ok"));

    handle.stop();
}

#[test]
fn per_job_threads_route_into_the_solver() {
    let handle = start_service(ServiceConfig::default());
    let addr = handle.addr();
    let mut client = Client::connect(addr);

    // Dense G(n,p): neighbourhoods are large enough that an intra-solve
    // thread budget actually reaches the work-splitting drivers.
    let g = gen::gnp(100, 0.6, 42);
    let expected = LazyMc::new(Config::default()).solve(&g).size();
    upload_edge_list(&mut client, "dense", &g);

    // A parallel job must agree with the sequential answer (the thread
    // count changes cost, never the result) and is clamped server-side
    // against the solver pool rather than rejected.
    let (status, response) =
        client.post_json("/solve", r#"{"graph":"dense","threads":8,"no_cache":true}"#);
    assert_eq!(status, 200, "parallel solve failed: {response:?}");
    assert_eq!(u64_field(&response, "omega") as usize, expected);
    assert!(bool_field(&response, "exact"));

    // A sequential job on the same graph agrees too.
    let (_, seq) = client.post_json("/solve", r#"{"graph":"dense","threads":1,"no_cache":true}"#);
    assert_eq!(u64_field(&seq, "omega") as usize, expected);

    // The intra-solve parallelism counters are exported (metric() panics
    // on a missing series; values depend on the machine's parallelism).
    let (_, _, text) = client.request("GET", "/metrics", None);
    for name in [
        "lazymc_core_split_tasks_total",
        "lazymc_core_steals_total",
        "lazymc_core_incumbent_broadcasts_total",
    ] {
        let _ = metric(&text, name);
    }

    handle.stop();
}
