//! Criterion micro-benchmark: hopscotch hash set vs. `std::HashSet` vs.
//! binary search over a sorted array — the membership backends available
//! to the intersection kernels.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazymc_hopscotch::HopscotchSet;
use lazymc_roaring::RoaringSet;
use std::collections::HashSet;
use std::hint::black_box;

fn bench_contains(c: &mut Criterion) {
    let mut group = c.benchmark_group("membership");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));

    for &n in &[256usize, 4096, 65536] {
        let keys: Vec<u32> = (0..n as u32)
            .map(|i| i.wrapping_mul(2_654_435_761))
            .collect();
        let probes: Vec<u32> = (0..1024u32)
            .map(|i| {
                if i % 2 == 0 {
                    keys[(i as usize * 37) % n] // hit
                } else {
                    i.wrapping_mul(97) | 1 // likely miss
                }
            })
            .collect();

        let hop: HopscotchSet = keys.iter().collect();
        let roar: RoaringSet = keys.iter().collect();
        let std_set: HashSet<u32> = keys.iter().copied().collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();

        group.bench_with_input(BenchmarkId::new("hopscotch", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    hits += hop.contains(black_box(p)) as usize;
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("std_hashset", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    hits += std_set.contains(black_box(&p)) as usize;
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("roaring", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    hits += roar.contains(black_box(p)) as usize;
                }
                black_box(hits)
            })
        });
        group.bench_with_input(BenchmarkId::new("binary_search", n), &n, |b, _| {
            b.iter(|| {
                let mut hits = 0usize;
                for &p in &probes {
                    hits += sorted.binary_search(black_box(&p)).is_ok() as usize;
                }
                black_box(hits)
            })
        });
    }
    group.finish();
}

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("build");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_millis(800));
    group.warm_up_time(std::time::Duration::from_millis(200));
    let keys: Vec<u32> = (0..4096u32)
        .map(|i| i.wrapping_mul(2_654_435_761))
        .collect();
    group.bench_function("hopscotch_4096", |b| {
        b.iter(|| {
            let s: HopscotchSet = black_box(&keys).iter().collect();
            black_box(s.len())
        })
    });
    group.bench_function("std_hashset_4096", |b| {
        b.iter(|| {
            let s: HashSet<u32> = black_box(&keys).iter().copied().collect();
            black_box(s.len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_contains, bench_build);
criterion_main!(benches);
