//! Property tests: the enumerator must match the from-definition oracle on
//! arbitrary small graphs, and its global invariants must hold on larger
//! ones where the oracle is unaffordable.

use lazymc_graph::{gen, CsrGraph};
use lazymc_mce::{all_maximal_cliques, all_maximal_cliques_naive, for_each_maximal_clique};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn matches_oracle_on_small_graphs(
        n in 1usize..14,
        p in 0.0f64..1.0,
        seed in 0u64..10_000,
    ) {
        let g = gen::gnp(n, p, seed);
        prop_assert_eq!(all_maximal_cliques(&g), all_maximal_cliques_naive(&g));
    }

    #[test]
    fn emitted_cliques_are_distinct_and_cover_all_edges(
        n in 2usize..60,
        p in 0.0f64..0.3,
        seed in 0u64..10_000,
    ) {
        let g = gen::gnp(n, p, seed);
        let all = all_maximal_cliques(&g);
        // distinct
        for w in all.windows(2) {
            prop_assert!(w[0] != w[1], "duplicate maximal clique");
        }
        // every edge lies in at least one maximal clique
        let mut covered = std::collections::HashSet::new();
        for c in &all {
            for (i, &u) in c.iter().enumerate() {
                for &v in &c[i + 1..] {
                    covered.insert((u.min(v), u.max(v)));
                }
            }
        }
        for (u, v) in g.edges() {
            prop_assert!(covered.contains(&(u, v)), "edge ({u},{v}) uncovered");
        }
        // every vertex lies in at least one maximal clique
        let mut seen = vec![false; n];
        for c in &all {
            for &v in c {
                seen[v as usize] = true;
            }
        }
        prop_assert!(seen.into_iter().all(|s| s));
    }

    #[test]
    fn clique_count_of_disjoint_union_multiplies(parts in 1usize..4, size in 2usize..5) {
        // caveman with zero rewiring = disjoint K_size components: each is
        // one maximal clique.
        let g: CsrGraph = gen::caveman(parts, size, 0.0, 1);
        let mut count = 0u64;
        for_each_maximal_clique(&g, |c| {
            assert_eq!(c.len(), size);
            count += 1;
        });
        prop_assert_eq!(count, parts as u64);
    }
}
