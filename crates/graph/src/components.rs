//! Connectivity and triangle utilities.
//!
//! The experiment harness characterizes suite instances beyond the paper's
//! Table I columns (component structure matters for generator realism), and
//! triangle counts back the density discussion of §III-D. The union-find
//! here is also a reusable substrate for the generators' post-processing.

use crate::{CsrGraph, VertexId};

/// Union-find (disjoint-set forest) with union by rank and path halving.
pub struct DisjointSet {
    parent: Vec<u32>,
    rank: Vec<u8>,
    sets: usize,
}

impl DisjointSet {
    /// `n` singleton sets.
    pub fn new(n: usize) -> Self {
        DisjointSet {
            parent: (0..n as u32).collect(),
            rank: vec![0; n],
            sets: n,
        }
    }

    /// Number of disjoint sets remaining.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Representative of `x`'s set (with path halving).
    pub fn find(&mut self, mut x: u32) -> u32 {
        while self.parent[x as usize] != x {
            let grandparent = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grandparent;
            x = grandparent;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were
    /// distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (hi, lo) = if self.rank[ra as usize] >= self.rank[rb as usize] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[lo as usize] = hi;
        if self.rank[hi as usize] == self.rank[lo as usize] {
            self.rank[hi as usize] += 1;
        }
        self.sets -= 1;
        true
    }

    /// Whether `a` and `b` share a set.
    pub fn same(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }
}

/// Connected components: returns `(count, label per vertex)` with labels
/// in `0..count`, assigned in order of first appearance.
pub fn connected_components(g: &CsrGraph) -> (usize, Vec<u32>) {
    let n = g.num_vertices();
    let mut dsu = DisjointSet::new(n);
    for (u, v) in g.edges() {
        dsu.union(u, v);
    }
    let mut labels = vec![u32::MAX; n];
    let mut next = 0u32;
    for v in 0..n as u32 {
        let r = dsu.find(v);
        if labels[r as usize] == u32::MAX {
            labels[r as usize] = next;
            next += 1;
        }
        labels[v as usize] = labels[r as usize];
    }
    (next as usize, labels)
}

/// Extracts the largest connected component; returns the component graph
/// and the map from its new ids back to ids of `g`.
pub fn largest_component(g: &CsrGraph) -> (CsrGraph, Vec<VertexId>) {
    let (count, labels) = connected_components(g);
    if count <= 1 {
        let ids: Vec<VertexId> = g.vertices().collect();
        return g.induced_subgraph(&ids);
    }
    let mut sizes = vec![0usize; count];
    for &l in &labels {
        sizes[l as usize] += 1;
    }
    let best = (0..count).max_by_key(|&c| sizes[c]).unwrap() as u32;
    let members: Vec<VertexId> = g
        .vertices()
        .filter(|&v| labels[v as usize] == best)
        .collect();
    g.induced_subgraph(&members)
}

/// Exact triangle count by forward (degree-ordered) adjacency merging:
/// each triangle is counted exactly once at its lowest-ranked vertex.
pub fn triangle_count(g: &CsrGraph) -> u64 {
    let n = g.num_vertices();
    // rank by (degree, id): low-degree vertices first, making forward
    // adjacency lists short on skewed graphs (the standard trick).
    let mut order: Vec<VertexId> = g.vertices().collect();
    order.sort_unstable_by_key(|&v| (g.degree(v), v));
    let mut rank = vec![0u32; n];
    for (i, &v) in order.iter().enumerate() {
        rank[v as usize] = i as u32;
    }
    // forward adjacency: neighbors with higher rank, sorted by rank
    let mut fwd: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in g.vertices() {
        for &u in g.neighbors(v) {
            if rank[u as usize] > rank[v as usize] {
                fwd[v as usize].push(rank[u as usize]);
            }
        }
        fwd[v as usize].sort_unstable();
    }
    let by_rank: Vec<VertexId> = order;
    let mut triangles = 0u64;
    for v in g.vertices() {
        let fv = &fwd[v as usize];
        for &ru in fv {
            let u = by_rank[ru as usize];
            let fu = &fwd[u as usize];
            // |fv ∩ fu| by merge
            let (mut i, mut j) = (0usize, 0usize);
            while i < fv.len() && j < fu.len() {
                match fv[i].cmp(&fu[j]) {
                    std::cmp::Ordering::Less => i += 1,
                    std::cmp::Ordering::Greater => j += 1,
                    std::cmp::Ordering::Equal => {
                        triangles += 1;
                        i += 1;
                        j += 1;
                    }
                }
            }
        }
    }
    triangles
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn dsu_basics() {
        let mut d = DisjointSet::new(5);
        assert_eq!(d.num_sets(), 5);
        assert!(d.union(0, 1));
        assert!(!d.union(1, 0));
        assert!(d.same(0, 1));
        assert!(!d.same(0, 2));
        d.union(2, 3);
        d.union(0, 3);
        assert_eq!(d.num_sets(), 2);
        assert!(d.same(1, 2));
    }

    #[test]
    fn components_of_disjoint_cliques() {
        let g = gen::caveman(4, 5, 0.0, 1);
        let (count, labels) = connected_components(&g);
        assert_eq!(count, 4);
        for c in 0..4u32 {
            for i in 1..5u32 {
                assert_eq!(labels[(c * 5) as usize], labels[(c * 5 + i) as usize]);
            }
        }
    }

    #[test]
    fn components_with_isolated_vertices() {
        let g = CsrGraph::from_edges(6, &[(0, 1), (2, 3)]);
        let (count, _) = connected_components(&g);
        assert_eq!(count, 4); // {0,1}, {2,3}, {4}, {5}
    }

    #[test]
    fn largest_component_extraction() {
        let mut edges = vec![(0u32, 1), (1, 2), (2, 0)]; // triangle
        edges.push((10, 11)); // small component
        let g = CsrGraph::from_edges(12, &edges);
        let (lc, map) = largest_component(&g);
        assert_eq!(lc.num_vertices(), 3);
        assert_eq!(lc.num_edges(), 3);
        let mut m = map;
        m.sort_unstable();
        assert_eq!(m, vec![0, 1, 2]);
    }

    #[test]
    fn largest_component_of_connected_graph_is_identity_sized() {
        let g = gen::cycle(9);
        let (lc, _) = largest_component(&g);
        assert_eq!(lc.num_vertices(), 9);
    }

    #[test]
    fn triangle_counts_known() {
        assert_eq!(triangle_count(&gen::complete(4)), 4);
        assert_eq!(triangle_count(&gen::complete(6)), 20); // C(6,3)
        assert_eq!(triangle_count(&gen::cycle(5)), 0);
        assert_eq!(triangle_count(&gen::star(10)), 0);
        assert_eq!(triangle_count(&gen::path(7)), 0);
    }

    #[test]
    fn triangle_count_matches_naive_on_random() {
        for seed in 0..4 {
            let g = gen::gnp(60, 0.2, seed);
            let mut naive = 0u64;
            for u in 0..60u32 {
                for v in (u + 1)..60 {
                    for w in (v + 1)..60 {
                        if g.has_edge(u, v) && g.has_edge(v, w) && g.has_edge(u, w) {
                            naive += 1;
                        }
                    }
                }
            }
            assert_eq!(triangle_count(&g), naive, "seed {seed}");
        }
    }

    #[test]
    fn caveman_triangles() {
        // l disjoint K_k communities: l * C(k,3) triangles
        let g = gen::caveman(3, 5, 0.0, 2);
        assert_eq!(triangle_count(&g), 3 * 10);
    }
}
