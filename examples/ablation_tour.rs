//! A guided tour of LazyMC's work-avoidance knobs: runs the same instance
//! under each ablation (the configurations behind the paper's Figs. 4–6)
//! and prints what changes — and what must not change (ω).
//!
//! Run: `cargo run --release --example ablation_tour`

use lazymc::core::{Config, LazyMc, PrePopulate};
use lazymc::graph::gen;
use std::time::Instant;

fn run(
    label: &str,
    cfg: Config,
    g: &lazymc::graph::CsrGraph,
    baseline: Option<f64>,
) -> (usize, f64) {
    let t = Instant::now();
    let r = LazyMc::new(cfg).solve(g);
    let secs = t.elapsed().as_secs_f64();
    let rel = baseline.map(|b| secs / b.max(1e-9));
    println!(
        "{label:<28} ω={:<3} time={:>8.3}s {} (lazy built: {} hash / {} sorted)",
        r.size(),
        secs,
        rel.map(|r| format!("({r:.2}x)")).unwrap_or_default(),
        r.metrics.lazy_built.0,
        r.metrics.lazy_built.1,
    );
    (r.size(), secs)
}

fn main() {
    let g = gen::planted_clique(8_000, 0.004, 22, 5);
    println!(
        "instance: {} vertices, {} edges, planted ω = 22\n",
        g.num_vertices(),
        g.num_edges()
    );

    let (omega, base) = run("default (paper config)", Config::default(), &g, None);

    let cases: Vec<(&str, Config)> = vec![
        (
            "no early exits",
            Config {
                early_exit: false,
                second_exit: false,
                ..Config::default()
            },
        ),
        (
            "no second exit",
            Config {
                second_exit: false,
                ..Config::default()
            },
        ),
        (
            "prepopulate ALL",
            Config {
                prepopulate: PrePopulate::All,
                ..Config::default()
            },
        ),
        (
            "prepopulate NONE",
            Config {
                prepopulate: PrePopulate::None,
                ..Config::default()
            },
        ),
        (
            "k-VC always (phi=0)",
            Config::default().with_density_threshold(0.0),
        ),
        (
            "MC always (phi=1)",
            Config::default().with_density_threshold(1.0),
        ),
        ("single thread", Config::sequential()),
        ("everything off", Config::no_work_avoidance()),
    ];

    for (label, cfg) in cases {
        let (o, _) = run(label, cfg, &g, Some(base));
        assert_eq!(o, omega, "ablations must never change ω");
    }

    println!("\nevery configuration found the same ω — work-avoidance only changes *how fast*.");
}
