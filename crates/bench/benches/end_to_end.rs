//! Criterion end-to-end benchmark: LazyMC vs. the baselines on test-scale
//! suite instances (the quick-feedback companion to the table2 binary).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lazymc_baselines::{brb_like, domega, pmc_like, GapSchedule};
use lazymc_core::{Config, LazyMc};
use lazymc_graph::suite::{by_name, Scale};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    for name in ["collab", "social", "bio-dense"] {
        let g = by_name(name).expect("suite instance").build(Scale::Test);
        group.bench_with_input(BenchmarkId::new("lazymc", name), &g, |b, g| {
            b.iter(|| black_box(LazyMc::new(Config::default()).solve(g).size()))
        });
        group.bench_with_input(BenchmarkId::new("pmc", name), &g, |b, g| {
            b.iter(|| black_box(pmc_like(g).len()))
        });
        group.bench_with_input(BenchmarkId::new("domega_bs", name), &g, |b, g| {
            b.iter(|| black_box(domega(g, GapSchedule::Binary).len()))
        });
        group.bench_with_input(BenchmarkId::new("brb", name), &g, |b, g| {
            b.iter(|| black_box(brb_like(g).len()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
