//! Table I — characterization of the benchmark suite.
//!
//! Columns mirror the paper: |V|, |E|, max degree Δ, degeneracy d,
//! maximum clique ω, clique-core gap g = d+1−ω, and the incumbent sizes
//! found by the degree-based (ω̂_d) and coreness-based (ω̂_h) heuristic
//! searches. Bold in the paper marks gap-0 graphs and heuristic hits; here
//! a trailing `*` marks them.
//!
//! Run: `cargo run -p lazymc-bench --release --bin table1 [--test]`

use lazymc_bench::cli::CommonArgs;
use lazymc_bench::Table;
use lazymc_core::{Config, LazyMc};
use lazymc_graph::GraphStats;

fn main() {
    let args = CommonArgs::parse();
    let mut table = Table::new(&[
        "graph", "|V|", "|E|", "max-deg", "d", "omega", "gap", "w_d", "w_h",
    ]);
    for inst in args.instances() {
        let g = inst.build(args.scale);
        let stats = GraphStats::of(&g);
        let result = LazyMc::new(Config::default()).solve(&g);
        let omega = result.size();
        let m = &result.metrics;
        let gap = m.degeneracy as i64 + 1 - omega as i64;
        let mark = |v: usize| {
            if v == omega {
                format!("{v}*")
            } else {
                format!("{v}")
            }
        };
        table.row(vec![
            inst.name.to_string(),
            stats.n.to_string(),
            stats.m.to_string(),
            stats.max_degree.to_string(),
            m.degeneracy.to_string(),
            omega.to_string(),
            if gap == 0 {
                format!("{gap}*")
            } else {
                gap.to_string()
            },
            mark(m.omega_degree_heuristic),
            mark(m.omega_coreness_heuristic),
        ]);
        if let Some(expected) = inst.expected_omega {
            assert_eq!(omega, expected, "instance {} expected omega", inst.name);
        }
    }
    println!("Table I: suite characterization ({:?} scale)", args.scale);
    println!("(* marks clique-core gap zero and heuristic hits, the paper's bold)");
    println!("{}", table.render());
}
