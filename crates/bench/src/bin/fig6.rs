//! Fig. 6 — impact of algorithmic choice (MC vs. k-VC).
//!
//! (a) normalized execution time across density thresholds φ for three
//! gap-heavy instances; (b)/(c) total systematic work split into MC and
//! k-VC solver time at each threshold. φ = 1 disables k-VC entirely;
//! φ = 0 sends every detailed search to k-VC.
//!
//! Run: `cargo run -p lazymc-bench --release --bin fig6 [--test]`

use lazymc_bench::cli::{ratio, CommonArgs};
use lazymc_bench::{time_stats, Table};
use lazymc_core::{Config, LazyMc};

const THRESHOLDS: [f64; 6] = [0.1, 0.3, 0.5, 0.7, 0.9, 1.0];
// social shows the dramatic k-VC-vs-MC gap; wiki the balanced crossover.
// (orkut-like also works but its high-phi points cost minutes per rep.)
const INSTANCES: [&str; 2] = ["social", "wiki"];

fn main() {
    let args = CommonArgs::parse();
    let names: Vec<String> = match &args.instance {
        Some(n) => vec![n.clone()],
        None => INSTANCES.iter().map(|s| s.to_string()).collect(),
    };
    for name in names {
        let inst = lazymc_graph::suite::by_name(&name).expect("instance");
        let g = inst.build(args.scale);
        let mut table = Table::new(&[
            "phi",
            "norm-time",
            "MC-work[ms]",
            "kVC-work[ms]",
            "searched-MC",
            "searched-kVC",
        ]);
        let mut baseline = None;
        let mut omega0 = None;
        for phi in THRESHOLDS {
            let cfg = Config::default().with_density_threshold(phi);
            let (r, mean, _) = time_stats(args.reps, || LazyMc::new(cfg.clone()).solve(&g));
            match omega0 {
                None => omega0 = Some(r.size()),
                Some(o) => assert_eq!(o, r.size(), "phi changed omega on {name}"),
            }
            let secs = mean.as_secs_f64();
            let base = *baseline.get_or_insert(secs);
            let m = &r.metrics;
            table.row(vec![
                format!("{phi:.1}"),
                ratio(secs / base.max(1e-9)),
                format!("{:.2}", m.mc_time.as_secs_f64() * 1e3),
                format!("{:.2}", m.kvc_time.as_secs_f64() * 1e3),
                m.searched_mc.to_string(),
                m.searched_kvc.to_string(),
            ]);
        }
        println!(
            "Fig. 6: algorithmic choice on {name} — execution time (normalized\n\
             to phi={}) and MC/k-VC work per density threshold, {:?} scale",
            THRESHOLDS[0], args.scale
        );
        println!("{}", table.render());
    }
}
