//! The reproducible perf harness behind `lazymc bench`.
//!
//! Three synthetic suites mirror the régimes of the paper's corpus:
//!
//! * **quick** — seconds-scale smoke inputs for CI; exercises every code
//!   path (dense MC, k-VC, filters, reduction) without meaning as a
//!   benchmark.
//! * **dense** — quasi-random and overlapping-clique instances whose
//!   filtered neighbourhoods survive to detailed search by the hundreds;
//!   wall time is dominated by the subgraph solvers and the coloring
//!   kernels, so this is the suite that detects solver-kernel regressions.
//! * **sparse** — large power-law / planted instances where ordering,
//!   k-core and the filters dominate; detects preprocessing and
//!   parallel-substrate regressions.
//!
//! Each case is solved `reps` times; the median wall time goes into the
//! report, and the allocation counters (when the binary installed
//! [`crate::alloc::CountingAlloc`]) are read around the *last* repetition
//! — the steady-state one, after the scratch arenas warmed up. Results
//! serialize to the JSON schema documented in `docs/perf.md`
//! (`"schema": "lazymc-bench/v1"`), committed as `BENCH_<tag>.json` so the
//! repo carries a perf trajectory across PRs.

use crate::alloc::{snapshot, tracking_enabled, AllocSnapshot};
use lazymc_core::{Config, LazyMc};
use lazymc_graph::{gen, CsrGraph};
use std::fmt::Write as _;
use std::time::Instant;

/// One benchmark case: a graph plus the solver configuration to run on it.
pub struct BenchCase {
    /// Stable case name (used as the JSON key and the graph-export stem).
    pub name: &'static str,
    /// The input graph.
    pub graph: CsrGraph,
    /// Solver configuration.
    pub config: Config,
}

/// Measured outcome of one case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    pub name: &'static str,
    pub n: usize,
    pub m: usize,
    pub omega: usize,
    pub reps: usize,
    /// Median wall time across repetitions, milliseconds.
    pub wall_ms_median: f64,
    /// Fastest repetition, milliseconds.
    pub wall_ms_min: f64,
    pub mc_nodes: u64,
    pub vc_nodes: u64,
    pub searched_mc: u64,
    pub searched_kvc: u64,
    pub reduced_vertices: u64,
    pub vc_reductions: u64,
    /// Heap allocations during the last (steady-state) repetition.
    pub alloc_count: u64,
    /// Bytes allocated during the last repetition.
    pub alloc_bytes: u64,
    /// Process-wide live-byte high-water mark after the last repetition.
    pub peak_bytes: u64,
}

/// A full suite run.
pub struct SuiteResult {
    pub suite: &'static str,
    pub threads: usize,
    pub reps: usize,
    /// Whether allocation counters were live in this process.
    pub alloc_tracked: bool,
    pub cases: Vec<CaseResult>,
}

impl SuiteResult {
    /// Sum of median wall times, milliseconds.
    pub fn total_wall_ms(&self) -> f64 {
        self.cases.iter().map(|c| c.wall_ms_median).sum()
    }
}

/// The suite names `lazymc bench --suite` accepts.
pub const SUITES: &[&str] = &["quick", "dense", "sparse"];

/// Builds the named suite's cases, or `None` for an unknown name.
pub fn suite(name: &str) -> Option<Vec<BenchCase>> {
    let dense_cfg = Config::default();
    let reduction_cfg = Config {
        subgraph_reduction: true,
        ..Config::default()
    };
    match name {
        "quick" => Some(vec![
            case("paley-101", gen::paley(101), Config::default()),
            case("gnp-150-040", gen::gnp(150, 0.40, 7), Config::default()),
            case(
                "overlap-150",
                gen::dense_overlap(150, 20, 8, 14, 0.10, 9),
                Config::default(),
            ),
            case(
                "planted-400",
                gen::planted_clique(400, 0.02, 14, 99),
                Config::default(),
            ),
            case("caveman-160", gen::caveman(20, 8, 0.05, 3), reduction_cfg),
        ]),
        "dense" => Some(vec![
            // Quasi-random, self-complementary: the classic hard dense
            // instances; nearly every neighbourhood survives filtering.
            case("paley-401", gen::paley(401), dense_cfg.clone()),
            case("paley-577", gen::paley(577), dense_cfg.clone()),
            // Uniform dense G(n,p): large clique-core gap, many detailed
            // MC searches with deep coloring.
            case("gnp-300-055", gen::gnp(300, 0.55, 11), dense_cfg.clone()),
            case("gnp-400-045", gen::gnp(400, 0.45, 5), dense_cfg.clone()),
            // Hamming distance-≥2 graph: huge dense neighbourhoods.
            case("hamming-8-2", gen::hamming(8, 2), dense_cfg.clone()),
            // Overlapping planted cliques over a dense background, with
            // the MC-BRB reduction extension enabled.
            case(
                "overlap-400-red",
                gen::dense_overlap(400, 40, 14, 22, 0.12, 21),
                reduction_cfg,
            ),
            // φ = 0 forces every detailed search through the k-VC engine.
            case(
                "gnp-250-060-kvc",
                gen::gnp(250, 0.60, 17),
                Config::default().with_density_threshold(0.0),
            ),
        ]),
        "sparse" => Some(vec![
            case(
                "ba-50k-8",
                gen::barabasi_albert(50_000, 8, 13),
                Config::default(),
            ),
            case(
                "planted-20k",
                gen::planted_clique(20_000, 0.0008, 24, 42),
                Config::default(),
            ),
            case(
                "rmat-16-16",
                gen::rmat(16, 16, 0.57, 0.19, 0.19, 3),
                Config::default(),
            ),
            case(
                "caveman-4k",
                gen::caveman(400, 10, 0.02, 8),
                Config::default(),
            ),
            case(
                "apollonian-30k",
                gen::apollonian(30_000, 5),
                Config::default(),
            ),
        ]),
        _ => None,
    }
}

fn case(name: &'static str, graph: CsrGraph, config: Config) -> BenchCase {
    BenchCase {
        name,
        graph,
        config,
    }
}

/// Runs every case `reps` times, reporting progress through `progress`.
pub fn run_suite(
    suite_name: &'static str,
    cases: &[BenchCase],
    reps: usize,
    mut progress: impl FnMut(&CaseResult),
) -> SuiteResult {
    let reps = reps.max(1);
    let alloc_tracked = tracking_enabled();
    let mut results = Vec::with_capacity(cases.len());
    for c in cases {
        let solver = LazyMc::new(c.config.clone());
        let mut walls = Vec::with_capacity(reps);
        let mut last = None;
        let mut alloc_delta = AllocSnapshot::default();
        for rep in 0..reps {
            let measured = rep + 1 == reps;
            if measured {
                // Scope the high-water mark to this case's steady-state
                // repetition; without the reset it would be the running
                // maximum across every prior case and suite construction.
                crate::alloc::reset_peak();
            }
            let before = snapshot();
            let t = Instant::now();
            let r = solver.solve(&c.graph);
            walls.push(t.elapsed().as_secs_f64() * 1e3);
            if measured {
                alloc_delta = snapshot().delta(&before);
            }
            last = Some(r);
        }
        let r = last.expect("reps >= 1");
        walls.sort_by(|a, b| a.total_cmp(b));
        let result = CaseResult {
            name: c.name,
            n: c.graph.num_vertices(),
            m: c.graph.num_edges(),
            omega: r.size(),
            reps,
            wall_ms_median: walls[walls.len() / 2],
            wall_ms_min: walls[0],
            mc_nodes: r.metrics.mc_nodes,
            vc_nodes: r.metrics.vc_nodes,
            searched_mc: r.metrics.searched_mc,
            searched_kvc: r.metrics.searched_kvc,
            reduced_vertices: r.metrics.reduced_vertices,
            vc_reductions: r.metrics.vc_reductions,
            alloc_count: alloc_delta.allocs,
            alloc_bytes: alloc_delta.allocated_bytes,
            peak_bytes: alloc_delta.peak_bytes,
        };
        progress(&result);
        results.push(result);
    }
    SuiteResult {
        suite: suite_name,
        threads: rayon::current_num_threads(),
        reps,
        alloc_tracked,
        cases: results,
    }
}

/// Serializes a suite run to the `lazymc-bench/v1` JSON schema
/// (documented in `docs/perf.md`). Field order is fixed; numbers are
/// plain decimals, so the output is byte-stable for identical inputs.
pub fn to_json(r: &SuiteResult) -> String {
    let mut out = String::new();
    out.push('{');
    let _ = write!(
        out,
        "\"schema\":\"lazymc-bench/v1\",\"suite\":\"{}\",\"threads\":{},\"reps\":{},\"alloc_tracked\":{},\"cases\":[",
        r.suite, r.threads, r.reps, r.alloc_tracked
    );
    for (i, c) in r.cases.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"name\":\"{}\",\"n\":{},\"m\":{},\"omega\":{},\"reps\":{},\
             \"wall_ms_median\":{:.3},\"wall_ms_min\":{:.3},\
             \"mc_nodes\":{},\"vc_nodes\":{},\"searched_mc\":{},\"searched_kvc\":{},\
             \"reduced_vertices\":{},\"vc_reductions\":{},\
             \"alloc_count\":{},\"alloc_bytes\":{},\"peak_bytes\":{}}}",
            c.name,
            c.n,
            c.m,
            c.omega,
            c.reps,
            c.wall_ms_median,
            c.wall_ms_min,
            c.mc_nodes,
            c.vc_nodes,
            c.searched_mc,
            c.searched_kvc,
            c.reduced_vertices,
            c.vc_reductions,
            c.alloc_count,
            c.alloc_bytes,
            c.peak_bytes,
        );
    }
    let _ = write!(out, "],\"total_wall_ms\":{:.3}}}", r.total_wall_ms());
    out
}

/// The per-case integer fields every `lazymc-bench/v1` case must carry
/// (shared by the emitter above and the `--check` validator in the CLI).
pub const CASE_INT_FIELDS: &[&str] = &[
    "n",
    "m",
    "omega",
    "reps",
    "mc_nodes",
    "vc_nodes",
    "searched_mc",
    "searched_kvc",
    "reduced_vertices",
    "vc_reductions",
    "alloc_count",
    "alloc_bytes",
    "peak_bytes",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_suites_build() {
        for name in SUITES {
            let cases = suite(name).unwrap();
            assert!(!cases.is_empty(), "{name}");
            for c in &cases {
                assert!(c.graph.num_vertices() > 0, "{}", c.name);
            }
        }
        assert!(suite("nope").is_none());
    }

    #[test]
    fn quick_suite_runs_and_serializes() {
        let cases: Vec<BenchCase> = suite("quick")
            .unwrap()
            .into_iter()
            .filter(|c| c.graph.num_vertices() <= 160)
            .collect();
        let r = run_suite("quick", &cases, 1, |_| {});
        assert_eq!(r.cases.len(), cases.len());
        for c in &r.cases {
            assert!(c.omega >= 1);
            assert!(c.wall_ms_median >= c.wall_ms_min);
        }
        let json = to_json(&r);
        assert!(json.starts_with("{\"schema\":\"lazymc-bench/v1\""));
        assert!(json.contains("\"total_wall_ms\""));
        for field in CASE_INT_FIELDS {
            assert!(json.contains(&format!("\"{field}\":")), "{field}");
        }
    }
}
