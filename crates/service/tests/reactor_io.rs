//! Live-socket tests of the reactor's partial-I/O behaviour: requests
//! dribbled a byte at a time, slow-loris stalls answered with 408,
//! responses larger than the kernel buffers forcing the partial-write
//! path, pipelining, the connection limit, the aggregate buffering
//! budget, and gauge consistency across `/healthz`, `/stats`, and
//! `/metrics`.

mod common;

use common::{upload, Client};
use lazymc_graph::gen;
use lazymc_service::{serve, Json, ServiceConfig, ServiceHandle};
use std::io::{ErrorKind, Read, Write};
use std::time::{Duration, Instant};

fn start(cfg: ServiceConfig) -> ServiceHandle {
    serve(ServiceConfig {
        addr: "127.0.0.1:0".into(),
        ..cfg
    })
    .expect("bind service")
}

/// A request dribbled one byte at a time parses exactly like a one-shot
/// write, and the mid-request stalls are counted.
#[test]
fn byte_dribbled_request_is_served() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    let raw = "GET /healthz HTTP/1.1\r\nHost: drip\r\nContent-Length: 0\r\n\r\n";
    for byte in raw.as_bytes() {
        c.stream.write_all(std::slice::from_ref(byte)).unwrap();
        c.stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(1));
    }
    let (status, _, body) = c.read_response();
    assert_eq!(status, 200, "dribbled request must parse: {body}");
    assert!(body.contains("\"status\":\"ok\""));
    // The same connection still works for a normal request afterwards.
    let (status, _, _) = c.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(
        c.metric("lazymc_http_read_stalls_total") >= 1,
        "a byte-dripped request must have stalled mid-parse"
    );
    handle.stop();
}

/// A request whose body stalls forever gets `408 Request Timeout`; an
/// *idle* keep-alive connection is closed silently instead.
#[test]
fn slow_loris_gets_408_but_idle_close_is_silent() {
    let handle = start(ServiceConfig {
        read_timeout: Duration::from_millis(250),
        ..ServiceConfig::default()
    });

    // Stall mid-body: head promises 10 bytes, 3 arrive.
    let mut loris = Client::connect(handle.addr());
    loris
        .stream
        .write_all(b"POST /solve HTTP/1.1\r\nHost: t\r\nContent-Length: 10\r\n\r\n{\"g")
        .unwrap();
    loris.stream.flush().unwrap();
    let t = Instant::now();
    let (status, _, body) = loris.read_response();
    assert_eq!(status, 408, "stalled body must time out: {body}");
    assert!(
        t.elapsed() >= Duration::from_millis(200),
        "408 must come from the timeout sweep, not immediately"
    );
    // The server closes after the 408.
    let mut rest = Vec::new();
    loris.reader.read_to_end(&mut rest).expect("clean close");
    assert!(rest.is_empty());

    // Idle keep-alive connection: closed with no response bytes at all.
    let mut idle = Client::connect(handle.addr());
    let (status, _, _) = idle.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    let mut rest = Vec::new();
    idle.reader.read_to_end(&mut rest).expect("clean close");
    assert!(
        rest.is_empty(),
        "idle close must not write a 408: {:?}",
        String::from_utf8_lossy(&rest)
    );

    let mut c = Client::connect(handle.addr());
    assert!(c.metric("lazymc_http_request_timeouts_total") >= 1);
    handle.stop();
}

/// A response much larger than the kernel send buffer must be delivered
/// correctly through the buffered partial-write path.
#[test]
fn large_response_survives_tiny_send_buffer() {
    let handle = start(ServiceConfig {
        // Ask for the smallest send buffer the kernel will grant, so the
        // response provably cannot leave in one write.
        so_sndbuf: Some(2048),
        ..ServiceConfig::default()
    });
    let mut c = Client::connect(handle.addr());
    // Shrink our receive window too (the kernel clamps to its floor) —
    // combined with the tiny server sndbuf, a multi-hundred-KB response
    // must stall repeatedly.
    use std::os::fd::AsRawFd;
    lazymc_netio::sockopt::set_recv_buf(c.stream.as_raw_fd(), 2048).unwrap();

    upload(&mut c, "k", &gen::complete(500));
    // Warm the result cache with one real solve so every batch slot below
    // is a cache hit: the point of this test is transport (a huge response
    // through tiny buffers), not 200 redundant solves — and cache hits
    // keep the batch clear of queue-capacity shedding.
    let (status, _, warm) = c.request("POST", "/solve", Some(r#"{"graph":"k","threads":1}"#));
    assert_eq!(status, 200, "warm-up solve failed: {warm}");
    // 200 batch slots × a 500-vertex witness each ≈ hundreds of KB.
    let slots: Vec<String> = (0..200)
        .map(|_| r#"{"graph":"k","threads":1}"#.to_string())
        .collect();
    let batch = format!("[{}]", slots.join(","));
    let (status, _, body) = c.request("POST", "/solve-batch", Some(&batch));
    assert_eq!(status, 200);
    assert!(
        body.len() > 200 * 1024,
        "response should dwarf the buffers ({} bytes)",
        body.len()
    );
    let parsed = Json::parse(&body).expect("intact JSON after partial writes");
    let results = match parsed.get("results") {
        Some(Json::Arr(items)) => items.clone(),
        other => panic!("bad results {other:?}"),
    };
    assert_eq!(results.len(), 200);
    for r in &results {
        assert_eq!(r.get("omega").and_then(Json::as_u64), Some(500));
    }
    let mut probe = Client::connect(handle.addr());
    assert!(
        probe.metric("lazymc_http_write_stalls_total") >= 1,
        "a response this large must have stalled at least once"
    );
    handle.stop();
}

/// Two requests written back-to-back in one burst are answered in order
/// on the same connection.
#[test]
fn pipelined_requests_are_answered_in_order() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    c.stream
        .write_all(
            b"GET /healthz HTTP/1.1\r\nHost: t\r\n\r\nGET /stats HTTP/1.1\r\nHost: t\r\n\r\n",
        )
        .unwrap();
    c.stream.flush().unwrap();
    let (status, _, body) = c.read_response();
    assert_eq!(status, 200);
    assert!(
        body.contains("\"status\":\"ok\""),
        "first answer is healthz"
    );
    let (status, _, body) = c.read_response();
    assert_eq!(status, 200);
    assert!(
        body.contains("\"queue_capacity\""),
        "second answer is /stats: {body}"
    );
    handle.stop();
}

/// Accepts beyond `--conn-limit` are refused with 503 and closed; the
/// refusal is counted.
#[test]
fn conn_limit_sheds_with_503() {
    let handle = start(ServiceConfig {
        conn_limit: 3,
        ..ServiceConfig::default()
    });
    let addr = handle.addr();
    // Fill the limit with live keep-alive connections (a request each,
    // so registration is observable, not racy).
    let mut held: Vec<Client> = (0..3)
        .map(|_| {
            let mut c = Client::connect(addr);
            let (status, _, _) = c.request("GET", "/healthz", None);
            assert_eq!(status, 200);
            c
        })
        .collect();
    // One more gets 503 + close.
    let mut extra = Client::connect(addr);
    let (status, _, body) = extra.read_response();
    assert_eq!(status, 503, "over-limit connect must be shed: {body}");
    let mut rest = Vec::new();
    extra.reader.read_to_end(&mut rest).expect("closed");

    assert!(held[0].metric("lazymc_http_conns_rejected_total") >= 1);
    assert_eq!(held[0].metric("lazymc_http_open_connections"), 3);
    // Freeing one slot readmits new connections.
    drop(held.pop());
    let t = Instant::now();
    loop {
        let mut again = Client::connect(addr);
        again
            .stream
            .set_read_timeout(Some(Duration::from_millis(500)))
            .unwrap();
        match again.request("GET", "/healthz", None) {
            (200, _, _) => break,
            (503, _, _) if t.elapsed() < Duration::from_secs(5) => {
                std::thread::sleep(Duration::from_millis(20));
            }
            (other, _, body) => panic!("unexpected {other}: {body}"),
        }
    }
    handle.stop();
}

/// The satellite contract: `queue_depth`, `jobs_inflight`, and the
/// reactor gauges appear with the same names in `/healthz` and `/stats`,
/// and as `lazymc_*` series in `/metrics` — consistently.
#[test]
fn gauges_agree_across_healthz_stats_and_metrics() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    upload(&mut c, "g", &gen::complete(6));
    let (_, _, solved) = c.request("POST", "/solve", Some(r#"{"graph":"g"}"#));
    assert!(solved.contains("\"omega\":6"));

    let (status, _, health_body) = c.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    let health = Json::parse(&health_body).unwrap();
    let (status, _, stats_body) = c.request("GET", "/stats", None);
    assert_eq!(status, 200);
    let stats = Json::parse(&stats_body).unwrap();

    // Every gauge appears under the same name in both JSON endpoints.
    for key in [
        "queue_depth",
        "jobs_inflight",
        "open_connections",
        "read_stalls",
        "write_stalls",
        "buffered_bytes",
        "result_cache_bytes",
        "jobs_stored",
        "job_store_bytes",
    ] {
        let h = health
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("/healthz missing {key}: {health_body}"));
        let s = stats
            .get(key)
            .and_then(Json::as_u64)
            .unwrap_or_else(|| panic!("/stats missing {key}: {stats_body}"));
        // Values must agree for gauges that cannot move between the two
        // probes; the stall counters may tick (the test client's own
        // writes arrive in fragments), so presence suffices for them.
        if !key.ends_with("_stalls") {
            assert_eq!(h, s, "{key} must agree between /healthz and /stats");
        }
    }
    // This connection is the only one open, and it sees itself.
    assert_eq!(
        health.get("open_connections").and_then(Json::as_u64),
        Some(1)
    );
    // The exact result cache holds the solve above.
    assert!(
        stats
            .get("result_cache_bytes")
            .and_then(Json::as_u64)
            .unwrap()
            > 0
    );

    // The same facts as Prometheus series.
    assert_eq!(c.metric("lazymc_queue_depth"), 0);
    assert_eq!(c.metric("lazymc_jobs_inflight"), 0);
    assert_eq!(c.metric("lazymc_http_open_connections"), 1);
    assert!(c.metric("lazymc_result_cache_bytes") > 0);
    for name in [
        "lazymc_http_read_stalls_total",
        "lazymc_http_write_stalls_total",
        "lazymc_http_request_timeouts_total",
        "lazymc_http_conns_accepted_total",
        "lazymc_http_conns_rejected_total",
        "lazymc_jobs_async_total",
        "lazymc_jobs_cancelled_http_total",
        "lazymc_jobs_expired_total",
        "lazymc_batches_total",
        "lazymc_batch_jobs_total",
        "lazymc_result_cache_ttl_evictions_total",
        "lazymc_result_cache_size_evictions_total",
        "lazymc_job_store_bytes",
        "lazymc_jobs_stored",
        "lazymc_result_cache_entries",
    ] {
        let _ = c.metric(name); // panics if the series is missing
    }
    handle.stop();
}

/// EOF mid-request (client gives up) must not leak the connection or
/// produce a response; EOF between requests is a clean close.
#[test]
fn eof_mid_request_closes_quietly() {
    let handle = start(ServiceConfig::default());
    {
        let mut c = Client::connect(handle.addr());
        c.stream
            .write_all(b"POST /solve HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"par")
            .unwrap();
        c.stream.flush().unwrap();
        // Close the write half; the request can never complete.
        c.stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut rest = Vec::new();
        c.reader.read_to_end(&mut rest).expect("server closes");
        assert!(rest.is_empty(), "no response for an abandoned request");
    }
    // The daemon is unaffected.
    let mut c = Client::connect(handle.addr());
    let (status, _, _) = c.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    assert_eq!(c.metric("lazymc_http_open_connections"), 1);
    handle.stop();
}

/// Interleaved partial writes from many dribbling clients at once — the
/// per-connection parsers must not bleed into each other.
#[test]
fn concurrent_dribblers_stay_isolated() {
    let handle = start(ServiceConfig::default());
    let addr = handle.addr();
    let mut c = Client::connect(addr);
    upload(&mut c, "t", &gen::complete(5));
    let threads: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let mut c = Client::connect(addr);
                let body = format!(r#"{{"graph":"t","priority":{}}}"#, i % 10);
                let raw = format!(
                    "POST /solve HTTP/1.1\r\nHost: x\r\nContent-Length: {}\r\n\r\n{}",
                    body.len(),
                    body
                );
                // Write in 3-byte chunks with pauses: many concurrently
                // half-parsed requests resident in the reactor.
                for chunk in raw.as_bytes().chunks(3) {
                    c.stream.write_all(chunk).unwrap();
                    c.stream.flush().unwrap();
                    std::thread::sleep(Duration::from_millis(2));
                }
                let (status, _, body) = c.read_response();
                assert_eq!(status, 200, "dribbled solve failed: {body}");
                assert!(body.contains("\"omega\":5"), "wrong answer: {body}");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("dribbler");
    }
    handle.stop();
}

/// Half-close after a complete request: the response must still be
/// written even though the client can no longer send.
#[test]
fn half_close_after_request_still_gets_response() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    c.stream
        .write_all(b"GET /healthz HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .unwrap();
    c.stream.flush().unwrap();
    c.stream.shutdown(std::net::Shutdown::Write).unwrap();
    let (status, _, body) = c.read_response();
    assert_eq!(status, 200, "half-closed client still gets its answer");
    assert!(body.contains("\"status\":\"ok\""));
    let mut rest = Vec::new();
    // read_to_end returning Ok proves the server closed cleanly.
    match c.reader.read_to_end(&mut rest) {
        Ok(_) => {}
        Err(e) if e.kind() == ErrorKind::ConnectionReset => {}
        Err(e) => panic!("unclean close: {e}"),
    }
    handle.stop();
}

/// A large upload passes through the buffering accounting and the gauge
/// returns to zero once the body is consumed — no connection pins its
/// high-water mark for life.
#[test]
fn buffered_bytes_gauge_drains_after_large_upload() {
    let handle = start(ServiceConfig::default());
    let mut c = Client::connect(handle.addr());
    // ~1 MB edge-list body.
    let g = gen::gnp(2000, 0.06, 3);
    upload(&mut c, "big", &g);
    let (status, _, _) = c.request("GET", "/stats/big", None);
    assert_eq!(status, 200);
    assert_eq!(
        c.metric("lazymc_http_buffered_bytes"),
        0,
        "consumed bodies must leave the gauge"
    );
    handle.stop();
}

/// When the aggregate buffering budget is exhausted, a connection
/// streaming a body larger than the budget stops being read and is shed
/// by the progress timeout — bounded memory instead of
/// `conn_limit × max_body_bytes`.
#[test]
fn buffer_budget_parks_oversized_backlog_until_timeout() {
    let handle = start(ServiceConfig {
        max_buffered_bytes: 64 * 1024,
        read_timeout: Duration::from_millis(300),
        ..ServiceConfig::default()
    });
    let c = Client::connect(handle.addr());
    let body = "x".repeat(512 * 1024);
    let head = format!(
        "POST /graphs HTTP/1.1\r\nHost: t\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    // The server parks the connection once the budget fills, so our own
    // write_all blocks on full kernel buffers — stream from a helper
    // thread and read the verdict on the main one.
    let mut writer_stream = c.stream.try_clone().unwrap();
    let writer = std::thread::spawn(move || {
        let _ = writer_stream.write_all(head.as_bytes());
        let _ = writer_stream.write_all(body.as_bytes());
    });
    let mut c = c;
    let (status, _, _) = c.read_response();
    assert_eq!(status, 408, "a body the budget cannot hold must be shed");
    writer.join().unwrap();
    // The daemon is healthy and the gauge returns once the victim closes.
    let mut probe = Client::connect(handle.addr());
    let (status, _, _) = probe.request("GET", "/healthz", None);
    assert_eq!(status, 200);
    assert!(probe.metric("lazymc_http_buffered_bytes") <= 64 * 1024);
    handle.stop();
}
