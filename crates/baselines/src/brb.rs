//! MC-BRB-like solver (Chang \[8\]), simplified.
//!
//! MC-BRB transforms maximum clique over a sparse graph into a sequence of
//! ego-network k-clique problems attacked by *branch-reduce-bound*: at
//! every node of the search tree, reduction rules strip candidates that
//! cannot join a better clique before any branching happens. This
//! reimplementation keeps that skeleton — degree-based heuristic priming,
//! degeneracy-ordered ego-network loop, per-node degree reduction, and a
//! greedy coloring bound — but omits MC-BRB's vertex folding and
//! higher-order reductions (documented in DESIGN.md §7). Sequential, like
//! the original.

use crate::shared::greedy_from;
use lazymc_graph::{CsrGraph, VertexId};
use lazymc_order::kcore_sequential;
use lazymc_solver::bitset::{BitMatrix, Bitset};
use lazymc_solver::greedy_color_count;

/// Runs the MC-BRB-like solver; returns a maximum clique in original ids.
pub fn brb_like(g: &CsrGraph) -> Vec<VertexId> {
    let n = g.num_vertices();
    if n == 0 {
        return Vec::new();
    }
    // Degree-based heuristic priming (MC-BRB runs its heuristic before the
    // degeneracy computation).
    let mut best: Vec<VertexId> = vec![0];
    let mut by_degree: Vec<VertexId> = (0..n as VertexId).collect();
    by_degree.sort_unstable_by_key(|&v| std::cmp::Reverse(g.degree(v)));
    for &v in by_degree.iter().take(8) {
        let c = greedy_from(g, v);
        if c.len() > best.len() {
            best = c;
        }
    }

    let kc = kcore_sequential(g);
    let mut rank = vec![0 as VertexId; n];
    for (i, &v) in kc.peel_order.iter().enumerate() {
        rank[v as usize] = i as VertexId;
    }

    // Ego-network loop in degeneracy order, deepest cores first.
    for &v in kc.peel_order.iter().rev() {
        if (kc.coreness[v as usize] as usize) < best.len() {
            continue; // cannot host anything better
        }
        let members: Vec<VertexId> = g
            .neighbors(v)
            .iter()
            .copied()
            .filter(|&u| rank[u as usize] > rank[v as usize])
            .collect();
        if members.len() < best.len() {
            continue;
        }
        let mut adj = BitMatrix::new(members.len());
        for (i, &u) in members.iter().enumerate() {
            for (j, &w) in members.iter().enumerate().skip(i + 1) {
                if g.has_edge(u, w) {
                    adj.add_edge(i, j);
                }
            }
        }
        let mut current = Vec::new();
        let mut local_best: Vec<u32> = Vec::new();
        let lb = best.len().saturating_sub(1); // need > lb inside the ego net
        expand(
            &adj,
            Bitset::full(members.len()),
            &mut current,
            lb,
            &mut local_best,
        );
        if !local_best.is_empty() && local_best.len() > lb {
            let mut clique: Vec<VertexId> =
                local_best.iter().map(|&i| members[i as usize]).collect();
            clique.push(v);
            if clique.len() > best.len() {
                debug_assert!(g.is_clique(&clique));
                best = clique;
            }
        }
    }
    best
}

/// Branch-reduce-bound on the ego network.
///
/// `best` holds the best clique found in *this* ego network; the caller
/// passes `lb` as the global floor. The reduce step drops any candidate
/// whose candidate-degree cannot complete a clique beating the floor.
fn expand(
    adj: &BitMatrix,
    mut cand: Bitset,
    current: &mut Vec<u32>,
    lb: usize,
    best: &mut Vec<u32>,
) {
    let floor = lb.max(best.len());
    // --- Reduce: iterated degree filtering inside the candidate set ------
    // The best clique through candidate v is current ∪ {v} ∪ (its candidate
    // neighbours); if even that cannot beat the floor, drop v. Removals
    // lower other candidates' degrees, so iterate to a fixpoint.
    loop {
        let mut changed = false;
        for v in cand.clone().iter() {
            if current.len() + 1 + adj.degree_within(v, &cand) <= floor {
                cand.remove(v);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    // --- Bound: size and chromatic bounds --------------------------------
    if current.len() + cand.len() <= floor {
        return;
    }
    if current.len() + greedy_color_count(adj, &cand) <= floor {
        return;
    }
    // --- Branch on a maximum-candidate-degree vertex ---------------------
    let Some(v) = cand.iter().max_by_key(|&v| adj.degree_within(v, &cand)) else {
        if current.len() > best.len() {
            *best = current.clone();
        }
        return;
    };
    // Include v.
    let mut with_v = cand.clone();
    with_v.intersect_with_words(adj.row(v));
    current.push(v as u32);
    if current.len() > best.len() && current.len() > lb {
        *best = current.clone();
    }
    expand(adj, with_v, current, lb, best);
    current.pop();
    // Exclude v.
    cand.remove(v);
    if !cand.is_empty() {
        expand(adj, cand, current, lb, best);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lazymc_graph::gen;

    #[test]
    fn brb_solves_known_graphs() {
        assert_eq!(brb_like(&gen::complete(8)).len(), 8);
        assert_eq!(brb_like(&gen::path(12)).len(), 2);
        assert_eq!(brb_like(&gen::cycle(6)).len(), 2);
        assert_eq!(brb_like(&gen::triangulated_grid(5, 5)).len(), 4);
        assert_eq!(brb_like(&CsrGraph::empty(5)).len(), 1);
        assert_eq!(brb_like(&CsrGraph::empty(0)).len(), 0);
    }

    #[test]
    fn brb_finds_planted_clique() {
        let g = gen::planted_clique(150, 0.04, 9, 8);
        let c = brb_like(&g);
        assert!(g.is_clique(&c));
        assert_eq!(c.len(), 9);
    }

    #[test]
    fn brb_gap_zero_caveman() {
        let g = gen::caveman(6, 5, 0.02, 4);
        assert_eq!(brb_like(&g).len(), 5);
    }
}
