//! Criterion micro-benchmark: k-core decomposition variants — sequential
//! bucket peeling, parallel round-based peeling, and the incumbent-floored
//! variant the paper's Alg. 1 uses.

use criterion::{criterion_group, criterion_main, Criterion};
use lazymc_graph::gen;
use lazymc_order::{kcore_parallel, kcore_sequential, kcore_with_floor};
use std::hint::black_box;

fn bench_kcore(c: &mut Criterion) {
    let mut group = c.benchmark_group("kcore");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(300));

    let g = gen::rmat(14, 12, 0.57, 0.19, 0.19, 8);
    group.bench_function("sequential_rmat14", |b| {
        b.iter(|| black_box(kcore_sequential(black_box(&g))))
    });
    group.bench_function("parallel_rmat14", |b| {
        b.iter(|| black_box(kcore_parallel(black_box(&g))))
    });
    // A realistic floor: what a degree heuristic would report.
    group.bench_function("floored_rmat14", |b| {
        b.iter(|| black_box(kcore_with_floor(black_box(&g), 10)))
    });
    group.finish();
}

criterion_group!(benches, bench_kcore);
criterion_main!(benches);
