//! Daemon-wide observability: per-route latency histograms, the
//! queue-wait / solve-wall / per-phase solve histograms, the slow-query
//! log, and structured JSON log emission.
//!
//! Everything here is built on `lazymc-obs` primitives: lock-free
//! log₂-bucketed [`Histogram`]s (one relaxed `fetch_add` per
//! observation — cheap enough to sit on the reactor's hot path), a
//! bounded keep-the-worst [`SlowLog`], and a [`LogSink`] that emits one
//! JSON object per line (`--log-json`). The reactor stamps every request
//! with a trace id ([`lazymc_obs::trace`], honouring a valid inbound
//! `X-Request-Id`) which flows HTTP → queue → job → solve, so one grep
//! over the log reconstructs a request's whole path through the daemon.

use crate::plock;
use crate::protocol::Json;
use lazymc_core::PhaseTimes;
use lazymc_obs::{Histogram, HistogramSnapshot, LogSink, SlowLog};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Route classes carried as the `route` label of
/// `lazymc_http_request_seconds`. A fixed, low-cardinality set — labels
/// derive from the *route*, never the raw path, so an attacker cannot
/// mint unbounded series by walking URLs.
pub const ROUTES: [&str; 9] = [
    "healthz",
    "metrics",
    "stats",
    "graphs",
    "jobs",
    "solve",
    "solve_batch",
    "debug",
    "other",
];

/// Index into [`ROUTES`] for one request.
pub fn route_class(path: &str) -> usize {
    let path = path.split('?').next().unwrap_or(path);
    match path {
        // The readiness probe shares the health route class: same
        // cardinality budget, same latency expectations.
        "/healthz" | "/readyz" => 0,
        "/metrics" => 1,
        "/solve" => 5,
        "/solve-batch" => 6,
        p if p == "/stats" || p.starts_with("/stats/") => 2,
        p if p == "/graphs" || p.starts_with("/graphs/") => 3,
        p if p.starts_with("/jobs/") => 4,
        p if p.starts_with("/debug/") => 7,
        _ => 8,
    }
}

/// Solve phases as exported under the `phase` label of
/// `lazymc_solve_phase_seconds` (the order of
/// [`lazymc_core::PhaseTimes`]'s fields).
pub const PHASES: [&str; 6] = [
    "degree_heuristic",
    "kcore",
    "reorder",
    "prepopulate",
    "coreness_heuristic",
    "systematic",
];

/// [`PhaseTimes`] as microseconds, in [`PHASES`] order.
pub fn phase_micros(p: &PhaseTimes) -> [u64; 6] {
    [
        p.degree_heuristic.as_micros() as u64,
        p.kcore.as_micros() as u64,
        p.reorder.as_micros() as u64,
        p.prepopulate.as_micros() as u64,
        p.coreness_heuristic.as_micros() as u64,
        p.systematic.as_micros() as u64,
    ]
}

/// One completed solve as observed by the instrumentation: identity,
/// the span breakdown, and how it ended. Retained (cloned) in the slow
/// log when it clears the threshold.
#[derive(Clone)]
pub struct SolveObservation {
    pub job_id: u64,
    pub graph: String,
    pub trace: String,
    /// Request-body parse time, recorded at submission.
    pub parse_us: u64,
    /// Enqueue → solver pop.
    pub wait_us: u64,
    /// Solver wall time (pop → result).
    pub solve_us: u64,
    /// Result JSON encoding time.
    pub serialize_us: u64,
    /// Per-phase wall times in [`PHASES`] order.
    pub phases_us: [u64; 6],
    pub cancelled: bool,
    pub failed: bool,
}

impl SolveObservation {
    /// The span-tree key: everything the job spent between submission
    /// and its encoded result.
    pub fn total_us(&self) -> u64 {
        self.parse_us + self.wait_us + self.solve_us + self.serialize_us
    }

    /// The span tree as JSON: a `request` root with `parse`,
    /// `queue-wait`, `solve` (whose children are the solver phases) and
    /// `serialize` children. Offsets are microseconds from submission,
    /// so a client can render a flame-style timeline without clocks.
    pub fn span_tree(&self) -> Json {
        let span = |name: &str, start_us: u64, dur_us: u64, children: Vec<Json>| {
            let mut fields = vec![
                ("name", Json::str(name)),
                ("start_us", Json::num(start_us as f64)),
                ("dur_us", Json::num(dur_us as f64)),
            ];
            if !children.is_empty() {
                fields.push(("children", Json::Arr(children)));
            }
            Json::obj(fields)
        };
        let mut at = 0u64;
        let mut children = Vec::new();
        children.push(span("parse", at, self.parse_us, vec![]));
        at += self.parse_us;
        children.push(span("queue-wait", at, self.wait_us, vec![]));
        at += self.wait_us;
        let mut phase_at = at;
        let phase_children = PHASES
            .iter()
            .zip(self.phases_us.iter())
            .filter(|(_, &us)| us > 0)
            .map(|(name, &us)| {
                let s = span(name, phase_at, us, vec![]);
                phase_at += us;
                s
            })
            .collect();
        children.push(span("solve", at, self.solve_us, phase_children));
        at += self.solve_us;
        children.push(span("serialize", at, self.serialize_us, vec![]));
        span("request", 0, self.total_us(), children)
    }
}

/// Turns the scheduler's cumulative per-worker busy-nanosecond counters
/// into a per-scrape-window **thread efficiency** gauge: the fraction of
/// wall time each worker spent executing task bodies since the previous
/// `/metrics` scrape (clamped to [0, 1]). The first scrape's window runs
/// from daemon start, so a single hard solve on an idle pool reports
/// near-1.0 on every worker it recruited.
pub struct SchedWindow {
    last: Mutex<WindowState>,
}

struct WindowState {
    at: Instant,
    busy_ns: Vec<u64>,
}

impl SchedWindow {
    pub fn new() -> SchedWindow {
        SchedWindow {
            last: Mutex::new(WindowState {
                at: Instant::now(),
                busy_ns: Vec::new(),
            }),
        }
    }

    /// Per-worker busy fraction over the window since the previous call,
    /// and advances the window. `busy_ns` is the scheduler's cumulative
    /// snapshot (one entry per worker).
    pub fn efficiency(&self, busy_ns: &[u64]) -> Vec<f64> {
        let now = Instant::now();
        let mut last = plock(&self.last);
        let elapsed_ns = now.duration_since(last.at).as_nanos() as u64;
        let out = busy_ns
            .iter()
            .enumerate()
            .map(|(i, &b)| {
                let prev = last.busy_ns.get(i).copied().unwrap_or(0);
                if elapsed_ns == 0 {
                    0.0
                } else {
                    (b.saturating_sub(prev) as f64 / elapsed_ns as f64).clamp(0.0, 1.0)
                }
            })
            .collect();
        last.at = now;
        last.busy_ns = busy_ns.to_vec();
        out
    }
}

impl Default for SchedWindow {
    fn default() -> Self {
        Self::new()
    }
}

/// The daemon's observability state, shared by every layer.
pub struct ServiceObs {
    /// HTTP request latency per route class ([`ROUTES`] order).
    http: [Histogram; ROUTES.len()],
    /// Enqueue → scheduler-take wait.
    pub queue_wait: Histogram,
    /// Solver wall time.
    pub solve_wall: Histogram,
    /// Per-phase solve wall time ([`PHASES`] order).
    phases: [Histogram; PHASES.len()],
    /// The N slowest completed solves above the threshold.
    pub slow: SlowLog<SolveObservation>,
    /// Scrape window for `lazymc_sched_thread_efficiency`.
    pub sched_window: SchedWindow,
    sink: LogSink,
}

impl ServiceObs {
    pub(crate) fn new(sink: LogSink, slow_query_ms: u64, slow_log_len: usize) -> ServiceObs {
        ServiceObs {
            http: Default::default(),
            queue_wait: Histogram::new(),
            solve_wall: Histogram::new(),
            phases: Default::default(),
            slow: SlowLog::new(slow_query_ms.saturating_mul(1000), slow_log_len),
            sched_window: SchedWindow::new(),
            sink,
        }
    }

    /// Snapshot of one route's HTTP latency histogram.
    pub fn http_snapshot(&self, route: usize) -> HistogramSnapshot {
        self.http[route.min(ROUTES.len() - 1)].snapshot()
    }

    /// Records one answered HTTP request and, when logging is on, emits
    /// its structured log line.
    pub(crate) fn observe_http(
        &self,
        route: usize,
        trace: &str,
        method: &str,
        path: &str,
        status: u16,
        dur: Duration,
    ) {
        self.http[route.min(ROUTES.len() - 1)].observe(dur);
        if self.sink.enabled() {
            let line = Json::obj(vec![
                ("ts_ms", Json::num(unix_ms() as f64)),
                ("kind", Json::str("http")),
                ("trace", Json::str(trace)),
                ("method", Json::str(method)),
                ("path", Json::str(path)),
                ("route", Json::str(ROUTES[route.min(ROUTES.len() - 1)])),
                ("status", Json::num(status as f64)),
                ("dur_us", Json::num(dur.as_micros() as f64)),
            ]);
            self.sink.emit(&line.encode());
        }
    }

    /// Records one completed solve: queue-wait / solve-wall / per-phase
    /// histograms, slow-log admission, and the structured log line.
    pub(crate) fn observe_solve(&self, obs: &SolveObservation) {
        self.queue_wait.observe_micros(obs.wait_us);
        self.solve_wall.observe_micros(obs.solve_us);
        for (h, &us) in self.phases.iter().zip(obs.phases_us.iter()) {
            h.observe_micros(us);
        }
        self.slow.record(obs.total_us(), obs.clone());
        if self.sink.enabled() {
            let phases = Json::Obj(
                PHASES
                    .iter()
                    .zip(obs.phases_us.iter())
                    .map(|(name, &us)| (name.to_string(), Json::num(us as f64)))
                    .collect(),
            );
            let line = Json::obj(vec![
                ("ts_ms", Json::num(unix_ms() as f64)),
                ("kind", Json::str("solve")),
                ("trace", Json::str(&*obs.trace)),
                ("job_id", Json::num(obs.job_id as f64)),
                ("graph", Json::str(&*obs.graph)),
                ("parse_us", Json::num(obs.parse_us as f64)),
                ("wait_us", Json::num(obs.wait_us as f64)),
                ("solve_us", Json::num(obs.solve_us as f64)),
                ("serialize_us", Json::num(obs.serialize_us as f64)),
                ("total_us", Json::num(obs.total_us() as f64)),
                ("phases", phases),
                ("cancelled", Json::Bool(obs.cancelled)),
                ("failed", Json::Bool(obs.failed)),
                ("slow", Json::Bool(obs.total_us() >= self.slow.threshold())),
            ]);
            self.sink.emit(&line.encode());
        }
    }

    /// Appends the daemon's histogram families in Prometheus text
    /// format (one `# HELP`/`# TYPE` header per family, one label set
    /// per route/phase).
    pub(crate) fn render_prometheus(&self, out: &mut String) {
        out.push_str(
            "# HELP lazymc_http_request_seconds HTTP request latency by route class\n\
             # TYPE lazymc_http_request_seconds histogram\n",
        );
        for (route, h) in ROUTES.iter().zip(self.http.iter()) {
            h.snapshot().render_prometheus(
                out,
                "lazymc_http_request_seconds",
                &format!("route=\"{route}\""),
            );
        }
        out.push_str(
            "# HELP lazymc_queue_wait_seconds Solve-job wait between enqueue and solver pop\n\
             # TYPE lazymc_queue_wait_seconds histogram\n",
        );
        self.queue_wait
            .snapshot()
            .render_prometheus(out, "lazymc_queue_wait_seconds", "");
        out.push_str(
            "# HELP lazymc_solve_wall_seconds Solver wall time per executed job\n\
             # TYPE lazymc_solve_wall_seconds histogram\n",
        );
        self.solve_wall
            .snapshot()
            .render_prometheus(out, "lazymc_solve_wall_seconds", "");
        out.push_str(
            "# HELP lazymc_solve_phase_seconds Solve wall time by pipeline phase\n\
             # TYPE lazymc_solve_phase_seconds histogram\n",
        );
        for (phase, h) in PHASES.iter().zip(self.phases.iter()) {
            h.snapshot().render_prometheus(
                out,
                "lazymc_solve_phase_seconds",
                &format!("phase=\"{phase}\""),
            );
        }
    }

    /// The `GET /debug/slow` body: the retained slowest solves, worst
    /// first, each with its span tree.
    pub(crate) fn slow_json(&self) -> Json {
        let entries: Vec<Json> = self
            .slow
            .snapshot()
            .into_iter()
            .map(|(key_us, o)| {
                Json::obj(vec![
                    ("job_id", Json::num(o.job_id as f64)),
                    ("graph", Json::str(&*o.graph)),
                    ("trace", Json::str(&*o.trace)),
                    ("total_ms", Json::num(key_us as f64 / 1e3)),
                    ("wait_ms", Json::num(o.wait_us as f64 / 1e3)),
                    ("solve_ms", Json::num(o.solve_us as f64 / 1e3)),
                    ("cancelled", Json::Bool(o.cancelled)),
                    ("failed", Json::Bool(o.failed)),
                    ("spans", o.span_tree()),
                ])
            })
            .collect();
        Json::obj(vec![
            (
                "threshold_ms",
                Json::num(self.slow.threshold() as f64 / 1e3),
            ),
            ("count", Json::num(entries.len() as f64)),
            ("slow", Json::Arr(entries)),
        ])
    }
}

/// Wall-clock milliseconds since the Unix epoch (log-line timestamps).
fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis() as u64)
        .unwrap_or(0)
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    #[test]
    fn route_classes_are_total_and_bounded() {
        for path in [
            "/healthz",
            "/readyz",
            "/metrics",
            "/stats",
            "/stats/g",
            "/graphs",
            "/graphs/g",
            "/jobs/17",
            "/solve",
            "/solve?async=1",
            "/solve-batch",
            "/debug/slow",
            "/nope",
            "",
        ] {
            assert!(route_class(path) < ROUTES.len(), "{path}");
        }
        assert_eq!(ROUTES[route_class("/solve?async=1")], "solve");
        assert_eq!(ROUTES[route_class("/jobs/3")], "jobs");
        assert_eq!(ROUTES[route_class("/wat")], "other");
    }

    #[test]
    fn span_tree_offsets_tile_the_request() {
        let o = SolveObservation {
            job_id: 7,
            graph: "g".into(),
            trace: "t".into(),
            parse_us: 10,
            wait_us: 20,
            solve_us: 100,
            serialize_us: 5,
            phases_us: [1, 2, 3, 0, 4, 90],
            cancelled: false,
            failed: false,
        };
        assert_eq!(o.total_us(), 135);
        let tree = o.span_tree();
        assert_eq!(tree.get("dur_us").and_then(Json::as_u64), Some(135));
        let Some(Json::Arr(children)) = tree.get("children") else {
            panic!("request span must have children");
        };
        // serialize starts where solve ended.
        let serialize = children.last().unwrap();
        assert_eq!(
            serialize.get("name").and_then(Json::as_str),
            Some("serialize")
        );
        assert_eq!(serialize.get("start_us").and_then(Json::as_u64), Some(130));
        // The zero-duration phase is elided from the solve span.
        let solve = &children[2];
        let Some(Json::Arr(phases)) = solve.get("children") else {
            panic!("solve span must have phase children");
        };
        assert_eq!(phases.len(), 5);
    }

    #[test]
    fn observe_solve_feeds_histograms_slowlog_and_sink() {
        let (sink, buf) = LogSink::capture();
        let obs = ServiceObs::new(sink, 0, 8);
        let o = SolveObservation {
            job_id: 1,
            graph: "g".into(),
            trace: "trace-1".into(),
            parse_us: 1,
            wait_us: 2_000,
            solve_us: 50_000,
            serialize_us: 3,
            phases_us: [0, 10, 5, 5, 10, 49_970],
            cancelled: false,
            failed: false,
        };
        obs.observe_solve(&o);
        assert_eq!(obs.queue_wait.snapshot().count(), 1);
        assert_eq!(obs.solve_wall.snapshot().count(), 1);
        assert_eq!(obs.slow.len(), 1);
        let lines = buf.lock();
        assert_eq!(lines.len(), 1);
        let parsed = Json::parse(&lines[0]).expect("log line is JSON");
        assert_eq!(parsed.get("trace").and_then(Json::as_str), Some("trace-1"));
        assert_eq!(parsed.get("kind").and_then(Json::as_str), Some("solve"));
    }

    #[test]
    fn prometheus_rendering_has_one_header_per_family() {
        let obs = ServiceObs::new(LogSink::Null, 100, 4);
        obs.observe_http(0, "t", "GET", "/healthz", 200, Duration::from_micros(80));
        let mut out = String::new();
        obs.render_prometheus(&mut out);
        for family in [
            "lazymc_http_request_seconds",
            "lazymc_queue_wait_seconds",
            "lazymc_solve_wall_seconds",
            "lazymc_solve_phase_seconds",
        ] {
            let types = out
                .lines()
                .filter(|l| *l == format!("# TYPE {family} histogram"))
                .count();
            assert_eq!(types, 1, "{family}");
        }
        assert!(out.contains("lazymc_http_request_seconds_bucket{route=\"healthz\",le=\"+Inf\"} 1"));
        assert!(out.contains("lazymc_solve_phase_seconds_count{phase=\"systematic\"} 0"));
    }
}
