//! The central property of intra-solve parallelism: the thread count
//! changes *cost*, never the *answer*. Parallel (threads ∈ {2, 4, 8}) and
//! sequential solves must agree on ω (and produce genuine witnesses)
//! across random G(n, p) densities, for both dense engines and for the
//! raw k-VC decision problem.
//!
//! Set `LAZYMC_TEST_THREADS=<n>` to pin the parallel thread count (CI runs
//! the suite once with 4 to exercise the parallel path under the standard
//! matrix); unset, every test sweeps 2, 4 and 8.

use lazymc_solver::{
    max_clique_dense_par, max_clique_exact, max_clique_via_vc_par, min_vertex_cover,
    vc::is_vertex_cover, vertex_cover_decision_par, Bitset, VcSolveScratch,
};
use proptest::prelude::*;

mod common;
use common::pseudo_graph;

/// Thread counts to exercise: the `LAZYMC_TEST_THREADS` override, or the
/// standard {2, 4, 8} sweep.
fn test_threads() -> Vec<usize> {
    match std::env::var("LAZYMC_TEST_THREADS") {
        Ok(v) => vec![v
            .parse()
            .expect("LAZYMC_TEST_THREADS must be a positive integer")],
        Err(_) => vec![2, 4, 8],
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_mc_agrees_with_sequential(
        n in 4usize..80,
        p in 0u64..1000,
        seed in 0u64..10_000,
    ) {
        let m = pseudo_graph(n, p, seed);
        let omega = max_clique_exact(&m).len();
        for threads in test_threads() {
            let mut out = Vec::new();
            let found =
                max_clique_dense_par(&m, &Bitset::full(n), 0, threads, None, &mut out);
            prop_assert!(found, "n={n} p={p} threads={threads}");
            prop_assert_eq!(out.len(), omega, "n={} p={} threads={}", n, p, seed);
            prop_assert!(m.is_clique(&out), "witness must be a clique");
            // The lower bound suppresses exactly at ω.
            prop_assert!(
                !max_clique_dense_par(&m, &Bitset::full(n), omega, threads, None, &mut out)
            );
            prop_assert!(out.is_empty());
        }
    }

    #[test]
    fn parallel_clique_via_vc_agrees_with_sequential(
        n in 4usize..60,
        p in 400u64..1000,
        seed in 0u64..10_000,
    ) {
        let m = pseudo_graph(n, p, seed);
        let omega = max_clique_exact(&m).len();
        for threads in test_threads() {
            let mut scratch = VcSolveScratch::new();
            let mut out = Vec::new();
            prop_assert!(
                max_clique_via_vc_par(&m, 0, threads, None, &mut scratch, &mut out),
                "n={n} p={p} threads={threads}"
            );
            prop_assert_eq!(out.len(), omega, "n={} p={} seed={}", n, p, seed);
            prop_assert!(m.is_clique(&out));
            prop_assert!(
                !max_clique_via_vc_par(&m, omega, threads, None, &mut scratch, &mut out)
            );
        }
    }

    #[test]
    fn parallel_vc_decision_agrees_with_sequential(
        n in 4usize..60,
        p in 0u64..500,
        seed in 0u64..10_000,
    ) {
        let m = pseudo_graph(n, p, seed);
        let alive = Bitset::full(n);
        let mvc = min_vertex_cover(&m, None).len();
        for threads in test_threads() {
            let mut out = Vec::new();
            // At the optimum: success with a genuine cover.
            prop_assert!(
                vertex_cover_decision_par(&m, &alive, mvc, threads, None, &mut out),
                "n={n} p={p} threads={threads} k={mvc}"
            );
            prop_assert!(out.len() <= mvc);
            prop_assert!(is_vertex_cover(&m, &alive, &out));
            // One below: a unanimous, authoritative no.
            if mvc > 0 {
                prop_assert!(
                    !vertex_cover_decision_par(&m, &alive, mvc - 1, threads, None, &mut out)
                );
                prop_assert!(out.is_empty());
            }
        }
    }
}
